//! Offline stand-in for the `criterion` crate (0.5 API subset).
//!
//! The build environment has no package registry, so this workspace
//! vendors a minimal benchmark harness that is source-compatible with
//! the `criterion` call sites in `crates/bench`: `Criterion`,
//! benchmark groups, `bench_function` / `bench_with_input`,
//! `BenchmarkId`, `Bencher::iter` / `iter_batched`, `black_box`, and
//! the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement model: each benchmark is warmed once, then timed for
//! `sample_size` samples; the mean, min, and max per-iteration times
//! are printed to stdout. There are no statistics, plots, or saved
//! baselines — this harness exists so `cargo bench` compiles and gives
//! order-of-magnitude numbers offline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group (subset of
/// `criterion::BenchmarkId`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter display value.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id made of a parameter display value alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

impl From<&String> for BenchmarkId {
    fn from(s: &String) -> Self {
        BenchmarkId { id: s.clone() }
    }
}

/// How `iter_batched` amortizes setup cost (subset of
/// `criterion::BatchSize`). The shim runs one setup per iteration in
/// every mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Fresh input per iteration.
    PerIteration,
    /// Small batches (treated as `PerIteration` here).
    SmallInput,
    /// Large batches (treated as `PerIteration` here).
    LargeInput,
}

/// Timing driver handed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine` for the configured number of samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }

    /// Times `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup())); // warm-up
        for _ in 0..self.sample_size {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push(t0.elapsed());
        }
    }
}

fn report(group: &str, id: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{group}/{id}: no samples");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().copied().unwrap_or_default();
    let max = samples.iter().max().copied().unwrap_or_default();
    println!(
        "{group}/{id}: mean {mean:.2?} (min {min:.2?}, max {max:.2?}, n={})",
        samples.len()
    );
}

/// A named set of related benchmarks (subset of
/// `criterion::BenchmarkGroup`).
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    name: String,
    criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    /// Overrides the measurement budget (stored, unused by the shim).
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement_time = d;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.criterion.sample_size,
        };
        f(&mut b);
        report(&self.name, &id.id, &b.samples);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.criterion.sample_size,
        };
        f(&mut b, input);
        report(&self.name, &id.id, &b.samples);
        self
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver (subset of `criterion::Criterion`).
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Builder: sets the default sample count.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Builder: sets the measurement budget (stored, unused by the shim).
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Builder: sets the warm-up budget (ignored; the shim warms one
    /// iteration per benchmark).
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Declares a group of benchmark functions (both the list form and the
/// `name = ...; config = ...; targets = ...` form of criterion 0.5).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim_smoke");
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sum_to", 50), &50u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_function("batched", |b| {
            b.iter_batched(
                || vec![3u32, 1, 2],
                |mut v| {
                    v.sort_unstable();
                    v
                },
                BatchSize::PerIteration,
            )
        });
        group.finish();
    }

    criterion_group!(benches, quick);

    #[test]
    fn harness_runs() {
        benches();
        let _ = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(1));
        let _ = BenchmarkId::from_parameter(42);
    }
}
