//! Value-generation strategies (subset of `proptest::strategy`).

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform};

/// A recipe for generating values of an associated type.
///
/// Unlike real proptest there is no value tree or shrinking: a strategy
/// is just a pure generator driven by a deterministic RNG.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy producing a single constant value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

impl<T> Strategy for Range<T>
where
    T: SampleUniform + PartialOrd + Copy,
{
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        assert!(self.start < self.end, "strategy range must be non-empty");
        rng.gen_range(self.start..self.end)
    }
}

impl<T> Strategy for RangeInclusive<T>
where
    T: SampleUniform + PartialOrd + Copy,
{
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(*self.start()..=*self.end())
    }
}

/// Types with a canonical "any value" strategy (subset of
/// `proptest::arbitrary::Arbitrary`).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_standard {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen::<$t>()
            }
        }
    )*};
}

impl_arbitrary_standard!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

/// Strategy returned by [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(PhantomData<T>);

/// The canonical strategy for an unconstrained `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9)
}

/// A collection-size specification: a fixed size or a size range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.lo..=self.hi_inclusive)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "collection size range must be non-empty");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

/// Collection strategies (subset of `proptest::collection`).
pub mod collection {
    use std::collections::{BTreeMap, BTreeSet};

    use super::{SizeRange, Strategy};
    use rand::rngs::StdRng;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>`.
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Generates ordered sets; the size bound is best-effort since
    /// duplicate draws collapse.
    pub fn btree_set<S>(elem: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeMap<K::Value, V::Value>`.
    #[derive(Debug, Clone)]
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    /// Generates ordered maps; the size bound is best-effort since
    /// duplicate keys collapse.
    pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = BTreeMap<K::Value, V::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let n = self.size.sample(rng);
            (0..n)
                .map(|_| (self.key.generate(rng), self.value.generate(rng)))
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::rng_for_case;

    #[test]
    fn ranges_tuples_and_maps_compose() {
        let strat = (0..10u32, 5..=6u64).prop_map(|(a, b)| (b, a));
        let mut rng = rng_for_case(0);
        for _ in 0..100 {
            let (b, a) = strat.generate(&mut rng);
            assert!(a < 10);
            assert!((5..=6).contains(&b));
        }
    }

    #[test]
    fn collections_respect_sizes() {
        let mut rng = rng_for_case(1);
        let v = collection::vec(any::<bool>(), 80).generate(&mut rng);
        assert_eq!(v.len(), 80);
        let v = collection::vec(0..100u32, 3..8).generate(&mut rng);
        assert!((3..8).contains(&v.len()));
        let s = collection::btree_set(0..1000u32, 0..50).generate(&mut rng);
        assert!(s.len() < 50);
        let m = collection::btree_map(0..10u32, any::<u64>(), 2..=4).generate(&mut rng);
        assert!(m.len() <= 4);
    }

    #[test]
    fn just_returns_its_value() {
        let mut rng = rng_for_case(2);
        assert_eq!(Just(7u8).generate(&mut rng), 7);
    }
}
