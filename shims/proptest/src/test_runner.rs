//! Case scheduling for the shimmed property-test harness.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runtime configuration for a `proptest!` block (subset of
/// `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test function.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Error type helper functions can return to abort a case (subset of
/// `proptest::test_runner::TestCaseError`).
///
/// The shimmed `prop_assert*` macros panic directly, so in practice a
/// body's `Result` plumbing always carries `Ok`; the type exists so
/// helper signatures stay source-compatible with real proptest.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// An error that fails the current case with `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic generator for one case: the same case index always
/// replays the same inputs, across runs and machines.
pub fn rng_for_case(case: u32) -> StdRng {
    StdRng::seed_from_u64(0xa076_1d64_78bd_642f ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// Prints the failing case index when a test body panics (the shim has
/// no shrinking, so the index is the reproduction handle).
#[derive(Debug)]
pub struct CaseReporter {
    case: u32,
    armed: bool,
}

impl CaseReporter {
    /// Arms a reporter for `case`.
    pub fn new(case: u32) -> Self {
        CaseReporter { case, armed: true }
    }

    /// Marks the case as passed; the reporter stays silent on drop.
    pub fn disarm(&mut self) {
        self.armed = false;
    }
}

impl Drop for CaseReporter {
    fn drop(&mut self) {
        if self.armed && std::thread::panicking() {
            eprintln!(
                "proptest shim: assertion failed at case index {} (deterministic; rerun reproduces it)",
                self.case
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn cases_are_deterministic_and_distinct() {
        let a: Vec<u64> = (0..4).map(|c| rng_for_case(c).next_u64()).collect();
        let b: Vec<u64> = (0..4).map(|c| rng_for_case(c).next_u64()).collect();
        assert_eq!(a, b);
        let mut uniq = a.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), a.len());
    }
}
