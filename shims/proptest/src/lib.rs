//! Offline stand-in for the `proptest` crate (1.x API subset).
//!
//! The build environment has no package registry, so this workspace
//! vendors a minimal property-testing harness that is source-compatible
//! with the `proptest` call sites in the repository: the [`proptest!`]
//! macro, `prop_assert*` macros, the [`Strategy`] trait with
//! `prop_map`, `any::<T>()`, integer-range strategies, tuple
//! strategies, and `prop::collection::{vec, btree_set, btree_map}`.
//!
//! Semantics: each test body runs for `ProptestConfig::cases`
//! deterministic cases (seeded per case index, so failures reproduce
//! across runs). There is **no shrinking** — on failure the panic
//! message reports the failing case index instead of a minimal
//! counterexample. Swapping the real `proptest` back in requires no
//! source changes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

/// Collection and combinator strategies, mirroring `proptest::prop`.
pub mod prop {
    /// Strategies producing collections.
    pub mod collection {
        pub use crate::strategy::collection::{btree_map, btree_set, vec};
    }
}

/// The glob-importable prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Supports the standard forms used in this repository:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn holds(x in 0..10u32, (a, b) in (0..5u64, 0..5u64)) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (@impl ($cfg:expr)
        $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::test_runner::rng_for_case(__case);
                    let mut __reporter = $crate::test_runner::CaseReporter::new(__case);
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            { $body }
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(__e) = __outcome {
                        panic!("proptest case failed: {__e}");
                    }
                    __reporter.disarm();
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// `assert!` that reports through the property-test harness.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` that reports through the property-test harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` that reports through the property-test harness.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}
