//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no access to a package registry, so this
//! workspace vendors a minimal, dependency-free implementation of the
//! parts of `rand` 0.8 it actually uses: `StdRng` (seedable, here a
//! xoshiro256++ generator seeded via splitmix64), the `Rng` extension
//! trait (`gen`, `gen_range`, `gen_bool`), and `seq::SliceRandom`
//! (`shuffle`, `choose`). Distribution quality matches what the tests
//! and data generators need (uniform ints via Lemire-style widening
//! multiply, uniform floats in `[0, 1)` with 53 bits of precision);
//! it is **not** a cryptographic or statistically audited generator.
//!
//! The API is source-compatible with the call sites in this repository
//! so that a real `rand` dependency can be dropped back in unchanged.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Trait for seedable random number generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A value that can be drawn uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

/// A type with a uniform distribution over a half-open or inclusive range.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)`; `lo < hi` must hold.
    fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`; `lo <= hi` must hold.
    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// A range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for Range<T> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty inclusive range");
        T::sample_inclusive(rng, lo, hi)
    }
}

macro_rules! impl_uniform_int {
    ($(($t:ty, $u:ty)),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                // Two's-complement span through the unsigned twin type so
                // signed bounds work, then widening-multiply range
                // reduction (bias < 2^-64 for the spans used here).
                let span = hi.wrapping_sub(lo) as $u as u128;
                let x = rng.next_u64() as u128;
                lo.wrapping_add(((x * span) >> 64) as $u as $t)
            }
            fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                Self::sample_half_open(rng, lo, hi.wrapping_add(1))
            }
        }

        impl Standard for $t {
            fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_uniform_int!(
    (u8, u8),
    (u16, u16),
    (u32, u32),
    (u64, u64),
    (usize, usize),
    (i8, u8),
    (i16, u16),
    (i32, u32),
    (i64, u64),
    (isize, usize)
);

impl SampleUniform for f64 {
    fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + (hi - lo) * unit
    }
    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        lo + (hi - lo) * unit
    }
}

impl Standard for f64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Random number generator extension trait (subset of `rand::Rng`).
pub trait Rng {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Draws a value of type `T` from its standard distribution
    /// (uniform over the type for ints, `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of [0, 1]");
        ((self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)) < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        R::next_u64(self)
    }
}

/// Generator implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator (stands in for `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 seeding, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Extension trait for slices (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Element type of the sequence.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = ((rng.next_u64() as u128 * (i as u128 + 1)) >> 64) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let j = ((rng.next_u64() as u128 * self.len() as u128) >> 64) as usize;
                self.get(j)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: u64 = rng.gen_range(10..20u64);
            assert!((10..20).contains(&x));
            let y: usize = rng.gen_range(0..=3usize);
            assert!(y <= 3);
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            let e: f64 = rng.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&e));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[rng.gen_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "hits={hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
        assert!([1u32].as_mut_slice().choose(&mut rng).is_some());
        assert!(Vec::<u32>::new().as_slice().choose(&mut rng).is_none());
    }

    #[test]
    fn works_through_unsized_refs() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.gen_range(0..100u64)
        }
        let mut rng = StdRng::seed_from_u64(1);
        assert!(draw(&mut rng) < 100);
    }
}
