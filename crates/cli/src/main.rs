//! `tir` — command-line front end for the temporal-IR indexes.
//!
//! ```text
//! tir gen   --out data.tsv [--cardinality N] [--seed K] [--scale S]
//! tir stats --input data.tsv
//! tir query --input data.tsv --method irhint-perf \
//!           --from 100 --to 900 --elems foo,bar [--topk 10]
//! tir bench --input data.tsv [--queries N]
//! tir check --input data.tsv
//! ```
//!
//! TSV format: `start<TAB>end<TAB>elem1,elem2,...` per object; `#` lines
//! are comments.

mod io;

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::time::Instant;

use tir_core::prelude::*;
use tir_core::{RankedQuery, RankedTif};
use tir_datagen::{workload, SyntheticConfig, WorkloadSpec};

use crate::io::{read_tsv, write_tsv, Corpus};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match run(&args) {
        Ok(()) => 0,
        Err(msg) => {
            eprintln!("error: {msg}");
            2
        }
    };
    std::process::exit(code);
}

struct Opts {
    flags: Vec<(String, String)>,
}

impl Opts {
    fn parse(args: &[String]) -> Result<Opts, String> {
        let mut flags = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let key = args[i]
                .strip_prefix("--")
                .ok_or_else(|| format!("expected --flag, got {}", args[i]))?;
            i += 1;
            let value = args
                .get(i)
                .ok_or_else(|| format!("--{key} needs a value"))?
                .clone();
            flags.push((key.to_string(), value));
            i += 1;
        }
        Ok(Opts { flags })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key).ok_or_else(|| format!("missing --{key}"))
    }

    fn parse_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            Some(v) => v.parse().map_err(|_| format!("bad value for --{key}: {v}")),
            None => Ok(default),
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some((cmd, rest)) = args.split_first() else {
        return Err(usage());
    };
    let opts = Opts::parse(rest)?;
    match cmd.as_str() {
        "gen" => cmd_gen(&opts),
        "stats" => cmd_stats(&opts),
        "query" => cmd_query(&opts),
        "bench" => cmd_bench(&opts),
        "check" => cmd_check(&opts),
        "--help" | "-h" | "help" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command {other}\n{}", usage())),
    }
}

fn usage() -> String {
    "usage: tir <gen|stats|query|bench|check> [--flags]\n\
     gen   --out FILE [--cardinality N] [--seed K] [--scale S]\n\
     stats --input FILE\n\
     query --input FILE --from T --to T --elems a,b [--method M] [--topk K]\n\
     bench --input FILE [--queries N]\n\
     check --input FILE   (build every index, verify structural invariants)\n\
     methods: tif, slicing, sharding, tif-hint-bs, tif-hint-ms, hybrid,\n\
              irhint-perf (default), irhint-size, ctif"
        .to_string()
}

fn load(opts: &Opts) -> Result<Corpus, String> {
    let path = opts.require("input")?;
    let file = File::open(path).map_err(|e| format!("{path}: {e}"))?;
    read_tsv(BufReader::new(file))
}

fn build_index(method: &str, coll: &Collection) -> Result<Box<dyn TemporalIrIndex>, String> {
    Ok(match method {
        "tif" => Box::new(Tif::build(coll)),
        "slicing" => Box::new(TifSlicing::build(coll)),
        "sharding" => Box::new(TifSharding::build(coll)),
        "tif-hint-bs" => Box::new(TifHint::build(coll, TifHintConfig::binary_search())),
        "tif-hint-ms" => Box::new(TifHint::build(coll, TifHintConfig::merge_sort())),
        "hybrid" => Box::new(TifHintSlicing::build(coll)),
        "irhint-perf" => Box::new(IrHintPerf::build(coll)),
        "irhint-size" => Box::new(IrHintSize::build(coll)),
        "ctif" => Box::new(CompressedTif::build(coll)),
        other => return Err(format!("unknown method {other}")),
    })
}

fn cmd_gen(opts: &Opts) -> Result<(), String> {
    let out = opts.require("out")?;
    let scale: f64 = opts.parse_or("scale", 0.01)?;
    let mut cfg = SyntheticConfig::default().scaled(scale);
    cfg.cardinality = opts.parse_or("cardinality", cfg.cardinality)?;
    cfg.seed = opts.parse_or("seed", cfg.seed)?;
    let coll = tir_datagen::generate(&cfg);
    let file = File::create(out).map_err(|e| format!("{out}: {e}"))?;
    write_tsv(&coll, BufWriter::new(file)).map_err(|e| e.to_string())?;
    eprintln!("wrote {} objects to {out}", coll.len());
    Ok(())
}

fn cmd_stats(opts: &Opts) -> Result<(), String> {
    let corpus = load(opts)?;
    let s = corpus.collection.stats();
    println!("cardinality        {}", s.cardinality);
    println!("domain span        {}", s.domain_span);
    println!(
        "duration min/avg/max  {} / {:.1} / {}",
        s.min_duration, s.avg_duration, s.max_duration
    );
    println!("avg duration       {:.2}% of domain", s.avg_duration_pct);
    println!("dictionary         {}", s.dictionary_size);
    println!(
        "description min/avg/max  {} / {:.1} / {}",
        s.min_desc, s.avg_desc, s.max_desc
    );
    println!(
        "avg element freq   {:.1} ({:.3}%)",
        s.avg_elem_freq, s.avg_elem_freq_pct
    );
    Ok(())
}

fn cmd_query(opts: &Opts) -> Result<(), String> {
    let corpus = load(opts)?;
    let from: u64 = opts.require("from")?.parse().map_err(|_| "bad --from")?;
    let to: u64 = opts.require("to")?.parse().map_err(|_| "bad --to")?;
    if from > to {
        return Err("--from must be <= --to".into());
    }
    let elems: Vec<u32> = opts
        .require("elems")?
        .split(',')
        .map(|t| {
            corpus
                .dictionary
                .lookup(t.trim())
                .ok_or_else(|| format!("unknown element '{}'", t.trim()))
        })
        .collect::<Result<_, _>>()?;

    if let Some(k) = opts.get("topk") {
        let k: usize = k.parse().map_err(|_| "bad --topk")?;
        let ranked = RankedTif::build(&corpus.collection);
        for hit in ranked.query_topk(&RankedQuery::new(from, to, elems, k)) {
            let o = corpus.collection.get(hit.id);
            println!(
                "{}\t{:.4}\t[{}, {}]",
                hit.id, hit.score, o.interval.st, o.interval.end
            );
        }
        return Ok(());
    }

    let method = opts.get("method").unwrap_or("irhint-perf");
    let t0 = Instant::now();
    let index = build_index(method, &corpus.collection)?;
    let built = t0.elapsed();
    let t0 = Instant::now();
    let mut hits = index.query(&TimeTravelQuery::new(from, to, elems));
    let answered = t0.elapsed();
    hits.sort_unstable();
    for id in &hits {
        let o = corpus.collection.get(*id);
        println!("{id}\t[{}, {}]", o.interval.st, o.interval.end);
    }
    eprintln!(
        "{} results | {} | build {:.1?} | query {:.1?} | {} KiB",
        hits.len(),
        index.name(),
        built,
        answered,
        index.size_bytes() / 1024
    );
    Ok(())
}

fn cmd_bench(opts: &Opts) -> Result<(), String> {
    let corpus = load(opts)?;
    let n: usize = opts.parse_or("queries", 200)?;
    let queries = workload(&corpus.collection, &WorkloadSpec::default(), n, 7);
    if queries.is_empty() {
        return Err("could not generate a workload for this corpus".into());
    }
    println!(
        "{:<14} {:>10} {:>12} {:>12}",
        "method", "build [s]", "size [KiB]", "queries/s"
    );
    for method in [
        "tif",
        "slicing",
        "sharding",
        "tif-hint-bs",
        "tif-hint-ms",
        "hybrid",
        "irhint-perf",
        "irhint-size",
        "ctif",
    ] {
        let t0 = Instant::now();
        let index = build_index(method, &corpus.collection)?;
        let build = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let mut total = 0usize;
        for q in &queries {
            total += index.query(q).len();
        }
        let qps = queries.len() as f64 / t0.elapsed().as_secs_f64().max(1e-9);
        std::hint::black_box(total);
        println!(
            "{:<14} {:>10.3} {:>12} {:>12.0}",
            method,
            build,
            index.size_bytes() / 1024,
            qps
        );
    }
    Ok(())
}

/// Builds every validatable index over the collection and collects the
/// structural violations each one reports, tagged by method name.
fn validate_all(coll: &Collection) -> Vec<(&'static str, Vec<tir_check::Violation>)> {
    use tir_check::Validate;
    vec![
        ("tif", Tif::build(coll).validate()),
        ("slicing", TifSlicing::build(coll).validate()),
        ("sharding", TifSharding::build(coll).validate()),
        (
            "tif-hint-bs",
            TifHint::build(coll, TifHintConfig::binary_search()).validate(),
        ),
        (
            "tif-hint-ms",
            TifHint::build(coll, TifHintConfig::merge_sort()).validate(),
        ),
        ("irhint-perf", IrHintPerf::build(coll).validate()),
        ("irhint-size", IrHintSize::build(coll).validate()),
    ]
}

fn cmd_check(opts: &Opts) -> Result<(), String> {
    use tir_check::Validate;
    let corpus = load(opts)?;
    let mut total = 0usize;
    let mut reports = validate_all(&corpus.collection);
    reports.push(("dictionary", corpus.dictionary.validate()));
    for (name, violations) in &reports {
        if violations.is_empty() {
            println!("{name:<12} ok");
        } else {
            println!("{name:<12} {} violation(s)", violations.len());
            for v in violations {
                println!("  {v}");
            }
            total += violations.len();
        }
    }
    if total == 0 {
        eprintln!("all structural invariants hold");
        Ok(())
    } else {
        Err(format!("{total} structural violation(s)"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_is_clean_on_running_example() {
        let coll = Collection::running_example();
        for (name, violations) in validate_all(&coll) {
            assert!(violations.is_empty(), "{name}: {violations:?}");
        }
    }

    #[test]
    fn opts_parsing() {
        let args: Vec<String> = ["--from", "5", "--to", "9"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let o = Opts::parse(&args).unwrap();
        assert_eq!(o.require("from").unwrap(), "5");
        assert!(o.require("missing").is_err());
        assert_eq!(o.parse_or("to", 0u64).unwrap(), 9);
        assert_eq!(o.parse_or("absent", 42u64).unwrap(), 42);
    }

    #[test]
    fn opts_rejects_positional() {
        let args: Vec<String> = vec!["oops".into()];
        assert!(Opts::parse(&args).is_err());
    }

    #[test]
    fn build_index_knows_all_methods() {
        let coll = Collection::running_example();
        for m in [
            "tif",
            "slicing",
            "sharding",
            "tif-hint-bs",
            "tif-hint-ms",
            "hybrid",
            "irhint-perf",
            "irhint-size",
            "ctif",
        ] {
            let idx = build_index(m, &coll).unwrap();
            let mut hits = idx.query(&TimeTravelQuery::new(5, 9, vec![0, 2]));
            hits.sort_unstable();
            assert_eq!(hits, vec![1, 3, 6], "{m}");
        }
        assert!(build_index("nope", &coll).is_err());
    }
}
