//! `tir` — command-line front end for the temporal-IR indexes.
//!
//! ```text
//! tir gen     --out data.tsv [--cardinality N] [--seed K] [--scale S]
//! tir stats   --input data.tsv
//! tir query   --input data.tsv --method irhint-perf \
//!             --from 100 --to 900 --elems foo,bar [--topk 10]
//! tir bench   --input data.tsv [--queries N] [--json BENCH_query.json]
//! tir check   --input data.tsv
//! tir serve   [--input data.tsv | --scale S] [--method M] [--port P]
//! tir loadgen --addr host:port [--requests N] [--threads T]
//! tir chaos   [--schedules N] [--seed K]
//! ```
//!
//! TSV format: `start<TAB>end<TAB>elem1,elem2,...` per object; `#` lines
//! are comments.

mod chaos;
mod io;

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::Path;
use std::time::Instant;

use tir_core::prelude::*;
use tir_core::{RankedQuery, RankedTif};
use tir_datagen::{workload, SyntheticConfig, WorkloadSpec};
use tir_persist::{
    Durability, DurabilityOptions, IndexKind, LoadMode, Persist, Recovered, SnapshotFile, TermLog,
    SNAPSHOT_NAME,
};
use tir_serve::epoch::Validator;
use tir_serve::{
    loadgen, spawn_server, spawn_server_durable, Json, LatencyHistogram, LoadgenConfig, PoolConfig,
    ServeDict, ServerConfig, ServerHandle,
};

use crate::io::{read_tsv, write_tsv, Corpus};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match run(&args) {
        Ok(()) => 0,
        Err(msg) => {
            eprintln!("error: {msg}");
            2
        }
    };
    std::process::exit(code);
}

struct Opts {
    flags: Vec<(String, String)>,
}

impl Opts {
    fn parse(args: &[String]) -> Result<Opts, String> {
        let mut flags = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let key = args[i]
                .strip_prefix("--")
                .ok_or_else(|| format!("expected --flag, got {}", args[i]))?;
            i += 1;
            // A flag followed by another --flag (or the end of the line)
            // is a bare switch (`--verify`): present, with no value.
            let value = match args.get(i) {
                Some(v) if !v.starts_with("--") => {
                    i += 1;
                    v.clone()
                }
                _ => String::new(),
            };
            flags.push((key.to_string(), value));
        }
        Ok(Opts { flags })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key).ok_or_else(|| format!("missing --{key}"))
    }

    fn parse_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            Some(v) => v.parse().map_err(|_| format!("bad value for --{key}: {v}")),
            None => Ok(default),
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some((cmd, rest)) = args.split_first() else {
        return Err(usage());
    };
    let opts = Opts::parse(rest)?;
    match cmd.as_str() {
        "gen" => cmd_gen(&opts),
        "stats" => cmd_stats(&opts),
        "query" => cmd_query(&opts),
        "bench" => cmd_bench(&opts),
        "check" => cmd_check(&opts),
        "serve" => cmd_serve(&opts),
        "loadgen" => cmd_loadgen(&opts),
        "chaos" => chaos::cmd_chaos(&opts),
        "snapshot" => cmd_snapshot(&opts),
        "recover" => cmd_recover(&opts),
        "--help" | "-h" | "help" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command {other}\n{}", usage())),
    }
}

fn usage() -> String {
    "usage: tir <gen|stats|query|bench|check|serve|loadgen|chaos|snapshot|recover> [--flags]\n\
     gen      --out FILE [--cardinality N] [--seed K] [--scale S]\n\
     stats    --input FILE\n\
     query    --input FILE --from T --to T --elems a,b [--method M] [--topk K]\n\
     bench    --input FILE [--queries N] [--methods a,b] [--json BENCH_query.json]\n\
     bench    --kernels BENCH_kernels.json [--universe N]   (microbenchmark\n\
              the four intersection kernels over a density grid; no corpus)\n\
     check    --input FILE   (build every index, verify structural invariants)\n\
     check    --file SNAPSHOT   (fsck an on-disk snapshot)\n\
     serve    [--input FILE | --scale S [--seed K]] [--method M] [--port P]\n\
              [--port-file PATH] [--workers N] [--queue-depth N] [--batch N]\n\
              [--data-dir DIR [--snapshot-every N]]   (durable: WAL + snapshots;\n\
              recovers the directory on restart; methods tif, tif-hint-*)\n\
     loadgen  --addr HOST:PORT [--requests N] [--threads T] [--seed K]\n\
              [--write-fraction F] [--insert-fraction F] [--elems N]\n\
              [--durability N] [--deadline-ms MS] [--retries N] [--backoff-ms MS]\n\
              [--json BENCH_serve.json]\n\
     chaos    [--schedules N] [--seed K] [--rounds N] [--scale S]\n\
              (seeded fault-injection schedules against a live durable\n\
              server; model + oracle verified, kill-then-recover each)\n\
     snapshot --out FILE [--input FILE | --scale S] [--method M] [--epoch N]\n\
              (write a standalone snapshot file, then fsck it)\n\
     recover  --data-dir DIR [--verify]   (replay snapshot + WAL, report the\n\
              epoch reached; --verify adds fsck + brute-force oracle agreement)\n\
     methods: tif, slicing, sharding, tif-hint-bs, tif-hint-ms, hybrid,\n\
              irhint-perf (default), irhint-size, ctif"
        .to_string()
}

fn load(opts: &Opts) -> Result<Corpus, String> {
    let path = opts.require("input")?;
    let file = File::open(path).map_err(|e| format!("{path}: {e}"))?;
    read_tsv(BufReader::new(file))
}

fn build_index(method: &str, coll: &Collection) -> Result<Box<dyn TemporalIrIndex>, String> {
    Ok(match method {
        "tif" => Box::new(Tif::build(coll)),
        "slicing" => Box::new(TifSlicing::build(coll)),
        "sharding" => Box::new(TifSharding::build(coll)),
        "tif-hint-bs" => Box::new(TifHint::build(coll, TifHintConfig::binary_search())),
        "tif-hint-ms" => Box::new(TifHint::build(coll, TifHintConfig::merge_sort())),
        "hybrid" => Box::new(TifHintSlicing::build(coll)),
        "irhint-perf" => Box::new(IrHintPerf::build(coll)),
        "irhint-size" => Box::new(IrHintSize::build(coll)),
        "ctif" => Box::new(CompressedTif::build(coll)),
        other => return Err(format!("unknown method {other}")),
    })
}

fn cmd_gen(opts: &Opts) -> Result<(), String> {
    let out = opts.require("out")?;
    let scale: f64 = opts.parse_or("scale", 0.01)?;
    let mut cfg = SyntheticConfig::default().scaled(scale);
    cfg.cardinality = opts.parse_or("cardinality", cfg.cardinality)?;
    cfg.dict_size = opts.parse_or("dict", cfg.dict_size)?;
    cfg.seed = opts.parse_or("seed", cfg.seed)?;
    let coll = tir_datagen::generate(&cfg);
    let file = File::create(out).map_err(|e| format!("{out}: {e}"))?;
    write_tsv(&coll, BufWriter::new(file)).map_err(|e| e.to_string())?;
    eprintln!("wrote {} objects to {out}", coll.len());
    Ok(())
}

fn cmd_stats(opts: &Opts) -> Result<(), String> {
    let corpus = load(opts)?;
    let s = corpus.collection.stats();
    println!("cardinality        {}", s.cardinality);
    println!("domain span        {}", s.domain_span);
    println!(
        "duration min/avg/max  {} / {:.1} / {}",
        s.min_duration, s.avg_duration, s.max_duration
    );
    println!("avg duration       {:.2}% of domain", s.avg_duration_pct);
    println!("dictionary         {}", s.dictionary_size);
    println!(
        "description min/avg/max  {} / {:.1} / {}",
        s.min_desc, s.avg_desc, s.max_desc
    );
    println!(
        "avg element freq   {:.1} ({:.3}%)",
        s.avg_elem_freq, s.avg_elem_freq_pct
    );
    Ok(())
}

/// Parses a `--elems a,b,c` value against the corpus dictionary.
///
/// Every malformed shape is a hard error — empty value, stray commas,
/// blank tokens, unknown elements — so a typo can never silently shrink
/// the query (and, with `--topk`, silently re-rank against the wrong
/// element set).
fn parse_elems_flag(raw: &str, dict: &tir_invidx::Dictionary) -> Result<Vec<u32>, String> {
    if raw.trim().is_empty() {
        return Err("--elems is empty; expected a comma-separated element list".into());
    }
    raw.split(',')
        .map(|t| {
            let t = t.trim();
            if t.is_empty() {
                return Err(format!(
                    "--elems '{raw}' has an empty element (stray comma?)"
                ));
            }
            dict.lookup(t)
                .ok_or_else(|| format!("unknown element '{t}' in --elems '{raw}'"))
        })
        .collect()
}

fn cmd_query(opts: &Opts) -> Result<(), String> {
    let corpus = load(opts)?;
    let from: u64 = opts.require("from")?.parse().map_err(|_| "bad --from")?;
    let to: u64 = opts.require("to")?.parse().map_err(|_| "bad --to")?;
    if from > to {
        return Err("--from must be <= --to".into());
    }
    let elems = parse_elems_flag(opts.require("elems")?, &corpus.dictionary)?;

    if let Some(k) = opts.get("topk") {
        let k: usize = k.parse().map_err(|_| "bad --topk")?;
        if k == 0 {
            return Err("--topk must be at least 1".into());
        }
        let ranked = RankedTif::build(&corpus.collection);
        for hit in ranked.query_topk(&RankedQuery::new(from, to, elems, k)) {
            let o = corpus.collection.get(hit.id);
            println!(
                "{}\t{:.4}\t[{}, {}]",
                hit.id, hit.score, o.interval.st, o.interval.end
            );
        }
        return Ok(());
    }

    let method = opts.get("method").unwrap_or("irhint-perf");
    let t0 = Instant::now();
    let index = build_index(method, &corpus.collection)?;
    let built = t0.elapsed();
    let t0 = Instant::now();
    let mut hits = index.query(&TimeTravelQuery::new(from, to, elems));
    let answered = t0.elapsed();
    hits.sort_unstable();
    for id in &hits {
        let o = corpus.collection.get(*id);
        println!("{id}\t[{}, {}]", o.interval.st, o.interval.end);
    }
    eprintln!(
        "{} results | {} | build {:.1?} | query {:.1?} | {} KiB",
        hits.len(),
        index.name(),
        built,
        answered,
        index.size_bytes() / 1024
    );
    Ok(())
}

fn cmd_bench(opts: &Opts) -> Result<(), String> {
    warn_stale_binary();
    if let Some(path) = opts.get("kernels") {
        return cmd_bench_kernels(opts, path);
    }
    let corpus = load(opts)?;
    let n: usize = opts.parse_or("queries", 200)?;
    let json_path = opts.get("json").unwrap_or("BENCH_query.json");
    let queries = workload(&corpus.collection, &WorkloadSpec::default(), n, 7);
    if queries.is_empty() {
        return Err("could not generate a workload for this corpus".into());
    }
    println!(
        "{:<14} {:>10} {:>12} {:>12} {:>9} {:>9} {:>9}",
        "method", "build [s]", "size [KiB]", "queries/s", "p50 [µs]", "p95 [µs]", "p99 [µs]"
    );
    let mut records = Vec::new();
    let only = opts.get("methods");
    for method in [
        "tif",
        "slicing",
        "sharding",
        "tif-hint-bs",
        "tif-hint-ms",
        "hybrid",
        "irhint-perf",
        "irhint-size",
        "ctif",
    ] {
        if let Some(list) = only {
            if !list.split(',').any(|m| m.trim() == method) {
                continue;
            }
        }
        let t0 = Instant::now();
        let index = build_index(method, &corpus.collection)?;
        let build = t0.elapsed().as_secs_f64();
        // One scratch arena and one reply buffer for the whole loop:
        // the measured path allocates nothing in steady state. One
        // warm-up pass, then best-of-three timed passes — single-pass
        // numbers on shared machines are dominated by scheduling noise.
        let mut scratch = QueryScratch::default();
        let mut hits: Vec<ObjectId> = Vec::new();
        for q in &queries {
            hits.clear();
            index.query_into(q, &mut scratch, &mut hits);
            std::hint::black_box(hits.len());
        }
        let mut hist = LatencyHistogram::new();
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let mut pass = LatencyHistogram::new();
            let t0 = Instant::now();
            let mut total = 0usize;
            for q in &queries {
                let tq = Instant::now();
                hits.clear();
                index.query_into(q, &mut scratch, &mut hits);
                total += hits.len();
                pass.record(tq.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
            }
            let elapsed = t0.elapsed().as_secs_f64();
            std::hint::black_box(total);
            if elapsed < best {
                best = elapsed;
                hist = pass;
            }
        }
        if std::env::var_os("TIR_BENCH_DEBUG").is_some() {
            eprintln!("{method}: {:?}", tir_invidx::global_stats());
        }
        let qps = queries.len() as f64 / best.max(1e-9);
        let (p50, p95, p99) = (
            hist.quantile(0.50) as f64 / 1_000.0,
            hist.quantile(0.95) as f64 / 1_000.0,
            hist.quantile(0.99) as f64 / 1_000.0,
        );
        println!(
            "{:<14} {:>10.3} {:>12} {:>12.0} {:>9.1} {:>9.1} {:>9.1}",
            method,
            build,
            index.size_bytes() / 1024,
            qps,
            p50,
            p95,
            p99
        );
        records.push(Json::obj(vec![
            ("method", Json::str(method)),
            ("build_s", Json::Num(build)),
            ("size_bytes", Json::Int(index.size_bytes() as u64)),
            ("qps", Json::Num(qps)),
            ("p50_us", Json::Num(p50)),
            ("p95_us", Json::Num(p95)),
            ("p99_us", Json::Num(p99)),
        ]));
    }
    let doc = Json::obj(vec![
        ("tool", Json::str("tir bench")),
        ("git_rev", Json::str(git_rev())),
        ("queries", Json::Int(queries.len() as u64)),
        ("cardinality", Json::Int(corpus.collection.len() as u64)),
        ("methods", Json::Arr(records)),
    ]);
    std::fs::write(json_path, format!("{doc}\n")).map_err(|e| format!("{json_path}: {e}"))?;
    eprintln!("wrote {json_path}");
    Ok(())
}

/// Short git revision of the checkout that produced this run, with a
/// `-dirty` suffix when the tree has uncommitted changes — so a
/// `BENCH_*.json` can always be matched to (or ruled out against) the
/// source it claims to measure. `"unknown"` outside a git checkout.
fn git_rev() -> String {
    let git = |args: &[&str]| -> Option<String> {
        let out = std::process::Command::new("git").args(args).output().ok()?;
        out.status
            .success()
            .then(|| String::from_utf8_lossy(&out.stdout).trim().to_string())
    };
    let Some(rev) = git(&["rev-parse", "--short", "HEAD"]) else {
        return "unknown".to_string();
    };
    // -uno: untracked files (the emitted BENCH_*.json themselves, run
    // artifacts) do not make a run unattributable; modified tracked
    // sources do.
    match git(&["status", "--porcelain", "-uno"]) {
        Some(st) if st.is_empty() => rev,
        _ => format!("{rev}-dirty"),
    }
}

/// Compile-time git stamp of this binary (see `build.rs`).
const BUILT_GIT_REV: &str = env!("TIR_BUILD_GIT_REV");

/// Warns when the running binary cannot be trusted to measure the
/// current checkout: built from a dirty tree, or built at a commit the
/// checkout has since moved past.
fn warn_stale_binary() {
    let now = git_rev();
    if BUILT_GIT_REV.ends_with("-dirty") || BUILT_GIT_REV == "unknown" {
        eprintln!(
            "warning: binary stamped {BUILT_GIT_REV}; rebuild (cargo xtask build) \
             before trusting the numbers"
        );
    } else if now != "unknown" && now != BUILT_GIT_REV {
        eprintln!(
            "warning: binary built at {BUILT_GIT_REV} but the checkout is at {now}; \
             rebuild (cargo xtask build) before trusting the numbers"
        );
    }
}

/// Deterministic xorshift64* — the microharness needs cheap well-spread
/// draws, not statistical finesse (same generator the loadgen uses).
struct KernelRng(u64);

impl KernelRng {
    fn new(seed: u64) -> KernelRng {
        KernelRng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// Sorted unique id set over `[0, universe)` where each id is included
/// with probability `per_mille / 1000`.
fn sample_ids(rng: &mut KernelRng, universe: u32, per_mille: u64) -> Vec<u32> {
    let mut ids = Vec::new();
    for id in 0..universe {
        if rng.next_u64() % 1000 < per_mille {
            ids.push(id);
        }
    }
    ids
}

/// Sorted id set over `[0, universe)` clustered into runs of roughly
/// `run_len` consecutive ids, spaced so the overall density is about
/// `per_mille / 1000` (the run-container's natural habitat).
fn sample_runs(rng: &mut KernelRng, universe: u32, per_mille: u64, run_len: u32) -> Vec<u32> {
    let period = (u64::from(run_len) * 1000 / per_mille.max(1)).max(u64::from(run_len) * 2);
    let mut ids = Vec::new();
    let mut start = rng.next_u64() % period;
    while start < u64::from(universe) {
        let len = u64::from(run_len / 2) + rng.next_u64() % u64::from(run_len);
        let end = (start + len).min(u64::from(universe));
        for id in start..end {
            ids.push(id as u32);
        }
        start += period;
    }
    ids
}

/// Names the kernel a one-step plan ran on (for the planner rows of the
/// microharness, where the cost model — not the caller — picks).
fn chosen_kernel(stats: &PlanStats) -> &'static str {
    if stats.word_and_steps > 0 {
        "word-and"
    } else if stats.bitmap_probe_steps > 0 {
        "bitmap-probe"
    } else if stats.run_intersect_steps > 0 {
        "run-intersect"
    } else if stats.gallop_steps > 0 {
        "gallop"
    } else if stats.simd_merge_steps > 0 {
        "simd-merge"
    } else {
        "merge"
    }
}

/// `tir bench --kernels PATH`: microbenchmark the intersection kernels
/// over a candidate-density × postings-density grid (synthetic ids, no
/// corpus needed) and write per-cell ns/element to `PATH`.
///
/// Seven timings per cell: the raw scalar `merge` and `gallop` array
/// kernels, their dispatched vector counterparts `simd-merge` and
/// `simd-gallop` (which fall back to scalar below `SIMD_MIN_LEN` or
/// without CPU support — the `TIR_SIMD` env var caps dispatch), `blocks`
/// (stream-vbyte block decode + merge with skip bounds), and two
/// `planner:*` rows — a [`QueryScratch::intersect`] against a
/// [`PostingContainer`] built from the Bernoulli sample and one built
/// from a clustered run-shaped sample, each labeled with whichever
/// kernel the cost model picked. CI runs this as a smoke test; the JSON
/// makes kernel-mix regressions diffable.
fn cmd_bench_kernels(opts: &Opts, json_path: &str) -> Result<(), String> {
    use tir_invidx::{
        intersect_gallop_into, intersect_merge_into, BlockPostings, ContainerConfig,
        PostingContainer,
    };
    let universe: u32 = opts.parse_or("universe", 1u32 << 20)?;
    if universe == 0 {
        return Err("--universe must be at least 1".into());
    }
    let reps: u32 = opts.parse_or("reps", 0)?; // 0 = auto-scale per cell
    let mut rng = KernelRng::new(opts.parse_or("seed", 7u64)?);

    println!(
        "{:<8} {:<8} {:>10} {:>10} {:<22} {:>12} {:>12}",
        "cands‰", "post‰", "|cands|", "|post|", "kernel", "ns/call", "ns/elem"
    );
    let mut records = Vec::new();
    for cand_pm in [1u64, 8, 64, 256] {
        let cands = sample_ids(&mut rng, universe, cand_pm);
        for post_pm in [1u64, 8, 64, 256] {
            let postings = sample_ids(&mut rng, universe, post_pm);
            let clustered = sample_runs(&mut rng, universe, post_pm, 64);
            let container =
                PostingContainer::from_sorted(&postings, universe, ContainerConfig::default());
            let run_container =
                PostingContainer::from_sorted(&clustered, universe, ContainerConfig::default());
            let blocks = BlockPostings::encode(&postings);
            let work = (cands.len() + postings.len()).max(1);
            let cell_reps = if reps > 0 {
                reps
            } else {
                // Aim for ~20M touched elements per measurement.
                (20_000_000 / work).clamp(3, 1_000) as u32
            };

            let mut out = Vec::new();
            let mut blk = Vec::new();
            let mut scratch = QueryScratch::default();
            // (kernel, ns/call, scanned/call, |postings| for the row)
            let mut measured: Vec<(String, u64, u64, u64)> = Vec::new();
            let clamp = |ns: u128| ns.min(u128::from(u64::MAX)) as u64;

            let t0 = Instant::now();
            for _ in 0..cell_reps {
                out.clear();
                intersect_merge_into(&cands, &postings, &mut out);
                std::hint::black_box(out.len());
            }
            let per_call = t0.elapsed().as_nanos() / u128::from(cell_reps);
            measured.push((
                "merge".into(),
                clamp(per_call),
                work as u64,
                postings.len() as u64,
            ));

            let t0 = Instant::now();
            for _ in 0..cell_reps {
                out.clear();
                // Forced: the grid exists to measure the vector kernel even
                // in cells below the production dispatch gate.
                tir_invidx::simd::merge_into_forced(&cands, &postings, &mut out);
                std::hint::black_box(out.len());
            }
            let per_call = t0.elapsed().as_nanos() / u128::from(cell_reps);
            measured.push((
                "simd-merge".into(),
                clamp(per_call),
                work as u64,
                postings.len() as u64,
            ));

            let t0 = Instant::now();
            for _ in 0..cell_reps {
                out.clear();
                intersect_gallop_into(&cands, &postings, &mut out);
                std::hint::black_box(out.len());
            }
            let per_call = t0.elapsed().as_nanos() / u128::from(cell_reps);
            measured.push((
                "gallop".into(),
                clamp(per_call),
                cands.len() as u64,
                postings.len() as u64,
            ));

            let t0 = Instant::now();
            for _ in 0..cell_reps {
                out.clear();
                tir_invidx::simd::gallop_into_forced(&cands, &postings, &mut out);
                std::hint::black_box(out.len());
            }
            let per_call = t0.elapsed().as_nanos() / u128::from(cell_reps);
            measured.push((
                "simd-gallop".into(),
                clamp(per_call),
                cands.len() as u64,
                postings.len() as u64,
            ));

            let t0 = Instant::now();
            for _ in 0..cell_reps {
                out.clear();
                tir_invidx::intersect_gallop_rev_into(&cands, &postings, &mut out);
                std::hint::black_box(out.len());
            }
            let per_call = t0.elapsed().as_nanos() / u128::from(cell_reps);
            measured.push((
                "gallop-rev".into(),
                clamp(per_call),
                postings.len() as u64,
                postings.len() as u64,
            ));

            let mut block_scanned = 1u64;
            let t0 = Instant::now();
            for _ in 0..cell_reps {
                out.clear();
                let st = blocks.intersect_into(&cands, &mut out, &mut blk);
                block_scanned = st.scanned.max(1);
                std::hint::black_box(out.len());
            }
            let per_call = t0.elapsed().as_nanos() / u128::from(cell_reps);
            measured.push((
                "blocks".into(),
                clamp(per_call),
                block_scanned,
                postings.len() as u64,
            ));

            for (label_container, n_post) in [
                (&container, postings.len()),
                (&run_container, clustered.len()),
            ] {
                let t0 = Instant::now();
                for _ in 0..cell_reps {
                    scratch.reset();
                    scratch.cands.extend_from_slice(&cands);
                    scratch.intersect(tir_invidx::Postings::Container(label_container));
                    out.clear();
                    scratch.take_into(&mut out);
                    std::hint::black_box(out.len());
                }
                let per_call = t0.elapsed().as_nanos() / u128::from(cell_reps);
                let stats = scratch.last_stats();
                measured.push((
                    format!("planner:{}", chosen_kernel(&stats)),
                    clamp(per_call),
                    stats.scanned.max(1),
                    n_post as u64,
                ));
            }

            for (kernel, ns_call, scanned, n_post) in measured {
                let ns_elem = ns_call as f64 / scanned as f64;
                println!(
                    "{:<8} {:<8} {:>10} {:>10} {:<22} {:>12} {:>12.2}",
                    cand_pm,
                    post_pm,
                    cands.len(),
                    n_post,
                    kernel,
                    ns_call,
                    ns_elem
                );
                records.push(Json::obj(vec![
                    ("cands_per_mille", Json::Int(cand_pm)),
                    ("postings_per_mille", Json::Int(post_pm)),
                    ("cands", Json::Int(cands.len() as u64)),
                    ("postings", Json::Int(n_post)),
                    ("kernel", Json::str(kernel)),
                    ("reps", Json::Int(u64::from(cell_reps))),
                    ("ns_per_call", Json::Int(ns_call)),
                    ("ns_per_elem", Json::Num(ns_elem)),
                ]));
            }
        }
    }
    let doc = Json::obj(vec![
        ("tool", Json::str("tir bench --kernels")),
        ("git_rev", Json::str(git_rev())),
        (
            "simd_level",
            Json::str(format!("{:?}", tir_invidx::simd::level())),
        ),
        ("universe", Json::Int(u64::from(universe))),
        ("cells", Json::Arr(records)),
    ]);
    std::fs::write(json_path, format!("{doc}\n")).map_err(|e| format!("{json_path}: {e}"))?;
    eprintln!("wrote {json_path}");
    Ok(())
}

/// Builds every validatable index over the collection and collects the
/// structural violations each one reports, tagged by method name.
fn validate_all(coll: &Collection) -> Vec<(&'static str, Vec<tir_check::Violation>)> {
    use tir_check::Validate;
    vec![
        ("tif", Tif::build(coll).validate()),
        ("slicing", TifSlicing::build(coll).validate()),
        ("sharding", TifSharding::build(coll).validate()),
        (
            "tif-hint-bs",
            TifHint::build(coll, TifHintConfig::binary_search()).validate(),
        ),
        (
            "tif-hint-ms",
            TifHint::build(coll, TifHintConfig::merge_sort()).validate(),
        ),
        ("irhint-perf", IrHintPerf::build(coll).validate()),
        ("irhint-size", IrHintSize::build(coll).validate()),
    ]
}

/// `tir check --file SNAPSHOT`: fsck one on-disk snapshot — open-time
/// CRC/bounds validation plus the deep content walk in `tir-check`.
fn cmd_check_file(path: &str) -> Result<(), String> {
    let p = Path::new(path);
    let violations = tir_check::validate_snapshot(p);
    if violations.is_empty() {
        let snap = SnapshotFile::open(p, LoadMode::Heap).map_err(|e| format!("{path}: {e}"))?;
        let m = snap.meta();
        println!(
            "{path}: ok ({} @ epoch {}, {} live, {} postings, {} terms)",
            m.kind.method_name(),
            m.epoch,
            m.live,
            m.postings,
            m.dict_len
        );
        return Ok(());
    }
    for v in &violations {
        println!("{v}");
    }
    Err(format!("{path}: {} violation(s)", violations.len()))
}

fn cmd_check(opts: &Opts) -> Result<(), String> {
    use tir_check::Validate;
    if let Some(path) = opts.get("file") {
        return cmd_check_file(path);
    }
    let corpus = load(opts)?;
    let mut total = 0usize;
    let mut reports = validate_all(&corpus.collection);
    reports.push(("dictionary", corpus.dictionary.validate()));
    for (name, violations) in &reports {
        if violations.is_empty() {
            println!("{name:<12} ok");
        } else {
            println!("{name:<12} {} violation(s)", violations.len());
            for v in violations {
                println!("  {v}");
            }
            total += violations.len();
        }
    }
    if total == 0 {
        eprintln!("all structural invariants hold");
        Ok(())
    } else {
        Err(format!("{total} structural violation(s)"))
    }
}

/// Loads the serving corpus: a TSV file when `--input` is given, else a
/// synthetic collection (`--scale`, `--seed`) whose dictionary uses the
/// same `e<id>` terms `tir gen` writes to disk.
fn serve_corpus(opts: &Opts) -> Result<Corpus, String> {
    if opts.get("input").is_some() {
        return load(opts);
    }
    let scale: f64 = opts.parse_or("scale", 0.01)?;
    let mut cfg = SyntheticConfig::default().scaled(scale);
    cfg.seed = opts.parse_or("seed", cfg.seed)?;
    let collection = tir_datagen::generate(&cfg);
    let mut dictionary = tir_invidx::Dictionary::new();
    for e in 0..collection.dict_size() as u32 {
        let id = dictionary.intern(&format!("e{e}"));
        debug_assert_eq!(id, e);
    }
    Ok(Corpus {
        collection,
        dictionary,
    })
}

/// A post-swap validator for any index tir-check knows how to audit:
/// the applier runs it on every freshly rebuilt snapshot and counts the
/// violations into `STATS`.
fn checking_validator<I>() -> Option<Validator<I>>
where
    I: tir_check::Validate + Send + Sync + 'static,
{
    Some(Box::new(|index: &I| index.validate().len()))
}

/// Writes the port file (if requested) and blocks until the accept loop
/// exits (client `SHUTDOWN` or process signal).
fn run_server(handle: ServerHandle, port_file: Option<&str>) -> Result<(), String> {
    let addr = handle.addr();
    if let Some(path) = port_file {
        std::fs::write(path, format!("{addr}\n")).map_err(|e| format!("{path}: {e}"))?;
    }
    eprintln!("serving on {addr} (send SHUTDOWN to stop)");
    handle.join();
    eprintln!("server stopped");
    Ok(())
}

/// Boots the serving stack over a concrete index type.
fn serve_index<I>(
    index: I,
    corpus: Corpus,
    config: ServerConfig,
    port_file: Option<&str>,
    validator: Option<Validator<I>>,
) -> Result<(), String>
where
    I: TemporalIrIndex + Clone + Send + Sync + 'static,
{
    let catalog = corpus.collection.objects().to_vec();
    let handle = spawn_server(index, catalog, corpus.dictionary, config, validator)
        .map_err(|e| format!("bind: {e}"))?;
    run_server(handle, port_file)
}

fn server_config(opts: &Opts, method: &str) -> Result<ServerConfig, String> {
    let port: u16 = opts.parse_or("port", 0)?;
    let host = opts.get("host").unwrap_or("127.0.0.1");
    Ok(ServerConfig {
        addr: format!("{host}:{port}"),
        pool: PoolConfig {
            workers: opts.parse_or("workers", PoolConfig::default().workers)?,
            queue_depth: opts.parse_or("queue-depth", PoolConfig::default().queue_depth)?,
            max_batch: opts.parse_or("batch", PoolConfig::default().max_batch)?,
        },
        write_queue_depth: opts.parse_or("write-queue", 1024)?,
        max_write_batch: opts.parse_or("write-batch", 256)?,
        method: method.to_string(),
    })
}

/// Index kind recorded in the data directory's current snapshot.
fn snapshot_kind(dir: &Path) -> Result<IndexKind, String> {
    let path = dir.join(SNAPSHOT_NAME);
    let snap = SnapshotFile::open(&path, LoadMode::Heap)
        .map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(snap.meta().kind)
}

/// Fscks the data directory's snapshot; any violation refuses the load.
fn fsck_data_dir(dir: &Path) -> Result<(), String> {
    let path = dir.join(SNAPSHOT_NAME);
    let violations = tir_check::validate_snapshot(&path);
    if violations.is_empty() {
        return Ok(());
    }
    for v in &violations {
        eprintln!("{}: {v}", path.display());
    }
    Err(format!(
        "{}: {} fsck violation(s); refusing to load",
        path.display(),
        violations.len()
    ))
}

/// `tir serve --data-dir`: recovers (or initializes) the directory, then
/// serves with the WAL in front of the applier — every acknowledged
/// write survives `kill -9`.
fn serve_durable<I, F>(
    opts: &Opts,
    dir: &Path,
    d_opts: DurabilityOptions,
    build: F,
    config: ServerConfig,
    port_file: Option<&str>,
    validator: Option<Validator<I>>,
) -> Result<(), String>
where
    I: TemporalIrIndex + Persist + Clone + Send + Sync + 'static,
    F: FnOnce(&Collection) -> I,
{
    let (index, dict, durability) = if Durability::exists(dir) {
        fsck_data_dir(dir)?;
        let r: Recovered<I> = Durability::recover(dir, d_opts)
            .map_err(|e| format!("recover {}: {e}", dir.display()))?;
        eprintln!(
            "recovered {} to epoch {} ({} WAL batch(es) replayed{})",
            dir.display(),
            r.epoch,
            r.replayed,
            if r.truncated_tail {
                ", torn WAL tail truncated"
            } else {
                ""
            }
        );
        (r.index, r.dict, r.durability)
    } else {
        let corpus = serve_corpus(opts)?;
        eprintln!(
            "building {} over {} objects...",
            config.method,
            corpus.collection.len()
        );
        let index = build(&corpus.collection);
        let durability = Durability::create(
            dir,
            &index,
            &corpus.dictionary,
            corpus.collection.objects(),
            d_opts,
        )
        .map_err(|e| format!("init {}: {e}", dir.display()))?;
        eprintln!("initialized durable data dir {} at epoch 0", dir.display());
        (index, corpus.dictionary, durability)
    };
    let log = TermLog::open(dir).map_err(|e| format!("terms.log: {e}"))?;
    let handle = spawn_server_durable(
        index,
        ServeDict::durable(dict, log),
        durability,
        config,
        validator,
    )
    .map_err(|e| format!("bind: {e}"))?;
    run_server(handle, port_file)
}

fn cmd_serve_durable(opts: &Opts, dir: &Path) -> Result<(), String> {
    let d_opts = DurabilityOptions {
        snapshot_every: opts.parse_or(
            "snapshot-every",
            DurabilityOptions::default().snapshot_every,
        )?,
        ..DurabilityOptions::default()
    };
    // An existing directory dictates the method: the snapshot knows what
    // wrote it, and a conflicting --method is an operator error.
    let existing = if Durability::exists(dir) {
        Some(snapshot_kind(dir)?)
    } else {
        None
    };
    let method = match (existing, opts.get("method")) {
        (Some(kind), Some(m)) if m != kind.method_name() => {
            return Err(format!(
                "{} already holds a {} snapshot; --method {m} conflicts",
                dir.display(),
                kind.method_name()
            ));
        }
        (Some(kind), _) => kind.method_name().to_string(),
        (None, m) => m.unwrap_or("tif").to_string(),
    };
    let config = server_config(opts, &method)?;
    let port_file = opts.get("port-file");
    match method.as_str() {
        "tif" => serve_durable(
            opts,
            dir,
            d_opts,
            Tif::build,
            config,
            port_file,
            checking_validator(),
        ),
        "tif-hint-bs" => serve_durable(
            opts,
            dir,
            d_opts,
            |c| TifHint::build(c, TifHintConfig::binary_search()),
            config,
            port_file,
            checking_validator(),
        ),
        "tif-hint-ms" => serve_durable(
            opts,
            dir,
            d_opts,
            |c| TifHint::build(c, TifHintConfig::merge_sort()),
            config,
            port_file,
            checking_validator(),
        ),
        other => Err(format!(
            "method {other} cannot serve durably (supported: tif, tif-hint-bs, tif-hint-ms)"
        )),
    }
}

fn cmd_serve(opts: &Opts) -> Result<(), String> {
    if let Some(dir) = opts.get("data-dir") {
        return cmd_serve_durable(opts, Path::new(dir));
    }
    let corpus = serve_corpus(opts)?;
    let method = opts.get("method").unwrap_or("irhint-perf");
    let config = server_config(opts, method)?;
    let port_file = opts.get("port-file");
    eprintln!(
        "building {method} over {} objects...",
        corpus.collection.len()
    );
    let coll = &corpus.collection;
    // Static dispatch per method so each serving stack is monomorphic,
    // with a tir-check post-swap validator wherever one exists (hybrid
    // and ctif have no `Validate` impl and serve unchecked).
    match method {
        "tif" => serve_index(
            Tif::build(coll),
            corpus,
            config,
            port_file,
            checking_validator(),
        ),
        "slicing" => serve_index(
            TifSlicing::build(coll),
            corpus,
            config,
            port_file,
            checking_validator(),
        ),
        "sharding" => serve_index(
            TifSharding::build(coll),
            corpus,
            config,
            port_file,
            checking_validator(),
        ),
        "tif-hint-bs" => serve_index(
            TifHint::build(coll, TifHintConfig::binary_search()),
            corpus,
            config,
            port_file,
            checking_validator(),
        ),
        "tif-hint-ms" => serve_index(
            TifHint::build(coll, TifHintConfig::merge_sort()),
            corpus,
            config,
            port_file,
            checking_validator(),
        ),
        "hybrid" => serve_index(TifHintSlicing::build(coll), corpus, config, port_file, None),
        "irhint-perf" => serve_index(
            IrHintPerf::build(coll),
            corpus,
            config,
            port_file,
            checking_validator(),
        ),
        "irhint-size" => serve_index(
            IrHintSize::build(coll),
            corpus,
            config,
            port_file,
            checking_validator(),
        ),
        "ctif" => serve_index(CompressedTif::build(coll), corpus, config, port_file, None),
        other => Err(format!("unknown method {other}")),
    }
}

/// `tir snapshot`: build an index over a corpus and write it as a
/// standalone snapshot file, then fsck the result — a one-shot exporter
/// for the `tir check --file` / mmap-load tooling.
fn cmd_snapshot(opts: &Opts) -> Result<(), String> {
    let out = opts.require("out")?;
    let corpus = serve_corpus(opts)?;
    let method = opts.get("method").unwrap_or("tif");
    let epoch: u64 = opts.parse_or("epoch", 0)?;
    let path = Path::new(out);
    let catalog = corpus.collection.objects();
    let dict = &corpus.dictionary;
    let write = |r: std::io::Result<()>| r.map_err(|e| format!("{out}: {e}"));
    match method {
        "tif" => write(tir_persist::write_snapshot(
            path,
            epoch,
            dict,
            catalog,
            &Tif::build(&corpus.collection),
        ))?,
        "tif-hint-bs" => write(tir_persist::write_snapshot(
            path,
            epoch,
            dict,
            catalog,
            &TifHint::build(&corpus.collection, TifHintConfig::binary_search()),
        ))?,
        "tif-hint-ms" => write(tir_persist::write_snapshot(
            path,
            epoch,
            dict,
            catalog,
            &TifHint::build(&corpus.collection, TifHintConfig::merge_sort()),
        ))?,
        other => {
            return Err(format!(
                "method {other} has no snapshot format (supported: tif, tif-hint-bs, tif-hint-ms)"
            ));
        }
    }
    let bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
    eprintln!(
        "wrote {out} ({method}, {} objects, {} KiB)",
        corpus.collection.len(),
        bytes / 1024
    );
    cmd_check_file(out)
}

/// Recovers a data directory outside the server (`tir recover`): report
/// what last-snapshot + WAL replay reaches, optionally proving the
/// result against the brute-force oracle rebuilt from the recovered
/// catalog.
fn recover_and_report<I>(opts: &Opts, dir: &Path) -> Result<(), String>
where
    I: Persist + TemporalIrIndex,
{
    let r: Recovered<I> = Durability::recover(dir, DurabilityOptions::default())
        .map_err(|e| format!("recover {}: {e}", dir.display()))?;
    println!("data dir    {}", dir.display());
    println!("method      {}", r.index.name());
    println!("epoch       {}", r.epoch);
    println!("replayed    {} WAL batch(es)", r.replayed);
    println!(
        "torn tail   {}",
        if r.truncated_tail { "truncated" } else { "no" }
    );
    println!("live        {}", r.durability.live());
    println!("dictionary  {}", r.dict.len());
    if opts.get("verify").is_none() {
        return Ok(());
    }
    // Oracle agreement: the recovered index must answer exactly like a
    // brute-force scan of the recovered catalog, over a query grid
    // spanning the catalog's domain and element range.
    let catalog = r.durability.catalog_sorted();
    let oracle = BruteForce::build(&catalog);
    let (mut dmin, mut dmax, mut emax) = (u64::MAX, 0u64, 0u32);
    for o in &catalog {
        dmin = dmin.min(o.interval.st);
        dmax = dmax.max(o.interval.end);
        emax = emax.max(o.desc.iter().copied().max().unwrap_or(0));
    }
    if dmin > dmax {
        (dmin, dmax) = (0, 0);
    }
    let span = (dmax - dmin).max(1);
    let mut checked = 0usize;
    for k in 0..16u64 {
        let st = dmin + span * k / 17;
        let end = (st + span / (1 + k % 5)).min(dmax);
        let elems: Vec<u32> = (0..=(k as u32 % 3))
            .map(|j| (k as u32 * 7 + j) % (emax + 1))
            .collect();
        let q = TimeTravelQuery::new(st, end, elems);
        let mut got = r.index.query(&q);
        got.sort_unstable();
        if got != oracle.answer(&q) {
            return Err(format!("oracle divergence on {q:?}"));
        }
        checked += 1;
    }
    println!("verified    {checked} queries against the brute-force oracle");
    Ok(())
}

fn cmd_recover(opts: &Opts) -> Result<(), String> {
    let dir = Path::new(opts.require("data-dir")?);
    if !Durability::exists(dir) {
        return Err(format!("{}: no snapshot found", dir.display()));
    }
    if opts.get("verify").is_some() {
        fsck_data_dir(dir)?;
        println!("fsck        clean");
    }
    match snapshot_kind(dir)? {
        IndexKind::Tif => recover_and_report::<Tif>(opts, dir),
        IndexKind::TifHintBs | IndexKind::TifHintMs => recover_and_report::<TifHint>(opts, dir),
        IndexKind::BruteForce => recover_and_report::<BruteForce>(opts, dir),
        IndexKind::CompactTemporal => {
            Err("snapshot holds a bare compact postings structure; nothing to recover into".into())
        }
    }
}

fn cmd_loadgen(opts: &Opts) -> Result<(), String> {
    warn_stale_binary();
    let mut cfg = LoadgenConfig::new(opts.require("addr")?);
    cfg.requests = opts.parse_or("requests", cfg.requests)?;
    cfg.threads = opts.parse_or("threads", cfg.threads)?;
    cfg.write_fraction = opts.parse_or("write-fraction", cfg.write_fraction)?;
    cfg.insert_fraction = opts.parse_or("insert-fraction", cfg.insert_fraction)?;
    cfg.max_elems = opts.parse_or("elems", cfg.max_elems)?;
    cfg.seed = opts.parse_or("seed", cfg.seed)?;
    cfg.durability = opts.parse_or("durability", cfg.durability)?;
    cfg.deadline_ms = opts.parse_or("deadline-ms", cfg.deadline_ms)?;
    cfg.retries = opts.parse_or("retries", cfg.retries)?;
    cfg.backoff_ms = opts.parse_or("backoff-ms", cfg.backoff_ms)?;
    if !(0.0..=1.0).contains(&cfg.write_fraction) || !(0.0..=1.0).contains(&cfg.insert_fraction) {
        return Err("--write-fraction and --insert-fraction must be in [0, 1]".into());
    }
    let json_path = opts.get("json").unwrap_or("BENCH_serve.json");

    let report = loadgen::run(&cfg)?;
    println!("{}", report.render());
    let mut doc = report.to_json();
    if let Json::Obj(pairs) = &mut doc {
        pairs.push(("git_rev".to_string(), Json::str(git_rev())));
    }
    std::fs::write(json_path, format!("{doc}\n")).map_err(|e| format!("{json_path}: {e}"))?;
    eprintln!("wrote {json_path}");
    if report.wrong > 0 {
        return Err(format!(
            "{} provably wrong answer(s) during the run",
            report.wrong
        ));
    }
    if report.errors > 0 {
        return Err(format!(
            "{} protocol error(s) during the run",
            report.errors
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_is_clean_on_running_example() {
        let coll = Collection::running_example();
        for (name, violations) in validate_all(&coll) {
            assert!(violations.is_empty(), "{name}: {violations:?}");
        }
    }

    #[test]
    fn opts_parsing() {
        let args: Vec<String> = ["--from", "5", "--to", "9"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let o = Opts::parse(&args).unwrap();
        assert_eq!(o.require("from").unwrap(), "5");
        assert!(o.require("missing").is_err());
        assert_eq!(o.parse_or("to", 0u64).unwrap(), 9);
        assert_eq!(o.parse_or("absent", 42u64).unwrap(), 42);
    }

    #[test]
    fn opts_rejects_positional() {
        let args: Vec<String> = vec!["oops".into()];
        assert!(Opts::parse(&args).is_err());
    }

    #[test]
    fn build_index_knows_all_methods() {
        let coll = Collection::running_example();
        for m in [
            "tif",
            "slicing",
            "sharding",
            "tif-hint-bs",
            "tif-hint-ms",
            "hybrid",
            "irhint-perf",
            "irhint-size",
            "ctif",
        ] {
            let idx = build_index(m, &coll).unwrap();
            let mut hits = idx.query(&TimeTravelQuery::new(5, 9, vec![0, 2]));
            hits.sort_unstable();
            assert_eq!(hits, vec![1, 3, 6], "{m}");
        }
        assert!(build_index("nope", &coll).is_err());
    }

    fn abc_dictionary() -> tir_invidx::Dictionary {
        let mut dict = tir_invidx::Dictionary::new();
        for name in ["a", "b", "c"] {
            dict.intern(name);
        }
        dict
    }

    #[test]
    fn elems_flag_parses_known_elements() {
        let dict = abc_dictionary();
        assert_eq!(parse_elems_flag("a,c", &dict).unwrap(), vec![0, 2]);
        assert_eq!(parse_elems_flag(" b ", &dict).unwrap(), vec![1]);
    }

    #[test]
    fn elems_flag_rejects_every_malformed_shape() {
        let dict = abc_dictionary();
        // The old behavior let these slip through as a silently smaller
        // (or empty) element set; all of them must now be hard errors.
        for bad in [
            "", "  ", ",", "a,", ",a", "a,,c", "a, ,c", "zebra", "a,zebra",
        ] {
            assert!(
                parse_elems_flag(bad, &dict).is_err(),
                "'{bad}' was accepted"
            );
        }
    }

    #[test]
    fn serve_corpus_synthetic_dictionary_matches_collection() {
        let args: Vec<String> = ["--scale", "0.001", "--seed", "3"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let opts = Opts::parse(&args).unwrap();
        let corpus = serve_corpus(&opts).unwrap();
        assert_eq!(corpus.dictionary.len(), corpus.collection.dict_size());
        // Term ids line up with element ids, so wire-protocol terms
        // resolve to the elements the objects actually carry.
        let last = corpus.collection.dict_size() as u32 - 1;
        assert_eq!(corpus.dictionary.lookup(&format!("e{last}")), Some(last));
    }
}
