//! `tir chaos` — deterministic fault-injection schedules against a live
//! in-process durable server, verified against a model + BruteForce
//! oracle.
//!
//! Each schedule boots a small durable `tif` server in this process,
//! installs a [`tir_fault::SeededPlan`] (one seeded I/O fault on the
//! durable write path plus recurring worker stalls, applier delays, and
//! connection drops), and drives it over real TCP loopback with rounds
//! of writes, `FLUSH` barriers, and verified queries. The driver keeps a
//! client-side model of what the server acknowledged:
//!
//! * **confirmed** — ops covered by a `FLUSH` → `EPOCH` ack: durable,
//!   must be visible;
//! * **uncertain** — ops whose fate an injected fault hid (connection
//!   dropped mid-call, flush answered `DEGRADED`, read timed out): each
//!   may or may not have landed, and *stays* uncertain until recovery.
//!
//! Every `HITS` answer is checked id-wise sound against that model: it
//! must contain every id that **certainly** matches (confirmed, no
//! uncertain op on it) and nothing outside the **possibly**-matching set
//! (confirmed ∪ uncertain inserts). With no uncertainty in play this
//! collapses to exact BruteForce equality. Any violation, unexplained
//! `ERR`, unexpected `HEALTH`, or wall-budget overrun fails the run,
//! naming the seed that found it.
//!
//! Each schedule ends with a kill-then-recover step: the server is torn
//! down (for even seeds with snapshot writes denied, forcing WAL-replay
//! recovery), the directory is recovered cold, the recovered catalog is
//! reconciled against the model, and the recovered index must agree with
//! a BruteForce oracle over a [`tir_check::oracle_query_grid`].

use std::collections::{HashMap, HashSet};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use tir_core::prelude::*;
use tir_datagen::SyntheticConfig;
use tir_fault::{FaultAction, FaultPlan, FaultSite, SeededPlan};
use tir_invidx::Dictionary;
use tir_persist::{Durability, DurabilityOptions, Recovered, TermLog};
use tir_serve::protocol::{parse_response, HealthStatus, Response};
use tir_serve::{spawn_server_durable, PoolConfig, ServeDict, ServerConfig};

use crate::Opts;

/// Per-schedule wall budget: a schedule that runs longer is declared
/// hung (the real bound is a few seconds).
const WALL_BUDGET: Duration = Duration::from_secs(60);

/// Client-side read timeout: a stalled response past this is treated as
/// a dead transport (and the op becomes uncertain).
const READ_TIMEOUT: Duration = Duration::from_secs(10);

/// Splitmix64 (same family the fault plans use, different streams).
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Denies every snapshot write — installed before teardown on even
/// seeds so the shutdown snapshot fails and recovery must replay WAL.
struct DenySnapshots;

impl FaultPlan for DenySnapshots {
    fn action(&self, site: FaultSite, _visit: u64) -> FaultAction {
        if site == FaultSite::SnapshotWrite {
            FaultAction::Error
        } else {
            FaultAction::None
        }
    }
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    line: String,
}

impl Client {
    fn open(addr: &std::net::SocketAddr) -> Result<Client, String> {
        let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
        stream.set_nodelay(true).map_err(|e| e.to_string())?;
        stream
            .set_read_timeout(Some(READ_TIMEOUT))
            .map_err(|e| e.to_string())?;
        Ok(Client {
            reader: BufReader::new(stream.try_clone().map_err(|e| e.to_string())?),
            writer: stream,
            line: String::new(),
        })
    }

    /// One request/response round trip. `Err` means the transport died
    /// or stalled past the read timeout — the caller reconnects and
    /// treats the in-flight op as uncertain.
    fn call(&mut self, request: &str) -> Result<Response, String> {
        self.writer
            .write_all(request.as_bytes())
            .and_then(|_| self.writer.write_all(b"\n"))
            .and_then(|_| self.writer.flush())
            .map_err(|e| format!("send: {e}"))?;
        self.line.clear();
        let n = self
            .reader
            .read_line(&mut self.line)
            .map_err(|e| format!("recv: {e}"))?;
        if n == 0 {
            return Err("connection dropped".into());
        }
        parse_response(self.line.trim_end())
    }
}

/// The fate-tracking model: objects the server durably acked, plus ops
/// whose fate a fault hid.
#[derive(Default)]
struct Model {
    /// Durably acked live objects (insert confirmed, no confirmed
    /// delete after it).
    confirmed: HashMap<u32, Object>,
    /// OK-acked ops not yet covered by a FLUSH barrier, in issue order.
    pending: Vec<Op>,
    /// Ops whose fate is unknown until recovery, keyed by object id.
    uncertain: HashMap<u32, Op>,
}

#[derive(Clone)]
enum Op {
    Insert(Object),
    Delete(Object),
}

impl Op {
    fn id(&self) -> u32 {
        match self {
            Op::Insert(o) | Op::Delete(o) => o.id,
        }
    }
}

impl Model {
    /// A FLUSH answered `EPOCH`: everything pending is durable.
    fn confirm_pending(&mut self) {
        for op in self.pending.drain(..) {
            match op {
                Op::Insert(o) => {
                    self.confirmed.insert(o.id, o);
                }
                Op::Delete(o) => {
                    self.confirmed.remove(&o.id);
                }
            }
        }
    }

    /// The flush failed or the transport died: every pending op's fate
    /// is unknown (earlier batch-mates may have applied).
    fn pending_to_uncertain(&mut self) {
        for op in self.pending.drain(..) {
            self.uncertain.insert(op.id(), op);
        }
    }

    /// Ids no op is in flight or in limbo for.
    fn is_settled(&self, id: u32) -> bool {
        !self.uncertain.contains_key(&id) && self.pending.iter().all(|op| op.id() != id)
    }

    /// Objects that are certainly live (and unchanged).
    fn certain(&self) -> Vec<Object> {
        self.confirmed
            .values()
            .filter(|o| self.is_settled(o.id))
            .cloned()
            .collect()
    }

    /// Objects that are possibly live: confirmed ∪ in-flight/uncertain
    /// inserts (a doubtful delete leaves its confirmed object possible).
    fn possible(&self) -> Vec<Object> {
        let mut objs = self.confirmed.clone();
        for op in self.pending.iter().chain(self.uncertain.values()) {
            if let Op::Insert(o) = op {
                objs.entry(o.id).or_insert_with(|| o.clone());
            }
        }
        objs.into_values().collect()
    }
}

/// Verifies one HITS answer against the model: sound (no impossible
/// ids) and complete (every certain match present).
fn check_hits(model: &Model, q: &TimeTravelQuery, got: &[u32]) -> Result<(), String> {
    if !got.windows(2).all(|w| w[0] < w[1]) {
        return Err(format!("ids not strictly ascending in answer to {q:?}"));
    }
    let got_set: HashSet<u32> = got.iter().copied().collect();
    let possible: HashSet<u32> = BruteForce::build(&model.possible())
        .answer(q)
        .into_iter()
        .collect();
    if let Some(id) = got_set.iter().find(|id| !possible.contains(id)) {
        return Err(format!("impossible id {id} in answer to {q:?}"));
    }
    for id in BruteForce::build(&model.certain()).answer(q) {
        if !got_set.contains(&id) {
            return Err(format!("certainly-matching id {id} missing from {q:?}"));
        }
    }
    Ok(())
}

/// Tallies of what one schedule observed.
#[derive(Default)]
struct Tally {
    requests: u64,
    timeouts: u64,
    drops: u64,
    degraded: bool,
    injected_errs: u64,
}

/// `tir chaos`: run `--schedules` seeded fault schedules; any oracle
/// divergence, hang, or protocol surprise exits nonzero.
pub fn cmd_chaos(opts: &Opts) -> Result<(), String> {
    let schedules: u64 = opts.parse_or("schedules", 24)?;
    let base_seed: u64 = opts.parse_or("seed", 1)?;
    let rounds: u64 = opts.parse_or("rounds", 8)?;
    let scale: f64 = opts.parse_or("scale", 0.0005)?;
    if schedules == 0 {
        return Err("--schedules must be at least 1".into());
    }
    let t0 = Instant::now();
    for seed in base_seed..base_seed + schedules {
        let tally = run_schedule(seed, rounds, scale).map_err(|e| {
            tir_fault::clear();
            format!("schedule seed {seed}: {e}")
        })?;
        println!(
            "seed {seed:3}: {} requests | timeouts {} | drops {} | injected-errs {} | degraded {} | recovery verified",
            tally.requests,
            tally.timeouts,
            tally.drops,
            tally.injected_errs,
            if tally.degraded { "yes" } else { "no " },
        );
    }
    println!(
        "chaos: {schedules} schedules clean in {:.1}s (zero divergences, zero hangs)",
        t0.elapsed().as_secs_f64()
    );
    Ok(())
}

fn run_schedule(seed: u64, rounds: u64, scale: f64) -> Result<Tally, String> {
    let start = Instant::now();
    let overrun = |what: &str| format!("wall budget exceeded during {what} (possible hang)");
    let dir: PathBuf =
        std::env::temp_dir().join(format!("tir-chaos-{}-{seed}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Small corpus, deterministic per seed.
    let mut cfg = SyntheticConfig::default().scaled(scale);
    cfg.seed = seed;
    cfg.desc_size = 4;
    let coll = tir_datagen::generate(&cfg);
    let dict_size = coll.dict_size() as u32;
    let mut dictionary = Dictionary::new();
    for e in 0..dict_size {
        dictionary.intern(&format!("e{e}"));
    }

    let index = Tif::build(&coll);
    let d_opts = DurabilityOptions {
        segment_bytes: 4 << 10, // small segments: faults hit rotations too
        snapshot_every: 3,
    };
    let durability = Durability::create(&dir, &index, &dictionary, coll.objects(), d_opts)
        .map_err(|e| format!("init {}: {e}", dir.display()))?;
    let log = TermLog::open(&dir).map_err(|e| format!("terms.log: {e}"))?;
    let server = spawn_server_durable(
        index,
        ServeDict::durable(dictionary, log),
        durability,
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            pool: PoolConfig {
                workers: 2,
                ..PoolConfig::default()
            },
            method: "tif".into(),
            ..ServerConfig::default()
        },
        None,
    )
    .map_err(|e| format!("bind: {e}"))?;
    let addr = server.addr();

    let mut model = Model::default();
    for o in coll.objects() {
        model.confirmed.insert(o.id, o.clone());
    }
    let domain = coll.domain();
    let span = (domain.end - domain.st).max(1);
    let mut next_id = coll.objects().iter().map(|o| o.id).max().unwrap_or(0) + 1_000;
    let mut fresh_terms = 0u64;
    let mut tally = Tally::default();

    let mut client = Client::open(&addr)?;
    // Pre-fault sanity: a healthy server says so.
    match client.call("HEALTH")? {
        Response::Health(HealthStatus::Ok) => {}
        other => return Err(format!("expected HEALTH ok before faults, got {other:?}")),
    }

    // Arm the seeded plan only once the stack is up: boot I/O is clean,
    // everything after this line is hostile territory.
    tir_fault::install(Arc::new(SeededPlan::new(seed)));

    let result = drive(
        &mut client,
        &addr,
        seed,
        rounds,
        &mut model,
        &mut tally,
        span,
        domain.st,
        dict_size,
        &mut next_id,
        &mut fresh_terms,
        start,
        &overrun,
    );
    // Always unhook the plan before teardown so cleanup I/O is clean —
    // except the deliberate snapshot denial below. `install` zeroes the
    // injected counter, so read this schedule's count first.
    tally.injected_errs = tir_fault::injected_count();
    tir_fault::clear();
    result?;
    drop(client);

    // Kill-then-recover. Even seeds tear down with snapshot writes
    // denied: the shutdown snapshot fails and recovery must replay the
    // WAL; odd seeds exercise the snapshot-at-shutdown path instead.
    let deny_snapshots = seed.is_multiple_of(2);
    if deny_snapshots {
        tir_fault::install(Arc::new(DenySnapshots));
    }
    server.stop();
    // Detached connection threads (and the applier behind them) drain
    // after stop(); give them a beat before reopening the directory.
    std::thread::sleep(Duration::from_millis(200));
    tir_fault::clear();
    if start.elapsed() > WALL_BUDGET {
        return Err(overrun("teardown"));
    }

    let r: Recovered<Tif> =
        Durability::recover(&dir, d_opts).map_err(|e| format!("recover: {e}"))?;

    // Reconcile the recovered catalog with the model, id-wise.
    let recovered = r.durability.catalog_sorted();
    let recovered_ids: HashSet<u32> = recovered.iter().map(|o| o.id).collect();
    for o in &recovered {
        let known = match model.confirmed.get(&o.id) {
            Some(c) => c.interval == o.interval,
            None => {
                // Not confirmed: only a limbo insert explains it.
                let limbo = model
                    .uncertain
                    .get(&o.id)
                    .or_else(|| model.pending.iter().find(|op| op.id() == o.id));
                matches!(limbo, Some(Op::Insert(u)) if u.interval == o.interval)
            }
        };
        if !known {
            return Err(format!(
                "recovery resurrected id {} which was never acknowledged",
                o.id
            ));
        }
    }
    for o in model.certain() {
        if !recovered_ids.contains(&o.id) {
            return Err(format!("recovery lost durably acked id {}", o.id));
        }
    }

    // Oracle agreement: the recovered index must answer exactly like a
    // linear scan of the recovered catalog.
    let grid = tir_check::oracle_query_grid(&recovered, 32, seed);
    let diverging = tir_check::diff_against_oracle(&r.index, &recovered, &grid);
    if let Some(v) = diverging.first() {
        return Err(format!("recovered index diverges from the oracle: {v}"));
    }

    let _ = std::fs::remove_dir_all(&dir);
    Ok(tally)
}

/// The live phase: rounds of writes → FLUSH → verified queries, under
/// the installed fault plan.
#[allow(clippy::too_many_arguments)]
fn drive(
    client: &mut Client,
    addr: &std::net::SocketAddr,
    seed: u64,
    rounds: u64,
    model: &mut Model,
    tally: &mut Tally,
    span: u64,
    domain_st: u64,
    dict_size: u32,
    next_id: &mut u32,
    fresh_terms: &mut u64,
    start: Instant,
    overrun: &dyn Fn(&str) -> String,
) -> Result<(), String> {
    // One call with drop/timeout recovery. Returns Ok(None) when the
    // transport died (caller decides what that means for the op).
    let call =
        |client: &mut Client, req: &str, tally: &mut Tally| -> Result<Option<Response>, String> {
            tally.requests += 1;
            match client.call(req) {
                Ok(resp) => Ok(Some(resp)),
                Err(_) => {
                    tally.drops += 1;
                    // Reconnect with a short grace: the server never stops
                    // accepting mid-schedule.
                    for _ in 0..50 {
                        if let Ok(fresh) = Client::open(addr) {
                            *client = fresh;
                            return Ok(None);
                        }
                        std::thread::sleep(Duration::from_millis(20));
                    }
                    Err("could not reconnect after a dropped connection".into())
                }
            }
        };

    let mut degraded_seen = false;
    for round in 0..rounds {
        if start.elapsed() > WALL_BUDGET {
            return Err(overrun(&format!("round {round}")));
        }
        let r0 = mix(seed ^ mix(round));

        // --- Writes: 3 per round; one in three rounds mints a fresh
        // term to exercise the term-log fault site. ---
        for w in 0..3u64 {
            let r = mix(r0 ^ w);
            let is_delete = w == 2 && r.is_multiple_of(3);
            let (req, op) = if is_delete {
                // Only settled confirmed ids: DELETE must never answer
                // MISSING for the model to stay exact.
                let mut settled: Vec<&Object> = model
                    .confirmed
                    .values()
                    .filter(|o| model.is_settled(o.id))
                    .collect();
                settled.sort_by_key(|o| o.id);
                if settled.is_empty() {
                    continue;
                }
                let victim = settled[(r >> 8) as usize % settled.len()].clone();
                (format!("DELETE {}", victim.id), Op::Delete(victim))
            } else {
                let id = *next_id;
                *next_id += 1;
                let st = domain_st + r % span;
                let end = (st + (r >> 16) % (span / 16).max(1)).min(domain_st + span);
                let mut elems = vec![
                    format!("e{}", (r >> 32) as u32 % dict_size),
                    format!("e{}", (r >> 40) as u32 % dict_size),
                ];
                let mut desc = vec![(r >> 32) as u32 % dict_size, (r >> 40) as u32 % dict_size];
                if round.is_multiple_of(3) && w == 0 {
                    // Fresh term: exercises TermLogAppend. Never used in
                    // queries, so local desc ids need not match the
                    // server's for it.
                    elems.push(format!("z{seed}x{fresh_terms}"));
                    desc.push(dict_size + *fresh_terms as u32);
                    *fresh_terms += 1;
                }
                elems.sort();
                elems.dedup();
                desc.sort_unstable();
                desc.dedup();
                let o = Object::new(id, st, end.max(st), desc);
                (
                    format!(
                        "INSERT {} {} {} {}",
                        id,
                        o.interval.st,
                        o.interval.end,
                        elems.join(",")
                    ),
                    Op::Insert(o),
                )
            };
            match call(client, &req, tally)? {
                Some(Response::Ok) => model.pending.push(op),
                Some(Response::Overloaded) => {} // definitely rejected
                Some(Response::Degraded) => {
                    degraded_seen = true; // refused at admission: a definite no
                }
                Some(Response::Missing) => {
                    return Err(format!("unexpected MISSING for {req}"));
                }
                Some(Response::Err(msg)) => {
                    if !tir_fault::message_is_injected(&msg) {
                        return Err(format!("unexplained ERR for {req}: {msg}"));
                    }
                    // Injected term-log failure: the op was refused
                    // before admission — a definite no.
                }
                Some(other) => return Err(format!("unexpected {other:?} for {req}")),
                None => {
                    // Connection dropped mid-call: fate unknown.
                    model.uncertain.insert(op.id(), op);
                }
            }
        }

        // --- FLUSH barrier: settles (or dooms) the pending ops. ---
        match call(client, "FLUSH", tally)? {
            Some(Response::Epoch(_)) => model.confirm_pending(),
            Some(Response::Degraded) => {
                degraded_seen = true;
                model.pending_to_uncertain();
            }
            Some(Response::Overloaded) => model.pending_to_uncertain(),
            Some(Response::Err(msg)) if tir_fault::message_is_injected(&msg) => {
                model.pending_to_uncertain();
            }
            Some(other) => return Err(format!("unexpected {other:?} for FLUSH")),
            None => model.pending_to_uncertain(),
        }

        // --- Verified queries: 4 per round, one carrying a deadline. ---
        for qn in 0..4u64 {
            let r = mix(r0 ^ (qn.wrapping_add(100)));
            let len = match qn % 4 {
                0 => 0,
                1 => span / 64,
                2 => span / 8,
                _ => span,
            };
            let st = domain_st + r % span.saturating_sub(len).max(1);
            let e1 = (r >> 32) as u32 % dict_size;
            let e2 = (r >> 44) as u32 % dict_size;
            let q = TimeTravelQuery::new(st, (st + len).min(domain_st + span), vec![e1, e2]);
            let mut terms = vec![format!("e{e1}"), format!("e{e2}")];
            terms.sort();
            terms.dedup();
            let mut req = format!(
                "QUERY {} {} {}",
                q.interval.st,
                q.interval.end,
                terms.join(",")
            );
            if qn == 3 {
                req.push_str(" DEADLINE 250");
            }
            match call(client, &req, tally)? {
                Some(Response::Hits(ids)) => {
                    check_hits(model, &q, &ids).map_err(|e| format!("{e} (round {round})"))?
                }
                Some(Response::Timeout) if qn == 3 => tally.timeouts += 1,
                Some(Response::Overloaded) => {}
                Some(other) => return Err(format!("unexpected {other:?} for {req}")),
                None => {} // query answers carry no state to track
            }
        }

        // --- Degraded-mode contract, once tripped. ---
        if degraded_seen && !tally.degraded {
            tally.degraded = true;
            match call(client, "HEALTH", tally)? {
                Some(Response::Health(HealthStatus::Degraded)) | None => {}
                Some(other) => {
                    return Err(format!("DEGRADED answered but HEALTH says {other:?}"));
                }
            }
            let probe = format!("INSERT {} 0 1 e0", *next_id);
            *next_id += 1;
            match call(client, &probe, tally)? {
                Some(Response::Degraded) | None => {}
                Some(other) => {
                    return Err(format!("degraded store accepted a write: {other:?}"));
                }
            }
        }
    }
    Ok(())
}
