//! TSV loading and saving of collections.
//!
//! Format: one object per line, `start<TAB>end<TAB>e1,e2,...`. Elements
//! are free-form strings interned into a dictionary; object ids are the
//! line numbers. Lines starting with `#` and blank lines are skipped.

use std::io::{BufRead, Write};

use tir_core::{Collection, Object};
use tir_invidx::Dictionary;

/// A loaded corpus: the collection plus the string dictionary that
/// resolves query keywords.
pub struct Corpus {
    /// The indexed objects.
    pub collection: Collection,
    /// Element string dictionary.
    pub dictionary: Dictionary,
}

/// Parses a TSV stream.
pub fn read_tsv(reader: impl BufRead) -> Result<Corpus, String> {
    let mut dictionary = Dictionary::new();
    let mut objects = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split('\t');
        let err = |what: &str| format!("line {}: {what}", lineno + 1);
        let st: u64 = parts
            .next()
            .ok_or_else(|| err("missing start"))?
            .trim()
            .parse()
            .map_err(|_| err("bad start timestamp"))?;
        let end: u64 = parts
            .next()
            .ok_or_else(|| err("missing end"))?
            .trim()
            .parse()
            .map_err(|_| err("bad end timestamp"))?;
        if st > end {
            return Err(err("start > end"));
        }
        let elems_field = parts.next().ok_or_else(|| err("missing elements"))?;
        let desc = dictionary.intern_description(
            elems_field
                .split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty()),
        );
        if desc.is_empty() {
            return Err(err("empty description"));
        }
        objects.push(Object::new(objects.len() as u32, st, end, desc));
    }
    Ok(Corpus {
        collection: Collection::new(objects),
        dictionary,
    })
}

/// Writes a collection (with numeric element names `e<id>`) as TSV.
pub fn write_tsv(coll: &Collection, mut w: impl Write) -> std::io::Result<()> {
    writeln!(w, "# start\tend\telements")?;
    for o in coll.objects() {
        let elems: Vec<String> = o.desc.iter().map(|e| format!("e{e}")).collect();
        writeln!(
            w,
            "{}\t{}\t{}",
            o.interval.st,
            o.interval.end,
            elems.join(",")
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_well_formed_tsv() {
        let input = "# comment\n10\t20\tfoo,bar\n\n5\t5\tbaz\n";
        let corpus = read_tsv(input.as_bytes()).unwrap();
        assert_eq!(corpus.collection.len(), 2);
        let o0 = corpus.collection.get(0);
        assert_eq!((o0.interval.st, o0.interval.end), (10, 20));
        assert_eq!(o0.desc.len(), 2);
        assert!(corpus.dictionary.lookup("baz").is_some());
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(read_tsv("oops".as_bytes()).is_err());
        assert!(
            read_tsv("10\t5\tfoo".as_bytes()).is_err(),
            "inverted interval"
        );
        assert!(read_tsv("10\tx\tfoo".as_bytes()).is_err());
        assert!(
            read_tsv("10\t20\t".as_bytes()).is_err(),
            "empty description"
        );
    }

    #[test]
    fn roundtrip_through_tsv() {
        let coll = Collection::running_example();
        let mut buf = Vec::new();
        write_tsv(&coll, &mut buf).unwrap();
        let back = read_tsv(buf.as_slice()).unwrap();
        assert_eq!(back.collection.len(), coll.len());
        for (a, b) in coll.objects().iter().zip(back.collection.objects()) {
            assert_eq!(a.interval, b.interval);
            assert_eq!(a.desc.len(), b.desc.len());
        }
    }

    #[test]
    fn duplicate_elements_deduped() {
        let corpus = read_tsv("0\t1\tx,x,y".as_bytes()).unwrap();
        assert_eq!(corpus.collection.get(0).desc.len(), 2);
    }
}
