//! Stamps the binary with the git revision it was built from
//! (`TIR_BUILD_GIT_REV`), so `tir bench` can warn when the binary is
//! stale or was built from a dirty tree — benchmark JSON that cannot be
//! matched to a commit is worthless.

use std::process::Command;

fn git(args: &[&str]) -> Option<String> {
    let out = Command::new("git").args(args).output().ok()?;
    out.status
        .success()
        .then(|| String::from_utf8_lossy(&out.stdout).trim().to_string())
}

fn main() {
    let rev = match git(&["rev-parse", "--short", "HEAD"]) {
        Some(rev) => match git(&["status", "--porcelain", "-uno"]) {
            Some(st) if st.is_empty() => rev,
            _ => format!("{rev}-dirty"),
        },
        None => "unknown".to_string(),
    };
    println!("cargo:rustc-env=TIR_BUILD_GIT_REV={rev}");
    // Re-stamp whenever HEAD moves (best effort: outside a git checkout
    // these paths do not exist and the stamp stays "unknown").
    if let Some(dir) = git(&["rev-parse", "--git-dir"]) {
        println!("cargo:rerun-if-changed={dir}/HEAD");
        println!("cargo:rerun-if-changed={dir}/index");
    }
}
