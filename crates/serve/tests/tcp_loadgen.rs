//! End-to-end: boot a real TCP server over a synthetic corpus, drive it
//! with the closed-loop load generator, and require a zero-error run
//! with clean post-swap validation.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use tir_check::Validate;
use tir_core::prelude::*;
use tir_datagen::SyntheticConfig;
use tir_invidx::Dictionary;
use tir_serve::loadgen::{self, LoadgenConfig};
use tir_serve::server::{spawn_server, ServerConfig};

/// Builds the `e<id>` dictionary matching a generated collection, with
/// term ids equal to element ids (interning is sequential from 0).
fn numeric_dictionary(coll: &Collection) -> Dictionary {
    let mut dict = Dictionary::new();
    for e in 0..coll.dict_size() as u32 {
        let id = dict.intern(&format!("e{e}"));
        assert_eq!(id, e);
    }
    dict
}

#[test]
fn loadgen_against_live_server_is_error_free() {
    let mut cfg = SyntheticConfig::default().scaled(0.002);
    cfg.desc_size = 4;
    cfg.seed = 5;
    let coll = tir_datagen::generate(&cfg);
    let dict = numeric_dictionary(&coll);

    let server = spawn_server(
        IrHintPerf::build(&coll),
        coll.objects().to_vec(),
        dict,
        ServerConfig {
            method: "irhint-perf".into(),
            ..Default::default()
        },
        Some(Box::new(|i: &IrHintPerf| i.validate().len())),
    )
    .expect("server boots");

    let mut lg = LoadgenConfig::new(server.addr().to_string());
    lg.requests = 2000;
    lg.threads = 4;
    lg.write_fraction = 0.1;
    let report = loadgen::run(&lg).expect("loadgen runs");

    assert_eq!(report.errors, 0, "protocol errors: {report:?}");
    assert_eq!(report.missing, 0, "unexpected MISSING: {report:?}");
    assert_eq!(report.requests, 2000);
    assert!(report.ok > 0);
    assert_eq!(report.method, "irhint-perf");
    assert!(report.size_bytes > 0);
    assert!(report.p50_us <= report.p95_us && report.p95_us <= report.p99_us);

    // The JSON artifact carries the percentile fields BENCH_serve.json needs.
    let json = report.to_json().to_string();
    for key in [
        "\"qps\"",
        "\"p50_us\"",
        "\"p95_us\"",
        "\"p99_us\"",
        "\"size_bytes\"",
    ] {
        assert!(json.contains(key), "{json}");
    }

    // Post-run: snapshots validated clean on every swap, and a base
    // object (never deleted — loadgen only deletes its own inserts) is
    // still retrievable through the wire protocol.
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut call = |req: &str| -> String {
        stream
            .write_all(format!("{req}\n").as_bytes())
            .expect("send");
        let mut line = String::new();
        reader.read_line(&mut line).expect("recv");
        line.trim_end().to_string()
    };

    let stats = call("STATS");
    assert!(stats.contains("violations=0"), "{stats}");
    assert!(stats.contains("method=irhint-perf"), "{stats}");

    let probe = coll.get(0);
    let elems: Vec<String> = probe.desc.iter().map(|e| format!("e{e}")).collect();
    let answer = call(&format!(
        "QUERY {} {} {}",
        probe.interval.st,
        probe.interval.end,
        elems.join(",")
    ));
    let ids: Vec<&str> = answer.split_ascii_whitespace().skip(2).collect();
    assert!(
        answer.starts_with("HITS ") && ids.contains(&"0"),
        "object 0 missing from {answer}"
    );

    server.stop();
}
