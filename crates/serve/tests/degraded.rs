//! Degraded-mode test: a durability failure must latch the store
//! read-only — queries keep serving the last acked epoch, writes and
//! barriers answer `Degraded`, nothing unacked survives recovery, and
//! the directory recovers to exactly the acknowledged state.
//!
//! NOTE: the fault registry is process-global, so this binary holds
//! exactly one `#[test]`.

use std::fs;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use tir_core::{BruteForce, Collection, Object, TemporalIrIndex, TimeTravelQuery};
use tir_fault::{FaultAction, FaultPlan, FaultSite};
use tir_invidx::Dictionary;
use tir_persist::{Durability, DurabilityOptions, Recovered, TermLog};
use tir_serve::epoch::{EpochConfig, EpochStore, WriteOp};
use tir_serve::{HealthStatus, Rejected, ServeDict};

/// Fires `action` at exactly one `(site, visit)`; everything else passes.
struct OneShot {
    site: FaultSite,
    visit: u64,
    action: FaultAction,
}

impl FaultPlan for OneShot {
    fn action(&self, site: FaultSite, visit: u64) -> FaultAction {
        if site == self.site && visit == self.visit {
            self.action
        } else {
            FaultAction::None
        }
    }
}

#[test]
fn durability_failure_latches_read_only_and_recovery_keeps_acked_state() {
    let dir: PathBuf =
        std::env::temp_dir().join(format!("tir-serve-degraded-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);

    let coll = Collection::running_example();
    let mut dict = Dictionary::new();
    for name in ["a", "b", "c"] {
        dict.intern(name);
    }
    let index = BruteForce::build(coll.objects());
    let opts = DurabilityOptions {
        segment_bytes: 1 << 20,
        snapshot_every: 0,
    };
    let durability = Durability::create(&dir, &index, &dict, coll.objects(), opts).expect("create");
    let log = TermLog::open(&dir).expect("term log");
    let store = EpochStore::new_durable(
        index,
        Arc::new(Mutex::new(ServeDict::durable(dict, log))),
        durability,
        EpochConfig::default(),
    );

    // One clean acked write establishes epoch 1.
    store
        .enqueue(WriteOp::Insert(Object::new(8, 5, 6, vec![0, 2])))
        .expect("clean enqueue");
    assert_eq!(store.flush().expect("clean flush"), 1);
    assert_eq!(store.health(), HealthStatus::Ok);

    // The next WAL append fails (simulated ENOSPC before any byte
    // lands): the write's batch must degrade the store, not ack a lie.
    tir_fault::install(Arc::new(OneShot {
        site: FaultSite::WalAppend,
        visit: 0,
        action: FaultAction::Error,
    }));
    store
        .enqueue(WriteOp::Insert(Object::new(9, 5, 6, vec![1])))
        .expect("enqueue before the fault is admitted");
    assert_eq!(
        store.flush().expect_err("durability failed"),
        Rejected::Degraded
    );
    assert_eq!(store.health(), HealthStatus::Degraded);

    // Writes and barriers are refused; the latch is one-way.
    assert_eq!(
        store
            .enqueue(WriteOp::Insert(Object::new(10, 5, 6, vec![1])))
            .expect_err("degraded store refuses writes"),
        Rejected::Degraded
    );
    assert_eq!(
        store
            .force_snapshot()
            .expect_err("degraded store refuses barriers"),
        Rejected::Degraded
    );
    // analyze:allow(atomic-ordering): test-side stat read
    assert!(
        store
            .stats()
            .degraded_writes
            .load(std::sync::atomic::Ordering::Relaxed)
            >= 1,
        "the discarded write must be counted"
    );

    // Queries keep serving the last acked epoch: id 8 is there, id 9
    // (whose durability failed) is not.
    let snap = store.snapshot();
    assert_eq!(
        snap.epoch, 1,
        "published epoch never exceeds the acked epoch"
    );
    let mut got = snap.index.query(&TimeTravelQuery::new(5, 9, vec![0, 2]));
    got.sort_unstable();
    assert_eq!(got, vec![1, 3, 6, 8]);
    assert!(snap
        .index
        .query(&TimeTravelQuery::new(5, 9, vec![1]))
        .iter()
        .all(|&id| id != 9));

    tir_fault::clear();
    drop(store); // degraded shutdown must not write a snapshot

    // Recovery lands on the acked state exactly.
    let r: Recovered<BruteForce> = Durability::recover(&dir, opts).expect("recover");
    assert_eq!(r.epoch, 1);
    let ids: Vec<u32> = r.durability.catalog_sorted().iter().map(|o| o.id).collect();
    assert!(ids.contains(&8));
    assert!(!ids.contains(&9), "the unacked write must not resurrect");
    assert!(!ids.contains(&10));
    let _ = fs::remove_dir_all(&dir);
}
