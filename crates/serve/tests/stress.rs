//! Concurrency stress tests for the epoch store and query pool.
//!
//! The headline test races N reader threads against one writer replaying
//! a mixed insert/delete stream, then compares the final answer sets
//! against the `BruteForce` oracle — exact agreement, every id exactly
//! once. A second test checks the snapshot-monotonicity contract without
//! loom: an id whose insert was flushed before a snapshot was taken is
//! never missing from that snapshot.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use tir_check::Validate;
use tir_core::prelude::*;
use tir_datagen::{mixed_stream, workload, MixedSpec, Op, SyntheticConfig, WorkloadSpec};
use tir_serve::epoch::{EpochConfig, EpochStore, WriteOp};
use tir_serve::pool::{PoolConfig, QueryPool};
use tir_serve::Rejected;

fn small_corpus() -> Collection {
    let mut cfg = SyntheticConfig::default().scaled(0.002);
    cfg.desc_size = 4;
    cfg.seed = 11;
    tir_datagen::generate(&cfg)
}

#[test]
fn readers_race_writer_and_agree_with_oracle() {
    let coll = small_corpus();
    let index = IrHintPerf::build(&coll);
    let store = Arc::new(EpochStore::new(
        index,
        coll.len() as u64,
        EpochConfig {
            // Post-swap validation on every epoch: the rebuilt snapshot
            // must satisfy every structural invariant tir-check knows.
            validator: Some(Box::new(|i: &IrHintPerf| i.validate().len())),
            ..Default::default()
        },
    ));
    let pool = Arc::new(QueryPool::new(
        Arc::clone(&store),
        PoolConfig {
            workers: 4,
            ..Default::default()
        },
    ));

    // The write script, deterministic and replayable into the oracle.
    let spec = MixedSpec {
        write_fraction: 1.0,
        insert_fraction: 0.6,
        query: WorkloadSpec::default(),
    };
    let writes = mixed_stream(&coll, &spec, 600, 23);
    let queries = workload(
        &coll,
        &WorkloadSpec {
            num_elems: 2,
            ..Default::default()
        },
        200,
        31,
    );
    assert!(!queries.is_empty());

    // Race phase: 4 readers hammer the pool while the writer applies.
    let stop = Arc::new(AtomicBool::new(false));
    let raced = Arc::new(AtomicU64::new(0));
    let mut readers = Vec::new();
    for t in 0..4usize {
        let pool = Arc::clone(&pool);
        let stop = Arc::clone(&stop);
        let raced = Arc::clone(&raced);
        let queries = queries.clone();
        readers.push(std::thread::spawn(move || {
            let mut i = t;
            while !stop.load(Ordering::Relaxed) {
                let q = &queries[i % queries.len()];
                i += 1;
                match pool.execute(q.clone()) {
                    Ok(reply) => {
                        raced.fetch_add(1, Ordering::Relaxed);
                        let mut ids = reply.ids.clone();
                        ids.sort_unstable();
                        let n = ids.len();
                        ids.dedup();
                        assert_eq!(ids.len(), n, "duplicate ids in a reply");
                    }
                    Err(Rejected::Overloaded) => {} // backpressure is legal
                    Err(Rejected::Closed) => return,
                    Err(Rejected::Degraded) => panic!("in-memory store degraded"),
                }
            }
        }));
    }

    // Writer: replay the stream, mirroring it into a catalog for
    // deletes, with occasional barriers like a real ingester.
    let mut catalog: std::collections::HashMap<u32, Object> =
        coll.objects().iter().map(|o| (o.id, o.clone())).collect();
    let mut oracle = BruteForce::build(coll.objects());
    for (i, op) in writes.iter().enumerate() {
        match op {
            Op::Insert(o) => {
                oracle.insert(o);
                catalog.insert(o.id, o.clone());
                let mut op = WriteOp::Insert(o.clone());
                loop {
                    match store.enqueue(op) {
                        Ok(()) => break,
                        Err(Rejected::Overloaded) => {
                            op = WriteOp::Insert(o.clone());
                            std::thread::yield_now();
                        }
                        Err(Rejected::Closed) => panic!("store closed"),
                        Err(Rejected::Degraded) => panic!("in-memory store degraded"),
                    }
                }
            }
            Op::Delete(id) => {
                let o = catalog.remove(id).expect("stream deletes only live ids");
                assert!(oracle.delete(&o));
                let mut op = WriteOp::Delete(o.clone());
                loop {
                    match store.enqueue(op) {
                        Ok(()) => break,
                        Err(Rejected::Overloaded) => {
                            op = WriteOp::Delete(o.clone());
                            std::thread::yield_now();
                        }
                        Err(Rejected::Closed) => panic!("store closed"),
                        Err(Rejected::Degraded) => panic!("in-memory store degraded"),
                    }
                }
            }
            Op::Query(_) => unreachable!("write_fraction = 1.0"),
        }
        if i % 97 == 0 {
            store.flush().expect("flush");
        }
    }
    let final_epoch = store.flush().expect("final flush");
    assert!(final_epoch > 0);

    stop.store(true, Ordering::Relaxed);
    for r in readers {
        r.join().expect("reader thread");
    }
    assert!(
        raced.load(Ordering::Relaxed) > 0,
        "readers made no progress during the race"
    );

    // Every epoch's rebuilt snapshot validated clean under race.
    assert_eq!(store.stats().violations.load(Ordering::Relaxed), 0);
    assert_eq!(store.stats().missed_deletes.load(Ordering::Relaxed), 0);

    // Quiesced: final answer sets must equal the oracle's, exactly.
    for q in &queries {
        let mut got = pool.execute(q.clone()).expect("post-race query").ids;
        got.sort_unstable();
        assert_eq!(got, oracle.answer(q), "divergence on {q:?}");
    }
}

#[test]
fn flushed_inserts_are_never_missing_from_later_snapshots() {
    // The loom-free linearizability smoke: flush() is the write barrier,
    // so an id inserted before it can never be absent from a snapshot
    // taken after it — and epochs only move forward.
    let coll = Collection::running_example();
    let store = EpochStore::new(
        IrHintPerf::build(&coll),
        coll.len() as u64,
        EpochConfig::default(),
    );
    let mut last_epoch = store.snapshot().epoch;
    for k in 0..60u32 {
        let id = 8 + k;
        let st = 5 + (k as u64 % 7);
        let o = Object::new(id, st, st + 3, vec![0, 2]);
        store
            .enqueue(WriteOp::Insert(o.clone()))
            .expect("enqueue insert");
        store.flush().expect("flush");
        let snap = store.snapshot();
        assert!(
            snap.epoch >= last_epoch,
            "epoch went backwards: {} -> {}",
            last_epoch,
            snap.epoch
        );
        last_epoch = snap.epoch;
        let hits = snap.index.query(&TimeTravelQuery::new(
            o.interval.st,
            o.interval.end,
            o.desc.clone(),
        ));
        assert!(
            hits.contains(&id),
            "id {id} flushed before the snapshot but missing at epoch {}",
            snap.epoch
        );
    }
}
