//! Lock-order witness stress: readers racing a writer through the epoch
//! store, with the debug-build witness armed. The serving stack's lock
//! discipline is intentionally flat (snapshot mutex, dictionary, catalog
//! — never nested except catalog-spanning admission), so a clean run
//! proves both that the discipline holds under real concurrency and that
//! the witness does not false-positive on heavy uncontended traffic.
//!
//! The witness only exists under `debug_assertions` (the default test
//! profile); in release test runs this file compiles to nothing.

#![cfg(debug_assertions)]

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use tir_core::{BruteForce, Collection, Object, TemporalIrIndex, TimeTravelQuery};
use tir_serve::epoch::{EpochConfig, EpochStore, Rejected, WriteOp};
use tir_serve::pool::{PoolConfig, QueryPool};

#[test]
fn readers_racing_writer_trip_no_witness() {
    let coll = Collection::running_example();
    let store = Arc::new(EpochStore::new(
        BruteForce::build(coll.objects()),
        coll.len() as u64,
        EpochConfig::default(),
    ));
    let pool = Arc::new(QueryPool::new(
        Arc::clone(&store),
        PoolConfig {
            workers: 4,
            queue_depth: 256,
            max_batch: 16,
        },
    ));

    let stop = Arc::new(AtomicBool::new(false));
    let mut joins = Vec::new();

    // 4 readers: direct snapshots and pooled queries, interleaved.
    for t in 0..4u64 {
        let store = Arc::clone(&store);
        let pool = Arc::clone(&pool);
        let stop = Arc::clone(&stop);
        joins.push(std::thread::spawn(move || {
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let snap = store.snapshot();
                let direct = snap
                    .index
                    .query(&TimeTravelQuery::new(5, 9, vec![(t % 3) as u32]));
                assert!(direct.len() <= snap.live as usize);
                match pool.execute(TimeTravelQuery::new(0, 12, vec![((t + i) % 3) as u32])) {
                    Ok(reply) => assert!(reply.epoch <= store.snapshot().epoch),
                    Err(Rejected::Overloaded) => {} // legal under load
                    Err(e) => panic!("pool rejected mid-test: {e}"),
                }
                i += 1;
            }
        }));
    }

    // Writer: 300 insert/delete pairs with periodic flush barriers.
    for round in 0..300u32 {
        let o = Object::new(
            100 + round,
            (round % 10) as u64,
            (round % 10 + 2) as u64,
            vec![0],
        );
        while store.enqueue(WriteOp::Insert(o.clone())) == Err(Rejected::Overloaded) {
            std::thread::yield_now();
        }
        if round % 3 == 0 {
            while store.enqueue(WriteOp::Delete(o.clone())) == Err(Rejected::Overloaded) {
                std::thread::yield_now();
            }
        }
        if round % 25 == 0 {
            store.flush().expect("flush barrier");
        }
    }
    store.flush().expect("final flush");

    stop.store(true, Ordering::Relaxed);
    for j in joins {
        j.join()
            .expect("reader thread must finish without a witness panic");
    }

    let snap = store.snapshot();
    assert!(snap.epoch > 0, "writer actually advanced epochs");
    assert!(snap.live >= 8, "running example objects stay live");
}
