//! The durable applier: the epoch-store write path with a WAL in front.
//!
//! [`EpochStore::new_durable`] spawns this applier instead of the
//! in-memory one. The reader side is untouched — snapshots publish
//! through the same mutex and queries never learn the difference. The
//! write side changes its contract: a batch is acknowledged only after
//! [`Durability::apply_batch`] appended it to the WAL **and** fsynced, so
//! an `OK` that reached a client survives `kill -9`.
//!
//! Barriers map onto durability actions:
//!
//! * [`EpochStore::flush`] — applies everything enqueued before it, then
//!   runs [`Durability::maybe_snapshot`] (the `snapshot_every` policy
//!   fires at flush barriers, not on every batch).
//! * [`EpochStore::force_snapshot`] — writes a snapshot unconditionally.
//! * Shutdown (the store dropping its sender) — final snapshot, so a
//!   clean restart replays no WAL at all.
//!
//! If the disk fails (a real I/O error, an injected `tir-fault`, or an
//! armed kill point in tests), the applier **degrades instead of
//! dying**: it latches the shared [`HealthFlag`] to `degraded`, keeps
//! draining the queue, and from then on discards writes (counted in
//! [`EpochStats::degraded_writes`]) and NAKs barriers with
//! [`Rejected::Degraded`]. Readers keep serving the last published —
//! which is also the last acknowledged — epoch: the failed batch was
//! never applied to the master, so nothing unacknowledged ever becomes
//! visible. The latch is one-way; only a restart on healthy I/O clears
//! it. No ack ever lies: every op acknowledged `OK` before the fault is
//! durable, every op after it is explicitly refused.
//!
//! Terms are durable *before* any op referencing them: the server
//! interns new terms through [`ServeDict`], which appends to the
//! `terms.log` sidecar (fsynced) before the write op can be enqueued.

use std::sync::mpsc::{sync_channel, Receiver};
use std::sync::{Arc, Mutex};

use tir_core::TemporalIrIndex;
use tir_invidx::Dictionary;
use tir_persist::{Durability, Persist, TermLog, WalOp};

use crate::epoch::{
    Cmd, EpochConfig, EpochStats, EpochStore, HealthFlag, Rejected, Snapshot, Validator, WriteOp,
};
use crate::witness::lock;

/// The server's dictionary plus an optional durable term log. One lock
/// guards both so a term id can never be enqueued before the log entry
/// that defines it is on disk.
pub struct ServeDict {
    dict: Dictionary,
    log: Option<TermLog>,
}

impl ServeDict {
    /// An in-memory dictionary (no durability).
    pub fn volatile(dict: Dictionary) -> ServeDict {
        ServeDict { dict, log: None }
    }

    /// A dictionary whose new terms are appended to `log` (fsynced)
    /// before their ids are handed out.
    pub fn durable(dict: Dictionary, log: TermLog) -> ServeDict {
        ServeDict {
            dict,
            log: Some(log),
        }
    }

    /// Interns `term`, making it durable first if a term log is
    /// attached. An I/O error means the id was NOT handed out.
    pub fn intern(&mut self, term: &str) -> std::io::Result<u32> {
        if let Some(id) = self.dict.lookup(term) {
            return Ok(id);
        }
        if let Some(log) = &mut self.log {
            // The id a fresh intern will assign is the current length.
            log.append(self.dict.len() as u32, term)?;
        }
        Ok(self.dict.intern(term))
    }

    /// Read-only view of the dictionary.
    pub fn dict(&self) -> &Dictionary {
        &self.dict
    }
}

impl<I: TemporalIrIndex + Persist + Clone + Send + Sync + 'static> EpochStore<I> {
    /// Wraps a recovered (or freshly created) durable state and spawns
    /// the durable applier thread. `durability` must already own the
    /// data directory; `index` must be at `durability.epoch()`.
    pub fn new_durable(
        index: I,
        dict: Arc<Mutex<ServeDict>>,
        durability: Durability,
        config: EpochConfig<I>,
    ) -> EpochStore<I> {
        let stats = Arc::new(EpochStats::default());
        let epoch = durability.epoch();
        let live = durability.live() as u64;
        let current = Arc::new(Mutex::new(Arc::new(Snapshot {
            epoch,
            live,
            index: index.clone(),
        })));
        let (tx, rx) = sync_channel(config.queue_depth.max(1));
        let health = Arc::new(HealthFlag::default());
        let mut applier = DurableApplier {
            master: index,
            rx,
            publish: Arc::clone(&current),
            max_batch: config.max_batch.max(1),
            validator: config.validator,
            stats: Arc::clone(&stats),
            durability,
            dict,
            health: Arc::clone(&health),
        };
        let handle = std::thread::Builder::new()
            .name("tir-durable-applier".into())
            .spawn(move || applier.run())
            .expect("spawning the durable applier thread");
        EpochStore {
            current,
            tx: Some(tx),
            applier: Some(handle),
            stats,
            health,
        }
    }
}

struct DurableApplier<I> {
    master: I,
    rx: Receiver<Cmd>,
    publish: Arc<Mutex<Arc<Snapshot<I>>>>,
    max_batch: usize,
    validator: Option<Validator<I>>,
    stats: Arc<EpochStats>,
    durability: Durability,
    dict: Arc<Mutex<ServeDict>>,
    /// Shared with the store front end; latched on durability failure.
    health: Arc<HealthFlag>,
}

impl<I: TemporalIrIndex + Persist + Clone> DurableApplier<I> {
    fn run(&mut self) {
        while let Ok(first) = self.rx.recv() {
            let mut batch = vec![first];
            while batch.len() < self.max_batch {
                match self.rx.try_recv() {
                    Ok(cmd) => batch.push(cmd),
                    Err(_) => break,
                }
            }
            tir_fault::stall(tir_fault::FaultSite::ApplierDelay);
            if self.health.is_degraded() {
                // Read-only mode: keep draining so barriers get an
                // explicit NAK instead of a hang, discard writes.
                self.reject(batch);
            } else {
                self.apply(batch);
            }
        }
        // Clean shutdown: one last snapshot so restart replays nothing.
        // A degraded applier skips it — the disk already failed once,
        // and recovery from snapshot + WAL replay reaches the same
        // acknowledged state.
        if !self.health.is_degraded() && self.durability.epoch() > self.durability.snapshot_epoch()
        {
            let dict = lock(&self.dict);
            if let Err(e) = self.durability.write_snapshot(&self.master, dict.dict()) {
                eprintln!("tir-serve: shutdown snapshot failed: {e} (WAL replay will recover)");
            }
        }
    }

    /// Degraded-mode drain: count discarded writes, NAK barriers.
    fn reject(&mut self, batch: Vec<Cmd>) {
        use std::sync::atomic::Ordering;
        for cmd in batch {
            match cmd {
                Cmd::Write(_) => {
                    // analyze:allow(atomic-ordering): monotonic stat counter, read only for reporting
                    self.stats.degraded_writes.fetch_add(1, Ordering::Relaxed);
                }
                Cmd::Flush(ack) | Cmd::Snapshot(ack) => {
                    let _ = ack.send(Err(Rejected::Degraded));
                }
            }
        }
    }

    fn apply(&mut self, batch: Vec<Cmd>) {
        use std::sync::atomic::Ordering;

        let mut flush_acks = Vec::new();
        let mut want_snapshot = false;
        let mut ops: Vec<WalOp> = Vec::new();
        let mut inserts = 0u64;
        let mut delete_ops = 0u64;
        for cmd in batch {
            match cmd {
                Cmd::Write(WriteOp::Insert(o)) => {
                    inserts += 1;
                    ops.push(WalOp::Insert(o));
                }
                Cmd::Write(WriteOp::Delete(o)) => {
                    delete_ops += 1;
                    ops.push(WalOp::Delete(o));
                }
                Cmd::Flush(ack) => flush_acks.push(ack),
                Cmd::Snapshot(ack) => {
                    want_snapshot = true;
                    flush_acks.push(ack);
                }
            }
        }

        if !ops.is_empty() {
            let wrote = ops.len() as u64;
            let deleted = match self.durability.apply_batch(&mut self.master, &ops) {
                Ok(out) => out.deleted,
                Err(e) => {
                    eprintln!(
                        "tir-serve: durable apply failed: {e}; degrading to read-only \
                         ({} write(s) in the failed batch discarded)",
                        ops.len()
                    );
                    self.degrade(ops.len() as u64, flush_acks);
                    return;
                }
            };
            // analyze:allow(atomic-ordering): monotonic stat counters, read only for reporting
            self.stats.inserts.fetch_add(inserts, Ordering::Relaxed);
            // analyze:allow(atomic-ordering): monotonic stat counter, read only for reporting
            self.stats.deletes.fetch_add(deleted, Ordering::Relaxed);
            // analyze:allow(atomic-ordering): monotonic stat counter, read only for reporting
            self.stats
                .missed_deletes
                .fetch_add(delete_ops - deleted, Ordering::Relaxed);
            if let Some(validator) = &self.validator {
                let violations = validator(&self.master) as u64;
                if violations > 0 {
                    // analyze:allow(atomic-ordering): stat counter; publication order is carried by the snapshot mutex
                    self.stats
                        .violations
                        .fetch_add(violations, Ordering::Relaxed);
                    eprintln!(
                        "tir-serve: epoch {}: {} structural violation(s) in rebuilt snapshot",
                        self.durability.epoch(),
                        violations
                    );
                }
            }
            let next = Arc::new(Snapshot {
                epoch: self.durability.epoch(),
                live: self.durability.live() as u64,
                index: self.master.clone(),
            });
            *lock(&self.publish) = next;
            // analyze:allow(atomic-ordering): gauge trailing the publish mutex above; readers need no ordering from it
            self.stats
                .epochs
                .store(self.durability.epoch(), Ordering::Relaxed);
            // analyze:allow(atomic-ordering): high-water gauge, read only for reporting
            self.stats.max_batch.fetch_max(wrote, Ordering::Relaxed);
        }

        // Snapshot policy runs at barriers (the batch is already durable
        // in the WAL either way).
        if want_snapshot || !flush_acks.is_empty() {
            let result = {
                let dict = lock(&self.dict);
                if want_snapshot {
                    self.durability
                        .write_snapshot(&self.master, dict.dict())
                        .map(|_| ())
                } else {
                    self.durability
                        .maybe_snapshot(&self.master, dict.dict())
                        .map(|_| ())
                }
            };
            if let Err(e) = result {
                eprintln!("tir-serve: snapshot failed: {e}; degrading to read-only");
                self.degrade(0, flush_acks);
                return;
            }
        }
        for ack in flush_acks {
            let _ = ack.send(Ok(self.durability.epoch()));
        }
    }

    /// Latches read-only mode: counts the writes of the failed batch as
    /// discarded (they were never applied, so the published epoch still
    /// equals the acknowledged one) and NAKs the batch's barriers.
    fn degrade(&mut self, discarded: u64, acks: Vec<crate::epoch::BarrierAck>) {
        use std::sync::atomic::Ordering;
        self.health.set_degraded();
        // analyze:allow(atomic-ordering): monotonic stat counter, read only for reporting
        self.stats
            .degraded_writes
            .fetch_add(discarded, Ordering::Relaxed);
        for ack in acks {
            let _ = ack.send(Err(Rejected::Degraded));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::{Path, PathBuf};
    use tir_core::{Object, Tif, TimeTravelQuery};
    use tir_persist::{DurabilityOptions, Recovered};

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tir-durable-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn durable_store(dir: &Path) -> EpochStore<Tif> {
        let index = Tif::default();
        let dict = Dictionary::new();
        let d = Durability::create(dir, &index, &dict, &[], DurabilityOptions::default())
            .expect("create");
        let log = TermLog::open(dir).expect("term log");
        EpochStore::new_durable(
            index,
            Arc::new(Mutex::new(ServeDict::durable(dict, log))),
            d,
            EpochConfig::default(),
        )
    }

    #[test]
    fn acked_writes_survive_store_drop_and_recover() {
        let dir = scratch("ack");
        let store = durable_store(&dir);
        store
            .enqueue(WriteOp::Insert(Object::new(1, 0, 10, vec![0, 1])))
            .expect("enqueue");
        store
            .enqueue(WriteOp::Insert(Object::new(2, 5, 15, vec![0])))
            .expect("enqueue");
        let epoch = store.flush().expect("flush");
        assert!(epoch >= 1);
        let snap = store.snapshot();
        assert_eq!(snap.live, 2);
        drop(store); // clean shutdown writes a final snapshot

        let r: Recovered<Tif> =
            Durability::recover(&dir, DurabilityOptions::default()).expect("recover");
        assert_eq!(r.epoch, epoch);
        assert_eq!(r.replayed, 0, "shutdown snapshot covers everything");
        let mut hits = r.index.query(&TimeTravelQuery::new(0, 20, vec![0]));
        hits.sort_unstable();
        assert_eq!(hits, vec![1, 2]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn force_snapshot_advances_the_durable_epoch() {
        let dir = scratch("force");
        let store = durable_store(&dir);
        store
            .enqueue(WriteOp::Insert(Object::new(7, 3, 9, vec![2])))
            .expect("enqueue");
        let epoch = store.force_snapshot().expect("snapshot");
        assert!(epoch >= 1);
        // The snapshot on disk is already at `epoch`: recovery from a
        // *copy* of the directory (the store is still running) replays
        // nothing.
        let copy = scratch("force-copy");
        std::fs::create_dir_all(&copy).expect("copy dir");
        for entry in std::fs::read_dir(&dir).expect("read dir") {
            let entry = entry.expect("entry");
            std::fs::copy(entry.path(), copy.join(entry.file_name())).expect("copy");
        }
        let r: Recovered<Tif> =
            Durability::recover(&copy, DurabilityOptions::default()).expect("recover");
        assert_eq!(r.epoch, epoch);
        assert_eq!(r.replayed, 0);
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&copy);
    }

    #[test]
    fn serve_dict_interns_durably_and_recovers() {
        let dir = scratch("dict");
        std::fs::create_dir_all(&dir).expect("dir");
        let log = TermLog::open(&dir).expect("log");
        let mut sd = ServeDict::durable(Dictionary::new(), log);
        assert_eq!(sd.intern("alpha").expect("intern"), 0);
        assert_eq!(sd.intern("beta").expect("intern"), 1);
        assert_eq!(sd.intern("alpha").expect("intern"), 0, "idempotent");
        drop(sd);
        let mut dict = Dictionary::new();
        TermLog::recover(&dir, &mut dict).expect("recover");
        assert_eq!(dict.lookup("alpha"), Some(0));
        assert_eq!(dict.lookup("beta"), Some(1));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
