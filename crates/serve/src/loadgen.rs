//! Closed-loop multi-threaded load generator for `tir serve`.
//!
//! Each of `threads` workers opens one TCP connection and issues
//! requests back-to-back (closed loop: a worker's next request waits for
//! its previous answer, so concurrency equals the thread count). The mix
//! is read-heavy with a configurable write fraction; inserts mint globally
//! unique ids above the server's `next_id`, and deletes only target ids
//! the issuing thread inserted itself, so `MISSING` should never occur.
//!
//! Every request is timed into a per-thread [`LatencyHistogram`]; the
//! merged report carries throughput and p50/p95/p99 latency. `OVERLOADED`
//! responses count as *rejected* (backpressure working as designed), not
//! as protocol errors; `errors` counts only `ERR` responses, unparseable
//! lines, and unrecovered transport failures — a clean run reports
//! `errors == 0`.
//!
//! Resilience loop: every connection carries a client-side read timeout,
//! queries optionally ship a `DEADLINE <ms>` budget, and `OVERLOADED`,
//! `TIMEOUT`, and transport failures are retried with jittered
//! exponential backoff (reconnecting first when the transport died).
//! Each occurrence still lands in its own counter (`rejected`,
//! `timeouts`, `retries`, `degraded`), so the report shows both how
//! often the server pushed back and how much work the client re-issued.
//! Answer sets are structurally checked (strictly ascending unique ids);
//! any violation bumps `wrong`, which the CLI turns into a nonzero exit.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::histogram::LatencyHistogram;
use crate::json::Json;
use crate::protocol::{parse_response, Response};

/// Deterministic xorshift64* generator — the loadgen is std-only and
/// needs no statistical finesse, just cheap well-spread draws.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform draw in `[0, n)`; `n` must be nonzero.
    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    fn chance(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64 > 1.0 - p
    }
}

/// Load generator parameters.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address, e.g. `127.0.0.1:7878`.
    pub addr: String,
    /// Total requests across all threads.
    pub requests: u64,
    /// Concurrent closed-loop connections.
    pub threads: usize,
    /// Fraction of requests that are writes (default 0.05).
    pub write_fraction: f64,
    /// Fraction of writes that are inserts (default 0.7).
    pub insert_fraction: f64,
    /// Maximum elements per query (each query draws 1..=this).
    pub max_elems: usize,
    /// RNG seed.
    pub seed: u64,
    /// Durability mode: issue a `FLUSH` barrier after every this many
    /// writes per worker and report flush latency separately (0 = off).
    /// Against a `--data-dir` server the flush waits for the WAL fsync,
    /// so these percentiles are the durability cost on the wire.
    pub durability: u64,
    /// Per-query deadline shipped as `DEADLINE <ms>` (0 = none).
    pub deadline_ms: u64,
    /// Maximum retry attempts per request after `OVERLOADED`, `TIMEOUT`,
    /// or a transport failure (0 = fail fast).
    pub retries: u32,
    /// Base backoff before the first retry, milliseconds; doubles per
    /// attempt with up to 100% random jitter on top.
    pub backoff_ms: u64,
}

impl LoadgenConfig {
    /// Defaults for everything but the address.
    pub fn new(addr: impl Into<String>) -> LoadgenConfig {
        LoadgenConfig {
            addr: addr.into(),
            requests: 5000,
            threads: 4,
            write_fraction: 0.05,
            insert_fraction: 0.7,
            max_elems: 3,
            seed: 7,
            durability: 0,
            deadline_ms: 0,
            retries: 3,
            backoff_ms: 2,
        }
    }
}

/// Aggregated results of a load run.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Requests issued.
    pub requests: u64,
    /// Successful answers (`HITS` or `OK`).
    pub ok: u64,
    /// Total ids returned across all `HITS`.
    pub hits: u64,
    /// `OVERLOADED` rejections (backpressure).
    pub rejected: u64,
    /// `MISSING` answers (should stay 0 for this generator's mix).
    pub missing: u64,
    /// Protocol errors and unrecovered transport failures — a healthy
    /// run reports 0.
    pub errors: u64,
    /// `TIMEOUT` answers (each occurrence, including retried ones).
    pub timeouts: u64,
    /// Retry attempts issued (backoff loop iterations).
    pub retries: u64,
    /// `DEGRADED` answers — the server latched read-only mid-run.
    pub degraded: u64,
    /// Structurally wrong answers (ids not strictly ascending unique).
    /// Any nonzero value fails the run at the CLI.
    pub wrong: u64,
    /// Wall-clock duration of the measured phase in seconds.
    pub elapsed_s: f64,
    /// Requests per second (all threads combined).
    pub qps: f64,
    /// Median request latency, microseconds.
    pub p50_us: f64,
    /// 95th-percentile latency, microseconds.
    pub p95_us: f64,
    /// 99th-percentile latency, microseconds.
    pub p99_us: f64,
    /// Worst observed latency, microseconds.
    pub max_us: f64,
    /// `FLUSH` barriers issued (durability mode; 0 when off). Flush
    /// round-trips are timed into their own histogram and excluded from
    /// the request percentiles above.
    pub flushes: u64,
    /// Median flush-barrier latency, microseconds.
    pub flush_p50_us: f64,
    /// 95th-percentile flush-barrier latency, microseconds.
    pub flush_p95_us: f64,
    /// 99th-percentile flush-barrier latency, microseconds.
    pub flush_p99_us: f64,
    /// Worst observed flush-barrier latency, microseconds.
    pub flush_max_us: f64,
    /// Serving method reported by the server.
    pub method: String,
    /// Index footprint reported by the server.
    pub size_bytes: u64,
    /// Threads used.
    pub threads: usize,
    /// Conjunction-planner kernel mix over the run (post-run minus
    /// pre-run server counters): scalar merge steps.
    pub kern_merge: u64,
    /// Vectorized merge steps during the run.
    pub kern_simd_merge: u64,
    /// Gallop / binary-search steps during the run.
    pub kern_gallop: u64,
    /// Bitmap-probe steps during the run.
    pub kern_bitmap_probe: u64,
    /// Word-AND steps during the run.
    pub kern_word_and: u64,
    /// Run-container intersection steps during the run.
    pub kern_run_intersect: u64,
    /// Compressed posting blocks decoded during the run.
    pub blocks_decoded: u64,
    /// Elements scanned by intersection kernels during the run.
    pub elems_scanned: u64,
}

impl LoadgenReport {
    /// The `BENCH_serve.json` record for this run.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("tool", Json::str("tir loadgen")),
            ("method", Json::str(self.method.clone())),
            ("threads", Json::Int(self.threads as u64)),
            ("requests", Json::Int(self.requests)),
            ("ok", Json::Int(self.ok)),
            ("hits", Json::Int(self.hits)),
            ("rejected", Json::Int(self.rejected)),
            ("missing", Json::Int(self.missing)),
            ("errors", Json::Int(self.errors)),
            ("timeouts", Json::Int(self.timeouts)),
            ("retries", Json::Int(self.retries)),
            ("degraded", Json::Int(self.degraded)),
            ("wrong", Json::Int(self.wrong)),
            ("elapsed_s", Json::Num(self.elapsed_s)),
            ("qps", Json::Num(self.qps)),
            ("p50_us", Json::Num(self.p50_us)),
            ("p95_us", Json::Num(self.p95_us)),
            ("p99_us", Json::Num(self.p99_us)),
            ("max_us", Json::Num(self.max_us)),
            ("flushes", Json::Int(self.flushes)),
            ("flush_p50_us", Json::Num(self.flush_p50_us)),
            ("flush_p95_us", Json::Num(self.flush_p95_us)),
            ("flush_p99_us", Json::Num(self.flush_p99_us)),
            ("flush_max_us", Json::Num(self.flush_max_us)),
            ("size_bytes", Json::Int(self.size_bytes)),
            ("kern_merge", Json::Int(self.kern_merge)),
            ("kern_simd_merge", Json::Int(self.kern_simd_merge)),
            ("kern_gallop", Json::Int(self.kern_gallop)),
            ("kern_bitmap_probe", Json::Int(self.kern_bitmap_probe)),
            ("kern_word_and", Json::Int(self.kern_word_and)),
            ("kern_run_intersect", Json::Int(self.kern_run_intersect)),
            ("blocks_decoded", Json::Int(self.blocks_decoded)),
            ("elems_scanned", Json::Int(self.elems_scanned)),
        ])
    }

    /// Human-readable multi-line summary.
    pub fn render(&self) -> String {
        let mut s = format!(
            "{} requests in {:.2}s over {} threads against {}\n\
             throughput  {:.0} req/s\n\
             latency     p50 {:.0}µs | p95 {:.0}µs | p99 {:.0}µs | max {:.0}µs\n\
             outcomes    ok {} | hits {} | rejected {} | missing {} | errors {}\n\
             resilience  timeouts {} | retries {} | degraded {} | wrong {}\n\
             kernels     merge {} | simd-merge {} | gallop {} | bitmap-probe {} | word-AND {} \
             | run {} | blocks {} | scanned {}",
            self.requests,
            self.elapsed_s,
            self.threads,
            self.method,
            self.qps,
            self.p50_us,
            self.p95_us,
            self.p99_us,
            self.max_us,
            self.ok,
            self.hits,
            self.rejected,
            self.missing,
            self.errors,
            self.timeouts,
            self.retries,
            self.degraded,
            self.wrong,
            self.kern_merge,
            self.kern_simd_merge,
            self.kern_gallop,
            self.kern_bitmap_probe,
            self.kern_word_and,
            self.kern_run_intersect,
            self.blocks_decoded,
            self.elems_scanned
        );
        if self.flushes > 0 {
            s.push_str(&format!(
                "\nflushes     {} barriers | p50 {:.0}µs | p95 {:.0}µs | p99 {:.0}µs | max {:.0}µs",
                self.flushes,
                self.flush_p50_us,
                self.flush_p95_us,
                self.flush_p99_us,
                self.flush_max_us
            ));
        }
        s
    }
}

struct Connection {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    line: String,
}

impl Connection {
    fn open(addr: &str) -> Result<Connection, String> {
        Connection::open_with_timeout(addr, None)
    }

    /// Opens a connection with a client-side read timeout: a server that
    /// stalls past it surfaces as a transport error (and the retry loop
    /// reconnects) instead of hanging the worker forever.
    fn open_with_timeout(
        addr: &str,
        read_timeout: Option<std::time::Duration>,
    ) -> Result<Connection, String> {
        let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
        stream.set_nodelay(true).map_err(|e| e.to_string())?;
        stream
            .set_read_timeout(read_timeout)
            .map_err(|e| e.to_string())?;
        let reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
        Ok(Connection {
            reader,
            writer: stream,
            line: String::new(),
        })
    }

    fn call(&mut self, request: &str) -> Result<Response, String> {
        self.writer
            .write_all(request.as_bytes())
            .and_then(|_| self.writer.write_all(b"\n"))
            .and_then(|_| self.writer.flush())
            .map_err(|e| format!("send: {e}"))?;
        self.line.clear();
        let n = self
            .reader
            .read_line(&mut self.line)
            .map_err(|e| format!("recv: {e}"))?;
        if n == 0 {
            return Err("server closed the connection".into());
        }
        parse_response(self.line.trim_end())
    }
}

/// Conjunction-planner kernel counters scraped from a STATS reply.
/// Servers predating the planner simply omit the keys; every field
/// then reads 0 and the report shows an all-zero kernel mix.
#[derive(Debug, Clone, Copy, Default)]
struct KernelCounters {
    merge: u64,
    simd_merge: u64,
    gallop: u64,
    bitmap_probe: u64,
    word_and: u64,
    run_intersect: u64,
    blocks_decoded: u64,
    scanned: u64,
}

impl KernelCounters {
    fn from_stats(pairs: &[(String, String)]) -> KernelCounters {
        let get = |key: &str| -> u64 {
            pairs
                .iter()
                .find(|(k, _)| k == key)
                .and_then(|(_, v)| v.parse().ok())
                .unwrap_or(0)
        };
        KernelCounters {
            merge: get("kern_merge"),
            simd_merge: get("kern_simd_merge"),
            gallop: get("kern_gallop"),
            bitmap_probe: get("kern_bitmap_probe"),
            word_and: get("kern_word_and"),
            run_intersect: get("kern_run_intersect"),
            blocks_decoded: get("blocks_decoded"),
            scanned: get("elems_scanned"),
        }
    }

    /// Counter delta since `earlier` (saturating: a restarted server
    /// yields zeros, not nonsense).
    fn since(&self, earlier: &KernelCounters) -> KernelCounters {
        KernelCounters {
            merge: self.merge.saturating_sub(earlier.merge),
            simd_merge: self.simd_merge.saturating_sub(earlier.simd_merge),
            gallop: self.gallop.saturating_sub(earlier.gallop),
            bitmap_probe: self.bitmap_probe.saturating_sub(earlier.bitmap_probe),
            word_and: self.word_and.saturating_sub(earlier.word_and),
            run_intersect: self.run_intersect.saturating_sub(earlier.run_intersect),
            blocks_decoded: self.blocks_decoded.saturating_sub(earlier.blocks_decoded),
            scanned: self.scanned.saturating_sub(earlier.scanned),
        }
    }
}

/// One STATS round-trip for its kernel counters only.
fn fetch_kernels(addr: &str) -> Result<KernelCounters, String> {
    let mut conn = Connection::open(addr)?;
    match conn.call("STATS")? {
        Response::Stats(pairs) => Ok(KernelCounters::from_stats(&pairs)),
        other => Err(format!("expected STATS, got {other:?}")),
    }
}

/// Server facts loadgen needs before it can generate a workload.
struct ServerInfo {
    method: String,
    size_bytes: u64,
    next_id: u32,
    domain_min: u64,
    domain_max: u64,
    terms: Vec<String>,
    /// Kernel counters at discovery time — the "before" snapshot.
    kernels: KernelCounters,
}

fn discover(addr: &str) -> Result<ServerInfo, String> {
    let mut conn = Connection::open(addr)?;
    let stats = match conn.call("STATS")? {
        Response::Stats(pairs) => pairs,
        other => return Err(format!("expected STATS, got {other:?}")),
    };
    let get = |key: &str| -> Option<String> {
        stats.iter().find(|(k, _)| k == key).map(|(_, v)| v.clone())
    };
    let method = get("method").unwrap_or_else(|| "unknown".into());
    let size_bytes = get("size_bytes").and_then(|v| v.parse().ok()).unwrap_or(0);
    let next_id: u32 = get("next_id")
        .and_then(|v| v.parse().ok())
        .ok_or("STATS lacks next_id")?;
    let (domain_min, domain_max) = get("domain")
        .and_then(|v| {
            let (lo, hi) = v.split_once(':')?;
            Some((lo.parse().ok()?, hi.parse().ok()?))
        })
        .ok_or("STATS lacks domain")?;
    let kernels = KernelCounters::from_stats(&stats);
    let terms = match conn.call("ELEMS 256")? {
        Response::Elems(terms) => terms,
        other => return Err(format!("expected ELEMS, got {other:?}")),
    };
    if terms.is_empty() {
        return Err("server returned no element terms to query with".into());
    }
    Ok(ServerInfo {
        method,
        size_bytes,
        next_id,
        domain_min,
        domain_max,
        terms,
        kernels,
    })
}

#[derive(Default)]
struct ThreadOutcome {
    histogram: LatencyHistogram,
    flush_histogram: LatencyHistogram,
    ok: u64,
    hits: u64,
    rejected: u64,
    missing: u64,
    errors: u64,
    flushes: u64,
    timeouts: u64,
    retries: u64,
    degraded: u64,
    wrong: u64,
}

/// Merged per-thread outcomes: histograms and every counter summed.
#[derive(Default)]
struct Totals {
    histogram: LatencyHistogram,
    flush_histogram: LatencyHistogram,
    ok: u64,
    hits: u64,
    rejected: u64,
    missing: u64,
    errors: u64,
    flushes: u64,
    timeouts: u64,
    retries: u64,
    degraded: u64,
    wrong: u64,
}

impl Totals {
    fn absorb(&mut self, o: &ThreadOutcome) {
        self.histogram.merge(&o.histogram);
        self.flush_histogram.merge(&o.flush_histogram);
        self.ok += o.ok;
        self.hits += o.hits;
        self.rejected += o.rejected;
        self.missing += o.missing;
        self.errors += o.errors;
        self.flushes += o.flushes;
        self.timeouts += o.timeouts;
        self.retries += o.retries;
        self.degraded += o.degraded;
        self.wrong += o.wrong;
    }
}

/// Strictly ascending unique ids — the wire contract of `HITS`. A
/// violation means the server answered garbage, not that the data moved.
fn hits_look_sane(ids: &[u32]) -> bool {
    ids.windows(2).all(|w| w[0] < w[1])
}

fn worker(
    cfg: &LoadgenConfig,
    info: &ServerInfo,
    id_source: &AtomicU32,
    thread_idx: usize,
    requests: u64,
) -> Result<ThreadOutcome, String> {
    // Client-side hang guard: a read that outlives several deadlines
    // (or 30s absolute) is treated as a dead transport.
    let read_timeout = Some(std::time::Duration::from_millis(if cfg.deadline_ms > 0 {
        (cfg.deadline_ms * 8).max(2_000)
    } else {
        30_000
    }));
    let mut conn = Connection::open_with_timeout(&cfg.addr, read_timeout)?;
    let mut rng = Rng::new(cfg.seed ^ (thread_idx as u64).wrapping_mul(0xA5A5_A5A5));
    let mut out = ThreadOutcome::default();
    let mut writes_since_flush = 0u64;
    let span = info.domain_max.saturating_sub(info.domain_min).max(1);
    let mut my_inserts: Vec<u32> = Vec::new();
    // Window extents from stabbing-ish to 1% of the domain.
    let extents = [0u64, span / 10_000, span / 1_000, span / 100];

    for _ in 0..requests {
        let is_write = rng.chance(cfg.write_fraction);
        let request = if !is_write {
            let len = extents[rng.below(extents.len() as u64) as usize];
            let st = info.domain_min + rng.below(span.saturating_sub(len).max(1));
            let n_elems = 1 + rng.below(cfg.max_elems.max(1) as u64) as usize;
            let mut elems = Vec::with_capacity(n_elems);
            for _ in 0..n_elems {
                elems.push(info.terms[rng.below(info.terms.len() as u64) as usize].clone());
            }
            elems.sort();
            elems.dedup();
            let mut q = format!("QUERY {} {} {}", st, st + len, elems.join(","));
            if cfg.deadline_ms > 0 {
                q.push_str(&format!(" DEADLINE {}", cfg.deadline_ms));
            }
            q
        } else if rng.chance(cfg.insert_fraction) || my_inserts.is_empty() {
            // analyze:allow(atomic-ordering): unique-id ticket; only atomicity matters, not ordering
            let id = id_source.fetch_add(1, Ordering::Relaxed);
            let st = info.domain_min + rng.below(span);
            let end = (st + rng.below((span / 64).max(1)))
                .min(info.domain_max)
                .max(st);
            let n_elems = 1 + rng.below(cfg.max_elems.max(1) as u64) as usize;
            let mut elems = Vec::with_capacity(n_elems);
            for _ in 0..n_elems {
                elems.push(info.terms[rng.below(info.terms.len() as u64) as usize].clone());
            }
            elems.sort();
            elems.dedup();
            my_inserts.push(id);
            format!("INSERT {} {} {} {}", id, st, end, elems.join(","))
        } else {
            let pick = rng.below(my_inserts.len() as u64) as usize;
            let id = my_inserts.swap_remove(pick);
            format!("DELETE {id}")
        };

        // Retry loop: OVERLOADED, TIMEOUT, and transport failures are
        // re-issued with jittered exponential backoff; everything else
        // settles on the first answer. Each occurrence lands in its
        // counter even when a retry later succeeds.
        let mut attempt = 0u32;
        loop {
            let t0 = Instant::now();
            let response = conn.call(&request);
            let nanos = t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
            out.histogram.record(nanos);
            let transport_dead = response.is_err();
            let retryable = match response {
                Ok(Response::Hits(ids)) => {
                    out.ok += 1;
                    out.hits += ids.len() as u64;
                    if !hits_look_sane(&ids) {
                        out.wrong += 1;
                    }
                    false
                }
                Ok(Response::Ok) => {
                    out.ok += 1;
                    false
                }
                Ok(Response::Overloaded) => {
                    out.rejected += 1;
                    true
                }
                Ok(Response::Timeout) => {
                    out.timeouts += 1;
                    true
                }
                // The store latched read-only; retrying cannot help.
                Ok(Response::Degraded) => {
                    out.degraded += 1;
                    false
                }
                Ok(Response::Missing) => {
                    out.missing += 1;
                    false
                }
                Ok(Response::Err(_)) => {
                    out.errors += 1;
                    false
                }
                Ok(_) => {
                    out.errors += 1; // unexpected response kind
                    false
                }
                Err(_) => true,
            };
            if !retryable || attempt >= cfg.retries {
                if transport_dead {
                    // Retries exhausted with a dead transport: one error
                    // for the lost request, and the worker is done.
                    out.errors += 1;
                    return Ok(out);
                }
                break;
            }
            attempt += 1;
            out.retries += 1;
            // Exponential backoff with up to 100% jitter (decorrelates
            // a herd of workers retrying after one stall).
            let base = cfg.backoff_ms.max(1) << (attempt - 1).min(6);
            let pause = base + rng.below(base);
            std::thread::sleep(std::time::Duration::from_millis(pause));
            if transport_dead {
                match Connection::open_with_timeout(&cfg.addr, read_timeout) {
                    Ok(fresh) => conn = fresh,
                    Err(_) => {
                        out.errors += 1;
                        return Ok(out); // server gone for good
                    }
                }
            }
        }

        // Durability mode: a FLUSH barrier after every N writes. Its
        // round-trip spans the WAL fsync on a durable server, so it gets
        // its own histogram and does not pollute the request percentiles.
        if is_write && cfg.durability > 0 {
            writes_since_flush += 1;
            if writes_since_flush >= cfg.durability {
                writes_since_flush = 0;
                let t0 = Instant::now();
                let flushed = conn.call("FLUSH");
                let nanos = t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
                out.flush_histogram.record(nanos);
                out.flushes += 1;
                match flushed {
                    Ok(Response::Epoch(_)) => {}
                    Ok(Response::Degraded) => out.degraded += 1,
                    Ok(_) => out.errors += 1,
                    Err(_) => {
                        out.errors += 1;
                        return Ok(out);
                    }
                }
            }
        }
    }
    Ok(out)
}

/// Runs the closed loop and aggregates a report.
pub fn run(cfg: &LoadgenConfig) -> Result<LoadgenReport, String> {
    if cfg.requests == 0 || cfg.threads == 0 {
        return Err("need at least one request and one thread".into());
    }
    let info = Arc::new(discover(&cfg.addr)?);
    // Leave a gap above the server's next_id so a concurrent writer
    // (e.g. a second loadgen) is less likely to collide.
    let id_source = Arc::new(AtomicU32::new(info.next_id));

    let per_thread = cfg.requests / cfg.threads as u64;
    let remainder = cfg.requests % cfg.threads as u64;
    let t0 = Instant::now();
    let mut joins = Vec::with_capacity(cfg.threads);
    for t in 0..cfg.threads {
        let cfg = cfg.clone();
        let info = Arc::clone(&info);
        let id_source = Arc::clone(&id_source);
        let quota = per_thread + u64::from((t as u64) < remainder);
        joins.push(
            std::thread::Builder::new()
                .name(format!("tir-loadgen-{t}"))
                .spawn(move || worker(&cfg, &info, &id_source, t, quota))
                .map_err(|e| format!("spawn: {e}"))?,
        );
    }

    let mut totals = Totals::default();
    for join in joins {
        let outcome = join
            .join()
            .map_err(|_| "loadgen thread panicked".to_string())??;
        totals.absorb(&outcome);
    }
    let elapsed_s = t0.elapsed().as_secs_f64();
    let issued = totals.histogram.count();
    // Second STATS snapshot: the delta is the kernel work this run drove.
    // A server that died mid-run already surfaced as transport errors, so
    // a failed snapshot degrades to zeros instead of failing the report.
    let kernels = fetch_kernels(&cfg.addr)
        .map(|after| after.since(&info.kernels))
        .unwrap_or_default();

    Ok(LoadgenReport {
        requests: issued,
        ok: totals.ok,
        hits: totals.hits,
        rejected: totals.rejected,
        missing: totals.missing,
        errors: totals.errors,
        timeouts: totals.timeouts,
        retries: totals.retries,
        degraded: totals.degraded,
        wrong: totals.wrong,
        elapsed_s,
        qps: issued as f64 / elapsed_s.max(1e-9),
        p50_us: totals.histogram.quantile(0.50) as f64 / 1_000.0,
        p95_us: totals.histogram.quantile(0.95) as f64 / 1_000.0,
        p99_us: totals.histogram.quantile(0.99) as f64 / 1_000.0,
        max_us: totals.histogram.max() as f64 / 1_000.0,
        flushes: totals.flushes,
        flush_p50_us: totals.flush_histogram.quantile(0.50) as f64 / 1_000.0,
        flush_p95_us: totals.flush_histogram.quantile(0.95) as f64 / 1_000.0,
        flush_p99_us: totals.flush_histogram.quantile(0.99) as f64 / 1_000.0,
        flush_max_us: totals.flush_histogram.max() as f64 / 1_000.0,
        method: info.method.clone(),
        size_bytes: info.size_bytes,
        threads: cfg.threads,
        kern_merge: kernels.merge,
        kern_simd_merge: kernels.simd_merge,
        kern_gallop: kernels.gallop,
        kern_bitmap_probe: kernels.bitmap_probe,
        kern_word_and: kernels.word_and,
        kern_run_intersect: kernels.run_intersect,
        blocks_decoded: kernels.blocks_decoded,
        elems_scanned: kernels.scanned,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_and_spread() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::new(43);
        let same = (0..100).filter(|_| a.next_u64() == c.next_u64()).count();
        assert!(same < 5);
        // below() stays in range.
        for n in [1u64, 2, 7, 1000] {
            for _ in 0..50 {
                assert!(a.below(n) < n);
            }
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = Rng::new(1);
        assert!((0..100).all(|_| !rng.chance(0.0)));
        assert!((0..100).all(|_| rng.chance(1.0)));
    }

    #[test]
    fn zero_request_configs_are_rejected() {
        let mut cfg = LoadgenConfig::new("127.0.0.1:1");
        cfg.requests = 0;
        assert!(run(&cfg).is_err());
    }

    #[test]
    fn totals_merge_sums_every_counter_and_histogram() {
        let mut a = ThreadOutcome::default();
        a.histogram.record(1_000);
        a.histogram.record(2_000);
        a.flush_histogram.record(5_000);
        a.ok = 2;
        a.timeouts = 3;
        a.retries = 4;
        a.degraded = 1;
        a.wrong = 0;
        a.flushes = 1;
        let mut b = ThreadOutcome::default();
        b.histogram.record(8_000);
        b.ok = 1;
        b.rejected = 2;
        b.timeouts = 5;
        b.retries = 7;
        b.errors = 1;
        b.wrong = 2;
        let mut t = Totals::default();
        t.absorb(&a);
        t.absorb(&b);
        assert_eq!(t.histogram.count(), 3);
        assert_eq!(t.flush_histogram.count(), 1);
        assert_eq!(t.ok, 3);
        assert_eq!(t.rejected, 2);
        assert_eq!(t.timeouts, 8);
        assert_eq!(t.retries, 11);
        assert_eq!(t.degraded, 1);
        assert_eq!(t.errors, 1);
        assert_eq!(t.wrong, 2);
        assert_eq!(t.flushes, 1);
    }

    #[test]
    fn hits_sanity_check_rejects_unsorted_and_duplicates() {
        assert!(hits_look_sane(&[]));
        assert!(hits_look_sane(&[7]));
        assert!(hits_look_sane(&[1, 2, 9]));
        assert!(!hits_look_sane(&[2, 1]));
        assert!(!hits_look_sane(&[1, 1, 2]));
    }
}
