//! Log-linear latency histogram (HDR-style, fixed footprint).
//!
//! Values (nanoseconds) below 32 get exact buckets; above that, each
//! power-of-two octave is split into 32 linear sub-buckets, bounding the
//! relative quantization error by 1/32 ≈ 3% — plenty for reporting
//! p50/p95/p99 serving latency. The whole histogram is ~16 KiB, cheap to
//! keep per worker thread and merge at the end of a run.

/// Sub-buckets per octave (and width of the exact low range).
const SUB: u64 = 32;
/// Bucket count: 32 exact + 59 octaves × 32 sub-buckets.
const BUCKETS: usize = (SUB + (63 - 5) * SUB) as usize + SUB as usize;

/// A mergeable latency histogram over `u64` nanosecond samples.
#[derive(Clone)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0; BUCKETS],
            total: 0,
            sum: 0,
            max: 0,
        }
    }

    fn bucket(v: u64) -> usize {
        if v < SUB {
            return v as usize;
        }
        let msb = 63 - v.leading_zeros() as u64; // >= 5
        let sub = (v >> (msb - 5)) - SUB; // 0..32 within the octave
        (SUB + (msb - 5) * SUB + sub) as usize
    }

    /// Lower bound of a bucket's value range (the reported quantile value).
    fn bucket_floor(idx: usize) -> u64 {
        let idx = idx as u64;
        if idx < SUB {
            return idx;
        }
        let octave = (idx - SUB) / SUB; // msb - 5
        let sub = (idx - SUB) % SUB;
        (SUB + sub) << octave
    }

    /// Records one sample.
    pub fn record(&mut self, nanos: u64) {
        self.counts[Self::bucket(nanos)] += 1;
        self.total += 1;
        self.sum += nanos as u128;
        self.max = self.max.max(nanos);
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Largest recorded sample, exact.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of the recorded samples in nanoseconds (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Value at quantile `q` in `[0, 1]` (e.g. 0.99), within the bucket
    /// quantization error. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Cap at the observed max so q=1.0 is exact.
                return Self::bucket_floor(idx).min(self.max);
            }
        }
        self.max
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.total)
            .field("p50", &self.quantile(0.50))
            .field("p95", &self.quantile(0.95))
            .field("p99", &self.quantile(0.99))
            .field("max", &self.max)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_below_linear_range() {
        let mut h = LatencyHistogram::new();
        for v in 0..32u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 32);
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), 31);
        // Median of 0..=31 lands on 15 (rank 16).
        assert_eq!(h.quantile(0.5), 15);
    }

    #[test]
    fn bucket_floor_inverts_bucket() {
        for v in [
            0,
            1,
            31,
            32,
            33,
            100,
            1_000,
            123_456,
            10_000_000,
            u64::MAX / 2,
        ] {
            let idx = LatencyHistogram::bucket(v);
            let floor = LatencyHistogram::bucket_floor(idx);
            assert!(floor <= v, "floor {floor} > value {v}");
            // Relative error bounded by one sub-bucket width.
            let err = (v - floor) as f64 / (v.max(1)) as f64;
            assert!(err <= 1.0 / 16.0, "value {v}: error {err}");
        }
    }

    #[test]
    fn quantiles_are_ordered_and_bounded() {
        let mut h = LatencyHistogram::new();
        for i in 0..10_000u64 {
            h.record(i * 100); // uniform over [0, 1e6)
        }
        let p50 = h.quantile(0.50);
        let p95 = h.quantile(0.95);
        let p99 = h.quantile(0.99);
        assert!(p50 <= p95 && p95 <= p99 && p99 <= h.max());
        // p50 of a near-uniform [0, 1e6) distribution is near 5e5.
        assert!((400_000..600_000).contains(&p50), "p50 = {p50}");
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut c = LatencyHistogram::new();
        for i in 0..1000u64 {
            let v = i * i % 77_777;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            c.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), c.count());
        assert_eq!(a.max(), c.max());
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(a.quantile(q), c.quantile(q));
        }
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn empty_histogram_zero_at_every_quantile() {
        let h = LatencyHistogram::new();
        for q in [0.0, 0.25, 0.5, 0.75, 0.95, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 0, "q = {q}");
        }
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn single_sample_is_every_quantile() {
        let mut h = LatencyHistogram::new();
        h.record(12_345);
        // Every quantile of a one-sample distribution is that sample's
        // bucket floor: one value, one answer, within quantization.
        let reported = h.quantile(0.5);
        assert!(reported <= 12_345);
        assert!((12_345 - reported) as f64 / 12_345.0 <= 1.0 / 32.0);
        for q in [0.0, 0.99, 1.0] {
            assert_eq!(h.quantile(q), reported, "q = {q}");
        }
        assert_eq!(h.mean(), 12_345.0);
        assert_eq!(h.max(), 12_345);
    }

    #[test]
    fn extreme_values_hit_top_buckets_without_panicking() {
        let mut h = LatencyHistogram::new();
        for v in [u64::MAX, u64::MAX - 1, 1u64 << 63, (1u64 << 63) - 1] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.max(), u64::MAX);
        // The top of the u64 range must land in-bounds (no indexing
        // panic) and report within one sub-bucket of the true value.
        let p100 = h.quantile(1.0);
        assert!(p100 >= u64::MAX - (u64::MAX / 32));
        // Lower quantiles stay within the distribution's range.
        assert!(h.quantile(0.5) >= (1u64 << 63) - (1u64 << 58));
    }

    #[test]
    fn quantile_inputs_outside_unit_interval_clamp() {
        let mut h = LatencyHistogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.quantile(-0.5), h.quantile(0.0));
        assert_eq!(h.quantile(2.0), h.quantile(1.0));
    }
}
