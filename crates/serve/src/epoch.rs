//! Epoch-snapshot store: never-blocking reads over a single-writer index.
//!
//! Readers call [`EpochStore::snapshot`] and get an `Arc` to an immutable
//! [`Snapshot`]; they then answer any number of queries against it without
//! ever blocking on writers (queries take `&self` on every
//! [`TemporalIrIndex`]). A single **applier thread** owns the only mutable
//! copy of the index ("the master"): it drains the bounded write queue,
//! coalesces the drained commands into one batch, applies them to the
//! master, optionally validates the result, and atomically publishes a
//! clone of the master as the next epoch. Old snapshots stay alive for as
//! long as some reader holds their `Arc` — there is no reclamation
//! protocol to get wrong.
//!
//! Backpressure is explicit: the write queue is a `sync_channel`, and
//! [`EpochStore::enqueue`] returns [`Rejected::Overloaded`] instead of
//! queueing unboundedly. [`EpochStore::flush`] is the write barrier: when
//! it returns, every command enqueued before the call is applied and
//! visible to subsequent [`EpochStore::snapshot`] calls — this is the
//! monotonicity contract the stress tests check (an id inserted before a
//! snapshot was taken is never missing from it).

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use tir_core::{Object, TemporalIrIndex};

use crate::protocol::HealthStatus;
use crate::witness::lock;

/// An immutable published version of the index.
#[derive(Debug)]
pub struct Snapshot<I> {
    /// Monotonically increasing version number (0 = the build snapshot).
    pub epoch: u64,
    /// Number of live (non-tombstoned) objects at this epoch.
    pub live: u64,
    /// The index at this epoch. Shared read-only.
    pub index: I,
}

/// Why a write was not accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rejected {
    /// The bounded write queue is full — retry later or shed load.
    Overloaded,
    /// The store is shutting down.
    Closed,
    /// A durability failure latched the store read-only: writes and
    /// barriers are refused until the process restarts on healthy I/O.
    Degraded,
}

impl std::fmt::Display for Rejected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rejected::Overloaded => f.write_str("overloaded"),
            Rejected::Closed => f.write_str("closed"),
            Rejected::Degraded => f.write_str("degraded"),
        }
    }
}

/// Shared read-only/ok flag between the applier (which latches it on a
/// durability failure) and the front end (which reports and rejects).
/// A plain two-state `AtomicU8` — `HealthStatus::Draining` is a
/// server-level state, not a store-level one.
#[derive(Debug, Default)]
pub(crate) struct HealthFlag(AtomicU8);

impl HealthFlag {
    pub(crate) fn status(&self) -> HealthStatus {
        if self.0.load(Ordering::SeqCst) == 0 {
            HealthStatus::Ok
        } else {
            HealthStatus::Degraded
        }
    }

    pub(crate) fn set_degraded(&self) {
        self.0.store(1, Ordering::SeqCst);
    }

    pub(crate) fn is_degraded(&self) -> bool {
        self.0.load(Ordering::SeqCst) != 0
    }
}

/// A write command.
#[derive(Debug, Clone)]
pub enum WriteOp {
    /// Insert one object (its id must not be live; admission control is
    /// the caller's job, e.g. the server's catalog).
    Insert(Object),
    /// Logically delete one object (passed whole so any index can locate
    /// its postings).
    Delete(Object),
}

/// Applier-thread commands. `pub(crate)` so the durable applier
/// ([`crate::durable`]) can drain the same queue with the same protocol.
/// Barrier acknowledgment payload: the epoch reached, or the rejection
/// that made the barrier impossible (a degraded durable applier NAKs
/// instead of silently dropping the ack channel).
pub(crate) type BarrierAck = SyncSender<Result<u64, Rejected>>;

pub(crate) enum Cmd {
    Write(WriteOp),
    Flush(BarrierAck),
    /// Durable servers write a snapshot now; the in-memory applier treats
    /// it as a flush barrier (there is nothing more durable to do).
    Snapshot(BarrierAck),
}

/// Post-swap validation hook: inspects the about-to-be-published index
/// and returns the number of violations found (0 = clean). Wired to
/// `tir-check`'s structural validators by the CLI.
pub type Validator<I> = Box<dyn Fn(&I) -> usize + Send>;

/// Tuning knobs of the store.
pub struct EpochConfig<I> {
    /// Bounded depth of the write queue; beyond it writes are rejected
    /// with [`Rejected::Overloaded`].
    pub queue_depth: usize,
    /// Maximum number of commands coalesced into one epoch swap.
    pub max_batch: usize,
    /// Optional structural validator run on every rebuilt snapshot
    /// before it is published.
    pub validator: Option<Validator<I>>,
}

impl<I> Default for EpochConfig<I> {
    fn default() -> Self {
        EpochConfig {
            queue_depth: 1024,
            max_batch: 256,
            validator: None,
        }
    }
}

/// Counters exported by [`EpochStore::stats`].
#[derive(Debug, Default)]
pub struct EpochStats {
    /// Epoch swaps performed (equals the latest published epoch).
    pub epochs: AtomicU64,
    /// Inserts applied.
    pub inserts: AtomicU64,
    /// Deletes applied (found alive).
    pub deletes: AtomicU64,
    /// Deletes that referenced a dead or unknown id.
    pub missed_deletes: AtomicU64,
    /// Size of the largest coalesced batch so far.
    pub max_batch: AtomicU64,
    /// Total structural violations reported by the validator.
    pub violations: AtomicU64,
    /// Flush barriers served.
    pub flushes: AtomicU64,
    /// Writes discarded because the store was degraded (read-only).
    pub degraded_writes: AtomicU64,
}

/// The epoch-snapshot store. See the module docs for the protocol.
pub struct EpochStore<I> {
    pub(crate) current: Arc<Mutex<Arc<Snapshot<I>>>>,
    pub(crate) tx: Option<SyncSender<Cmd>>,
    pub(crate) applier: Option<JoinHandle<()>>,
    pub(crate) stats: Arc<EpochStats>,
    pub(crate) health: Arc<HealthFlag>,
}

impl<I: TemporalIrIndex + Clone + Send + Sync + 'static> EpochStore<I> {
    /// Wraps a freshly built index and spawns the applier thread.
    /// `live` is the number of live objects in `index`.
    pub fn new(index: I, live: u64, config: EpochConfig<I>) -> EpochStore<I> {
        let stats = Arc::new(EpochStats::default());
        let current = Arc::new(Mutex::new(Arc::new(Snapshot {
            epoch: 0,
            live,
            index: index.clone(),
        })));
        let (tx, rx) = sync_channel(config.queue_depth.max(1));
        let mut applier = Applier {
            master: index,
            live,
            epoch: 0,
            rx,
            publish: Arc::clone(&current),
            max_batch: config.max_batch.max(1),
            validator: config.validator,
            stats: Arc::clone(&stats),
        };
        let handle = std::thread::Builder::new()
            .name("tir-epoch-applier".into())
            .spawn(move || applier.run())
            .expect("spawning the applier thread");
        EpochStore {
            current,
            tx: Some(tx),
            applier: Some(handle),
            stats,
            health: Arc::new(HealthFlag::default()),
        }
    }

    /// The latest published snapshot. O(1): one short mutex hold to
    /// clone an `Arc`.
    pub fn snapshot(&self) -> Arc<Snapshot<I>> {
        Arc::clone(&lock(&self.current))
    }

    /// Enqueues a write without blocking. `Err(Overloaded)` means the
    /// bounded queue is full — the caller sheds load or retries.
    pub fn enqueue(&self, op: WriteOp) -> Result<(), Rejected> {
        if self.health.is_degraded() {
            return Err(Rejected::Degraded);
        }
        let tx = self.tx.as_ref().ok_or(Rejected::Closed)?;
        match tx.try_send(Cmd::Write(op)) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(_)) => Err(Rejected::Overloaded),
            Err(TrySendError::Disconnected(_)) => Err(Rejected::Closed),
        }
    }

    /// Write barrier: blocks until every command enqueued before this
    /// call is applied and published, then returns the epoch that made
    /// them visible. Unlike [`EpochStore::enqueue`] this *waits* for
    /// queue space instead of shedding load.
    pub fn flush(&self) -> Result<u64, Rejected> {
        let tx = self.tx.as_ref().ok_or(Rejected::Closed)?;
        let (ack_tx, ack_rx) = sync_channel(1);
        tx.send(Cmd::Flush(ack_tx)).map_err(|_| Rejected::Closed)?;
        let epoch = ack_rx.recv().map_err(|_| Rejected::Closed)??;
        // analyze:allow(atomic-ordering): monotonic stat counter, read only for reporting
        self.stats.flushes.fetch_add(1, Ordering::Relaxed);
        Ok(epoch)
    }

    /// Snapshot barrier: on a durable store ([`crate::durable`]) this
    /// forces a durable snapshot and returns the epoch it captured; on an
    /// in-memory store it degrades to [`EpochStore::flush`].
    pub fn force_snapshot(&self) -> Result<u64, Rejected> {
        let tx = self.tx.as_ref().ok_or(Rejected::Closed)?;
        let (ack_tx, ack_rx) = sync_channel(1);
        tx.send(Cmd::Snapshot(ack_tx))
            .map_err(|_| Rejected::Closed)?;
        ack_rx.recv().map_err(|_| Rejected::Closed)?
    }

    /// The store-level health: `Ok`, or `Degraded` once a durability
    /// failure latched the applier read-only.
    pub fn health(&self) -> HealthStatus {
        self.health.status()
    }

    /// Live counters.
    pub fn stats(&self) -> &EpochStats {
        &self.stats
    }
}

impl<I> Drop for EpochStore<I> {
    fn drop(&mut self) {
        // Closing the channel is the shutdown signal; then wait for the
        // applier to finish its final batch.
        self.tx = None;
        if let Some(handle) = self.applier.take() {
            let _ = handle.join();
        }
    }
}

struct Applier<I> {
    master: I,
    live: u64,
    epoch: u64,
    rx: Receiver<Cmd>,
    publish: Arc<Mutex<Arc<Snapshot<I>>>>,
    max_batch: usize,
    validator: Option<Validator<I>>,
    stats: Arc<EpochStats>,
}

impl<I: TemporalIrIndex + Clone> Applier<I> {
    fn run(&mut self) {
        // Block for the first command; then coalesce whatever else is
        // already queued (up to max_batch) into the same epoch swap.
        while let Ok(first) = self.rx.recv() {
            let mut batch = vec![first];
            while batch.len() < self.max_batch {
                match self.rx.try_recv() {
                    Ok(cmd) => batch.push(cmd),
                    Err(_) => break,
                }
            }
            self.apply(batch);
        }
    }

    fn apply(&mut self, batch: Vec<Cmd>) {
        let mut acks: Vec<BarrierAck> = Vec::new();
        let mut wrote = 0u64;
        for cmd in batch {
            match cmd {
                Cmd::Write(WriteOp::Insert(o)) => {
                    self.master.insert(&o);
                    self.live += 1;
                    wrote += 1;
                    // analyze:allow(atomic-ordering): monotonic stat counter, read only for reporting
                    self.stats.inserts.fetch_add(1, Ordering::Relaxed);
                }
                Cmd::Write(WriteOp::Delete(o)) => {
                    wrote += 1;
                    if self.master.delete(&o) {
                        self.live -= 1;
                        // analyze:allow(atomic-ordering): monotonic stat counter, read only for reporting
                        self.stats.deletes.fetch_add(1, Ordering::Relaxed);
                    } else {
                        // analyze:allow(atomic-ordering): monotonic stat counter, read only for reporting
                        self.stats.missed_deletes.fetch_add(1, Ordering::Relaxed);
                    }
                }
                // In-memory store: a snapshot barrier is just a flush.
                Cmd::Flush(ack) | Cmd::Snapshot(ack) => acks.push(ack),
            }
        }
        if wrote > 0 {
            self.epoch += 1;
            if let Some(validator) = &self.validator {
                let violations = validator(&self.master) as u64;
                if violations > 0 {
                    // analyze:allow(atomic-ordering): stat counter; publication order is carried by the snapshot mutex
                    self.stats
                        .violations
                        .fetch_add(violations, Ordering::Relaxed);
                    eprintln!(
                        "tir-serve: epoch {}: {} structural violation(s) in rebuilt snapshot",
                        self.epoch, violations
                    );
                }
            }
            let next = Arc::new(Snapshot {
                epoch: self.epoch,
                live: self.live,
                index: self.master.clone(),
            });
            *lock(&self.publish) = next;
            // analyze:allow(atomic-ordering): gauge trailing the publish mutex above; readers need no ordering from it
            self.stats.epochs.store(self.epoch, Ordering::Relaxed);
            // analyze:allow(atomic-ordering): high-water gauge, read only for reporting
            self.stats.max_batch.fetch_max(wrote, Ordering::Relaxed);
        }
        // Acks go out only after everything enqueued before the flush
        // (which sits earlier in the same batch) is published.
        for ack in acks {
            let _ = ack.send(Ok(self.epoch));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tir_core::{BruteForce, Collection, TimeTravelQuery};

    fn store() -> EpochStore<BruteForce> {
        let coll = Collection::running_example();
        let bf = BruteForce::build(coll.objects());
        EpochStore::new(bf, coll.len() as u64, EpochConfig::default())
    }

    #[test]
    fn snapshot_epoch_zero_before_writes() {
        let s = store();
        let snap = s.snapshot();
        assert_eq!(snap.epoch, 0);
        assert_eq!(snap.live, 8);
        assert_eq!(
            snap.index.query(&TimeTravelQuery::new(5, 9, vec![0, 2])),
            vec![1, 3, 6]
        );
    }

    #[test]
    fn flush_makes_prior_inserts_visible() {
        let s = store();
        let o = Object::new(8, 5, 6, vec![0, 2]);
        s.enqueue(WriteOp::Insert(o.clone())).expect("enqueue");
        let epoch = s.flush().expect("flush");
        assert!(epoch >= 1);
        let snap = s.snapshot();
        assert!(snap.epoch >= epoch);
        assert_eq!(snap.live, 9);
        let hits = snap.index.query(&TimeTravelQuery::new(5, 9, vec![0, 2]));
        assert_eq!(hits, vec![1, 3, 6, 8]);

        s.enqueue(WriteOp::Delete(o)).expect("enqueue");
        s.flush().expect("flush");
        let snap = s.snapshot();
        assert_eq!(snap.live, 8);
        assert_eq!(
            snap.index.query(&TimeTravelQuery::new(5, 9, vec![0, 2])),
            vec![1, 3, 6]
        );
    }

    #[test]
    fn old_snapshots_stay_readable_after_swap() {
        let s = store();
        let old = s.snapshot();
        s.enqueue(WriteOp::Insert(Object::new(8, 5, 6, vec![0, 2])))
            .expect("enqueue");
        s.flush().expect("flush");
        // The pre-swap snapshot still answers with its epoch's data.
        assert_eq!(
            old.index.query(&TimeTravelQuery::new(5, 9, vec![0, 2])),
            vec![1, 3, 6]
        );
        assert_eq!(old.epoch, 0);
    }

    #[test]
    fn missed_delete_is_counted_not_fatal() {
        let s = store();
        let ghost = Object::new(99, 0, 1, vec![0]);
        s.enqueue(WriteOp::Delete(ghost)).expect("enqueue");
        s.flush().expect("flush");
        assert_eq!(s.stats().missed_deletes.load(Ordering::Relaxed), 1);
        assert_eq!(s.snapshot().live, 8);
    }

    #[test]
    fn overload_rejects_instead_of_queueing() {
        let coll = Collection::running_example();
        let bf = BruteForce::build(coll.objects());
        // Tiny queue plus an applier slowed to ~1ms per swap (via the
        // validator hook) make overload deterministic.
        let s = EpochStore::new(
            bf,
            coll.len() as u64,
            EpochConfig {
                queue_depth: 2,
                max_batch: 1,
                validator: Some(Box::new(|_: &BruteForce| {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                    0
                })),
            },
        );
        let mut next_id = 8u32;
        let mut saw_overload = false;
        for _ in 0..10_000 {
            let o = Object::new(next_id, 0, 1, vec![0]);
            match s.enqueue(WriteOp::Insert(o)) {
                Ok(()) => next_id += 1,
                Err(Rejected::Overloaded) => {
                    saw_overload = true;
                    break;
                }
                Err(e) => panic!("store rejected unexpectedly: {e}"),
            }
        }
        assert!(saw_overload, "a depth-2 queue must overflow eventually");
        // Draining via flush recovers the store.
        s.flush().expect("flush");
        assert!(s.snapshot().live > 8);
    }

    #[test]
    fn validator_runs_on_every_swap() {
        let coll = Collection::running_example();
        let bf = BruteForce::build(coll.objects());
        let s = EpochStore::new(
            bf,
            coll.len() as u64,
            EpochConfig {
                validator: Some(Box::new(|_: &BruteForce| 2)),
                ..Default::default()
            },
        );
        s.enqueue(WriteOp::Insert(Object::new(8, 0, 1, vec![0])))
            .expect("enqueue");
        s.flush().expect("flush");
        assert_eq!(s.stats().violations.load(Ordering::Relaxed), 2);
    }
}
