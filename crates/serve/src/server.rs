//! The `tir serve` TCP front end.
//!
//! One thread per connection reads request lines ([`crate::protocol`]),
//! resolves element strings through the shared dictionary, and dispatches:
//! queries go through the [`QueryPool`] (per-shard, batched, backpressured),
//! writes are admission-checked against the **catalog** (the map of live
//! objects, authoritative for id liveness ahead of the applied snapshots)
//! and enqueued on the [`EpochStore`]'s bounded write queue. Both reject
//! with `OVERLOADED` instead of queueing unboundedly.
//!
//! A `QUERY` naming an element unknown to the dictionary answers
//! `HITS 0`: no object can carry it, and a serving system should not
//! treat a miss as a client fault.
//!
//! Robustness on the wire: request lines are read through a hard
//! [`MAX_LINE_BYTES`] cap (an unterminated or oversize line answers one
//! `ERR` and closes the connection instead of buffering unboundedly),
//! `QUERY ... DEADLINE <ms>` budgets are enforced in the worker pool
//! (late answers become `TIMEOUT`), and a durability failure latches the
//! store read-only: queries keep serving the last acked epoch while
//! writes and barriers answer `DEGRADED` (`HEALTH` reports the state).

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use tir_core::{Object, TemporalIrIndex, TimeTravelQuery};
use tir_invidx::Dictionary;
use tir_persist::{Durability, Persist, PersistStats};

use crate::durable::ServeDict;
use crate::epoch::{EpochConfig, EpochStore, Rejected, Validator, WriteOp};
use crate::pool::QueryOutcome;
use crate::pool::{PoolConfig, QueryPool};
use crate::protocol::{format_response, parse_request, HealthStatus, Request, Response};
use crate::witness::lock;

/// Hard cap on one protocol request line (bytes, excluding nothing —
/// the newline counts). Far above any legal request; a client that
/// exceeds it is broken or hostile and gets `ERR` + connection close.
pub const MAX_LINE_BYTES: u64 = 64 * 1024;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 for an OS-assigned port.
    pub addr: String,
    /// Query pool shape.
    pub pool: PoolConfig,
    /// Bounded write-queue depth of the epoch store.
    pub write_queue_depth: usize,
    /// Maximum writes coalesced into one epoch swap.
    pub max_write_batch: usize,
    /// Method name reported in `STATS` (e.g. `irhint-perf`).
    pub method: String,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            pool: PoolConfig::default(),
            write_queue_depth: 1024,
            max_write_batch: 256,
            method: "unknown".into(),
        }
    }
}

struct Shared<I> {
    store: Arc<EpochStore<I>>,
    pool: QueryPool<I>,
    dict: Arc<Mutex<ServeDict>>,
    /// Durability counters of a `--data-dir` server; `None` in-memory.
    persist: Option<Arc<PersistStats>>,
    catalog: Mutex<HashMap<u32, Object>>,
    next_id: AtomicU32,
    domain_min: AtomicU64,
    domain_max: AtomicU64,
    method: String,
    shutdown: Arc<AtomicBool>,
    addr: SocketAddr,
}

/// A running server: its bound address plus the accept-loop handle.
pub struct ServerHandle {
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    shutdown: Arc<AtomicBool>,
}

impl ServerHandle {
    /// The address the server actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests shutdown and waits for the accept loop to exit.
    /// Connections already open finish serving their clients.
    pub fn stop(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // analyze:allow(error-swallow): the connect exists only to wake accept(); if it fails the loop is already unblocked or gone
        let _ = TcpStream::connect(self.addr); // unblock accept()
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }

    /// Blocks until the accept loop exits (e.g. a client sent `SHUTDOWN`).
    pub fn join(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

/// Builds the serving stack over a built index and starts accepting
/// connections. `catalog` must list exactly the live objects of `index`;
/// `dict` resolves protocol element strings to ids.
pub fn spawn_server<I>(
    index: I,
    catalog: Vec<Object>,
    dict: Dictionary,
    config: ServerConfig,
    validator: Option<Validator<I>>,
) -> std::io::Result<ServerHandle>
where
    I: TemporalIrIndex + Clone + Send + Sync + 'static,
{
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;

    let live = catalog.len() as u64;
    let store = Arc::new(EpochStore::new(
        index,
        live,
        EpochConfig {
            queue_depth: config.write_queue_depth,
            max_batch: config.max_write_batch,
            validator,
        },
    ));
    let dict = Arc::new(Mutex::new(ServeDict::volatile(dict)));
    finish_spawn(listener, addr, store, dict, None, catalog, config)
}

/// Builds the serving stack over a recovered (or freshly created)
/// durable state: writes go through the WAL-backed applier, so an `OK`
/// on the wire means the batch is fsynced. `dict` should carry the
/// recovered dictionary plus an open `terms.log`
/// ([`ServeDict::durable`]); `durability` owns the data directory and
/// already holds the catalog (its epoch is the serving epoch).
pub fn spawn_server_durable<I>(
    index: I,
    dict: ServeDict,
    durability: Durability,
    config: ServerConfig,
    validator: Option<Validator<I>>,
) -> std::io::Result<ServerHandle>
where
    I: TemporalIrIndex + Persist + Clone + Send + Sync + 'static,
{
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;

    let catalog = durability.catalog_sorted();
    let persist = durability.stats();
    let dict = Arc::new(Mutex::new(dict));
    let store = Arc::new(EpochStore::new_durable(
        index,
        Arc::clone(&dict),
        durability,
        EpochConfig {
            queue_depth: config.write_queue_depth,
            max_batch: config.max_write_batch,
            validator,
        },
    ));
    finish_spawn(listener, addr, store, dict, Some(persist), catalog, config)
}

fn finish_spawn<I>(
    listener: TcpListener,
    addr: SocketAddr,
    store: Arc<EpochStore<I>>,
    dict: Arc<Mutex<ServeDict>>,
    persist: Option<Arc<PersistStats>>,
    catalog: Vec<Object>,
    config: ServerConfig,
) -> std::io::Result<ServerHandle>
where
    I: TemporalIrIndex + Clone + Send + Sync + 'static,
{
    let pool = QueryPool::new(Arc::clone(&store), config.pool);

    let mut domain_min = u64::MAX;
    let mut domain_max = 0u64;
    let mut next_id = 0u32;
    let mut by_id = HashMap::with_capacity(catalog.len());
    for o in catalog {
        domain_min = domain_min.min(o.interval.st);
        domain_max = domain_max.max(o.interval.end);
        next_id = next_id.max(o.id + 1);
        by_id.insert(o.id, o);
    }
    if domain_min > domain_max {
        (domain_min, domain_max) = (0, 0);
    }

    let shutdown = Arc::new(AtomicBool::new(false));
    let shared = Arc::new(Shared {
        store,
        pool,
        dict,
        persist,
        catalog: Mutex::new(by_id),
        next_id: AtomicU32::new(next_id),
        domain_min: AtomicU64::new(domain_min),
        domain_max: AtomicU64::new(domain_max),
        method: config.method,
        shutdown: Arc::clone(&shutdown),
        addr,
    });

    let accept_shared = Arc::clone(&shared);
    let accept = std::thread::Builder::new()
        .name("tir-accept".into())
        .spawn(move || accept_loop(&listener, &accept_shared))?;

    Ok(ServerHandle {
        addr,
        accept: Some(accept),
        shutdown,
    })
}

fn accept_loop<I>(listener: &TcpListener, shared: &Arc<Shared<I>>)
where
    I: TemporalIrIndex + Clone + Send + Sync + 'static,
{
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let conn_shared = Arc::clone(shared);
        // Connection threads are detached: they exit when the client
        // hangs up, and a stopping server only stops *accepting*.
        // analyze:allow(error-swallow): per-connection best effort — a failed spawn or a client that hung up mid-request must not take down the accept loop
        let _ = std::thread::Builder::new()
            .name("tir-conn".into())
            .spawn(move || {
                let _ = serve_connection(stream, &conn_shared);
            });
    }
}

fn serve_connection<I>(stream: TcpStream, shared: &Shared<I>) -> std::io::Result<()>
where
    I: TemporalIrIndex + Clone + Send + Sync + 'static,
{
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut buf = Vec::new();
    loop {
        buf.clear();
        // Bounded read: at most MAX_LINE_BYTES + 1 bytes are pulled, so
        // a newline-free flood cannot grow the buffer unboundedly.
        let n = std::io::Read::take(&mut reader, MAX_LINE_BYTES + 1).read_until(b'\n', &mut buf)?;
        if n == 0 {
            return Ok(()); // client hung up
        }
        if buf.len() as u64 > MAX_LINE_BYTES && !buf.ends_with(b"\n") {
            // The line is torn mid-stream; resyncing on the next newline
            // would misparse its tail, so answer once and hang up.
            let resp = Response::Err(format!("request line exceeds {MAX_LINE_BYTES} bytes"));
            writer.write_all(format_response(&resp).as_bytes())?;
            writer.write_all(b"\n")?;
            writer.flush()?;
            return Ok(());
        }
        let Ok(text) = std::str::from_utf8(&buf) else {
            let resp = Response::Err("request line is not UTF-8".into());
            writer.write_all(format_response(&resp).as_bytes())?;
            writer.write_all(b"\n")?;
            writer.flush()?;
            return Ok(());
        };
        let trimmed = text.trim_end_matches(['\n', '\r']);
        if trimmed.is_empty() {
            continue;
        }
        // Chaos hook: a seeded plan can hang up mid-conversation here,
        // exercising client-side reconnect + retry.
        if tir_fault::drop_conn(tir_fault::FaultSite::ConnDrop) {
            return Ok(());
        }
        let response = match parse_request(trimmed) {
            Ok(req) => {
                let is_shutdown = matches!(req, Request::Shutdown);
                let resp = handle(shared, req);
                if is_shutdown {
                    writer.write_all(format_response(&resp).as_bytes())?;
                    writer.write_all(b"\n")?;
                    writer.flush()?;
                    return Ok(());
                }
                resp
            }
            Err(msg) => Response::Err(msg),
        };
        writer.write_all(format_response(&response).as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
    }
}

fn handle<I>(shared: &Shared<I>, req: Request) -> Response
where
    I: TemporalIrIndex + Clone + Send + Sync + 'static,
{
    match req {
        Request::Query {
            from,
            to,
            elems,
            deadline_ms,
        } => {
            // The deadline clock starts at dispatch: queue wait counts
            // against the budget, which is what a client experiences.
            let deadline = deadline_ms
                .map(|ms| std::time::Instant::now() + std::time::Duration::from_millis(ms));
            let resolved: Option<Vec<u32>> = {
                let dict = lock(&shared.dict);
                elems.iter().map(|t| dict.dict().lookup(t)).collect()
            };
            match resolved {
                // An element nothing was ever tagged with ⇒ empty answer.
                None => Response::Hits(Vec::new()),
                Some(ids) => match shared
                    .pool
                    .execute_with_deadline(TimeTravelQuery::new(from, to, ids), deadline)
                {
                    Ok(QueryOutcome::Answered(reply)) => {
                        let mut ids = reply.ids;
                        ids.sort_unstable();
                        Response::Hits(ids)
                    }
                    Ok(QueryOutcome::TimedOut) => Response::Timeout,
                    Err(Rejected::Overloaded) => Response::Overloaded,
                    Err(_) => Response::Err("server shutting down".into()),
                },
            }
        }
        Request::Insert {
            id,
            from,
            to,
            elems,
        } => {
            // On a durable server, interning fsyncs new terms to
            // `terms.log` *before* the op can be enqueued, so no WAL
            // record can ever reference an unlogged term id.
            let desc: std::io::Result<Vec<u32>> = {
                let mut dict = lock(&shared.dict);
                elems.iter().map(|t| dict.intern(t)).collect()
            };
            let desc = match desc {
                Ok(desc) => desc,
                Err(e) => return Response::Err(format!("term log append failed: {e}")),
            };
            let object = Object::new(id, from, to, desc);
            // Admission control: the catalog lock spans the liveness
            // check and the enqueue so two racing INSERTs of one id
            // cannot both pass.
            let mut catalog = lock(&shared.catalog);
            if catalog.contains_key(&id) {
                return Response::Err(format!("id {id} already live"));
            }
            match shared.store.enqueue(WriteOp::Insert(object.clone())) {
                Err(Rejected::Degraded) => Response::Degraded,
                Ok(()) => {
                    catalog.insert(id, object);
                    drop(catalog);
                    // analyze:allow(atomic-ordering): advisory id hint for loadgen; uniqueness is enforced by the catalog lock
                    shared.next_id.fetch_max(id + 1, Ordering::Relaxed);
                    // analyze:allow(atomic-ordering): advisory domain bound for loadgen; staleness only skews generated queries
                    shared.domain_min.fetch_min(from, Ordering::Relaxed);
                    // analyze:allow(atomic-ordering): advisory domain bound for loadgen; staleness only skews generated queries
                    shared.domain_max.fetch_max(to, Ordering::Relaxed);
                    Response::Ok
                }
                Err(Rejected::Overloaded) => Response::Overloaded,
                Err(Rejected::Closed) => Response::Err("server shutting down".into()),
            }
        }
        Request::Delete { id } => {
            let mut catalog = lock(&shared.catalog);
            let Some(object) = catalog.remove(&id) else {
                return Response::Missing;
            };
            match shared.store.enqueue(WriteOp::Delete(object.clone())) {
                Ok(()) => Response::Ok,
                Err(Rejected::Overloaded) => {
                    catalog.insert(id, object); // not deleted after all
                    Response::Overloaded
                }
                Err(Rejected::Degraded) => {
                    catalog.insert(id, object); // not deleted after all
                    Response::Degraded
                }
                Err(Rejected::Closed) => Response::Err("server shutting down".into()),
            }
        }
        Request::Flush => match shared.store.flush() {
            Ok(epoch) => Response::Epoch(epoch),
            Err(Rejected::Overloaded) => Response::Overloaded,
            Err(Rejected::Degraded) => Response::Degraded,
            Err(Rejected::Closed) => Response::Err("server shutting down".into()),
        },
        Request::Snapshot => match shared.store.force_snapshot() {
            Ok(epoch) => Response::Epoch(epoch),
            Err(Rejected::Overloaded) => Response::Overloaded,
            Err(Rejected::Degraded) => Response::Degraded,
            Err(Rejected::Closed) => Response::Err("server shutting down".into()),
        },
        Request::Health => Response::Health(if shared.shutdown.load(Ordering::SeqCst) {
            HealthStatus::Draining
        } else {
            shared.store.health()
        }),
        Request::Stats => {
            let snap = shared.store.snapshot();
            let estats = shared.store.stats();
            let pstats = shared.pool.stats();
            // analyze:allow(atomic-ordering): every load below is a stat/gauge read for a point-in-time report; torn cross-counter views are acceptable
            let pairs: Vec<(String, String)> = [
                ("method", shared.method.clone()),
                ("health", shared.store.health().as_str().to_string()),
                ("epoch", snap.epoch.to_string()),
                ("live", snap.live.to_string()),
                ("size_bytes", snap.index.size_bytes().to_string()),
                (
                    "next_id",
                    shared.next_id.load(Ordering::Relaxed).to_string(),
                ),
                (
                    "domain",
                    format!(
                        "{}:{}",
                        shared.domain_min.load(Ordering::Relaxed),
                        shared.domain_max.load(Ordering::Relaxed)
                    ),
                ),
                ("workers", shared.pool.workers().to_string()),
                ("served", pstats.served.load(Ordering::Relaxed).to_string()),
                (
                    "overloaded",
                    pstats.overloaded.load(Ordering::Relaxed).to_string(),
                ),
                (
                    "batches",
                    pstats.batches.load(Ordering::Relaxed).to_string(),
                ),
                (
                    "timeouts",
                    pstats.timeouts.load(Ordering::Relaxed).to_string(),
                ),
                (
                    "worker_panics",
                    pstats.worker_panics.load(Ordering::Relaxed).to_string(),
                ),
                (
                    "inserts",
                    estats.inserts.load(Ordering::Relaxed).to_string(),
                ),
                (
                    "deletes",
                    estats.deletes.load(Ordering::Relaxed).to_string(),
                ),
                (
                    "missed_deletes",
                    estats.missed_deletes.load(Ordering::Relaxed).to_string(),
                ),
                (
                    "violations",
                    estats.violations.load(Ordering::Relaxed).to_string(),
                ),
                (
                    "flushes",
                    estats.flushes.load(Ordering::Relaxed).to_string(),
                ),
                (
                    "degraded_writes",
                    estats.degraded_writes.load(Ordering::Relaxed).to_string(),
                ),
            ]
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect();
            let mut pairs = pairs;
            // Durability block: all-SeqCst counters owned by tir-persist.
            pairs.push(("durable".into(), shared.persist.is_some().to_string()));
            if let Some(p) = &shared.persist {
                for (k, v) in [
                    ("snapshot_epoch", p.snapshot_epoch.load(Ordering::SeqCst)),
                    ("recovered_epoch", p.recovered_epoch.load(Ordering::SeqCst)),
                    ("wal_records", p.wal_records.load(Ordering::SeqCst)),
                    ("wal_bytes", p.wal_bytes.load(Ordering::SeqCst)),
                    ("wal_fsyncs", p.wal_fsyncs.load(Ordering::SeqCst)),
                    ("wal_segments", p.wal_segments.load(Ordering::SeqCst)),
                    ("snapshots", p.snapshots.load(Ordering::SeqCst)),
                ] {
                    pairs.push((k.to_string(), v.to_string()));
                }
            }
            // Conjunction-planner kernel mix (process-wide totals): lets
            // loadgen and CI spot kernel-selection regressions.
            let kstats = tir_invidx::global_stats();
            for (k, v) in [
                ("kern_merge", kstats.merge_steps),
                ("kern_simd_merge", kstats.simd_merge_steps),
                ("kern_gallop", kstats.gallop_steps),
                ("kern_bitmap_probe", kstats.bitmap_probe_steps),
                ("kern_word_and", kstats.word_and_steps),
                ("kern_run_intersect", kstats.run_intersect_steps),
                ("blocks_decoded", kstats.blocks_decoded),
                ("elems_scanned", kstats.scanned),
            ] {
                pairs.push((k.to_string(), v.to_string()));
            }
            Response::Stats(pairs)
        }
        Request::Elems { n } => {
            let guard = lock(&shared.dict);
            let dict = guard.dict();
            let total = dict.len();
            if n == 0 || total == 0 {
                return Response::Elems(Vec::new());
            }
            // Even sample across the id space; skip terms the wire
            // format cannot carry (whitespace).
            let step = (total / n).max(1);
            let mut terms = Vec::with_capacity(n.min(total));
            let mut id = 0usize;
            while id < total && terms.len() < n {
                if let Some(t) = dict.term(id as u32) {
                    if !t.is_empty() && !t.chars().any(char::is_whitespace) {
                        terms.push(t.to_string());
                    }
                }
                id += step;
            }
            Response::Elems(terms)
        }
        Request::Shutdown => {
            shared.shutdown.store(true, Ordering::SeqCst);
            // analyze:allow(error-swallow): the connect exists only to wake accept(); if it fails the loop is already unblocked or gone
            let _ = TcpStream::connect(shared.addr); // unblock accept()
            Response::Bye
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tir_core::{BruteForce, Collection};

    fn example_server() -> ServerHandle {
        let coll = Collection::running_example();
        let mut dict = Dictionary::new();
        for name in ["a", "b", "c"] {
            dict.intern(name);
        }
        spawn_server(
            BruteForce::build(coll.objects()),
            coll.objects().to_vec(),
            dict,
            ServerConfig {
                method: "brute-force".into(),
                ..Default::default()
            },
            None,
        )
        .expect("server spawns")
    }

    fn roundtrip(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, req: &str) -> String {
        stream
            .write_all(format!("{req}\n").as_bytes())
            .expect("write");
        stream.flush().expect("flush");
        let mut line = String::new();
        reader.read_line(&mut line).expect("read");
        line.trim_end().to_string()
    }

    #[test]
    fn end_to_end_query_insert_delete_stats() {
        let server = example_server();
        let mut stream = TcpStream::connect(server.addr()).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));

        assert_eq!(
            roundtrip(&mut stream, &mut reader, "QUERY 5 9 a,c"),
            "HITS 3 1 3 6"
        );
        // Unknown element: empty answer, not an error.
        assert_eq!(
            roundtrip(&mut stream, &mut reader, "QUERY 5 9 zebra"),
            "HITS 0"
        );
        assert_eq!(
            roundtrip(&mut stream, &mut reader, "INSERT 8 5 6 a,c"),
            "OK"
        );
        // Duplicate id is rejected at admission.
        assert!(roundtrip(&mut stream, &mut reader, "INSERT 8 0 1 b").starts_with("ERR"));
        // The write becomes visible (poll; the applier is asynchronous).
        let mut seen = false;
        for _ in 0..200 {
            if roundtrip(&mut stream, &mut reader, "QUERY 5 9 a,c") == "HITS 4 1 3 6 8" {
                seen = true;
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        assert!(seen, "inserted object never became visible");
        assert_eq!(roundtrip(&mut stream, &mut reader, "DELETE 8"), "OK");
        assert_eq!(roundtrip(&mut stream, &mut reader, "DELETE 8"), "MISSING");

        let stats = roundtrip(&mut stream, &mut reader, "STATS");
        assert!(stats.starts_with("STATS "), "{stats}");
        assert!(stats.contains("method=brute-force"), "{stats}");
        assert!(stats.contains("violations=0"), "{stats}");

        let elems = roundtrip(&mut stream, &mut reader, "ELEMS 8");
        assert!(elems.starts_with("ELEMS "), "{elems}");

        assert!(roundtrip(&mut stream, &mut reader, "BOGUS").starts_with("ERR"));
        server.stop();
    }

    #[test]
    fn flush_is_a_visibility_barrier_on_the_wire() {
        let server = example_server();
        let mut stream = TcpStream::connect(server.addr()).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        assert_eq!(
            roundtrip(&mut stream, &mut reader, "INSERT 8 5 6 a,c"),
            "OK"
        );
        // FLUSH waits for the applier: no polling needed afterwards.
        let flush = roundtrip(&mut stream, &mut reader, "FLUSH");
        assert!(flush.starts_with("EPOCH "), "{flush}");
        assert_eq!(
            roundtrip(&mut stream, &mut reader, "QUERY 5 9 a,c"),
            "HITS 4 1 3 6 8"
        );
        // On an in-memory server SNAPSHOT degrades to a flush barrier.
        assert!(roundtrip(&mut stream, &mut reader, "SNAPSHOT").starts_with("EPOCH "));
        let stats = roundtrip(&mut stream, &mut reader, "STATS");
        assert!(stats.contains("durable=false"), "{stats}");
        server.stop();
    }

    #[test]
    fn durable_server_flushes_snapshots_and_recovers() {
        use tir_persist::{Durability, DurabilityOptions, Recovered, TermLog};

        let dir = std::env::temp_dir().join(format!("tir-serve-durable-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let coll = Collection::running_example();
        let mut dict = Dictionary::new();
        for name in ["a", "b", "c"] {
            dict.intern(name);
        }
        let index = BruteForce::build(coll.objects());
        let durability = Durability::create(
            &dir,
            &index,
            &dict,
            coll.objects(),
            DurabilityOptions::default(),
        )
        .expect("create data dir");
        let log = TermLog::open(&dir).expect("term log");
        let server = spawn_server_durable(
            index,
            ServeDict::durable(dict, log),
            durability,
            ServerConfig {
                method: "brute-force".into(),
                ..Default::default()
            },
            None,
        )
        .expect("server spawns");
        let mut stream = TcpStream::connect(server.addr()).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));

        // A fresh term rides along: it must hit terms.log before the op.
        assert_eq!(
            roundtrip(&mut stream, &mut reader, "INSERT 8 5 6 a,zebra"),
            "OK"
        );
        assert_eq!(roundtrip(&mut stream, &mut reader, "FLUSH"), "EPOCH 1");
        assert_eq!(
            roundtrip(&mut stream, &mut reader, "QUERY 5 9 zebra"),
            "HITS 1 8"
        );
        assert_eq!(roundtrip(&mut stream, &mut reader, "SNAPSHOT"), "EPOCH 1");
        let stats = roundtrip(&mut stream, &mut reader, "STATS");
        assert!(stats.contains("durable=true"), "{stats}");
        assert!(stats.contains("snapshot_epoch=1"), "{stats}");
        assert!(stats.contains("wal_records=1"), "{stats}");

        // Recover from a copy of the directory (the server still owns
        // the original): the acknowledged state must all be there.
        let copy =
            std::env::temp_dir().join(format!("tir-serve-durable-copy-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&copy);
        std::fs::create_dir_all(&copy).expect("copy dir");
        for entry in std::fs::read_dir(&dir).expect("read dir") {
            let entry = entry.expect("entry");
            std::fs::copy(entry.path(), copy.join(entry.file_name())).expect("copy");
        }
        let r: Recovered<BruteForce> =
            Durability::recover(&copy, DurabilityOptions::default()).expect("recover");
        assert_eq!(r.epoch, 1);
        assert_eq!(r.replayed, 0, "the forced snapshot covers the write");
        assert_eq!(r.dict.lookup("zebra"), Some(3));
        assert_eq!(
            r.index
                .query(&tir_core::TimeTravelQuery::new(5, 9, vec![3])),
            vec![8]
        );

        server.stop();
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&copy);
    }

    #[test]
    fn health_deadlines_and_oversize_lines() {
        let server = example_server();
        let mut stream = TcpStream::connect(server.addr()).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));

        assert_eq!(roundtrip(&mut stream, &mut reader, "HEALTH"), "HEALTH ok");
        // An already-expired budget answers TIMEOUT deterministically.
        assert_eq!(
            roundtrip(&mut stream, &mut reader, "QUERY 5 9 a,c DEADLINE 0"),
            "TIMEOUT"
        );
        // A generous budget answers normally.
        assert_eq!(
            roundtrip(&mut stream, &mut reader, "QUERY 5 9 a,c DEADLINE 60000"),
            "HITS 3 1 3 6"
        );
        let stats = roundtrip(&mut stream, &mut reader, "STATS");
        assert!(stats.contains("health=ok"), "{stats}");
        assert!(stats.contains("timeouts=1"), "{stats}");
        assert!(stats.contains("worker_panics=0"), "{stats}");

        // An oversize line answers one ERR and closes the connection.
        let mut big = String::from("QUERY 5 9 ");
        big.push_str(&"a".repeat(MAX_LINE_BYTES as usize + 16));
        big.push('\n');
        stream.write_all(big.as_bytes()).expect("write oversize");
        stream.flush().expect("flush");
        let mut line = String::new();
        reader.read_line(&mut line).expect("read");
        assert!(line.starts_with("ERR"), "{line}");
        line.clear();
        assert_eq!(
            reader.read_line(&mut line).expect("read"),
            0,
            "server must hang up after an oversize line"
        );
        server.stop();
    }

    #[test]
    fn shutdown_request_stops_accept_loop() {
        let server = example_server();
        let mut stream = TcpStream::connect(server.addr()).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        assert_eq!(roundtrip(&mut stream, &mut reader, "SHUTDOWN"), "BYE");
        server.join(); // returns because the accept loop exited
    }
}
