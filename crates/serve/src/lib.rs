//! # tir-serve
//!
//! The concurrent query-serving layer over any [`TemporalIrIndex`]
//! (`tir-core`): what turns this repo's single-threaded index structures
//! into something that can take sustained mixed read/write traffic.
//!
//! Three pieces, std-only:
//!
//! * **[`epoch`]** — the [`EpochStore`](epoch::EpochStore): readers grab
//!   an `Arc` snapshot and never block; a single applier thread coalesces
//!   insert/delete batches, applies them to its private master copy,
//!   optionally validates the result (`tir-check` hook), and atomically
//!   swaps in the next epoch.
//! * **[`durable`]** — the same store with a write-ahead log in front
//!   ([`EpochStore::new_durable`](epoch::EpochStore::new_durable),
//!   `tir-persist`): a batch is acknowledged only after its WAL record is
//!   fsynced, snapshots land on flush barriers and shutdown, and restart
//!   recovers to last-snapshot + WAL replay.
//! * **[`pool`]** — the [`QueryPool`](pool::QueryPool): a worker pool
//!   with per-shard dispatch (element-hashed), query batching (one
//!   snapshot grab per batch), and explicit `Overloaded` backpressure
//!   from bounded queues.
//! * **[`server`]/[`loadgen`]** — a TCP front end speaking the
//!   line-oriented [`protocol`] (`QUERY`/`INSERT`/`DELETE`/`STATS`…) and
//!   a closed-loop load generator reporting throughput and p50/p95/p99
//!   latency from the in-crate [`histogram`].
//!
//! ```
//! use std::sync::Arc;
//! use tir_core::prelude::*;
//! use tir_serve::epoch::{EpochConfig, EpochStore, WriteOp};
//! use tir_serve::pool::{PoolConfig, QueryPool};
//!
//! let coll = Collection::running_example();
//! let store = Arc::new(EpochStore::new(
//!     IrHintPerf::build(&coll),
//!     coll.len() as u64,
//!     EpochConfig::default(),
//! ));
//! let pool = QueryPool::new(Arc::clone(&store), PoolConfig::default());
//!
//! // Reads never block on this write:
//! store.enqueue(WriteOp::Insert(Object::new(8, 5, 6, vec![0, 2]))).unwrap();
//! store.flush().unwrap(); // write barrier
//! let mut ids = pool.execute(TimeTravelQuery::new(5, 9, vec![0, 2])).unwrap().ids;
//! ids.sort_unstable();
//! assert_eq!(ids, vec![1, 3, 6, 8]);
//! ```
//!
//! [`TemporalIrIndex`]: tir_core::TemporalIrIndex

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod durable;
pub mod epoch;
pub mod histogram;
pub mod json;
pub mod loadgen;
pub mod pool;
pub mod protocol;
pub mod server;
pub mod witness;

pub use durable::ServeDict;
pub use epoch::{EpochConfig, EpochStore, Rejected, Snapshot, WriteOp};
pub use histogram::LatencyHistogram;
pub use json::Json;
pub use loadgen::{LoadgenConfig, LoadgenReport};
pub use pool::{PoolConfig, QueryOutcome, QueryPool, QueryReply};
pub use protocol::HealthStatus;
pub use server::{spawn_server, spawn_server_durable, ServerConfig, ServerHandle};
