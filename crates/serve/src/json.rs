//! Minimal JSON serialization for the machine-readable benchmark
//! artifacts (`BENCH_serve.json`, `BENCH_query.json`).
//!
//! The workspace is deliberately dependency-free, so instead of serde
//! this is a tiny value tree with a `Display` that emits valid JSON
//! (string escaping included). Non-finite floats serialize as `null`.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Unsigned integer (kept separate from floats for exact output).
    Int(u64),
    /// Float; non-finite values serialize as `null`.
    Num(f64),
    /// String (escaped on output).
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object, order-preserving.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Convenience constructor for a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }
}

fn escape(s: &str, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(n) => write!(f, "{n}"),
            Json::Num(x) if x.is_finite() => write!(f, "{x}"),
            Json::Num(_) => f.write_str("null"),
            Json::Str(s) => escape(s, f),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    escape(k, f)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structures() {
        let j = Json::obj(vec![
            ("method", Json::str("irHINT(perf)")),
            ("qps", Json::Num(12345.5)),
            ("requests", Json::Int(5000)),
            ("ok", Json::Bool(true)),
            ("tags", Json::Arr(vec![Json::str("a"), Json::Int(2)])),
        ]);
        assert_eq!(
            j.to_string(),
            r#"{"method":"irHINT(perf)","qps":12345.5,"requests":5000,"ok":true,"tags":["a",2]}"#
        );
    }

    #[test]
    fn escapes_strings() {
        let j = Json::str("a\"b\\c\nd\u{1}");
        assert_eq!(j.to_string(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }
}
