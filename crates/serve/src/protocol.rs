//! The line-oriented wire protocol of `tir serve`.
//!
//! One request per line, one response line per request, UTF-8,
//! space-separated fields, elements comma-separated:
//!
//! ```text
//! request  := QUERY <from> <to> <elem>[,<elem>...] [DEADLINE <ms>]
//!           | INSERT <id> <from> <to> <elem>[,<elem>...]
//!           | DELETE <id>
//!           | FLUSH
//!           | SNAPSHOT
//!           | HEALTH
//!           | STATS
//!           | ELEMS <n>
//!           | SHUTDOWN
//! response := HITS <n>[ <id>...]      answer set of a QUERY
//!           | OK                      write admitted
//!           | MISSING                 DELETE of an id that is not live
//!           | OVERLOADED              backpressure: request shed, retry
//!           | TIMEOUT                 QUERY deadline expired mid-plan
//!           | DEGRADED                write refused: server is read-only
//!           | EPOCH <n>               FLUSH / SNAPSHOT barrier reached
//!           | HEALTH ok|degraded|draining
//!           | STATS <k>=<v>[ <k>=<v>...]
//!           | ELEMS [<term>...]       sample of dictionary terms
//!           | BYE                     acknowledges SHUTDOWN
//!           | ERR <message>           malformed or rejected request
//! ```
//!
//! Element tokens are dictionary *strings* (e.g. `e42` for generated
//! corpora); empty element tokens are a hard protocol error, mirroring
//! the CLI's strict `--elems` parsing. `OVERLOADED`, `TIMEOUT` and
//! `DEGRADED` are well-formed outcomes, not protocol errors: load
//! generators count each separately.
//!
//! Deadline semantics: `DEADLINE <ms>` starts ticking when the server
//! dispatches the query. A worker answers `TIMEOUT` if the deadline has
//! passed when it dequeues the job, or if the mid-plan progress probe
//! sees it expire; a query that *completes* is answered normally even if
//! the clock has passed the deadline, because the full answer is correct
//! and already paid for.

use tir_core::ObjectId;

/// A parsed client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Answer a time-travel query.
    Query {
        /// Query interval start (inclusive).
        from: u64,
        /// Query interval end (inclusive).
        to: u64,
        /// Required element terms (non-empty, each token non-empty).
        elems: Vec<String>,
        /// Per-request deadline in milliseconds from dispatch (`DEADLINE
        /// <ms>`); `None` means no deadline.
        deadline_ms: Option<u64>,
    },
    /// Insert a new object.
    Insert {
        /// Fresh object id (tombstone bit must be clear).
        id: ObjectId,
        /// Lifespan start.
        from: u64,
        /// Lifespan end.
        to: u64,
        /// Descriptive element terms.
        elems: Vec<String>,
    },
    /// Logically delete a live object.
    Delete {
        /// The object id.
        id: ObjectId,
    },
    /// Write barrier: block until every prior write on any connection is
    /// applied (and, on a durable server, fsynced), answer the epoch.
    Flush,
    /// Force a durable snapshot now (durable servers; others treat it as
    /// a flush), answer the epoch it captured.
    Snapshot,
    /// Report the serving health state.
    Health,
    /// Server counters.
    Stats,
    /// Sample up to `n` dictionary terms (for workload generation).
    Elems {
        /// Maximum number of terms to return.
        n: usize,
    },
    /// Stop accepting connections and exit the accept loop.
    Shutdown,
}

/// A parsed server response (the client/loadgen side).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Answer set.
    Hits(Vec<ObjectId>),
    /// Write admitted.
    Ok,
    /// DELETE target not live.
    Missing,
    /// Backpressure rejection.
    Overloaded,
    /// QUERY deadline expired before the plan finished.
    Timeout,
    /// Write refused: the server is in read-only degraded mode.
    Degraded,
    /// Barrier acknowledgment of `FLUSH`/`SNAPSHOT`: the epoch reached.
    Epoch(u64),
    /// Counter pairs, verbatim `k=v` tokens.
    Stats(Vec<(String, String)>),
    /// Dictionary term sample.
    Elems(Vec<String>),
    /// Health report.
    Health(HealthStatus),
    /// Shutdown acknowledged.
    Bye,
    /// Request-level error.
    Err(String),
}

/// The serving health state reported by the `HEALTH` verb.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthStatus {
    /// Fully serving: reads and writes admitted.
    Ok,
    /// Read-only: a durability failure latched the applier into degraded
    /// mode; queries serve the last acked epoch, writes get `DEGRADED`.
    Degraded,
    /// Shutdown requested: existing connections drain, no new accepts.
    Draining,
}

impl HealthStatus {
    /// The wire token (`ok`, `degraded`, `draining`).
    pub fn as_str(self) -> &'static str {
        match self {
            HealthStatus::Ok => "ok",
            HealthStatus::Degraded => "degraded",
            HealthStatus::Draining => "draining",
        }
    }

    /// Parses a wire token.
    pub fn parse(tok: &str) -> Result<HealthStatus, String> {
        match tok {
            "ok" => Ok(HealthStatus::Ok),
            "degraded" => Ok(HealthStatus::Degraded),
            "draining" => Ok(HealthStatus::Draining),
            other => Err(format!("unknown health state '{other}'")),
        }
    }
}

/// Splits a comma-separated element list, rejecting empty tokens — the
/// same strictness the CLI applies to `--elems`.
pub fn parse_elems(field: &str) -> Result<Vec<String>, String> {
    if field.is_empty() {
        return Err("empty element list".into());
    }
    let mut out = Vec::new();
    for tok in field.split(',') {
        let tok = tok.trim();
        if tok.is_empty() {
            return Err(format!("empty element token in '{field}'"));
        }
        out.push(tok.to_string());
    }
    Ok(out)
}

fn parse_u64(tok: &str, what: &str) -> Result<u64, String> {
    tok.parse().map_err(|_| format!("bad {what} '{tok}'"))
}

fn parse_id(tok: &str) -> Result<ObjectId, String> {
    let id: u64 = parse_u64(tok, "id")?;
    if id >= (1 << 31) {
        return Err(format!("id {id} out of range (tombstone bit reserved)"));
    }
    Ok(id as ObjectId)
}

/// Parses one request line.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let mut toks = line.split_ascii_whitespace();
    let verb = toks.next().ok_or("empty request")?;
    let rest: Vec<&str> = toks.collect();
    let arity = |n: usize| -> Result<(), String> {
        if rest.len() == n {
            Ok(())
        } else {
            Err(format!("{verb} takes {n} argument(s), got {}", rest.len()))
        }
    };
    match verb {
        "QUERY" => {
            let deadline_ms = match rest.len() {
                3 => None,
                5 if rest[3] == "DEADLINE" => Some(parse_u64(rest[4], "deadline")?),
                _ => {
                    return Err(format!(
                        "QUERY takes <from> <to> <elems> [DEADLINE <ms>], got {} argument(s)",
                        rest.len()
                    ))
                }
            };
            let from = parse_u64(rest[0], "from")?;
            let to = parse_u64(rest[1], "to")?;
            if from > to {
                return Err(format!("from {from} > to {to}"));
            }
            Ok(Request::Query {
                from,
                to,
                elems: parse_elems(rest[2])?,
                deadline_ms,
            })
        }
        "INSERT" => {
            arity(4)?;
            let id = parse_id(rest[0])?;
            let from = parse_u64(rest[1], "from")?;
            let to = parse_u64(rest[2], "to")?;
            if from > to {
                return Err(format!("from {from} > to {to}"));
            }
            Ok(Request::Insert {
                id,
                from,
                to,
                elems: parse_elems(rest[3])?,
            })
        }
        "DELETE" => {
            arity(1)?;
            Ok(Request::Delete {
                id: parse_id(rest[0])?,
            })
        }
        "FLUSH" => {
            arity(0)?;
            Ok(Request::Flush)
        }
        "SNAPSHOT" => {
            arity(0)?;
            Ok(Request::Snapshot)
        }
        "HEALTH" => {
            arity(0)?;
            Ok(Request::Health)
        }
        "STATS" => {
            arity(0)?;
            Ok(Request::Stats)
        }
        "ELEMS" => {
            arity(1)?;
            let n = parse_u64(rest[0], "count")? as usize;
            Ok(Request::Elems { n })
        }
        "SHUTDOWN" => {
            arity(0)?;
            Ok(Request::Shutdown)
        }
        other => Err(format!("unknown verb '{other}'")),
    }
}

/// Formats a response as its wire line (no trailing newline).
pub fn format_response(r: &Response) -> String {
    match r {
        Response::Hits(ids) => {
            let mut s = format!("HITS {}", ids.len());
            for id in ids {
                s.push(' ');
                s.push_str(&id.to_string());
            }
            s
        }
        Response::Ok => "OK".into(),
        Response::Missing => "MISSING".into(),
        Response::Overloaded => "OVERLOADED".into(),
        Response::Timeout => "TIMEOUT".into(),
        Response::Degraded => "DEGRADED".into(),
        Response::Health(h) => format!("HEALTH {}", h.as_str()),
        Response::Epoch(n) => format!("EPOCH {n}"),
        Response::Stats(pairs) => {
            let mut s = "STATS".to_string();
            for (k, v) in pairs {
                s.push(' ');
                s.push_str(k);
                s.push('=');
                s.push_str(v);
            }
            s
        }
        Response::Elems(terms) => {
            let mut s = "ELEMS".to_string();
            for t in terms {
                s.push(' ');
                s.push_str(t);
            }
            s
        }
        Response::Bye => "BYE".into(),
        Response::Err(msg) => format!("ERR {}", msg.replace('\n', " ")),
    }
}

/// Parses a response line (the loadgen side).
pub fn parse_response(line: &str) -> Result<Response, String> {
    let (verb, rest) = match line.split_once(' ') {
        Some((v, r)) => (v, r),
        None => (line, ""),
    };
    match verb {
        "HITS" => {
            let mut toks = rest.split_ascii_whitespace();
            let n: usize = toks
                .next()
                .ok_or("HITS without a count")?
                .parse()
                .map_err(|_| "bad HITS count".to_string())?;
            let ids: Vec<ObjectId> = toks
                .map(|t| t.parse().map_err(|_| format!("bad id '{t}'")))
                .collect::<Result<_, _>>()?;
            if ids.len() != n {
                return Err(format!("HITS count {n} but {} ids", ids.len()));
            }
            Ok(Response::Hits(ids))
        }
        "OK" => Ok(Response::Ok),
        "MISSING" => Ok(Response::Missing),
        "OVERLOADED" => Ok(Response::Overloaded),
        "TIMEOUT" => Ok(Response::Timeout),
        "DEGRADED" => Ok(Response::Degraded),
        "HEALTH" => HealthStatus::parse(rest.trim()).map(Response::Health),
        "EPOCH" => rest
            .trim()
            .parse()
            .map(Response::Epoch)
            .map_err(|_| format!("bad EPOCH value '{rest}'")),
        "STATS" => {
            let pairs = rest
                .split_ascii_whitespace()
                .map(|t| {
                    t.split_once('=')
                        .map(|(k, v)| (k.to_string(), v.to_string()))
                        .ok_or_else(|| format!("bad stats pair '{t}'"))
                })
                .collect::<Result<_, _>>()?;
            Ok(Response::Stats(pairs))
        }
        "ELEMS" => Ok(Response::Elems(
            rest.split_ascii_whitespace().map(str::to_string).collect(),
        )),
        "BYE" => Ok(Response::Bye),
        "ERR" => Ok(Response::Err(rest.to_string())),
        other => Err(format!("unknown response verb '{other}'")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_well_formed_requests() {
        assert_eq!(
            parse_request("QUERY 5 9 a,c").expect("query"),
            Request::Query {
                from: 5,
                to: 9,
                elems: vec!["a".into(), "c".into()],
                deadline_ms: None
            }
        );
        assert_eq!(
            parse_request("QUERY 5 9 a,c DEADLINE 250").expect("query"),
            Request::Query {
                from: 5,
                to: 9,
                elems: vec!["a".into(), "c".into()],
                deadline_ms: Some(250)
            }
        );
        assert_eq!(
            parse_request("INSERT 8 5 6 a,c").expect("insert"),
            Request::Insert {
                id: 8,
                from: 5,
                to: 6,
                elems: vec!["a".into(), "c".into()]
            }
        );
        assert_eq!(
            parse_request("DELETE 8").expect("delete"),
            Request::Delete { id: 8 }
        );
        assert_eq!(parse_request("FLUSH").expect("flush"), Request::Flush);
        assert_eq!(
            parse_request("SNAPSHOT").expect("snapshot"),
            Request::Snapshot
        );
        assert_eq!(parse_request("STATS").expect("stats"), Request::Stats);
        assert_eq!(
            parse_request("ELEMS 16").expect("elems"),
            Request::Elems { n: 16 }
        );
        assert_eq!(parse_request("HEALTH").expect("health"), Request::Health);
        assert_eq!(parse_request("SHUTDOWN").expect("bye"), Request::Shutdown);
    }

    #[test]
    fn rejects_malformed_requests() {
        for bad in [
            "",
            "NOPE 1 2",
            "QUERY 5 9",               // missing elems
            "QUERY 9 5 a",             // inverted interval
            "QUERY x 9 a",             // bad number
            "QUERY 5 9 a,,c",          // empty element token
            "QUERY 5 9 a DEADLINE",    // missing deadline value
            "QUERY 5 9 a DEADLINE x",  // bad deadline value
            "QUERY 5 9 a TIMEOUT 5",   // wrong trailing keyword
            "HEALTH now",              // arity
            "QUERY 5 9 ,",             // only empty tokens
            "INSERT 8 5 6",            // missing elems
            "INSERT 2147483648 0 1 a", // tombstone bit
            "DELETE",                  // missing id
            "DELETE x",                // bad id
            "STATS now",               // arity
            "FLUSH 1",                 // arity
            "SNAPSHOT now",            // arity
            "ELEMS",                   // arity
        ] {
            assert!(parse_request(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn response_roundtrip() {
        for r in [
            Response::Hits(vec![1, 3, 6]),
            Response::Hits(vec![]),
            Response::Ok,
            Response::Missing,
            Response::Overloaded,
            Response::Timeout,
            Response::Degraded,
            Response::Health(HealthStatus::Ok),
            Response::Health(HealthStatus::Degraded),
            Response::Health(HealthStatus::Draining),
            Response::Epoch(42),
            Response::Stats(vec![
                ("epoch".into(), "7".into()),
                ("live".into(), "1000".into()),
            ]),
            Response::Elems(vec!["e1".into(), "e2".into()]),
            Response::Bye,
            Response::Err("bad thing".into()),
        ] {
            let line = format_response(&r);
            assert!(!line.contains('\n'));
            assert_eq!(parse_response(&line).expect("roundtrip"), r, "{line}");
        }
    }

    #[test]
    fn hits_count_must_match() {
        assert!(parse_response("HITS 2 1").is_err());
        assert!(parse_response("HITS x").is_err());
    }

    #[test]
    fn epoch_value_must_parse() {
        assert!(parse_response("EPOCH x").is_err());
        assert!(parse_response("EPOCH").is_err());
    }

    #[test]
    fn health_state_must_parse() {
        assert!(parse_response("HEALTH weird").is_err());
        assert!(parse_response("HEALTH").is_err());
        assert_eq!(
            parse_response("HEALTH degraded").expect("health"),
            Response::Health(HealthStatus::Degraded)
        );
    }
}
