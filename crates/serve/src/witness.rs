//! Lock acquisition helper + dynamic lock-order witness.
//!
//! Every mutex in the serving stack is taken through [`lock`], which
//! does two jobs:
//!
//! 1. **Poison policy** — a poisoned mutex (a holder panicked) means the
//!    serving invariants no longer hold, so propagating the panic is
//!    correct. This was the PR 2 helper; it now lives here.
//! 2. **Lock-order witness** (debug builds only) — the runtime
//!    counterpart of tir-analyze's static `lock-order` rule. Each call
//!    site (via `#[track_caller]`) registers the acquisition in a global
//!    ordering registry keyed by *mutex address*; acquiring mutex B
//!    while holding A establishes the order A → B. If any thread later
//!    tries an acquisition that would close a cycle, the witness panics
//!    **before blocking on the lock**, naming both call sites and the
//!    full path of previously established edges — turning a
//!    once-in-a-million deadlock hang into a deterministic test failure
//!    with actionable site IDs.
//!
//! The check-then-acquire order matters: the edge is recorded inside the
//! registry's critical section before the target mutex is contended, so
//! two threads racing opposite orders for the first time serialize on
//! the registry and the second one panics instead of deadlocking.
//!
//! Release builds compile the witness out entirely; [`lock`] reduces to
//! the bare poison-tolerant acquire.
//!
//! Limits, stated honestly: identity is the mutex's address, so a mutex
//! freed and another allocated at the same address could alias histories
//! (harmless for the long-lived serving mutexes this guards), and the
//! registry never forgets an edge — which is the point: ordering is a
//! program-wide invariant, not a per-run accident.

#[cfg(debug_assertions)]
pub(crate) use tracked::lock;

#[cfg(not(debug_assertions))]
pub(crate) use plain::lock;

#[cfg(not(debug_assertions))]
mod plain {
    use std::sync::{Mutex, MutexGuard};

    /// Poison-tolerant acquire (release build: no witness overhead).
    pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
        // analyze:allow(raw-lock): this IS the tracked helper's release form
        // analyze:allow(panic-reachability): poison policy — a poisoned serving
        // mutex means the invariants are gone; propagating the panic is correct
        m.lock()
            .expect("serving mutex poisoned by a panicked thread")
    }
}

#[cfg(debug_assertions)]
mod tracked {
    use std::cell::RefCell;
    use std::collections::HashMap;
    use std::ops::{Deref, DerefMut};
    use std::panic::Location;
    use std::sync::{Mutex, MutexGuard, OnceLock};

    /// A lock identity: the mutex's address.
    type LockId = usize;

    /// A call site, for reporting (`file:line:col`).
    type SiteId = &'static Location<'static>;

    struct Edge {
        /// Site that was holding `from` when `to` was acquired.
        held_at: SiteId,
        /// Site that acquired `to`.
        acquired_at: SiteId,
    }

    #[derive(Default)]
    struct Registry {
        /// `from → to`: `to` was acquired while `from` was held.
        edges: HashMap<LockId, Vec<LockId>>,
        /// First witness of each edge, for diagnostics.
        sites: HashMap<(LockId, LockId), Edge>,
    }

    impl Registry {
        /// Is `to` reachable from `from` over established edges?
        /// Returns the path as `(from, to)` pairs when it is.
        fn path(&self, from: LockId, to: LockId) -> Option<Vec<(LockId, LockId)>> {
            let mut stack = vec![(from, Vec::new())];
            let mut seen = vec![from];
            while let Some((node, path)) = stack.pop() {
                if node == to {
                    return Some(path);
                }
                for &next in self.edges.get(&node).into_iter().flatten() {
                    if !seen.contains(&next) {
                        seen.push(next);
                        let mut p = path.clone();
                        p.push((node, next));
                        stack.push((next, p));
                    }
                }
            }
            None
        }
    }

    fn registry() -> &'static Mutex<Registry> {
        static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
        REGISTRY.get_or_init(|| Mutex::new(Registry::default()))
    }

    thread_local! {
        /// Locks this thread currently holds, in acquisition order.
        static HELD: RefCell<Vec<(LockId, SiteId)>> = const { RefCell::new(Vec::new()) };
    }

    /// A [`MutexGuard`] that unregisters its site from the held stack on
    /// drop. Transparent via `Deref`/`DerefMut`.
    pub(crate) struct TrackedGuard<'a, T> {
        inner: MutexGuard<'a, T>,
        id: LockId,
    }

    impl<T> Deref for TrackedGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.inner
        }
    }

    impl<T> DerefMut for TrackedGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.inner
        }
    }

    impl<T> Drop for TrackedGuard<'_, T> {
        fn drop(&mut self) {
            let id = self.id;
            HELD.with(|held| {
                let mut held = held.borrow_mut();
                if let Some(pos) = held.iter().rposition(|&(h, _)| h == id) {
                    held.remove(pos);
                }
            });
        }
    }

    /// Number of tracked locks the current thread holds (test hook).
    #[cfg(test)]
    fn held_count() -> usize {
        HELD.with(|held| held.borrow().len())
    }

    /// Poison-tolerant, order-witnessed acquire. Panics (before
    /// blocking) on an acquisition that inverts an established order.
    #[track_caller]
    pub(crate) fn lock<T>(m: &Mutex<T>) -> TrackedGuard<'_, T> {
        let site: SiteId = Location::caller();
        let id = std::ptr::from_ref(m) as usize;
        witness_acquire(id, site);
        // analyze:allow(raw-lock): this IS the tracked helper
        // analyze:allow(panic-reachability): poison policy — a poisoned serving
        // mutex means the invariants are gone; propagating the panic is correct
        let inner = m
            .lock()
            .expect("serving mutex poisoned by a panicked thread");
        HELD.with(|held| held.borrow_mut().push((id, site)));
        TrackedGuard { inner, id }
    }

    /// Checks the acquisition of `id` at `site` against every held lock
    /// and records the new ordering edges. Panics on inversion.
    fn witness_acquire(id: LockId, site: SiteId) {
        let held: Vec<(LockId, SiteId)> = HELD.with(|h| h.borrow().clone());
        if held.is_empty() {
            return;
        }
        // Collect the violation message (if any) with the registry
        // guard released, so the panic cannot poison it.
        let mut violation: Option<String> = None;
        {
            // analyze:allow(panic-reachability): a poisoned witness registry means a
            // witness panic unwound mid-update; the debug-build witness must die loudly
            let mut reg = registry()
                .lock() // analyze:allow(raw-lock): the witness registry cannot recurse through the tracked helper
                .expect("lock-order witness registry poisoned");
            for &(held_id, held_site) in &held {
                if held_id == id {
                    violation = Some(format!(
                        "lock-order witness: relocking a mutex already held by this thread\n  \
                         first acquired at {held_site}\n  re-acquired at {site}"
                    ));
                    break;
                }
                if let Some(path) = reg.path(id, held_id) {
                    let mut lines = vec![format!(
                        "lock-order witness: inversion detected in thread {:?}",
                        std::thread::current().name().unwrap_or("<unnamed>")
                    )];
                    lines.push(format!(
                        "  acquiring the lock at site {site} while holding the lock taken at site {held_site}"
                    ));
                    lines.push("  but the opposite order was already established:".into());
                    for (a, b) in &path {
                        if let Some(e) = reg.sites.get(&(*a, *b)) {
                            lines.push(format!(
                                "    held {} -> acquired {}",
                                e.held_at, e.acquired_at
                            ));
                        }
                    }
                    lines.push(format!(
                        "  full held stack: [{}]",
                        held.iter()
                            .map(|(_, s)| s.to_string())
                            .collect::<Vec<_>>()
                            .join(", ")
                    ));
                    violation = Some(lines.join("\n"));
                    break;
                }
                // Record held → id before the acquisition is attempted,
                // so a racing opposite-order thread sees it and panics
                // instead of deadlocking.
                let tos = reg.edges.entry(held_id).or_default();
                if !tos.contains(&id) {
                    tos.push(id);
                    reg.sites.insert(
                        (held_id, id),
                        Edge {
                            held_at: held_site,
                            acquired_at: site,
                        },
                    );
                }
            }
        }
        if let Some(msg) = violation {
            // analyze:allow(panic-path): the witness's whole purpose — a debug-build
            // lock-order inversion must abort loudly, not limp on toward a deadlock
            // analyze:allow(panic-reachability): same — this panic replacing a
            // deadlock hang is the feature, so its reachability from the workers is intended
            panic!("{msg}");
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::sync::Arc;

        fn must_panic(f: impl FnOnce() + Send + 'static) -> String {
            let err = std::thread::Builder::new()
                .name("witness-victim".into())
                .spawn(f)
                .expect("spawn")
                .join()
                .expect_err("the closure must panic");
            match err.downcast::<String>() {
                Ok(s) => *s,
                Err(e) => *e
                    .downcast::<&'static str>()
                    .map(|s| Box::new((*s).to_string()))
                    .expect("panic payload is a string"),
            }
        }

        #[test]
        fn consistent_order_is_quiet() {
            let a = Mutex::new(1u32);
            let b = Mutex::new(2u32);
            for _ in 0..3 {
                let ga = lock(&a);
                let gb = lock(&b);
                assert_eq!(*ga + *gb, 3);
            }
            assert_eq!(held_count(), 0, "guards unregistered on drop");
        }

        #[test]
        fn inversion_panics_with_both_sites() {
            let a = Arc::new(Mutex::new(0u32));
            let b = Arc::new(Mutex::new(0u32));
            // Establish a → b on a helper thread.
            {
                let (a, b) = (Arc::clone(&a), Arc::clone(&b));
                std::thread::spawn(move || {
                    let _ga = lock(&a);
                    let _gb = lock(&b);
                })
                .join()
                .expect("establishing thread");
            }
            // b → a must now panic, naming sites in this file.
            let msg = must_panic(move || {
                let _gb = lock(&b);
                let _ga = lock(&a);
            });
            assert!(msg.contains("inversion detected"), "{msg}");
            assert!(msg.contains("witness.rs"), "sites are file:line:col: {msg}");
            assert!(msg.contains("established"), "{msg}");
        }

        #[test]
        fn relock_of_held_mutex_panics() {
            let m = Arc::new(Mutex::new(0u32));
            let msg = must_panic(move || {
                let _g1 = lock(&m);
                let _g2 = lock(&m); // would self-deadlock without the witness
            });
            assert!(msg.contains("relocking"), "{msg}");
        }

        #[test]
        fn out_of_order_drop_keeps_stack_consistent() {
            let a = Mutex::new(0u32);
            let b = Mutex::new(0u32);
            let ga = lock(&a);
            let gb = lock(&b);
            drop(ga); // non-LIFO release
            assert_eq!(held_count(), 1);
            drop(gb);
            assert_eq!(held_count(), 0);
        }
    }
}
