//! Worker-pool query executor with per-shard dispatch and backpressure.
//!
//! `workers` OS threads each own a bounded request queue. A query is
//! dispatched to the worker chosen by hashing its rarest-first element
//! (per-shard dispatch: queries over the same elements land on the same
//! worker, which keeps that worker's recently traversed postings warm in
//! its core's cache). A full queue rejects with
//! [`Rejected::Overloaded`](crate::epoch::Rejected) — the system degrades
//! by shedding load, never by queueing unboundedly.
//!
//! Each worker drains up to `max_batch` queued requests, grabs **one**
//! epoch snapshot for the whole batch, and answers every query against
//! it, amortizing the snapshot acquisition and giving batch-mates a
//! consistent view.
//!
//! Deadlines: a job may carry an absolute deadline. The worker checks it
//! at dequeue (a job that waited out its budget in the queue is answered
//! [`QueryOutcome::TimedOut`] without touching the index) and arms the
//! [`QueryScratch`] deadline so heavy plans are abandoned mid-flight via
//! the planner's progress probe. A query that completes is answered
//! normally even if the clock passed the deadline — the full answer is
//! correct and already paid for.
//!
//! Panics: each worker thread runs under a respawn-in-place supervisor.
//! A query that panics kills the in-flight job (its client sees a closed
//! reply channel), bumps [`PoolStats::worker_panics`], and re-enters the
//! worker loop with a fresh scratch on the same thread and queue — one
//! poisoned query can never silently shrink the pool.

use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;

use tir_core::{ObjectId, QueryScratch, TemporalIrIndex, TimeTravelQuery};

use crate::epoch::{EpochStore, Rejected};

/// An answered query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryReply {
    /// Epoch of the snapshot that answered.
    pub epoch: u64,
    /// The answer set (unsorted, exactly-once ids).
    pub ids: Vec<ObjectId>,
}

/// What came back for a submitted query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryOutcome {
    /// The query completed; here is its answer.
    Answered(QueryReply),
    /// The job's deadline expired (in queue or mid-plan) before the
    /// answer was complete; any partial answer was discarded.
    TimedOut,
}

struct Job {
    query: TimeTravelQuery,
    deadline: Option<std::time::Instant>,
    reply: SyncSender<QueryOutcome>,
}

/// Tuning knobs of the pool.
#[derive(Debug, Clone, Copy)]
pub struct PoolConfig {
    /// Number of worker threads.
    pub workers: usize,
    /// Bounded per-worker queue depth.
    pub queue_depth: usize,
    /// Maximum queries answered against one snapshot grab.
    pub max_batch: usize,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            workers: 4,
            queue_depth: 256,
            max_batch: 32,
        }
    }
}

/// Counters exported by [`QueryPool::stats`].
#[derive(Debug, Default)]
pub struct PoolStats {
    /// Queries answered.
    pub served: AtomicU64,
    /// Queries rejected because a worker queue was full.
    pub overloaded: AtomicU64,
    /// Snapshot grabs (= batches executed).
    pub batches: AtomicU64,
    /// Largest batch answered against a single snapshot.
    pub max_batch: AtomicU64,
    /// Queries answered `TIMEOUT` (deadline expired in queue or
    /// mid-plan).
    pub timeouts: AtomicU64,
    /// Worker panics caught by the respawn supervisor.
    pub worker_panics: AtomicU64,
}

/// The executor. Submitting is cheap and non-blocking; results come back
/// on per-request channels.
pub struct QueryPool<I> {
    txs: Vec<SyncSender<Job>>,
    handles: Vec<JoinHandle<()>>,
    stats: Arc<PoolStats>,
    _marker: std::marker::PhantomData<fn() -> I>,
}

impl<I: TemporalIrIndex + Clone + Send + Sync + 'static> QueryPool<I> {
    /// Spawns the worker threads over a shared [`EpochStore`].
    pub fn new(store: Arc<EpochStore<I>>, config: PoolConfig) -> QueryPool<I> {
        let workers = config.workers.max(1);
        let stats = Arc::new(PoolStats::default());
        let mut txs = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let (tx, rx) = sync_channel::<Job>(config.queue_depth.max(1));
            let store = Arc::clone(&store);
            let stats = Arc::clone(&stats);
            let max_batch = config.max_batch.max(1);
            let handle = std::thread::Builder::new()
                .name(format!("tir-query-{w}"))
                .spawn(move || {
                    // Respawn-in-place supervisor: a panicking query
                    // must not shrink the pool. The queue and shard
                    // routing survive; only the scratch is rebuilt.
                    loop {
                        let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            worker_loop(&rx, &store, &stats, max_batch)
                        }));
                        match run {
                            Ok(()) => break, // queue closed: clean exit
                            Err(_) => {
                                // analyze:allow(atomic-ordering): monotonic stat counter, read only for reporting
                                stats.worker_panics.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                })
                .expect("spawning a query worker thread");
            txs.push(tx);
            handles.push(handle);
        }
        QueryPool {
            txs,
            handles,
            stats,
            _marker: std::marker::PhantomData,
        }
    }

    /// Shard routing: hash of the first (lowest-id) query element. All
    /// queries over an element set sharing that element serialize onto
    /// one worker, trading a little balance for cache locality.
    fn shard(&self, q: &TimeTravelQuery) -> usize {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        q.elems.first().copied().unwrap_or(0).hash(&mut h);
        (h.finish() % self.txs.len() as u64) as usize
    }

    /// Submits a query; the outcome arrives on the returned channel.
    /// `Err(Overloaded)` means the target worker's queue is full.
    pub fn submit(&self, query: TimeTravelQuery) -> Result<Receiver<QueryOutcome>, Rejected> {
        self.submit_with_deadline(query, None)
    }

    /// Submits a query carrying an absolute deadline (see the module
    /// docs for the exact semantics).
    pub fn submit_with_deadline(
        &self,
        query: TimeTravelQuery,
        deadline: Option<std::time::Instant>,
    ) -> Result<Receiver<QueryOutcome>, Rejected> {
        let shard = self.shard(&query);
        let (reply_tx, reply_rx) = sync_channel(1);
        let job = Job {
            query,
            deadline,
            reply: reply_tx,
        };
        match self.txs[shard].try_send(job) {
            Ok(()) => Ok(reply_rx),
            Err(TrySendError::Full(_)) => {
                // analyze:allow(atomic-ordering): monotonic stat counter, read only for reporting
                self.stats.overloaded.fetch_add(1, Ordering::Relaxed);
                Err(Rejected::Overloaded)
            }
            Err(TrySendError::Disconnected(_)) => Err(Rejected::Closed),
        }
    }

    /// Submits and waits for the answer (the closed-loop client path).
    /// A closed reply channel (shutdown, or a worker panic that killed
    /// the in-flight job) surfaces as [`Rejected::Closed`].
    pub fn execute(&self, query: TimeTravelQuery) -> Result<QueryReply, Rejected> {
        match self.execute_with_deadline(query, None)? {
            QueryOutcome::Answered(reply) => Ok(reply),
            // Unreachable without a deadline; map defensively.
            QueryOutcome::TimedOut => Err(Rejected::Closed),
        }
    }

    /// Submits with a deadline and waits for the outcome.
    pub fn execute_with_deadline(
        &self,
        query: TimeTravelQuery,
        deadline: Option<std::time::Instant>,
    ) -> Result<QueryOutcome, Rejected> {
        let rx = self.submit_with_deadline(query, deadline)?;
        rx.recv().map_err(|_| Rejected::Closed)
    }

    /// Live counters.
    pub fn stats(&self) -> &PoolStats {
        &self.stats
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.txs.len()
    }
}

impl<I> Drop for QueryPool<I> {
    fn drop(&mut self) {
        self.txs.clear(); // closes every queue; workers drain and exit
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop<I>(rx: &Receiver<Job>, store: &EpochStore<I>, stats: &PoolStats, max_batch: usize)
where
    I: TemporalIrIndex + Clone + Send + Sync + 'static,
{
    // Per-worker reusable arena: after warm-up, the only steady-state
    // allocation per query is the reply vector handed to the client.
    let mut scratch = QueryScratch::default();
    while let Ok(first) = rx.recv() {
        let mut batch = vec![first];
        while batch.len() < max_batch {
            match rx.try_recv() {
                Ok(job) => batch.push(job),
                Err(_) => break,
            }
        }
        // Chaos hook: simulate a slow worker once per batch; deadlined
        // jobs then expire in-queue and answer TIMEOUT at dequeue.
        tir_fault::stall(tir_fault::FaultSite::WorkerStall);
        let snap = store.snapshot();
        // analyze:allow(atomic-ordering): monotonic stat counter, read only for reporting
        stats.batches.fetch_add(1, Ordering::Relaxed);
        // analyze:allow(atomic-ordering): high-water gauge, read only for reporting
        stats
            .max_batch
            .fetch_max(batch.len() as u64, Ordering::Relaxed);
        for job in batch {
            if let Some(deadline) = job.deadline {
                if std::time::Instant::now() >= deadline {
                    // analyze:allow(atomic-ordering): monotonic stat counter, read only for reporting
                    stats.timeouts.fetch_add(1, Ordering::Relaxed);
                    // A client that hung up before its answer is not an error.
                    let _ = job.reply.send(QueryOutcome::TimedOut);
                    continue;
                }
            }
            scratch.set_deadline(job.deadline);
            let mut ids: Vec<ObjectId> = Vec::new();
            snap.index.query_into(&job.query, &mut scratch, &mut ids);
            let outcome = if scratch.timed_out() {
                // analyze:allow(atomic-ordering): monotonic stat counter, read only for reporting
                stats.timeouts.fetch_add(1, Ordering::Relaxed);
                QueryOutcome::TimedOut
            } else {
                // analyze:allow(atomic-ordering): monotonic stat counter; replies synchronize via the channel
                stats.served.fetch_add(1, Ordering::Relaxed);
                QueryOutcome::Answered(QueryReply {
                    epoch: snap.epoch,
                    ids,
                })
            };
            // A client that hung up before its answer is not an error.
            let _ = job.reply.send(outcome);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::epoch::{EpochConfig, WriteOp};
    use tir_core::{BruteForce, Collection, Object};

    fn pool_over_example() -> (Arc<EpochStore<BruteForce>>, QueryPool<BruteForce>) {
        let coll = Collection::running_example();
        let store = Arc::new(EpochStore::new(
            BruteForce::build(coll.objects()),
            coll.len() as u64,
            EpochConfig::default(),
        ));
        let pool = QueryPool::new(Arc::clone(&store), PoolConfig::default());
        (store, pool)
    }

    #[test]
    fn answers_match_direct_queries() {
        let (_store, pool) = pool_over_example();
        let reply = pool
            .execute(TimeTravelQuery::new(5, 9, vec![0, 2]))
            .expect("execute");
        let mut ids = reply.ids;
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 3, 6]);
        assert_eq!(reply.epoch, 0);
    }

    #[test]
    fn sees_writes_after_flush() {
        let (store, pool) = pool_over_example();
        store
            .enqueue(WriteOp::Insert(Object::new(8, 5, 6, vec![0, 2])))
            .expect("enqueue");
        store.flush().expect("flush");
        let reply = pool
            .execute(TimeTravelQuery::new(5, 9, vec![0, 2]))
            .expect("execute");
        let mut ids = reply.ids;
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 3, 6, 8]);
        assert!(reply.epoch >= 1);
    }

    #[test]
    fn same_element_routes_to_same_shard() {
        let (_store, pool) = pool_over_example();
        let a = TimeTravelQuery::new(0, 5, vec![0, 2]);
        let b = TimeTravelQuery::new(9, 12, vec![0, 1]);
        assert_eq!(pool.shard(&a), pool.shard(&b));
    }

    #[test]
    fn many_concurrent_submitters() {
        let (_store, pool) = pool_over_example();
        let pool = Arc::new(pool);
        let mut joins = Vec::new();
        for t in 0..8 {
            let pool = Arc::clone(&pool);
            joins.push(std::thread::spawn(move || {
                for i in 0..200 {
                    let q = TimeTravelQuery::new(5, 9, vec![(t + i) % 3]);
                    match pool.execute(q) {
                        Ok(reply) => {
                            // Exactly-once ids.
                            let mut ids = reply.ids.clone();
                            ids.sort_unstable();
                            ids.dedup();
                            assert_eq!(ids.len(), reply.ids.len());
                        }
                        Err(Rejected::Overloaded) => {} // legal under load
                        Err(e) => panic!("pool rejected: {e}"),
                    }
                }
            }));
        }
        for j in joins {
            j.join().expect("submitter thread");
        }
        assert!(pool.stats().served.load(Ordering::Relaxed) > 0);
    }

    #[test]
    fn already_expired_deadline_answers_timeout() {
        let (_store, pool) = pool_over_example();
        let q = TimeTravelQuery::new(5, 9, vec![0, 2]);
        let outcome = pool
            .execute_with_deadline(q.clone(), Some(std::time::Instant::now()))
            .expect("execute");
        assert_eq!(outcome, QueryOutcome::TimedOut);
        assert_eq!(pool.stats().timeouts.load(Ordering::Relaxed), 1);
        // A generous deadline answers normally.
        let later = std::time::Instant::now() + std::time::Duration::from_secs(60);
        match pool.execute_with_deadline(q, Some(later)).expect("execute") {
            QueryOutcome::Answered(reply) => {
                let mut ids = reply.ids;
                ids.sort_unstable();
                assert_eq!(ids, vec![1, 3, 6]);
            }
            QueryOutcome::TimedOut => panic!("a 60s deadline must not expire"),
        }
    }

    /// A [`BruteForce`] wrapper whose query panics on one magic time
    /// range — stands in for any latent bug a hostile query can reach.
    #[derive(Clone)]
    struct PanicOnMagic(BruteForce);

    const MAGIC_START: u64 = 777_777;

    impl TemporalIrIndex for PanicOnMagic {
        fn name(&self) -> &'static str {
            "PanicOnMagic"
        }
        fn query(&self, q: &TimeTravelQuery) -> Vec<ObjectId> {
            assert_ne!(q.interval.st, MAGIC_START, "injected query panic");
            self.0.query(q)
        }
        fn insert(&mut self, o: &Object) {
            self.0.insert(o);
        }
        fn delete(&mut self, o: &Object) -> bool {
            self.0.delete(o)
        }
        fn size_bytes(&self) -> usize {
            self.0.size_bytes()
        }
    }

    #[test]
    fn worker_panic_is_caught_and_the_worker_respawns() {
        let coll = Collection::running_example();
        let store = Arc::new(EpochStore::new(
            PanicOnMagic(BruteForce::build(coll.objects())),
            coll.len() as u64,
            EpochConfig::default(),
        ));
        let pool = QueryPool::new(
            Arc::clone(&store),
            PoolConfig {
                workers: 1, // one shard: the poisoned and clean queries share a worker
                ..PoolConfig::default()
            },
        );
        let poisoned = TimeTravelQuery::new(MAGIC_START, MAGIC_START + 1, vec![0]);
        assert_eq!(
            pool.execute(poisoned).expect_err("panic kills the reply"),
            Rejected::Closed
        );
        assert_eq!(pool.stats().worker_panics.load(Ordering::Relaxed), 1);
        // The respawned worker still answers on the same queue.
        let reply = pool
            .execute(TimeTravelQuery::new(5, 9, vec![0, 2]))
            .expect("respawned worker answers");
        let mut ids = reply.ids;
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 3, 6]);
    }
}
