//! Differential property tests for the vectorized kernel tier: every
//! SIMD wrapper against its scalar kernel against a `BTreeSet` oracle,
//! under tombstones, lane-boundary lengths, and run promote/demote
//! round-trips. The wrappers always produce the result (falling back to
//! scalar internally), so the same assertions hold on hosts without the
//! vector ISA and under `TIR_SIMD=off`.

use proptest::prelude::*;
use std::collections::BTreeSet;
use tir_invidx::{
    intersect_gallop_into, intersect_merge_into, simd, BlockPostings, ContainerConfig,
    PostingContainer, Postings, QueryScratch, TOMBSTONE,
};

fn sorted_unique(max: u32, len: usize) -> impl Strategy<Value = Vec<u32>> {
    prop::collection::btree_set(0..max, 0..len).prop_map(|s| s.into_iter().collect())
}

/// Tombstones postings by mask; returns the raw array plus the live set.
fn tombstoned(ids: &[u32], dead: &[bool]) -> (Vec<u32>, BTreeSet<u32>) {
    let raw: Vec<u32> = ids
        .iter()
        .enumerate()
        .map(|(i, &id)| {
            if *dead.get(i).unwrap_or(&false) {
                id | TOMBSTONE
            } else {
                id
            }
        })
        .collect();
    let live: BTreeSet<u32> = raw
        .iter()
        .filter(|&&id| id & TOMBSTONE == 0)
        .copied()
        .collect();
    (raw, live)
}

fn oracle(cands: &[u32], live: &BTreeSet<u32>) -> Vec<u32> {
    cands.iter().copied().filter(|c| live.contains(c)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn simd_merge_matches_scalar_and_oracle(
        cands in sorted_unique(4000, 200),
        postings in sorted_unique(4000, 200),
        dead in prop::collection::vec(any::<bool>(), 200),
    ) {
        let (raw, live) = tombstoned(&postings, &dead);
        let want = oracle(&cands, &live);
        let mut scalar = Vec::new();
        intersect_merge_into(&cands, &raw, &mut scalar);
        prop_assert_eq!(&scalar, &want, "scalar merge disagrees with oracle");
        // Forced variant: the gated wrapper would route these sizes to
        // scalar, and the vector tails are exactly what needs coverage.
        let mut vector = Vec::new();
        simd::merge_into_forced(&cands, &raw, &mut vector);
        prop_assert_eq!(&vector, &want, "simd merge disagrees with oracle");
        vector.clear();
        simd::merge_into(&cands, &raw, &mut vector);
        prop_assert_eq!(&vector, &want, "gated merge wrapper disagrees with oracle");
    }

    #[test]
    fn simd_gallop_matches_scalar_and_oracle(
        cands in sorted_unique(4000, 60),
        postings in sorted_unique(4000, 400),
        dead in prop::collection::vec(any::<bool>(), 400),
    ) {
        let (raw, live) = tombstoned(&postings, &dead);
        let want = oracle(&cands, &live);
        let mut scalar = Vec::new();
        intersect_gallop_into(&cands, &raw, &mut scalar);
        prop_assert_eq!(&scalar, &want, "scalar gallop disagrees with oracle");
        let mut vector = Vec::new();
        simd::gallop_into_forced(&cands, &raw, &mut vector);
        prop_assert_eq!(&vector, &want, "simd gallop disagrees with oracle");
        vector.clear();
        simd::gallop_into(&cands, &raw, &mut vector);
        prop_assert_eq!(&vector, &want, "gated gallop wrapper disagrees with oracle");
    }

    #[test]
    fn reversed_gallop_matches_scalar_and_oracle(
        cands in sorted_unique(4000, 400),
        postings in sorted_unique(4000, 60),
        dead in prop::collection::vec(any::<bool>(), 60),
    ) {
        let (raw, live) = tombstoned(&postings, &dead);
        let want = oracle(&cands, &live);
        let mut scalar = Vec::new();
        intersect_merge_into(&cands, &raw, &mut scalar);
        prop_assert_eq!(&scalar, &want, "scalar merge disagrees with oracle");
        let mut rev = Vec::new();
        tir_invidx::intersect_gallop_rev_into(&cands, &raw, &mut rev);
        prop_assert_eq!(&rev, &want, "reversed gallop disagrees with oracle");
        // The mark variant must select the same survivors by index.
        let mut hits_merge = vec![false; cands.len()];
        tir_invidx::mark_hits(&cands, &raw, &mut hits_merge);
        let mut hits_rev = vec![false; cands.len()];
        tir_invidx::mark_hits_gallop_rev(&cands, &raw, &mut hits_rev);
        prop_assert_eq!(&hits_rev, &hits_merge, "reversed mark disagrees with merge mark");
    }

    #[test]
    fn gallop_mark_matches_merge_mark(
        cands in sorted_unique(4000, 60),
        postings in sorted_unique(4000, 400),
        dead in prop::collection::vec(any::<bool>(), 400),
    ) {
        // Forward skew: few candidates against a long postings run —
        // the galloping mark must flag exactly the indexes the zipper
        // flags.
        let (raw, _) = tombstoned(&postings, &dead);
        let mut hits_merge = vec![false; cands.len()];
        tir_invidx::mark_hits(&cands, &raw, &mut hits_merge);
        let mut hits_gallop = vec![false; cands.len()];
        tir_invidx::mark_hits_gallop(&cands, &raw, &mut hits_gallop);
        prop_assert_eq!(&hits_gallop, &hits_merge, "gallop mark disagrees with merge mark");
    }

    #[test]
    fn and_words_matches_the_scalar_model(
        present in prop::collection::vec(any::<u64>(), 0..40),
        deleted in prop::collection::vec(any::<u64>(), 0..40),
        dst_extra in prop::collection::vec(any::<u64>(), 0..40),
    ) {
        // dst shares a prefix with present/deleted; the wrapper only
        // touches the common prefix and must zero nothing beyond it.
        let mut dst = dst_extra.clone();
        let want_len = dst.len().min(present.len()).min(deleted.len());
        let mut want = dst.clone();
        let mut want_pop = 0u64;
        for i in 0..want_len {
            want[i] = dst[i] & present[i] & !deleted[i];
            want_pop += u64::from(want[i].count_ones());
        }
        let pop = simd::and_words(&mut dst, &present, &deleted);
        prop_assert_eq!(&dst, &want);
        prop_assert_eq!(pop, want_pop);
    }

    #[test]
    fn block_decode_round_trips_and_contains_agrees(
        ids in prop::collection::btree_set(0u32..1_000_000, 1..600),
        probes in prop::collection::vec(0u32..1_000_000, 0..40),
    ) {
        let set: BTreeSet<u32> = ids.clone();
        let ids: Vec<u32> = ids.into_iter().collect();
        let bp = BlockPostings::encode(&ids);
        prop_assert_eq!(bp.len(), ids.len());
        let mut got = Vec::new();
        let mut blk = Vec::new();
        for b in 0..bp.num_blocks() {
            bp.decode_block_into(b, &mut blk);
            got.extend_from_slice(&blk);
        }
        prop_assert_eq!(&got, &ids, "block decode round-trip");
        for p in probes.into_iter().chain(ids.iter().copied().take(8)) {
            prop_assert_eq!(bp.contains(p), set.contains(&p), "contains({p})");
        }
    }

    #[test]
    fn block_intersect_matches_oracle(
        cands in sorted_unique(1_000_000, 120),
        ids in prop::collection::btree_set(0u32..1_000_000, 1..600),
    ) {
        let live: BTreeSet<u32> = ids.iter().copied().collect();
        let ids: Vec<u32> = ids.into_iter().collect();
        let bp = BlockPostings::encode(&ids);
        let want = oracle(&cands, &live);
        let mut out = Vec::new();
        let mut blk = Vec::new();
        let st = bp.intersect_into(&cands, &mut out, &mut blk);
        prop_assert_eq!(&out, &want);
        prop_assert!(st.blocks_decoded <= bp.num_blocks() as u64);
    }

    #[test]
    fn run_containers_promote_demote_and_answer_like_a_set(
        seed_runs in prop::collection::vec((0u32..2000, 1u32..80), 1..8),
        inserts in prop::collection::vec(0u32..2048, 0..40),
        kills in prop::collection::vec(0u32..2048, 0..40),
        cands in sorted_unique(2048, 200),
    ) {
        const UNIVERSE: u32 = 2048;
        let cfg = ContainerConfig::default();
        // Seed from clustered runs (clamped to the universe).
        let mut model: BTreeSet<u32> = BTreeSet::new();
        for &(start, len) in &seed_runs {
            for id in start..(start + len).min(UNIVERSE) {
                model.insert(id);
            }
        }
        let ids: Vec<u32> = model.iter().copied().collect();
        let mut c = PostingContainer::from_sorted(&ids, UNIVERSE, cfg);
        // Scattered inserts may break the run rule and demote; deletes
        // go to the overlay. The container must track the set exactly
        // through every promotion and demotion. (Insert's contract is
        // "not stored live already", so duplicates are skipped.)
        for &id in &inserts {
            if model.insert(id) {
                c.insert(id, UNIVERSE, cfg);
            }
        }
        for &id in &kills {
            let did = c.tombstone(id);
            prop_assert_eq!(did, model.remove(&id), "tombstone({id})");
        }
        let mut got = Vec::new();
        c.for_each_live(|id| got.push(id));
        let want: Vec<u32> = model.iter().copied().collect();
        prop_assert_eq!(&got, &want, "container diverged from the set model");
        // Re-choosing the form on compact must not change the contents,
        // and the intersection result must match on whatever form each
        // stage picked.
        let mut scratch = QueryScratch::default();
        for container in [&c, &{ let mut c2 = c.clone(); c2.compact(UNIVERSE, cfg); c2 }] {
            scratch.reset();
            scratch.cands.extend_from_slice(&cands);
            scratch.intersect(Postings::Container(container));
            let mut out = Vec::new();
            scratch.take_into(&mut out);
            let want: Vec<u32> =
                cands.iter().copied().filter(|c| model.contains(c)).collect();
            prop_assert_eq!(&out, &want);
        }
    }
}

/// Exhaustive lane-boundary sweep: every length around the 4/8/16-lane
/// and 64-bit word edges, for aligned and offset id patterns, on every
/// kernel. Catches off-by-one bugs in vector tails that random lengths
/// rarely hit.
#[test]
fn lane_boundary_lengths_agree_with_the_oracle() {
    let lengths = [
        0usize, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 65, 127, 128, 129,
    ];
    for &n in &lengths {
        for &m in &lengths {
            for stride in [1u32, 2, 3] {
                let cands: Vec<u32> = (0..n as u32).map(|i| i * stride).collect();
                let postings: Vec<u32> = (0..m as u32).map(|i| i * 2).collect();
                let live: BTreeSet<u32> = postings.iter().copied().collect();
                let want = oracle(&cands, &live);
                let mut out = Vec::new();
                simd::merge_into_forced(&cands, &postings, &mut out);
                assert_eq!(out, want, "merge n={n} m={m} stride={stride}");
                out.clear();
                simd::gallop_into_forced(&cands, &postings, &mut out);
                assert_eq!(out, want, "gallop n={n} m={m} stride={stride}");
                if !postings.is_empty() {
                    let bp = BlockPostings::encode(&postings);
                    let mut blk = Vec::new();
                    out.clear();
                    bp.intersect_into(&cands, &mut out, &mut blk);
                    assert_eq!(out, want, "blocks n={n} m={m} stride={stride}");
                }
            }
        }
    }
}

/// Empty and singleton inputs on every wrapper: the degenerate shapes
/// the vector paths must hand off to scalar without touching memory.
#[test]
fn empty_and_singleton_edges() {
    let mut out = Vec::new();
    simd::merge_into_forced(&[], &[], &mut out);
    assert!(out.is_empty());
    simd::gallop_into_forced(&[], &[1, 2, 3], &mut out);
    assert!(out.is_empty());
    simd::merge_into_forced(&[5], &[], &mut out);
    assert!(out.is_empty());
    simd::merge_into_forced(&[5], &[5], &mut out);
    assert_eq!(out, [5]);
    out.clear();
    simd::gallop_into_forced(&[5], &[4, 5, 6], &mut out);
    assert_eq!(out, [5]);
    let mut dst: Vec<u64> = vec![];
    assert_eq!(simd::and_words(&mut dst, &[], &[]), 0);
    let bp = BlockPostings::encode(&[42]);
    assert!(bp.contains(42) && !bp.contains(41));
    let mut blk = Vec::new();
    out.clear();
    let st = bp.intersect_into(&[41, 42, 43], &mut out, &mut blk);
    assert_eq!(out, [42]);
    assert_eq!(st.blocks_decoded, 1);
    out.clear();
    let st = bp.intersect_into(&[43, 44], &mut out, &mut blk);
    assert!(out.is_empty());
    assert_eq!(
        st.blocks_decoded, 0,
        "skip bounds answer disjoint ranges without decoding"
    );
}
