//! Property tests: intersection kernels against a naive set model, compact
//! indexes against a hash-map model.

use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};
use tir_invidx::{
    intersect_adaptive_into, intersect_gallop_into, intersect_merge_into, CompactInverted,
    CompactTemporalInverted, ContainerConfig, HybridPostings, InvertedIndex, PostingContainer,
    Postings, QueryScratch, TOMBSTONE,
};

fn sorted_unique(max: u32, len: usize) -> impl Strategy<Value = Vec<u32>> {
    prop::collection::btree_set(0..max, 0..len).prop_map(|s| s.into_iter().collect())
}

/// Applies a tombstone mask, keeping raw-id order, and returns the raw
/// array plus the live-id set model.
fn tombstoned(ids: &[u32], dead: &[bool]) -> (Vec<u32>, BTreeSet<u32>) {
    let raw: Vec<u32> = ids
        .iter()
        .enumerate()
        .map(|(i, &id)| {
            if *dead.get(i).unwrap_or(&false) {
                id | TOMBSTONE
            } else {
                id
            }
        })
        .collect();
    let live: BTreeSet<u32> = raw
        .iter()
        .filter(|&&id| id & TOMBSTONE == 0)
        .copied()
        .collect();
    (raw, live)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn kernels_agree_with_set_model(
        cands in sorted_unique(300, 80),
        postings in sorted_unique(300, 80),
        dead in prop::collection::vec(any::<bool>(), 80),
    ) {
        // Tombstone some postings.
        let postings: Vec<u32> = postings
            .iter()
            .enumerate()
            .map(|(i, &id)| if *dead.get(i).unwrap_or(&false) { id | TOMBSTONE } else { id })
            .collect();
        let live_set: BTreeSet<u32> = postings
            .iter()
            .filter(|&&id| id & TOMBSTONE == 0)
            .copied()
            .collect();
        let want: Vec<u32> = cands.iter().copied().filter(|c| live_set.contains(c)).collect();
        for f in [
            intersect_merge_into as fn(&[u32], &[u32], &mut Vec<u32>),
            intersect_gallop_into,
            intersect_adaptive_into,
        ] {
            let mut out = Vec::new();
            f(&cands, &postings, &mut out);
            prop_assert_eq!(&out, &want);
        }
    }

    #[test]
    fn planner_scratch_agrees_with_set_model(
        seed in sorted_unique(2048, 400),
        lists in prop::collection::vec(
            (sorted_unique(2048, 400), prop::collection::vec(any::<bool>(), 400), any::<bool>()),
            0..5,
        ),
        den in 1u32..64,
    ) {
        const UNIVERSE: u32 = 2048;
        let cfg = ContainerConfig { density_den: den };
        let mut scratch = QueryScratch::default();
        scratch.reset();
        scratch.cands.extend_from_slice(&seed);

        let mut model: BTreeSet<u32> = seed.iter().copied().collect();
        for (ids, dead, as_container) in &lists {
            let (raw, live) = tombstoned(ids, dead);
            if *as_container {
                let c = PostingContainer::from_sorted(&raw, UNIVERSE, cfg);
                scratch.intersect(Postings::Container(&c));
            } else {
                scratch.intersect(Postings::Ids(&raw));
            }
            model = model.intersection(&live).copied().collect();
        }

        let mut out = Vec::new();
        scratch.take_into(&mut out);
        out.sort_unstable();
        let want: Vec<u32> = model.into_iter().collect();
        prop_assert_eq!(out, want);

        // Per-query counter invariant: the per-kernel scanned columns
        // must sum to the running total.
        let stats = scratch.last_stats();
        prop_assert_eq!(stats.kernel_scanned_sum(), stats.scanned);
        if !lists.is_empty() {
            prop_assert!(stats.steps() >= 1);
        }
    }

    #[test]
    fn hybrid_container_agrees_with_set_model(
        ids in sorted_unique(512, 200),
        dead in prop::collection::vec(any::<bool>(), 200),
        den in 1u32..64,
        extra in sorted_unique(512, 40),
        kills in sorted_unique(512, 40),
    ) {
        let cfg = ContainerConfig { density_den: den };
        let (raw, live) = tombstoned(&ids, &dead);
        let mut h = HybridPostings::from_lists(
            std::iter::once((7u32, raw.as_slice())),
            512,
            cfg,
        );
        let mut model = live;
        for &id in &extra {
            if !model.contains(&id) && !raw.iter().any(|&r| r & !TOMBSTONE == id) {
                h.insert(7, id);
                model.insert(id);
            }
        }
        for &id in &kills {
            let killed = h.tombstone(7, id);
            prop_assert_eq!(killed, model.remove(&id));
        }
        let want: Vec<u32> = model.iter().copied().collect();
        let got = match h.get(7) {
            Some(c) => {
                let mut v = Vec::new();
                c.for_each_live(|id| v.push(id));
                v.sort_unstable();
                prop_assert_eq!(c.cardinality() as usize, want.len());
                v
            }
            None => Vec::new(),
        };
        prop_assert_eq!(got, want.clone());
        h.compact();
        let got: Vec<u32> = match h.get(7) {
            Some(c) => {
                let mut v = Vec::new();
                c.for_each_live(|id| v.push(id));
                v.sort_unstable();
                v
            }
            None => Vec::new(),
        };
        prop_assert_eq!(got, want);
    }

    #[test]
    fn compact_inverted_matches_model(
        pairs in prop::collection::vec((0u32..20, 0u32..200), 0..150),
    ) {
        // Dedup (elem, id) pairs — descriptions are sets.
        let set: BTreeSet<(u32, u32)> = pairs.into_iter().collect();
        let mut buf: Vec<(u32, u32)> = set.iter().copied().collect();
        let idx = CompactInverted::build(&mut buf);
        let mut model: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
        for &(e, id) in &set {
            model.entry(e).or_default().push(id);
        }
        for e in 0..21 {
            let want = model.get(&e).cloned().unwrap_or_default();
            prop_assert_eq!(idx.postings(e), want.as_slice());
        }
    }

    #[test]
    fn compact_inverted_incremental_matches_build(
        pairs in prop::collection::vec((0u32..15, 0u32..100), 0..100),
    ) {
        let set: BTreeSet<(u32, u32)> = pairs.into_iter().collect();
        let mut buf: Vec<(u32, u32)> = set.iter().copied().collect();
        let built = CompactInverted::build(&mut buf);
        let mut inc = CompactInverted::new();
        // insert in arbitrary (reversed) order
        for &(e, id) in set.iter().rev() {
            inc.insert(e, id);
        }
        for e in 0..16 {
            prop_assert_eq!(built.postings(e), inc.postings(e));
        }
    }

    #[test]
    fn compact_temporal_parallel_arrays_consistent(
        entries in prop::collection::vec((0u32..10, 0u32..50, 0u64..100, 0u64..100), 0..80),
    ) {
        let mut seen = BTreeSet::new();
        let mut buf: Vec<(u32, u32, u64, u64)> = Vec::new();
        for (e, id, a, b) in entries {
            if seen.insert((e, id)) {
                buf.push((e, id, a.min(b), a.max(b)));
            }
        }
        let model = buf.clone();
        let idx = CompactTemporalInverted::build(&mut buf);
        for e in 0..11u32 {
            let p = idx.postings(e);
            prop_assert_eq!(p.ids.len(), p.sts.len());
            prop_assert_eq!(p.ids.len(), p.ends.len());
            for (i, &id) in p.ids.iter().enumerate() {
                let want = model.iter().find(|&&(me, mid, _, _)| me == e && mid == id).unwrap();
                prop_assert_eq!(p.sts[i], want.2);
                prop_assert_eq!(p.ends[i], want.3);
            }
        }
    }

    #[test]
    fn planner_edge_cases_hold_under_any_density(den in 1u32..64) {
        let cfg = ContainerConfig { density_den: den };
        let ids: Vec<u32> = (0..100).map(|i| i * 3).collect();
        let disjoint: Vec<u32> = (0..100).map(|i| i * 3 + 1).collect();
        let all_dead: Vec<u32> = ids.iter().map(|&id| id | TOMBSTONE).collect();
        for (postings, want) in [
            (ids.clone(), ids.clone()),      // identical sets
            (disjoint, Vec::new()),          // disjoint sets
            (Vec::new(), Vec::new()),        // empty postings
            (all_dead, Vec::new()),          // fully tombstoned
        ] {
            let c = PostingContainer::from_sorted(&postings, 300, cfg);
            for as_container in [false, true] {
                let mut scratch = QueryScratch::default();
                scratch.reset();
                scratch.cands.extend_from_slice(&ids);
                if as_container {
                    scratch.intersect(Postings::Container(&c));
                } else {
                    scratch.intersect(Postings::Ids(&postings));
                }
                let mut out = Vec::new();
                scratch.take_into(&mut out);
                out.sort_unstable();
                prop_assert_eq!(&out, &want);
                // Empty candidate seed stays empty against anything.
                scratch.reset();
                scratch.intersect(Postings::Ids(&postings));
                let mut out = Vec::new();
                scratch.take_into(&mut out);
                prop_assert!(out.is_empty());
            }
        }
    }

    #[test]
    fn inverted_index_containment_matches_model(
        descs in prop::collection::vec(prop::collection::btree_set(0u32..12, 1..6), 1..40),
        query in prop::collection::btree_set(0u32..12, 1..4),
    ) {
        let objects: Vec<(u32, Vec<u32>)> = descs
            .iter()
            .enumerate()
            .map(|(i, d)| (i as u32, d.iter().copied().collect()))
            .collect();
        let idx = InvertedIndex::build(objects.iter().map(|(id, d)| (*id, d.as_slice())));
        let q: Vec<u32> = query.iter().copied().collect();
        let want: Vec<u32> = objects
            .iter()
            .filter(|(_, d)| q.iter().all(|e| d.contains(e)))
            .map(|(id, _)| *id)
            .collect();
        prop_assert_eq!(idx.containment_query(&q), want);
    }
}
