//! Property tests for the compressed postings lists.

use proptest::prelude::*;
use std::collections::BTreeSet;
use tir_invidx::compress::{CompressedPostings, CompressedTemporalPostings};

fn sorted_ids(max: u32, len: usize) -> impl Strategy<Value = Vec<u32>> {
    prop::collection::btree_set(0..max, 0..len).prop_map(|s| s.into_iter().collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn roundtrip(ids in sorted_ids(2_000_000, 300)) {
        let c = CompressedPostings::encode(&ids);
        let mut out = Vec::new();
        c.decode_into(&mut out);
        prop_assert_eq!(&out, &ids);
        prop_assert_eq!(c.iter().collect::<Vec<_>>(), ids);
    }

    #[test]
    fn intersect_matches_set_model(
        ids in sorted_ids(5000, 200),
        cands in sorted_ids(5000, 200),
    ) {
        let c = CompressedPostings::encode(&ids);
        let set: BTreeSet<u32> = ids.iter().copied().collect();
        let want: Vec<u32> = cands.iter().copied().filter(|x| set.contains(x)).collect();
        let mut out = Vec::new();
        c.intersect_into(&cands, &mut out);
        prop_assert_eq!(out, want);
    }

    #[test]
    fn temporal_roundtrip(
        entries in prop::collection::btree_map(0u32..1_000_000, (0u64..1_000_000_000, 0u64..1_000_000), 0..200),
    ) {
        let ids: Vec<u32> = entries.keys().copied().collect();
        let sts: Vec<u64> = entries.values().map(|&(st, _)| st).collect();
        let ends: Vec<u64> = entries.values().map(|&(st, d)| st + d).collect();
        let c = CompressedTemporalPostings::encode(&ids, &sts, &ends);
        let mut got = Vec::new();
        c.for_each(|id, st, end| got.push((id, st, end)));
        let want: Vec<(u32, u64, u64)> = entries
            .iter()
            .map(|(&id, &(st, d))| (id, st, st + d))
            .collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn compressed_never_larger_than_eight_bytes_per_id(ids in sorted_ids(u32::MAX, 300)) {
        let c = CompressedPostings::encode(&ids);
        prop_assert!(c.size_bytes() <= ids.len() * 8 + 64);
    }
}
