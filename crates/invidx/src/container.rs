//! Hybrid posting containers: sorted `u32` arrays for sparse terms,
//! 64-bit word bitmaps for dense terms, and Roaring-style run lists for
//! contiguous terms.
//!
//! The representation of each term is chosen at build/compaction time.
//! First the run test: postings whose stored ids form few long
//! consecutive runs (average length at least [`RUN_MIN_AVG`]) become a
//! [`RunSet`] — `(start, last)` pairs plus a small sorted tombstone
//! overlay — which intersects in O(runs) and is the natural shape for
//! temporal postings, where ids are assigned in arrival order and a
//! term's documents cluster in contiguous ingest ranges. Otherwise the
//! density test: a term whose postings cover at least `1/density_den`
//! of the universe is stored as a present-bitmap (plus a second
//! *deleted* bitmap carrying the tombstones the array form keeps in
//! bit 31). Everything else stays a sorted array. Cardinality is cached
//! on every form, never recomputed per query.
//!
//! Conversions are one-way at run time — a sparse container promotes
//! when an insert pushes it over the density threshold (the build-time
//! chooser then picks run or bitmap form), a run container demotes only
//! when scattered inserts break the run rule, and
//! [`PostingContainer::compact`] (called at compaction) re-chooses — so
//! the invariants checked by `tir-check` stay simple: dense containers
//! always satisfy the density threshold against their recorded
//! universe, and run containers always satisfy the run rule against
//! their stored count.

use crate::kernels::{live, raw, TOMBSTONE};

/// Default density denominator: a term is dense when its live postings
/// cover at least 1/64 (~1.6%) of the id universe. Retuned 32 → 64 on
/// the vectorized-kernel grid: the fused AVX2 word-AND cut the
/// dense-dense cost to 1.49 ns/elem (from 1.75 scalar) and bitmap
/// probes answer at ~1.5 ns/probe, while the SIMD array kernels only
/// closed the gap in the comparable-size region — so the bitmap form
/// pays off one octave earlier, at ≤4 bitmap bits per stored
/// id-array bit in the marginal band (BENCH_kernels.json).
pub const DEFAULT_DENSITY_DEN: u32 = 64;

/// Tunable container policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContainerConfig {
    /// A term is dense when `live_count * density_den >= universe`.
    pub density_den: u32,
}

impl Default for ContainerConfig {
    fn default() -> Self {
        ContainerConfig {
            density_den: DEFAULT_DENSITY_DEN,
        }
    }
}

/// A dense postings bitmap over `[0, universe)`: one *present* bit per
/// stored posting and one *deleted* bit per tombstoned posting.
#[derive(Debug, Clone, Default)]
pub struct DenseBits {
    present: Vec<u64>,
    deleted: Vec<u64>,
    universe: u32,
    present_count: u32,
    deleted_count: u32,
}

#[inline]
fn words_for(universe: u32) -> usize {
    (universe as usize).div_ceil(64)
}

impl DenseBits {
    /// An empty bitmap over `[0, universe)`.
    pub fn with_universe(universe: u32) -> DenseBits {
        DenseBits {
            present: vec![0; words_for(universe)],
            deleted: vec![0; words_for(universe)],
            universe,
            present_count: 0,
            deleted_count: 0,
        }
    }

    /// Builds from a raw-id-sorted slice that may carry bit-31 tombstones;
    /// tombstoned entries become present+deleted bits.
    pub fn from_sorted_ids(ids: &[u32], universe: u32) -> DenseBits {
        let mut d = DenseBits::with_universe(universe.max(ids.last().map_or(0, |&x| raw(x) + 1)));
        for &id in ids {
            d.set(raw(id));
            if !live(id) {
                d.tombstone(raw(id));
            }
        }
        d
    }

    /// The id universe this bitmap covers.
    #[inline]
    pub fn universe(&self) -> u32 {
        self.universe
    }

    /// The present words (for word-at-a-time intersection).
    #[inline]
    pub fn present_words(&self) -> &[u64] {
        &self.present
    }

    /// The deleted words.
    #[inline]
    pub fn deleted_words(&self) -> &[u64] {
        &self.deleted
    }

    /// Number of present postings, tombstoned ones included.
    #[inline]
    pub fn present_count(&self) -> u32 {
        self.present_count
    }

    /// Number of tombstoned postings.
    #[inline]
    pub fn deleted_count(&self) -> u32 {
        self.deleted_count
    }

    /// Live cardinality (popcount-maintained, O(1)).
    #[inline]
    pub fn cardinality(&self) -> u32 {
        self.present_count - self.deleted_count
    }

    /// True if `id` is stored and not tombstoned.
    #[inline]
    pub fn contains_live(&self, id: u32) -> bool {
        if id >= self.universe {
            return false;
        }
        let (w, b) = (id as usize / 64, id % 64);
        (self.present[w] >> b) & 1 == 1 && (self.deleted[w] >> b) & 1 == 0
    }

    /// Marks `id` present (growing the universe if needed); returns true
    /// if it was absent.
    pub fn set(&mut self, id: u32) -> bool {
        if id >= self.universe {
            self.universe = id + 1;
            self.present.resize(words_for(self.universe), 0);
            self.deleted.resize(words_for(self.universe), 0);
        }
        let (w, b) = (id as usize / 64, id % 64);
        if (self.present[w] >> b) & 1 == 1 {
            return false;
        }
        self.present[w] |= 1 << b;
        self.present_count += 1;
        true
    }

    /// Tombstones `id`; returns true if it was present and alive.
    pub fn tombstone(&mut self, id: u32) -> bool {
        if id >= self.universe {
            return false;
        }
        let (w, b) = (id as usize / 64, id % 64);
        if (self.present[w] >> b) & 1 == 0 || (self.deleted[w] >> b) & 1 == 1 {
            return false;
        }
        self.deleted[w] |= 1 << b;
        self.deleted_count += 1;
        true
    }

    /// Calls `f(id)` for every live id, ascending.
    pub fn for_each_live(&self, mut f: impl FnMut(u32)) {
        for (w, (&p, &d)) in self.present.iter().zip(&self.deleted).enumerate() {
            let mut m = p & !d;
            while m != 0 {
                // analyze:allow(unguarded-cast): word index * 64 + bit < universe, a u32
                f((w * 64) as u32 + m.trailing_zeros());
                m &= m - 1;
            }
        }
    }

    /// The live ids as a sorted vector (demotion / introspection).
    pub fn to_sorted_vec(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.cardinality() as usize);
        self.for_each_live(|id| out.push(id));
        out
    }

    /// Heap footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        (self.present.capacity() + self.deleted.capacity()) * 8
    }
}

/// Minimum average stored run length for the run form: a term becomes a
/// [`RunSet`] when `run_count * RUN_MIN_AVG <= stored_count`. At that
/// shape a run costs at most one u32-array entry per 4 stored ids and
/// intersection work is proportional to runs, not ids.
pub const RUN_MIN_AVG: u32 = 8;

/// Minimum sparse-array length before insert-driven promotion starts
/// checking the run rule (at power-of-two sizes only — see
/// [`PostingContainer::insert`]).
pub const RUN_PROMOTE_CHECK: usize = 64;

/// Run-length postings: sorted, non-overlapping, non-adjacent
/// `(start, last)` id ranges (both inclusive) plus a sorted overlay of
/// tombstoned ids — the Roaring run container adapted to this crate's
/// tombstone model. Dense *contiguous* terms (the common temporal
/// shape: ids assigned in arrival order) intersect in O(runs).
#[derive(Debug, Clone, Default)]
pub struct RunSet {
    runs: Vec<(u32, u32)>,
    deleted: Vec<u32>,
    present_count: u32,
    universe: u32,
}

impl RunSet {
    /// Builds from a raw-id-sorted slice that may carry bit-31
    /// tombstones; tombstoned entries join the deleted overlay.
    pub fn from_sorted_ids(ids: &[u32], universe: u32) -> RunSet {
        let mut r = RunSet {
            universe: universe.max(ids.last().map_or(0, |&x| raw(x) + 1)),
            ..RunSet::default()
        };
        for &id in ids {
            let x = raw(id);
            match r.runs.last_mut() {
                Some(run) if run.1 + 1 == x => run.1 = x,
                Some(run) => {
                    debug_assert!(run.1 < x, "ids not sorted/unique by raw id");
                    r.runs.push((x, x));
                }
                None => r.runs.push((x, x)),
            }
            if !live(id) {
                r.deleted.push(x);
            }
        }
        // analyze:allow(unguarded-cast): stored count is bounded by the u32 id universe
        r.present_count = ids.len() as u32;
        r
    }

    /// The runs, sorted and non-adjacent (for O(runs) intersection).
    #[inline]
    pub fn runs(&self) -> &[(u32, u32)] {
        &self.runs
    }

    /// The tombstoned ids, sorted ascending.
    #[inline]
    pub fn deleted(&self) -> &[u32] {
        &self.deleted
    }

    /// The id universe this run set covers.
    #[inline]
    pub fn universe(&self) -> u32 {
        self.universe
    }

    /// Number of stored postings, tombstoned ones included.
    #[inline]
    pub fn present_count(&self) -> u32 {
        self.present_count
    }

    /// Number of tombstoned postings.
    #[inline]
    pub fn deleted_count(&self) -> u32 {
        // analyze:allow(unguarded-cast): deleted ids are a subset of the stored u32 ids
        self.deleted.len() as u32
    }

    /// Live cardinality (cached counts, O(1)).
    #[inline]
    pub fn cardinality(&self) -> u32 {
        self.present_count - self.deleted_count()
    }

    /// Index of the run containing `id`, if any.
    #[inline]
    fn run_of(&self, id: u32) -> Option<usize> {
        let i = self.runs.partition_point(|&(s, _)| s <= id);
        (i > 0 && self.runs[i - 1].1 >= id).then(|| i - 1)
    }

    /// True if `id` is stored and not tombstoned.
    #[inline]
    pub fn contains_live(&self, id: u32) -> bool {
        self.run_of(id).is_some() && self.deleted.binary_search(&id).is_err()
    }

    /// Marks `id` present (growing the universe if needed); returns true
    /// if it was absent. Mirrors [`DenseBits::set`]: an id that is
    /// present but tombstoned stays tombstoned.
    pub fn set(&mut self, id: u32) -> bool {
        self.universe = self.universe.max(id + 1);
        let i = self.runs.partition_point(|&(s, _)| s <= id);
        if i > 0 && self.runs[i - 1].1 >= id {
            return false;
        }
        let extends_prev = i > 0 && self.runs[i - 1].1 + 1 == id;
        let extends_next = i < self.runs.len() && id + 1 == self.runs[i].0;
        match (extends_prev, extends_next) {
            (true, true) => {
                self.runs[i - 1].1 = self.runs[i].1;
                self.runs.remove(i);
            }
            (true, false) => self.runs[i - 1].1 = id,
            (false, true) => self.runs[i].0 = id,
            (false, false) => self.runs.insert(i, (id, id)),
        }
        self.present_count += 1;
        true
    }

    /// Tombstones `id`; returns true if it was present and alive.
    pub fn tombstone(&mut self, id: u32) -> bool {
        if self.run_of(id).is_none() {
            return false;
        }
        match self.deleted.binary_search(&id) {
            Ok(_) => false,
            Err(p) => {
                self.deleted.insert(p, id);
                true
            }
        }
    }

    /// True if the run rule still holds (average stored run length at
    /// least [`RUN_MIN_AVG`]); scattered inserts that break it trigger a
    /// demotion in [`PostingContainer::insert`].
    #[inline]
    pub fn run_rule_holds(&self) -> bool {
        // analyze:allow(unguarded-cast): run count <= stored count, bounded by u32
        u64::from(self.runs.len() as u32) * u64::from(RUN_MIN_AVG) <= u64::from(self.present_count)
    }

    /// Calls `f(id)` for every live id, ascending.
    pub fn for_each_live(&self, mut f: impl FnMut(u32)) {
        let mut di = 0usize;
        for &(s, l) in &self.runs {
            for id in s..=l {
                while di < self.deleted.len() && self.deleted[di] < id {
                    di += 1;
                }
                if di < self.deleted.len() && self.deleted[di] == id {
                    continue;
                }
                f(id);
            }
        }
    }

    /// The stored ids as a raw-sorted vector with bit-31 tombstones —
    /// the exact input [`PostingContainer::from_sorted`] takes, used
    /// when a broken run rule forces a representation re-choice.
    pub fn to_stored_ids(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.present_count as usize);
        let mut di = 0usize;
        for &(s, l) in &self.runs {
            for id in s..=l {
                while di < self.deleted.len() && self.deleted[di] < id {
                    di += 1;
                }
                if di < self.deleted.len() && self.deleted[di] == id {
                    out.push(id | TOMBSTONE);
                } else {
                    out.push(id);
                }
            }
        }
        out
    }

    /// Heap footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.runs.capacity() * 8 + self.deleted.capacity() * 4
    }
}

/// One term's postings in whichever form the layout policy picked.
#[derive(Debug, Clone)]
pub enum PostingContainer {
    /// Sparse form: raw-id-sorted array, tombstones in bit 31, plus the
    /// cached live count.
    Sparse {
        /// The id array (sorted ascending by raw id).
        ids: Vec<u32>,
        /// Number of non-tombstoned entries.
        live: u32,
    },
    /// Dense form: present/deleted bitmaps.
    Dense(DenseBits),
    /// Run form: consecutive id ranges with a tombstone overlay.
    Runs(RunSet),
}

impl Default for PostingContainer {
    fn default() -> Self {
        PostingContainer::Sparse {
            ids: Vec::new(),
            live: 0,
        }
    }
}

impl PostingContainer {
    /// Builds from a raw-id-sorted slice (bit-31 tombstones allowed):
    /// run form if the stored ids satisfy the run rule, else bitmap by
    /// density over `universe`, else sorted array.
    pub fn from_sorted(ids: &[u32], universe: u32, cfg: ContainerConfig) -> PostingContainer {
        // analyze:allow(unguarded-cast): live count is bounded by the u32 id universe
        let live_count = ids.iter().filter(|&&id| live(id)).count() as u32;
        // analyze:allow(unguarded-cast): run count <= stored count, bounded by u32
        let run_count = count_runs(ids) as u32;
        // Density wins over clustering: a dense list answers big
        // conjunctions by word-AND (1.5 ns/elem on the kernel grid),
        // which run walking cannot match once the candidate side is a
        // bitmap. Runs take the clustered-but-sparse remainder.
        if is_dense(live_count, universe, cfg) {
            PostingContainer::Dense(DenseBits::from_sorted_ids(ids, universe))
        } else if !ids.is_empty()
            && u64::from(run_count) * u64::from(RUN_MIN_AVG) <= ids.len() as u64
        {
            PostingContainer::Runs(RunSet::from_sorted_ids(ids, universe))
        } else {
            PostingContainer::Sparse {
                ids: ids.to_vec(),
                live: live_count,
            }
        }
    }

    /// True for the bitmap form.
    #[inline]
    pub fn is_dense(&self) -> bool {
        matches!(self, PostingContainer::Dense(_))
    }

    /// True for the run form.
    #[inline]
    pub fn is_runs(&self) -> bool {
        matches!(self, PostingContainer::Runs(_))
    }

    /// Live cardinality.
    pub fn cardinality(&self) -> u32 {
        match self {
            PostingContainer::Sparse { live, .. } => *live,
            PostingContainer::Dense(d) => d.cardinality(),
            PostingContainer::Runs(r) => r.cardinality(),
        }
    }

    /// Stored entries, tombstoned ones included.
    pub fn raw_len(&self) -> usize {
        match self {
            PostingContainer::Sparse { ids, .. } => ids.len(),
            PostingContainer::Dense(d) => d.present_count() as usize,
            PostingContainer::Runs(r) => r.present_count() as usize,
        }
    }

    /// Adds `id` (must not be stored live already), promoting to dense
    /// or run form if the live count crosses the density threshold
    /// against `universe`, and demoting a run container whose run rule a
    /// scattered insert broke.
    pub fn insert(&mut self, id: u32, universe: u32, cfg: ContainerConfig) {
        match self {
            PostingContainer::Sparse { ids, live } => {
                match ids.last() {
                    Some(&last) if raw(last) > id => {
                        let pos = ids.partition_point(|&x| raw(x) <= id);
                        ids.insert(pos, id);
                    }
                    _ => ids.push(id),
                }
                *live += 1;
                if is_dense(*live, universe, cfg) {
                    *self = PostingContainer::from_sorted(ids, universe, cfg);
                } else if ids.len() >= RUN_PROMOTE_CHECK && ids.len().is_power_of_two() {
                    // Geometric checkpoints: an O(n) run scan at 64,
                    // 128, 256, … amortizes to O(1) per insert, so
                    // clustered lists that never reach the density
                    // threshold still promote to the run form.
                    let rc = count_runs(ids);
                    if rc as u64 * u64::from(RUN_MIN_AVG) <= ids.len() as u64 {
                        *self = PostingContainer::Runs(RunSet::from_sorted_ids(ids, universe));
                    }
                }
            }
            PostingContainer::Dense(d) => {
                d.set(id);
            }
            PostingContainer::Runs(r) => {
                r.set(id);
                if !r.run_rule_holds() {
                    *self = PostingContainer::from_sorted(&r.to_stored_ids(), universe, cfg);
                }
            }
        }
    }

    /// Tombstones `id`; returns true if found alive.
    pub fn tombstone(&mut self, id: u32) -> bool {
        match self {
            PostingContainer::Sparse { ids, live } => {
                if let Ok(p) = ids.binary_search_by_key(&id, |&x| raw(x)) {
                    if live_at(ids, p) {
                        ids[p] |= TOMBSTONE;
                        *live -= 1;
                        return true;
                    }
                }
                false
            }
            PostingContainer::Dense(d) => d.tombstone(id),
            PostingContainer::Runs(r) => r.tombstone(id),
        }
    }

    /// Re-chooses the representation for the current live set: drops
    /// tombstones from the array form, merges the run form's deleted
    /// overlay away, and demotes bitmaps that fell under the threshold.
    /// The compaction-time counterpart of the build-time choice in
    /// [`PostingContainer::from_sorted`].
    pub fn compact(&mut self, universe: u32, cfg: ContainerConfig) {
        let live_ids = match self {
            PostingContainer::Sparse { ids, .. } => {
                ids.retain(|&id| live(id));
                ids.clone()
            }
            PostingContainer::Dense(d) => d.to_sorted_vec(),
            PostingContainer::Runs(r) => {
                let mut out = Vec::with_capacity(r.cardinality() as usize);
                r.for_each_live(|id| out.push(id));
                out
            }
        };
        *self = PostingContainer::from_sorted(&live_ids, universe, cfg);
    }

    /// Calls `f(id)` for every live id, ascending.
    pub fn for_each_live(&self, mut f: impl FnMut(u32)) {
        match self {
            PostingContainer::Sparse { ids, .. } => {
                for &id in ids {
                    if live(id) {
                        f(id);
                    }
                }
            }
            PostingContainer::Dense(d) => d.for_each_live(f),
            PostingContainer::Runs(r) => r.for_each_live(f),
        }
    }

    /// Heap footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        match self {
            PostingContainer::Sparse { ids, .. } => ids.capacity() * 4,
            PostingContainer::Dense(d) => d.size_bytes(),
            PostingContainer::Runs(r) => r.size_bytes(),
        }
    }
}

/// Number of maximal consecutive raw-id runs in a sorted slice.
fn count_runs(ids: &[u32]) -> usize {
    let mut runs = 0usize;
    let mut prev: Option<u32> = None;
    for &id in ids {
        let x = raw(id);
        if prev != Some(x.wrapping_sub(1)) {
            runs += 1;
        }
        prev = Some(x);
    }
    runs
}

#[inline]
fn is_dense(live_count: u32, universe: u32, cfg: ContainerConfig) -> bool {
    universe > 0
        && live_count > 0
        && u64::from(live_count) * u64::from(cfg.density_den.max(1)) >= u64::from(universe)
}

#[inline]
fn live_at(ids: &[u32], p: usize) -> bool {
    live(ids[p])
}

/// A term → [`PostingContainer`] directory over one id universe — the
/// build-time product of the hybrid layout, dropped next to an index's
/// temporal lists to accelerate its conjunction steps.
#[derive(Debug, Clone, Default)]
pub struct HybridPostings {
    map: std::collections::HashMap<u32, PostingContainer>,
    universe: u32,
    cfg: ContainerConfig,
}

impl HybridPostings {
    /// Builds the directory from `(term, raw-sorted ids)` pairs. The
    /// universe should be `max id + 1` over the snapshot.
    pub fn from_lists<'a>(
        lists: impl Iterator<Item = (u32, &'a [u32])>,
        universe: u32,
        cfg: ContainerConfig,
    ) -> HybridPostings {
        let map = lists
            .map(|(e, ids)| (e, PostingContainer::from_sorted(ids, universe, cfg)))
            .collect();
        HybridPostings { map, universe, cfg }
    }

    /// The container of a term, if any posting was stored for it.
    #[inline]
    pub fn get(&self, e: u32) -> Option<&PostingContainer> {
        self.map.get(&e)
    }

    /// The id universe (`max id + 1`).
    #[inline]
    pub fn universe(&self) -> u32 {
        self.universe
    }

    /// The density policy.
    #[inline]
    pub fn config(&self) -> ContainerConfig {
        self.cfg
    }

    /// Number of terms with a container.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if no term has a container.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Adds one posting, growing the universe and promoting the term's
    /// container if it crosses the density threshold.
    pub fn insert(&mut self, e: u32, id: u32) {
        self.universe = self.universe.max(id + 1);
        let (universe, cfg) = (self.universe, self.cfg);
        self.map.entry(e).or_default().insert(id, universe, cfg);
    }

    /// Tombstones one posting; returns true if found alive.
    pub fn tombstone(&mut self, e: u32, id: u32) -> bool {
        self.map.get_mut(&e).is_some_and(|c| c.tombstone(id))
    }

    /// Re-chooses every term's representation (compaction).
    pub fn compact(&mut self) {
        let (universe, cfg) = (self.universe, self.cfg);
        for c in self.map.values_mut() {
            c.compact(universe, cfg);
        }
    }

    /// Calls `f(term, container)` for every term, unspecified order
    /// (introspection for validators).
    pub fn for_each(&self, mut f: impl FnMut(u32, &PostingContainer)) {
        for (&e, c) in &self.map {
            f(e, c);
        }
    }

    /// Heap footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.map
            .values()
            .map(|c| c.size_bytes() + std::mem::size_of::<PostingContainer>() + 16)
            .sum()
    }

    /// Deliberately desyncs a cached cardinality — used by `tir-check`'s
    /// property tests to prove the validator notices.
    #[cfg(feature = "testing")]
    pub fn testing_corrupt_cardinality(&mut self) {
        for c in self.map.values_mut() {
            match c {
                PostingContainer::Sparse { live, ids } if !ids.is_empty() => {
                    *live += 1;
                    return;
                }
                PostingContainer::Dense(d) => {
                    d.present_count += 1;
                    return;
                }
                PostingContainer::Runs(r) => {
                    r.present_count += 1;
                    return;
                }
                PostingContainer::Sparse { .. } => {}
            }
        }
    }

    /// Deliberately sets a deleted bit outside the present set — used by
    /// `tir-check`'s property tests to prove the validator notices.
    #[cfg(feature = "testing")]
    pub fn testing_corrupt_deleted_outside(&mut self) {
        for c in self.map.values_mut() {
            match c {
                PostingContainer::Dense(d) => {
                    for (w, (&p, del)) in d.present.iter().zip(d.deleted.iter_mut()).enumerate() {
                        if !p != 0 || w + 1 == d.present.len() {
                            let hole = (!p).trailing_zeros().min(63);
                            // analyze:allow(unguarded-cast): word index times 64 is bounded by the u32 universe
                            if (w * 64) as u32 + hole < d.universe {
                                *del |= 1u64 << hole;
                                return;
                            }
                        }
                    }
                }
                PostingContainer::Runs(r) => {
                    // A deleted id just past the last run is outside
                    // every run — exactly what the validator must flag.
                    if let Some(&(_, last)) = r.runs.last() {
                        r.deleted.push(last + 1);
                        return;
                    }
                }
                PostingContainer::Sparse { .. } => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn density_choice_at_build() {
        let cfg = ContainerConfig::default();
        // 4 live of universe 1000: sparse.
        let c = PostingContainer::from_sorted(&[1, 5, 9, 900], 1000, cfg);
        assert!(!c.is_dense());
        // 40 live of universe 1000 (1/25 > 1/32): dense.
        let ids: Vec<u32> = (0..40).map(|i| i * 25).collect();
        let c = PostingContainer::from_sorted(&ids, 1000, cfg);
        assert!(c.is_dense());
        assert_eq!(c.cardinality(), 40);
    }

    #[test]
    fn tombstones_on_every_form() {
        let cfg = ContainerConfig::default();
        let mut sparse = PostingContainer::from_sorted(&[1, 5, 9], 1000, cfg);
        assert!(sparse.tombstone(5));
        assert!(!sparse.tombstone(5));
        assert_eq!(sparse.cardinality(), 2);

        // Evens: 64 singleton runs fail the run rule, density picks the
        // bitmap.
        let ids: Vec<u32> = (0..64).map(|i| i * 2).collect();
        let mut dense = PostingContainer::from_sorted(&ids, 128, cfg);
        assert!(dense.is_dense());
        assert!(dense.tombstone(8));
        assert!(!dense.tombstone(8));
        assert_eq!(dense.cardinality(), 63);
        let PostingContainer::Dense(d) = &dense else {
            unreachable!()
        };
        assert!(!d.contains_live(8));
        assert!(d.contains_live(10));

        // One contiguous range in a universe too big for density: run
        // form (64/10000 < 1/64, so the bitmap never competes).
        let ids: Vec<u32> = (0..64).collect();
        let mut runs = PostingContainer::from_sorted(&ids, 10_000, cfg);
        assert!(runs.is_runs());
        assert!(runs.tombstone(7));
        assert!(!runs.tombstone(7));
        assert!(!runs.tombstone(99), "outside every run");
        assert_eq!(runs.cardinality(), 63);
        let PostingContainer::Runs(r) = &runs else {
            unreachable!()
        };
        assert_eq!(r.runs(), &[(0, 63)]);
        assert!(!r.contains_live(7));
        assert!(r.contains_live(8));
        let mut seen = Vec::new();
        r.for_each_live(|id| seen.push(id));
        assert_eq!(seen.len(), 63);
        assert!(!seen.contains(&7));
    }

    #[test]
    fn run_set_insert_merges_and_demotes() {
        let mut r = RunSet::from_sorted_ids(&(10..30).collect::<Vec<u32>>(), 100);
        assert_eq!(r.runs(), &[(10, 29)]);
        // Extending either edge keeps one run; a bridge merges two.
        assert!(r.set(30));
        assert!(r.set(9));
        assert!(r.set(40));
        assert_eq!(r.runs(), &[(9, 30), (40, 40)]);
        assert!(r.set(31));
        assert!(!r.set(31), "already present");
        assert_eq!(r.runs(), &[(9, 31), (40, 40)]);
        for id in 32..40 {
            r.set(id);
        }
        assert_eq!(r.runs(), &[(9, 40)]);
        assert_eq!(r.present_count(), 32);

        // Stored round-trip keeps tombstones.
        assert!(r.tombstone(12));
        let stored = r.to_stored_ids();
        assert_eq!(stored.len(), 32);
        assert_eq!(stored[3], 12 | TOMBSTONE);
        let back = RunSet::from_sorted_ids(&stored, 100);
        assert_eq!(back.runs(), r.runs());
        assert_eq!(back.deleted(), r.deleted());

        // Scattered inserts break the run rule and demote the container.
        let cfg = ContainerConfig::default();
        let mut c =
            PostingContainer::Runs(RunSet::from_sorted_ids(&[0, 1, 2, 3, 4, 5, 6, 7], 1 << 20));
        assert!(c.is_runs());
        for id in [100u32, 300, 500, 700] {
            c.insert(id, 1 << 20, cfg);
        }
        assert!(!c.is_runs(), "run rule broken by scattered inserts");
        assert_eq!(c.cardinality(), 12);
    }

    #[test]
    fn dense_builder_carries_tombstones() {
        let ids: Vec<u32> = (0..64)
            .map(|i| if i == 3 { i | TOMBSTONE } else { i })
            .collect();
        let d = DenseBits::from_sorted_ids(&ids, 64);
        assert_eq!(d.present_count(), 64);
        assert_eq!(d.deleted_count(), 1);
        assert_eq!(d.cardinality(), 63);
        assert!(!d.contains_live(3));
        assert_eq!(d.to_sorted_vec().len(), 63);
    }

    #[test]
    fn insert_promotes_and_compact_demotes() {
        let cfg = ContainerConfig { density_den: 4 };
        let mut c = PostingContainer::default();
        for id in 0..24 {
            c.insert(id * 2, 200, cfg);
        }
        assert!(!c.is_dense(), "24/200 < 1/4");
        for id in 24..50 {
            c.insert(id * 2, 200, cfg);
        }
        assert!(c.is_dense(), "50/200 >= 1/4, evens fail the run rule");
        assert_eq!(c.cardinality(), 50);
        for id in 0..45 {
            assert!(c.tombstone(id * 2));
        }
        c.compact(200, cfg);
        assert!(
            !c.is_dense() && !c.is_runs(),
            "5/200 < 1/4 after compaction"
        );
        assert_eq!(c.cardinality(), 5);
        let mut seen = Vec::new();
        c.for_each_live(|id| seen.push(id));
        assert_eq!(seen, vec![90, 92, 94, 96, 98]);

        // The same growth with consecutive ids in a sparse universe
        // promotes to the run form at the 64-element checkpoint, and
        // compaction demotes it once tombstones shrink it.
        let mut c = PostingContainer::default();
        for id in 0..63 {
            c.insert(id, 10_000, cfg);
        }
        assert!(!c.is_runs(), "below the promotion checkpoint");
        c.insert(63, 10_000, cfg);
        assert!(c.is_runs(), "contiguous checkpoint promotion picks runs");
        assert_eq!(c.cardinality(), 64);
        for id in 0..59 {
            assert!(c.tombstone(id));
        }
        c.compact(10_000, cfg);
        assert!(!c.is_dense() && !c.is_runs(), "5 ids, one short run");
        assert_eq!(c.cardinality(), 5);
        let mut seen = Vec::new();
        c.for_each_live(|id| seen.push(id));
        assert_eq!(seen, vec![59, 60, 61, 62, 63]);
    }

    #[test]
    fn hybrid_directory_roundtrip() {
        let run_ids: Vec<u32> = (0..50).collect();
        // 50 and 3 of 10000 both stay under the 1/64 density threshold;
        // the contiguous list takes the run form, the scattered one
        // stays a sorted array.
        let sparse_ids = [3u32, 47, 99];
        let mut h = HybridPostings::from_lists(
            [(0u32, run_ids.as_slice()), (1, sparse_ids.as_slice())].into_iter(),
            10_000,
            ContainerConfig::default(),
        );
        assert!(h.get(0).is_some_and(PostingContainer::is_runs));
        assert!(h.get(1).is_some_and(|c| !c.is_dense()));
        assert!(h.get(2).is_none());
        assert!(h.tombstone(1, 47));
        assert!(!h.tombstone(1, 47));
        h.insert(2, 120);
        assert_eq!(h.universe(), 10_000, "inserts below the universe keep it");
        h.insert(2, 20_000);
        assert_eq!(h.universe(), 20_001);
        assert_eq!(h.get(1).map(PostingContainer::cardinality), Some(2));
        h.compact();
        assert_eq!(h.get(1).map(PostingContainer::raw_len), Some(2));
    }
}
