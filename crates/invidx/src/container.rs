//! Hybrid posting containers: sorted `u32` arrays for sparse terms,
//! 64-bit word bitmaps for dense terms.
//!
//! The representation of each term is chosen at build/compaction time by
//! density over the snapshot's id universe: a term whose postings cover at
//! least `1/density_den` of the universe is stored as a present-bitmap
//! (plus a second *deleted* bitmap carrying the tombstones the array form
//! keeps in bit 31). Cardinality on the dense form is popcount-based and
//! cached, never recomputed per query.
//!
//! Conversions are one-way at run time — a sparse container promotes to
//! dense when an insert pushes it over the threshold, and only
//! [`PostingContainer::compact`] (called at compaction) demotes — so the
//! invariant checked by `tir-check` is simple: the *present* population
//! of a dense container never shrinks, hence dense containers always
//! satisfy the threshold against their recorded universe.

use crate::kernels::{live, raw, TOMBSTONE};

/// Default density denominator: a term is dense when its live postings
/// cover at least 1/32 (~3%) of the id universe. At that density a bitmap
/// costs at most 2 bits per stored id-array bit and membership is O(1).
pub const DEFAULT_DENSITY_DEN: u32 = 32;

/// Tunable container policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContainerConfig {
    /// A term is dense when `live_count * density_den >= universe`.
    pub density_den: u32,
}

impl Default for ContainerConfig {
    fn default() -> Self {
        ContainerConfig {
            density_den: DEFAULT_DENSITY_DEN,
        }
    }
}

/// A dense postings bitmap over `[0, universe)`: one *present* bit per
/// stored posting and one *deleted* bit per tombstoned posting.
#[derive(Debug, Clone, Default)]
pub struct DenseBits {
    present: Vec<u64>,
    deleted: Vec<u64>,
    universe: u32,
    present_count: u32,
    deleted_count: u32,
}

#[inline]
fn words_for(universe: u32) -> usize {
    (universe as usize).div_ceil(64)
}

impl DenseBits {
    /// An empty bitmap over `[0, universe)`.
    pub fn with_universe(universe: u32) -> DenseBits {
        DenseBits {
            present: vec![0; words_for(universe)],
            deleted: vec![0; words_for(universe)],
            universe,
            present_count: 0,
            deleted_count: 0,
        }
    }

    /// Builds from a raw-id-sorted slice that may carry bit-31 tombstones;
    /// tombstoned entries become present+deleted bits.
    pub fn from_sorted_ids(ids: &[u32], universe: u32) -> DenseBits {
        let mut d = DenseBits::with_universe(universe.max(ids.last().map_or(0, |&x| raw(x) + 1)));
        for &id in ids {
            d.set(raw(id));
            if !live(id) {
                d.tombstone(raw(id));
            }
        }
        d
    }

    /// The id universe this bitmap covers.
    #[inline]
    pub fn universe(&self) -> u32 {
        self.universe
    }

    /// The present words (for word-at-a-time intersection).
    #[inline]
    pub fn present_words(&self) -> &[u64] {
        &self.present
    }

    /// The deleted words.
    #[inline]
    pub fn deleted_words(&self) -> &[u64] {
        &self.deleted
    }

    /// Number of present postings, tombstoned ones included.
    #[inline]
    pub fn present_count(&self) -> u32 {
        self.present_count
    }

    /// Number of tombstoned postings.
    #[inline]
    pub fn deleted_count(&self) -> u32 {
        self.deleted_count
    }

    /// Live cardinality (popcount-maintained, O(1)).
    #[inline]
    pub fn cardinality(&self) -> u32 {
        self.present_count - self.deleted_count
    }

    /// True if `id` is stored and not tombstoned.
    #[inline]
    pub fn contains_live(&self, id: u32) -> bool {
        if id >= self.universe {
            return false;
        }
        let (w, b) = (id as usize / 64, id % 64);
        (self.present[w] >> b) & 1 == 1 && (self.deleted[w] >> b) & 1 == 0
    }

    /// Marks `id` present (growing the universe if needed); returns true
    /// if it was absent.
    pub fn set(&mut self, id: u32) -> bool {
        if id >= self.universe {
            self.universe = id + 1;
            self.present.resize(words_for(self.universe), 0);
            self.deleted.resize(words_for(self.universe), 0);
        }
        let (w, b) = (id as usize / 64, id % 64);
        if (self.present[w] >> b) & 1 == 1 {
            return false;
        }
        self.present[w] |= 1 << b;
        self.present_count += 1;
        true
    }

    /// Tombstones `id`; returns true if it was present and alive.
    pub fn tombstone(&mut self, id: u32) -> bool {
        if id >= self.universe {
            return false;
        }
        let (w, b) = (id as usize / 64, id % 64);
        if (self.present[w] >> b) & 1 == 0 || (self.deleted[w] >> b) & 1 == 1 {
            return false;
        }
        self.deleted[w] |= 1 << b;
        self.deleted_count += 1;
        true
    }

    /// Calls `f(id)` for every live id, ascending.
    pub fn for_each_live(&self, mut f: impl FnMut(u32)) {
        for (w, (&p, &d)) in self.present.iter().zip(&self.deleted).enumerate() {
            let mut m = p & !d;
            while m != 0 {
                // analyze:allow(unguarded-cast): word index * 64 + bit < universe, a u32
                f((w * 64) as u32 + m.trailing_zeros());
                m &= m - 1;
            }
        }
    }

    /// The live ids as a sorted vector (demotion / introspection).
    pub fn to_sorted_vec(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.cardinality() as usize);
        self.for_each_live(|id| out.push(id));
        out
    }

    /// Heap footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        (self.present.capacity() + self.deleted.capacity()) * 8
    }
}

/// One term's postings in whichever form the density policy picked.
#[derive(Debug, Clone)]
pub enum PostingContainer {
    /// Sparse form: raw-id-sorted array, tombstones in bit 31, plus the
    /// cached live count.
    Sparse {
        /// The id array (sorted ascending by raw id).
        ids: Vec<u32>,
        /// Number of non-tombstoned entries.
        live: u32,
    },
    /// Dense form: present/deleted bitmaps.
    Dense(DenseBits),
}

impl Default for PostingContainer {
    fn default() -> Self {
        PostingContainer::Sparse {
            ids: Vec::new(),
            live: 0,
        }
    }
}

impl PostingContainer {
    /// Builds from a raw-id-sorted slice (bit-31 tombstones allowed),
    /// picking the form by density over `universe`.
    pub fn from_sorted(ids: &[u32], universe: u32, cfg: ContainerConfig) -> PostingContainer {
        // analyze:allow(unguarded-cast): live count is bounded by the u32 id universe
        let live_count = ids.iter().filter(|&&id| live(id)).count() as u32;
        if is_dense(live_count, universe, cfg) {
            PostingContainer::Dense(DenseBits::from_sorted_ids(ids, universe))
        } else {
            PostingContainer::Sparse {
                ids: ids.to_vec(),
                live: live_count,
            }
        }
    }

    /// True for the bitmap form.
    #[inline]
    pub fn is_dense(&self) -> bool {
        matches!(self, PostingContainer::Dense(_))
    }

    /// Live cardinality.
    pub fn cardinality(&self) -> u32 {
        match self {
            PostingContainer::Sparse { live, .. } => *live,
            PostingContainer::Dense(d) => d.cardinality(),
        }
    }

    /// Stored entries, tombstoned ones included.
    pub fn raw_len(&self) -> usize {
        match self {
            PostingContainer::Sparse { ids, .. } => ids.len(),
            PostingContainer::Dense(d) => d.present_count() as usize,
        }
    }

    /// Adds `id` (must not be stored live already), promoting to dense if
    /// the live count crosses the threshold against `universe`.
    pub fn insert(&mut self, id: u32, universe: u32, cfg: ContainerConfig) {
        match self {
            PostingContainer::Sparse { ids, live } => {
                match ids.last() {
                    Some(&last) if raw(last) > id => {
                        let pos = ids.partition_point(|&x| raw(x) <= id);
                        ids.insert(pos, id);
                    }
                    _ => ids.push(id),
                }
                *live += 1;
                if is_dense(*live, universe, cfg) {
                    *self = PostingContainer::Dense(DenseBits::from_sorted_ids(ids, universe));
                }
            }
            PostingContainer::Dense(d) => {
                d.set(id);
            }
        }
    }

    /// Tombstones `id`; returns true if found alive.
    pub fn tombstone(&mut self, id: u32) -> bool {
        match self {
            PostingContainer::Sparse { ids, live } => {
                if let Ok(p) = ids.binary_search_by_key(&id, |&x| raw(x)) {
                    if live_at(ids, p) {
                        ids[p] |= TOMBSTONE;
                        *live -= 1;
                        return true;
                    }
                }
                false
            }
            PostingContainer::Dense(d) => d.tombstone(id),
        }
    }

    /// Re-chooses the representation for the current live set: drops
    /// tombstones from the array form and demotes bitmaps that fell under
    /// the threshold. The compaction-time counterpart of the build-time
    /// choice in [`PostingContainer::from_sorted`].
    pub fn compact(&mut self, universe: u32, cfg: ContainerConfig) {
        let live_ids = match self {
            PostingContainer::Sparse { ids, .. } => {
                ids.retain(|&id| live(id));
                ids.clone()
            }
            PostingContainer::Dense(d) => d.to_sorted_vec(),
        };
        *self = PostingContainer::from_sorted(&live_ids, universe, cfg);
    }

    /// Calls `f(id)` for every live id, ascending.
    pub fn for_each_live(&self, mut f: impl FnMut(u32)) {
        match self {
            PostingContainer::Sparse { ids, .. } => {
                for &id in ids {
                    if live(id) {
                        f(id);
                    }
                }
            }
            PostingContainer::Dense(d) => d.for_each_live(f),
        }
    }

    /// Heap footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        match self {
            PostingContainer::Sparse { ids, .. } => ids.capacity() * 4,
            PostingContainer::Dense(d) => d.size_bytes(),
        }
    }
}

#[inline]
fn is_dense(live_count: u32, universe: u32, cfg: ContainerConfig) -> bool {
    universe > 0
        && live_count > 0
        && u64::from(live_count) * u64::from(cfg.density_den.max(1)) >= u64::from(universe)
}

#[inline]
fn live_at(ids: &[u32], p: usize) -> bool {
    live(ids[p])
}

/// A term → [`PostingContainer`] directory over one id universe — the
/// build-time product of the hybrid layout, dropped next to an index's
/// temporal lists to accelerate its conjunction steps.
#[derive(Debug, Clone, Default)]
pub struct HybridPostings {
    map: std::collections::HashMap<u32, PostingContainer>,
    universe: u32,
    cfg: ContainerConfig,
}

impl HybridPostings {
    /// Builds the directory from `(term, raw-sorted ids)` pairs. The
    /// universe should be `max id + 1` over the snapshot.
    pub fn from_lists<'a>(
        lists: impl Iterator<Item = (u32, &'a [u32])>,
        universe: u32,
        cfg: ContainerConfig,
    ) -> HybridPostings {
        let map = lists
            .map(|(e, ids)| (e, PostingContainer::from_sorted(ids, universe, cfg)))
            .collect();
        HybridPostings { map, universe, cfg }
    }

    /// The container of a term, if any posting was stored for it.
    #[inline]
    pub fn get(&self, e: u32) -> Option<&PostingContainer> {
        self.map.get(&e)
    }

    /// The id universe (`max id + 1`).
    #[inline]
    pub fn universe(&self) -> u32 {
        self.universe
    }

    /// The density policy.
    #[inline]
    pub fn config(&self) -> ContainerConfig {
        self.cfg
    }

    /// Number of terms with a container.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if no term has a container.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Adds one posting, growing the universe and promoting the term's
    /// container if it crosses the density threshold.
    pub fn insert(&mut self, e: u32, id: u32) {
        self.universe = self.universe.max(id + 1);
        let (universe, cfg) = (self.universe, self.cfg);
        self.map.entry(e).or_default().insert(id, universe, cfg);
    }

    /// Tombstones one posting; returns true if found alive.
    pub fn tombstone(&mut self, e: u32, id: u32) -> bool {
        self.map.get_mut(&e).is_some_and(|c| c.tombstone(id))
    }

    /// Re-chooses every term's representation (compaction).
    pub fn compact(&mut self) {
        let (universe, cfg) = (self.universe, self.cfg);
        for c in self.map.values_mut() {
            c.compact(universe, cfg);
        }
    }

    /// Calls `f(term, container)` for every term, unspecified order
    /// (introspection for validators).
    pub fn for_each(&self, mut f: impl FnMut(u32, &PostingContainer)) {
        for (&e, c) in &self.map {
            f(e, c);
        }
    }

    /// Heap footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.map
            .values()
            .map(|c| c.size_bytes() + std::mem::size_of::<PostingContainer>() + 16)
            .sum()
    }

    /// Deliberately desyncs a cached cardinality — used by `tir-check`'s
    /// property tests to prove the validator notices.
    #[cfg(feature = "testing")]
    pub fn testing_corrupt_cardinality(&mut self) {
        for c in self.map.values_mut() {
            match c {
                PostingContainer::Sparse { live, ids } if !ids.is_empty() => {
                    *live += 1;
                    return;
                }
                PostingContainer::Dense(d) => {
                    d.present_count += 1;
                    return;
                }
                PostingContainer::Sparse { .. } => {}
            }
        }
    }

    /// Deliberately sets a deleted bit outside the present set — used by
    /// `tir-check`'s property tests to prove the validator notices.
    #[cfg(feature = "testing")]
    pub fn testing_corrupt_deleted_outside(&mut self) {
        for c in self.map.values_mut() {
            if let PostingContainer::Dense(d) = c {
                for (w, (&p, del)) in d.present.iter().zip(d.deleted.iter_mut()).enumerate() {
                    if !p != 0 || w + 1 == d.present.len() {
                        let hole = (!p).trailing_zeros().min(63);
                        // analyze:allow(unguarded-cast): word index times 64 is bounded by the u32 universe
                        if (w * 64) as u32 + hole < d.universe {
                            *del |= 1u64 << hole;
                            return;
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn density_choice_at_build() {
        let cfg = ContainerConfig::default();
        // 4 live of universe 1000: sparse.
        let c = PostingContainer::from_sorted(&[1, 5, 9, 900], 1000, cfg);
        assert!(!c.is_dense());
        // 40 live of universe 1000 (1/25 > 1/32): dense.
        let ids: Vec<u32> = (0..40).map(|i| i * 25).collect();
        let c = PostingContainer::from_sorted(&ids, 1000, cfg);
        assert!(c.is_dense());
        assert_eq!(c.cardinality(), 40);
    }

    #[test]
    fn tombstones_on_both_forms() {
        let cfg = ContainerConfig::default();
        let mut sparse = PostingContainer::from_sorted(&[1, 5, 9], 1000, cfg);
        assert!(sparse.tombstone(5));
        assert!(!sparse.tombstone(5));
        assert_eq!(sparse.cardinality(), 2);

        let ids: Vec<u32> = (0..64).collect();
        let mut dense = PostingContainer::from_sorted(&ids, 100, cfg);
        assert!(dense.is_dense());
        assert!(dense.tombstone(7));
        assert!(!dense.tombstone(7));
        assert_eq!(dense.cardinality(), 63);
        let PostingContainer::Dense(d) = &dense else {
            unreachable!()
        };
        assert!(!d.contains_live(7));
        assert!(d.contains_live(8));
    }

    #[test]
    fn dense_builder_carries_tombstones() {
        let ids: Vec<u32> = (0..64)
            .map(|i| if i == 3 { i | TOMBSTONE } else { i })
            .collect();
        let d = DenseBits::from_sorted_ids(&ids, 64);
        assert_eq!(d.present_count(), 64);
        assert_eq!(d.deleted_count(), 1);
        assert_eq!(d.cardinality(), 63);
        assert!(!d.contains_live(3));
        assert_eq!(d.to_sorted_vec().len(), 63);
    }

    #[test]
    fn insert_promotes_and_compact_demotes() {
        let cfg = ContainerConfig { density_den: 4 };
        let mut c = PostingContainer::default();
        for id in 0..24 {
            c.insert(id, 100, cfg);
        }
        assert!(!c.is_dense(), "24/100 < 1/4");
        c.insert(24, 100, cfg);
        assert!(c.is_dense(), "25/100 >= 1/4");
        assert_eq!(c.cardinality(), 25);
        for id in 0..20 {
            assert!(c.tombstone(id));
        }
        c.compact(100, cfg);
        assert!(!c.is_dense(), "5/100 < 1/4 after compaction");
        assert_eq!(c.cardinality(), 5);
        let mut seen = Vec::new();
        c.for_each_live(|id| seen.push(id));
        assert_eq!(seen, vec![20, 21, 22, 23, 24]);
    }

    #[test]
    fn hybrid_directory_roundtrip() {
        let dense_ids: Vec<u32> = (0..50).collect();
        let sparse_ids = [3u32, 47, 99];
        let mut h = HybridPostings::from_lists(
            [(0u32, dense_ids.as_slice()), (1, sparse_ids.as_slice())].into_iter(),
            100,
            ContainerConfig::default(),
        );
        assert!(h.get(0).is_some_and(PostingContainer::is_dense));
        assert!(h.get(1).is_some_and(|c| !c.is_dense()));
        assert!(h.get(2).is_none());
        assert!(h.tombstone(1, 47));
        assert!(!h.tombstone(1, 47));
        h.insert(2, 120);
        assert_eq!(h.universe(), 121);
        assert_eq!(h.get(1).map(PostingContainer::cardinality), Some(2));
        h.compact();
        assert_eq!(h.get(1).map(PostingContainer::raw_len), Some(2));
    }
}
