//! String dictionaries: interning of descriptive elements (terms, track
//! ids, product names, …) to dense `u32` element ids with document
//! frequencies.

use std::collections::HashMap;

/// Interns element strings to dense ids and tracks how many objects
/// contain each element (document frequency).
///
/// ```
/// use tir_invidx::Dictionary;
///
/// let mut dict = Dictionary::new();
/// let us = dict.intern("US");
/// let elections = dict.intern("elections");
/// assert_ne!(us, elections);
/// assert_eq!(dict.intern("US"), us);
/// assert_eq!(dict.term(us), Some("US"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Dictionary {
    terms: Vec<String>,
    map: HashMap<String, u32>,
    freq: Vec<u32>,
}

impl Dictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuilds a dictionary from its flattened parts (the
    /// snapshot-restore path): `terms[i]` is the string of element id
    /// `i`, `freq[i]` its document frequency. Fails with a description if
    /// the tables disagree in length or a term repeats.
    pub fn from_parts(terms: Vec<String>, freq: Vec<u32>) -> Result<Self, String> {
        if terms.len() != freq.len() {
            return Err(format!(
                "{} terms but {} frequency slots",
                terms.len(),
                freq.len()
            ));
        }
        let mut map = HashMap::with_capacity(terms.len());
        for (i, term) in terms.iter().enumerate() {
            // analyze:allow(unguarded-cast): term ids are u32 by contract; the dictionary never exceeds u32::MAX entries
            if map.insert(term.clone(), i as u32).is_some() {
                return Err(format!("term {term:?} appears twice"));
            }
        }
        Ok(Dictionary { terms, map, freq })
    }

    /// Returns the id of `term`, interning it if new.
    pub fn intern(&mut self, term: &str) -> u32 {
        if let Some(&id) = self.map.get(term) {
            return id;
        }
        // analyze:allow(unguarded-cast): term ids are u32 by contract; the dictionary never exceeds u32::MAX entries
        let id = self.terms.len() as u32;
        self.terms.push(term.to_owned());
        self.freq.push(0);
        self.map.insert(term.to_owned(), id);
        id
    }

    /// Looks up an already interned term.
    pub fn lookup(&self, term: &str) -> Option<u32> {
        self.map.get(term).copied()
    }

    /// The string for an element id.
    pub fn term(&self, id: u32) -> Option<&str> {
        self.terms.get(id as usize).map(String::as_str)
    }

    /// Increments the document frequency of `id` (call once per object
    /// containing the element).
    pub fn bump_freq(&mut self, id: u32) {
        self.freq[id as usize] += 1;
    }

    /// Document frequency of an element.
    pub fn freq(&self, id: u32) -> u32 {
        self.freq.get(id as usize).copied().unwrap_or(0)
    }

    /// Number of distinct elements.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True if no element was interned.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Number of entries in the term → id map (introspection for
    /// validators; equals [`len`](Self::len) iff the map and the term
    /// table agree).
    pub fn num_mapped(&self) -> usize {
        self.map.len()
    }

    /// Number of slots in the document-frequency table (introspection
    /// for validators; equals [`len`](Self::len) iff the tables are
    /// parallel).
    pub fn num_freq_slots(&self) -> usize {
        self.freq.len()
    }

    /// Interns every term of an object description, bumping frequencies,
    /// and returns the deduplicated element-id set.
    pub fn intern_description<'a>(&mut self, terms: impl IntoIterator<Item = &'a str>) -> Vec<u32> {
        let mut ids: Vec<u32> = terms.into_iter().map(|t| self.intern(t)).collect();
        ids.sort_unstable();
        ids.dedup();
        for &id in &ids {
            self.bump_freq(id);
        }
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut d = Dictionary::new();
        let a = d.intern("alpha");
        let b = d.intern("beta");
        assert_eq!(d.intern("alpha"), a);
        assert_eq!(d.intern("beta"), b);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn frequencies_count_objects_not_occurrences() {
        let mut d = Dictionary::new();
        let ids = d.intern_description(["it", "the", "it", "shining"]);
        assert_eq!(ids.len(), 3, "duplicates removed");
        let it = d.lookup("it").unwrap();
        assert_eq!(d.freq(it), 1);
        d.intern_description(["it"]);
        assert_eq!(d.freq(it), 2);
    }

    #[test]
    fn term_roundtrip() {
        let mut d = Dictionary::new();
        let id = d.intern("ode to joy");
        assert_eq!(d.term(id), Some("ode to joy"));
        assert_eq!(d.term(999), None);
        assert_eq!(d.lookup("missing"), None);
    }
}
