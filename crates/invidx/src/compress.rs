//! Compressed postings lists: delta + LEB128 varint encoding, plus
//! stream-vbyte [`BlockPostings`] with per-block skip bounds.
//!
//! The paper leaves inverted-file compression as future work (Section 7);
//! this module provides the standard techniques so the IR-first indexes
//! can trade CPU for space. Lists are immutable once encoded — dynamic
//! updates go to an uncompressed overlay (see `tir-core`'s
//! `CompressedTif`). [`CompressedPostings`] is the byte-at-a-time varint
//! form; [`BlockPostings`] re-arranges the same deltas into the
//! stream-vbyte layout (control bytes and data bytes in separate
//! streams, [`BLOCK_LEN`] ids per block with its first/last id kept
//! uncompressed) so blocks decode through the SSSE3 kernel in
//! [`crate::simd`] and blocks that cannot intersect the candidate set
//! are skipped without decoding at all.

use crate::simd;

/// Appends `v` as a LEB128 varint.
#[inline]
fn put_varint(data: &mut Vec<u8>, mut v: u64) {
    loop {
        // analyze:allow(unguarded-cast): masked to 7 bits on the previous operation
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            data.push(byte);
            break;
        }
        data.push(byte | 0x80);
    }
}

/// Reads a LEB128 varint at `pos`, advancing it.
#[inline]
fn get_varint(data: &[u8], pos: &mut usize) -> u64 {
    let mut v = 0u64;
    let mut shift = 0;
    loop {
        let byte = data[*pos];
        *pos += 1;
        v |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return v;
        }
        shift += 7;
    }
}

/// A compressed id-sorted postings list: ids are delta-encoded varints.
#[derive(Debug, Clone, Default)]
pub struct CompressedPostings {
    data: Vec<u8>,
    len: u32,
}

impl CompressedPostings {
    /// Encodes a sorted, duplicate-free id list.
    pub fn encode(ids: &[u32]) -> Self {
        debug_assert!(
            ids.windows(2).all(|w| w[0] < w[1]),
            "ids must be strictly ascending"
        );
        let mut data = Vec::with_capacity(ids.len() * 2);
        let mut prev = 0u32;
        for (i, &id) in ids.iter().enumerate() {
            let delta = if i == 0 { id } else { id - prev };
            put_varint(&mut data, delta as u64);
            prev = id;
        }
        data.shrink_to_fit();
        CompressedPostings {
            data,
            // analyze:allow(unguarded-cast): posting count is bounded by the u32 id space
            len: ids.len() as u32,
        }
    }

    /// Number of encoded postings.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True if no posting is encoded.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Decodes into `out` (cleared first).
    pub fn decode_into(&self, out: &mut Vec<u32>) {
        out.clear();
        out.reserve(self.len as usize);
        let mut pos = 0;
        let mut acc = 0u32;
        for i in 0..self.len {
            // analyze:allow(unguarded-cast): deltas were encoded from u32 ids, so each fits on decode
            let delta = get_varint(&self.data, &mut pos) as u32;
            acc = if i == 0 { delta } else { acc + delta };
            out.push(acc);
        }
    }

    /// Iterates the decoded ids without materializing them.
    pub fn iter(&self) -> CompressedIter<'_> {
        CompressedIter {
            data: &self.data,
            pos: 0,
            remaining: self.len,
            acc: 0,
            first: true,
        }
    }

    /// Streaming intersection with a sorted candidate set; appends every
    /// candidate present in this list to `out`.
    pub fn intersect_into(&self, cands: &[u32], out: &mut Vec<u32>) {
        let mut ci = 0usize;
        for id in self.iter() {
            while ci < cands.len() && cands[ci] < id {
                ci += 1;
            }
            if ci == cands.len() {
                return;
            }
            if cands[ci] == id {
                out.push(id);
                ci += 1;
            }
        }
    }

    /// Encoded size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.data.capacity() + std::mem::size_of::<Self>()
    }

    /// The raw encoded bytes (introspection for validators, which
    /// re-walk the varint stream with bounds checking).
    pub fn raw_bytes(&self) -> &[u8] {
        &self.data
    }
}

/// Iterator over a [`CompressedPostings`].
#[derive(Debug)]
pub struct CompressedIter<'a> {
    data: &'a [u8],
    pos: usize,
    remaining: u32,
    acc: u32,
    first: bool,
}

impl Iterator for CompressedIter<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        // analyze:allow(unguarded-cast): deltas were encoded from u32 ids, so each fits on decode
        let delta = get_varint(self.data, &mut self.pos) as u32;
        self.acc = if self.first { delta } else { self.acc + delta };
        self.first = false;
        Some(self.acc)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining as usize, Some(self.remaining as usize))
    }
}

/// Ids per [`BlockPostings`] block (the final block may be shorter).
/// 128 ids is 32 control bytes — deep enough to amortize the vector
/// decode, small enough that skip bounds prune effectively.
pub const BLOCK_LEN: usize = 128;

/// Costs of one [`BlockPostings::intersect_into`] call, reported back so
/// the caller can feed the planner's counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct BlockStats {
    /// Blocks actually decoded (skipped blocks cost nothing).
    pub blocks_decoded: u64,
    /// Candidates plus decoded ids scanned by the merge kernel.
    pub scanned: u64,
    /// True if any block went through the vector merge kernel.
    pub vector: bool,
}

/// Stream-vbyte block-compressed postings: strictly ascending clean ids
/// (no tombstones — deletions live in the caller's overlay), cut into
/// [`BLOCK_LEN`]-id blocks. Each block keeps its first and last id
/// uncompressed, so intersection skips whole blocks by range without
/// touching their bytes, and the remaining deltas decode through
/// [`crate::simd::svb_decode_into`] — one control byte per 4 deltas, a
/// `pshufb`-driven expand, and an in-register prefix sum.
#[derive(Debug, Clone, Default)]
pub struct BlockPostings {
    firsts: Vec<u32>,
    lasts: Vec<u32>,
    ctrl_offs: Vec<u32>,
    data_offs: Vec<u32>,
    ctrl: Vec<u8>,
    data: Vec<u8>,
    len: u32,
}

/// Encodes the deltas of a strictly ascending chunk (`ids[1..] -
/// ids[..]`) in stream-vbyte layout: per delta a 2-bit byte-length code
/// packed 4-per-control-byte, the little-endian value bytes appended to
/// `data`. Unused lanes of a final partial control byte encode length 1
/// and consume no data bytes on decode.
fn svb_encode_deltas(ids: &[u32], ctrl: &mut Vec<u8>, data: &mut Vec<u8>) {
    let mut i = 1usize;
    while i < ids.len() {
        let mut c = 0u8;
        let mut lane = 0usize;
        while lane < 4 && i < ids.len() {
            let v = ids[i] - ids[i - 1];
            let nbytes = 4 - (v.leading_zeros() / 8).min(3) as usize;
            // analyze:allow(unguarded-cast): nbytes - 1 is 0..=3, two bits
            c |= ((nbytes - 1) as u8) << (2 * lane);
            data.extend_from_slice(&v.to_le_bytes()[..nbytes]);
            i += 1;
            lane += 1;
        }
        ctrl.push(c);
    }
}

impl BlockPostings {
    /// Encodes a sorted, duplicate-free, tombstone-free id list.
    pub fn encode(ids: &[u32]) -> Self {
        debug_assert!(
            ids.windows(2).all(|w| w[0] < w[1]),
            "ids must be strictly ascending"
        );
        let mut bp = BlockPostings {
            // analyze:allow(unguarded-cast): posting count is bounded by the u32 id space
            len: ids.len() as u32,
            ..BlockPostings::default()
        };
        for chunk in ids.chunks(BLOCK_LEN) {
            bp.firsts.push(chunk[0]);
            bp.lasts.push(*chunk.last().expect("chunks are non-empty"));
            // analyze:allow(unguarded-cast): stream length <= 5 bytes per u32 posting
            bp.ctrl_offs.push(bp.ctrl.len() as u32);
            // analyze:allow(unguarded-cast): stream length <= 5 bytes per u32 posting
            bp.data_offs.push(bp.data.len() as u32);
            svb_encode_deltas(chunk, &mut bp.ctrl, &mut bp.data);
        }
        // Terminal padding: the vector decoder loads 16 data bytes at a
        // time, so the last groups of the last block stay in bounds and
        // every block decodes fully vectorized.
        bp.data.resize(bp.data.len() + 16, 0);
        bp
    }

    /// Number of encoded postings.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True if no posting is encoded.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of blocks.
    #[inline]
    pub fn num_blocks(&self) -> usize {
        self.firsts.len()
    }

    /// First id of block `b`.
    #[inline]
    pub fn block_first(&self, b: usize) -> u32 {
        self.firsts[b]
    }

    /// Last id of block `b`.
    #[inline]
    pub fn block_last(&self, b: usize) -> u32 {
        self.lasts[b]
    }

    /// Ids stored in block `b`.
    #[inline]
    fn block_len(&self, b: usize) -> usize {
        if b + 1 == self.num_blocks() {
            self.len as usize - b * BLOCK_LEN
        } else {
            BLOCK_LEN
        }
    }

    /// Decodes block `b` into `out` (cleared first); returns the id
    /// count. Decoding reads the shared suffix of the control/data
    /// streams and stops after the block's ids — the terminal padding
    /// keeps the vector loads of the last block in bounds.
    pub fn decode_block_into(&self, b: usize, out: &mut Vec<u32>) -> usize {
        let count = self.block_len(b);
        out.clear();
        out.resize(count, 0);
        simd::svb_decode_into(
            self.firsts[b],
            &self.ctrl[self.ctrl_offs[b] as usize..],
            &self.data[self.data_offs[b] as usize..],
            out,
        );
        count
    }

    /// Scalar walk of one block's ids in ascending order, no scratch
    /// allocation; stops early when `f` returns false. Point probes and
    /// full scans share this so neither touches the heap.
    fn walk_block(&self, b: usize, mut f: impl FnMut(u32) -> bool) {
        let count = self.block_len(b);
        let mut acc = self.firsts[b];
        if !f(acc) {
            return;
        }
        let ctrl = &self.ctrl[self.ctrl_offs[b] as usize..];
        let data = &self.data[self.data_offs[b] as usize..];
        let mut pos = 0usize;
        for j in 0..count - 1 {
            let nbytes = ((ctrl[j / 4] >> (2 * (j % 4))) & 3) as usize + 1;
            let mut v = 0u32;
            for (sh, &byte) in data[pos..pos + nbytes].iter().enumerate() {
                v |= u32::from(byte) << (8 * sh);
            }
            pos += nbytes;
            acc = acc.wrapping_add(v);
            if !f(acc) {
                return;
            }
        }
    }

    /// True if `id` is encoded. Binary-searches the block bounds, then
    /// walks at most one block without decoding it into a buffer.
    pub fn contains(&self, id: u32) -> bool {
        let b = self.lasts.partition_point(|&l| l < id);
        if b == self.num_blocks() || self.firsts[b] > id {
            return false;
        }
        if self.firsts[b] == id || self.lasts[b] == id {
            return true;
        }
        let mut found = false;
        self.walk_block(b, |v| {
            if v >= id {
                found = v == id;
                false
            } else {
                true
            }
        });
        found
    }

    /// Block-at-a-time intersection with a sorted clean candidate set:
    /// appends every candidate present in this list to `out`, skipping
    /// blocks whose `[first, last]` range cannot meet the remaining
    /// candidates *without decoding them*; decoded blocks go through the
    /// dispatched merge kernel. `blk` is the caller's reusable decode
    /// buffer (see `QueryScratch::take_blk`).
    pub fn intersect_into(
        &self,
        cands: &[u32],
        out: &mut Vec<u32>,
        blk: &mut Vec<u32>,
    ) -> BlockStats {
        let mut st = BlockStats::default();
        let Some(&last_cand) = cands.last() else {
            return st;
        };
        let mut ci = 0usize;
        // First block that can hold the smallest candidate.
        let mut b = self.lasts.partition_point(|&l| l < cands[0]);
        while b < self.num_blocks() && ci < cands.len() {
            let (first, last) = (self.firsts[b], self.lasts[b]);
            if first > last_cand {
                break;
            }
            if last < cands[ci] {
                b += 1;
                continue;
            }
            let count = self.decode_block_into(b, blk);
            let ce = ci + cands[ci..].partition_point(|&c| c <= last);
            let window = &cands[ci..ce];
            // A candidate window much wider than the block reverses the
            // roles: iterate the decoded ids, gallop through the window.
            if count.saturating_mul(crate::kernels::GALLOP_RATIO) < window.len() {
                crate::kernels::intersect_gallop_rev_into(window, blk, out);
                st.scanned += count as u64;
            } else {
                st.vector |= simd::merge_into(window, blk, out);
                st.scanned += (ce - ci + count) as u64;
            }
            st.blocks_decoded += 1;
            ci = ce;
            b += 1;
        }
        st
    }

    /// Calls `f(id)` for every encoded id, ascending (validators and
    /// introspection; queries use [`BlockPostings::intersect_into`]).
    pub fn for_each(&self, mut f: impl FnMut(u32)) {
        for b in 0..self.num_blocks() {
            self.walk_block(b, |id| {
                f(id);
                true
            });
        }
    }

    /// The raw control/data streams (introspection for validators,
    /// which re-walk them with bounds checking — the production decoder
    /// indexes unchecked and must never see possibly corrupt bytes).
    pub fn raw_streams(&self) -> (&[u8], &[u8]) {
        (&self.ctrl, &self.data)
    }

    /// Stream start offsets `(ctrl, data)` of block `b` (introspection
    /// for validators).
    pub fn block_offsets(&self, b: usize) -> (usize, usize) {
        (self.ctrl_offs[b] as usize, self.data_offs[b] as usize)
    }

    /// Deliberately desyncs the first block's skip bound — used by
    /// `tir-check`'s property tests to prove the validator notices.
    #[cfg(feature = "testing")]
    pub fn testing_corrupt_skip_bound(&mut self) {
        if let Some(l) = self.lasts.first_mut() {
            *l += 1;
        }
    }

    /// Encoded size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.ctrl.capacity()
            + self.data.capacity()
            + (self.firsts.capacity()
                + self.lasts.capacity()
                + self.ctrl_offs.capacity()
                + self.data_offs.capacity())
                * 4
            + std::mem::size_of::<Self>()
    }
}

/// A compressed *temporal* postings list: `(id delta, st, end - st)`
/// varint triples, id-sorted.
#[derive(Debug, Clone, Default)]
pub struct CompressedTemporalPostings {
    data: Vec<u8>,
    len: u32,
}

impl CompressedTemporalPostings {
    /// Encodes parallel arrays sorted by strictly ascending id.
    pub fn encode(ids: &[u32], sts: &[u64], ends: &[u64]) -> Self {
        assert_eq!(ids.len(), sts.len());
        assert_eq!(ids.len(), ends.len());
        debug_assert!(ids.windows(2).all(|w| w[0] < w[1]));
        let mut data = Vec::with_capacity(ids.len() * 6);
        let mut prev = 0u32;
        for i in 0..ids.len() {
            let delta = if i == 0 { ids[i] } else { ids[i] - prev };
            put_varint(&mut data, delta as u64);
            put_varint(&mut data, sts[i]);
            put_varint(&mut data, ends[i] - sts[i]);
            prev = ids[i];
        }
        data.shrink_to_fit();
        CompressedTemporalPostings {
            data,
            // analyze:allow(unguarded-cast): posting count is bounded by the u32 id space
            len: ids.len() as u32,
        }
    }

    /// Number of encoded postings.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Calls `f(id, st, end)` for every posting.
    pub fn for_each(&self, mut f: impl FnMut(u32, u64, u64)) {
        let mut pos = 0;
        let mut acc = 0u32;
        for i in 0..self.len {
            // analyze:allow(unguarded-cast): deltas were encoded from u32 ids, so each fits on decode
            let delta = get_varint(&self.data, &mut pos) as u32;
            acc = if i == 0 { delta } else { acc + delta };
            let st = get_varint(&self.data, &mut pos);
            let dur = get_varint(&self.data, &mut pos);
            f(acc, st, st + dur);
        }
    }

    /// Encoded size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.data.capacity() + std::mem::size_of::<Self>()
    }

    /// The raw encoded bytes (introspection for validators, which
    /// re-walk the varint stream with bounds checking).
    pub fn raw_bytes(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let ids = vec![0u32, 1, 127, 128, 300, 1_000_000, 1_000_001];
        let c = CompressedPostings::encode(&ids);
        let mut out = Vec::new();
        c.decode_into(&mut out);
        assert_eq!(out, ids);
        assert_eq!(c.iter().collect::<Vec<_>>(), ids);
        assert_eq!(c.len(), ids.len());
    }

    #[test]
    fn empty_list() {
        let c = CompressedPostings::encode(&[]);
        assert!(c.is_empty());
        assert_eq!(c.iter().count(), 0);
    }

    #[test]
    fn compresses_dense_lists() {
        let ids: Vec<u32> = (0..10_000).collect();
        let c = CompressedPostings::encode(&ids);
        assert!(
            c.size_bytes() < ids.len() * 2,
            "dense deltas should take ~1 byte each, got {}",
            c.size_bytes()
        );
    }

    #[test]
    fn streaming_intersection() {
        let ids: Vec<u32> = (0..1000).map(|i| i * 3).collect();
        let c = CompressedPostings::encode(&ids);
        let cands = vec![0u32, 2, 3, 9, 10, 2997, 3000];
        let mut out = Vec::new();
        c.intersect_into(&cands, &mut out);
        assert_eq!(out, vec![0, 3, 9, 2997]);
    }

    #[test]
    fn temporal_roundtrip() {
        let ids = vec![5u32, 9, 1000];
        let sts = vec![100u64, 0, 1 << 40];
        let ends = vec![200u64, 7, (1 << 40) + 3];
        let c = CompressedTemporalPostings::encode(&ids, &sts, &ends);
        let mut got = Vec::new();
        c.for_each(|id, st, end| got.push((id, st, end)));
        assert_eq!(
            got,
            vec![(5, 100, 200), (9, 0, 7), (1000, 1 << 40, (1 << 40) + 3)]
        );
    }

    #[test]
    fn block_roundtrip_and_bounds() {
        let ids: Vec<u32> = (0..300u32).map(|i| i * 7 + (i % 3)).collect();
        let bp = BlockPostings::encode(&ids);
        assert_eq!(bp.len(), 300);
        assert_eq!(bp.num_blocks(), 3);
        let mut got = Vec::new();
        bp.for_each(|id| got.push(id));
        assert_eq!(got, ids);
        assert_eq!(bp.block_first(0), ids[0]);
        assert_eq!(bp.block_last(0), ids[127]);
        assert_eq!(bp.block_first(2), ids[256]);
        assert_eq!(bp.block_last(2), ids[299]);
        assert!(bp.contains(ids[200]));
        assert!(!bp.contains(ids[200] + 1), "gap ids are absent");
        assert!(!bp.contains(ids[299] + 1), "past the last block");
    }

    #[test]
    fn block_intersection_skips_blocks() {
        // 8 blocks of evens; candidates confined to one block's range.
        let ids: Vec<u32> = (0..1024u32).map(|i| i * 2).collect();
        let bp = BlockPostings::encode(&ids);
        assert_eq!(bp.num_blocks(), 8);
        let cands: Vec<u32> = (600..700u32).collect();
        let (mut out, mut blk) = (Vec::new(), Vec::new());
        let st = bp.intersect_into(&cands, &mut out, &mut blk);
        let want: Vec<u32> = (600..700).filter(|c| c % 2 == 0).collect();
        assert_eq!(out, want);
        assert_eq!(st.blocks_decoded, 1, "other 7 blocks skip by range");
        assert!(st.scanned > 0);
    }

    #[test]
    fn block_empty_and_single() {
        let bp = BlockPostings::encode(&[]);
        assert!(bp.is_empty());
        assert_eq!(bp.num_blocks(), 0);
        assert!(!bp.contains(0));
        let (mut out, mut blk) = (Vec::new(), Vec::new());
        let st = bp.intersect_into(&[1, 2, 3], &mut out, &mut blk);
        assert!(out.is_empty() && st.blocks_decoded == 0);

        let bp = BlockPostings::encode(&[42]);
        assert_eq!(bp.len(), 1);
        assert!(bp.contains(42) && !bp.contains(41));
        let st = bp.intersect_into(&[41, 42, 43], &mut out, &mut blk);
        assert_eq!(out, vec![42]);
        assert_eq!(st.blocks_decoded, 1);
    }

    #[test]
    fn block_matches_varint_form_on_large_deltas() {
        let ids: Vec<u32> = (0..500u32)
            .scan(3u32, |acc, i| {
                *acc = acc.wrapping_add(1 + i * 8191 % 100_000);
                Some(*acc)
            })
            .collect();
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
        let bp = BlockPostings::encode(&ids);
        let cp = CompressedPostings::encode(&ids);
        let mut got = Vec::new();
        bp.for_each(|id| got.push(id));
        assert_eq!(got, cp.iter().collect::<Vec<_>>());
    }

    #[test]
    fn varint_boundaries() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u32::MAX as u64, u64::MAX] {
            let mut data = Vec::new();
            put_varint(&mut data, v);
            let mut pos = 0;
            assert_eq!(get_varint(&data, &mut pos), v);
            assert_eq!(pos, data.len());
        }
    }
}
