//! Compressed postings lists: delta + LEB128 varint encoding.
//!
//! The paper leaves inverted-file compression as future work (Section 7);
//! this module provides the standard technique so the IR-first indexes
//! can trade CPU for space. Lists are immutable once encoded — dynamic
//! updates go to an uncompressed overlay (see `tir-core`'s
//! `CompressedTif`).

/// Appends `v` as a LEB128 varint.
#[inline]
fn put_varint(data: &mut Vec<u8>, mut v: u64) {
    loop {
        // analyze:allow(unguarded-cast): masked to 7 bits on the previous operation
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            data.push(byte);
            break;
        }
        data.push(byte | 0x80);
    }
}

/// Reads a LEB128 varint at `pos`, advancing it.
#[inline]
fn get_varint(data: &[u8], pos: &mut usize) -> u64 {
    let mut v = 0u64;
    let mut shift = 0;
    loop {
        let byte = data[*pos];
        *pos += 1;
        v |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return v;
        }
        shift += 7;
    }
}

/// A compressed id-sorted postings list: ids are delta-encoded varints.
#[derive(Debug, Clone, Default)]
pub struct CompressedPostings {
    data: Vec<u8>,
    len: u32,
}

impl CompressedPostings {
    /// Encodes a sorted, duplicate-free id list.
    pub fn encode(ids: &[u32]) -> Self {
        debug_assert!(
            ids.windows(2).all(|w| w[0] < w[1]),
            "ids must be strictly ascending"
        );
        let mut data = Vec::with_capacity(ids.len() * 2);
        let mut prev = 0u32;
        for (i, &id) in ids.iter().enumerate() {
            let delta = if i == 0 { id } else { id - prev };
            put_varint(&mut data, delta as u64);
            prev = id;
        }
        data.shrink_to_fit();
        CompressedPostings {
            data,
            // analyze:allow(unguarded-cast): posting count is bounded by the u32 id space
            len: ids.len() as u32,
        }
    }

    /// Number of encoded postings.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True if no posting is encoded.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Decodes into `out` (cleared first).
    pub fn decode_into(&self, out: &mut Vec<u32>) {
        out.clear();
        out.reserve(self.len as usize);
        let mut pos = 0;
        let mut acc = 0u32;
        for i in 0..self.len {
            // analyze:allow(unguarded-cast): deltas were encoded from u32 ids, so each fits on decode
            let delta = get_varint(&self.data, &mut pos) as u32;
            acc = if i == 0 { delta } else { acc + delta };
            out.push(acc);
        }
    }

    /// Iterates the decoded ids without materializing them.
    pub fn iter(&self) -> CompressedIter<'_> {
        CompressedIter {
            data: &self.data,
            pos: 0,
            remaining: self.len,
            acc: 0,
            first: true,
        }
    }

    /// Streaming intersection with a sorted candidate set; appends every
    /// candidate present in this list to `out`.
    pub fn intersect_into(&self, cands: &[u32], out: &mut Vec<u32>) {
        let mut ci = 0usize;
        for id in self.iter() {
            while ci < cands.len() && cands[ci] < id {
                ci += 1;
            }
            if ci == cands.len() {
                return;
            }
            if cands[ci] == id {
                out.push(id);
                ci += 1;
            }
        }
    }

    /// Encoded size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.data.capacity() + std::mem::size_of::<Self>()
    }

    /// The raw encoded bytes (introspection for validators, which
    /// re-walk the varint stream with bounds checking).
    pub fn raw_bytes(&self) -> &[u8] {
        &self.data
    }
}

/// Iterator over a [`CompressedPostings`].
#[derive(Debug)]
pub struct CompressedIter<'a> {
    data: &'a [u8],
    pos: usize,
    remaining: u32,
    acc: u32,
    first: bool,
}

impl Iterator for CompressedIter<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        // analyze:allow(unguarded-cast): deltas were encoded from u32 ids, so each fits on decode
        let delta = get_varint(self.data, &mut self.pos) as u32;
        self.acc = if self.first { delta } else { self.acc + delta };
        self.first = false;
        Some(self.acc)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining as usize, Some(self.remaining as usize))
    }
}

/// A compressed *temporal* postings list: `(id delta, st, end - st)`
/// varint triples, id-sorted.
#[derive(Debug, Clone, Default)]
pub struct CompressedTemporalPostings {
    data: Vec<u8>,
    len: u32,
}

impl CompressedTemporalPostings {
    /// Encodes parallel arrays sorted by strictly ascending id.
    pub fn encode(ids: &[u32], sts: &[u64], ends: &[u64]) -> Self {
        assert_eq!(ids.len(), sts.len());
        assert_eq!(ids.len(), ends.len());
        debug_assert!(ids.windows(2).all(|w| w[0] < w[1]));
        let mut data = Vec::with_capacity(ids.len() * 6);
        let mut prev = 0u32;
        for i in 0..ids.len() {
            let delta = if i == 0 { ids[i] } else { ids[i] - prev };
            put_varint(&mut data, delta as u64);
            put_varint(&mut data, sts[i]);
            put_varint(&mut data, ends[i] - sts[i]);
            prev = ids[i];
        }
        data.shrink_to_fit();
        CompressedTemporalPostings {
            data,
            // analyze:allow(unguarded-cast): posting count is bounded by the u32 id space
            len: ids.len() as u32,
        }
    }

    /// Number of encoded postings.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Calls `f(id, st, end)` for every posting.
    pub fn for_each(&self, mut f: impl FnMut(u32, u64, u64)) {
        let mut pos = 0;
        let mut acc = 0u32;
        for i in 0..self.len {
            // analyze:allow(unguarded-cast): deltas were encoded from u32 ids, so each fits on decode
            let delta = get_varint(&self.data, &mut pos) as u32;
            acc = if i == 0 { delta } else { acc + delta };
            let st = get_varint(&self.data, &mut pos);
            let dur = get_varint(&self.data, &mut pos);
            f(acc, st, st + dur);
        }
    }

    /// Encoded size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.data.capacity() + std::mem::size_of::<Self>()
    }

    /// The raw encoded bytes (introspection for validators, which
    /// re-walk the varint stream with bounds checking).
    pub fn raw_bytes(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let ids = vec![0u32, 1, 127, 128, 300, 1_000_000, 1_000_001];
        let c = CompressedPostings::encode(&ids);
        let mut out = Vec::new();
        c.decode_into(&mut out);
        assert_eq!(out, ids);
        assert_eq!(c.iter().collect::<Vec<_>>(), ids);
        assert_eq!(c.len(), ids.len());
    }

    #[test]
    fn empty_list() {
        let c = CompressedPostings::encode(&[]);
        assert!(c.is_empty());
        assert_eq!(c.iter().count(), 0);
    }

    #[test]
    fn compresses_dense_lists() {
        let ids: Vec<u32> = (0..10_000).collect();
        let c = CompressedPostings::encode(&ids);
        assert!(
            c.size_bytes() < ids.len() * 2,
            "dense deltas should take ~1 byte each, got {}",
            c.size_bytes()
        );
    }

    #[test]
    fn streaming_intersection() {
        let ids: Vec<u32> = (0..1000).map(|i| i * 3).collect();
        let c = CompressedPostings::encode(&ids);
        let cands = vec![0u32, 2, 3, 9, 10, 2997, 3000];
        let mut out = Vec::new();
        c.intersect_into(&cands, &mut out);
        assert_eq!(out, vec![0, 3, 9, 2997]);
    }

    #[test]
    fn temporal_roundtrip() {
        let ids = vec![5u32, 9, 1000];
        let sts = vec![100u64, 0, 1 << 40];
        let ends = vec![200u64, 7, (1 << 40) + 3];
        let c = CompressedTemporalPostings::encode(&ids, &sts, &ends);
        let mut got = Vec::new();
        c.for_each(|id, st, end| got.push((id, st, end)));
        assert_eq!(
            got,
            vec![(5, 100, 200), (9, 0, 7), (1000, 1 << 40, (1 << 40) + 3)]
        );
    }

    #[test]
    fn varint_boundaries() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u32::MAX as u64, u64::MAX] {
            let mut data = Vec::new();
            put_varint(&mut data, v);
            let mut pos = 0;
            assert_eq!(get_varint(&data, &mut pos), v);
            assert_eq!(pos, data.len());
        }
    }
}
