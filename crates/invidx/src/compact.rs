//! Compact per-division inverted indexes.
//!
//! irHINT stores an inverted index inside **every** non-empty HINT
//! division, so the per-structure overhead matters: these indexes are flat
//! structure-of-arrays with a sorted element directory, no hash maps.

use crate::kernels::{raw, TOMBSTONE};

/// Streaming constructor for the flat element/offset/postings layout.
///
/// Entries must arrive grouped by element (ascending); `finish` appends
/// the final sentinel offset, so the `offsets.len() == elems.len() + 1`
/// invariant holds by construction and no in-place offset patching is
/// needed.
struct FlatBuilder {
    elems: Vec<u32>,
    offsets: Vec<u32>,
    ids: Vec<u32>,
}

impl FlatBuilder {
    fn with_capacity(n: usize) -> Self {
        FlatBuilder {
            elems: Vec::new(),
            offsets: Vec::new(),
            ids: Vec::with_capacity(n),
        }
    }

    #[inline]
    fn push(&mut self, e: u32, id: u32) {
        if self.elems.last() != Some(&e) {
            self.elems.push(e);
            // analyze:allow(unguarded-cast): posting count is bounded by the u32 id space
            self.offsets.push(self.ids.len() as u32);
        }
        self.ids.push(id);
    }

    fn finish(mut self) -> (Vec<u32>, Vec<u32>, Vec<u32>) {
        // analyze:allow(unguarded-cast): posting count is bounded by the u32 id space
        self.offsets.push(self.ids.len() as u32);
        (self.elems, self.offsets, self.ids)
    }
}

/// [`FlatBuilder`] twin that also carries the interval columns.
struct TemporalFlatBuilder {
    flat: FlatBuilder,
    sts: Vec<u64>,
    ends: Vec<u64>,
}

impl TemporalFlatBuilder {
    fn with_capacity(n: usize) -> Self {
        TemporalFlatBuilder {
            flat: FlatBuilder::with_capacity(n),
            sts: Vec::with_capacity(n),
            ends: Vec::with_capacity(n),
        }
    }

    #[inline]
    fn push(&mut self, e: u32, id: u32, st: u64, end: u64) {
        self.flat.push(e, id);
        self.sts.push(st);
        self.ends.push(end);
    }

    fn finish(self) -> CompactTemporalInverted {
        let (elems, offsets, ids) = self.flat.finish();
        CompactTemporalInverted {
            elems,
            offsets,
            ids,
            sts: self.sts,
            ends: self.ends,
        }
    }
}

/// A compact inverted index mapping element ids to id-sorted postings.
///
/// Used by the *size* variant of irHINT (Section 4.2), where postings hold
/// only object ids and the temporal information lives in a separate
/// interval store.
#[derive(Debug, Clone)]
pub struct CompactInverted {
    elems: Vec<u32>,
    offsets: Vec<u32>,
    ids: Vec<u32>,
}

impl Default for CompactInverted {
    fn default() -> Self {
        Self::new()
    }
}

impl CompactInverted {
    /// Creates an empty index.
    pub fn new() -> Self {
        CompactInverted {
            elems: Vec::new(),
            offsets: vec![0],
            ids: Vec::new(),
        }
    }

    /// Builds from `(element, object id)` pairs; consumes and sorts the
    /// buffer.
    pub fn build(pairs: &mut [(u32, u32)]) -> Self {
        pairs.sort_unstable();
        let mut b = FlatBuilder::with_capacity(pairs.len());
        for &(e, id) in pairs.iter() {
            b.push(e, id);
        }
        let (elems, offsets, ids) = b.finish();
        CompactInverted {
            elems,
            offsets,
            ids,
        }
    }

    /// The id-sorted postings of `elem` (may contain tombstoned entries).
    pub fn postings(&self, elem: u32) -> &[u32] {
        match self.elems.binary_search(&elem) {
            Ok(i) => {
                let lo = self.offsets[i] as usize;
                let hi = self.offsets[i + 1] as usize;
                &self.ids[lo..hi]
            }
            Err(_) => &[],
        }
    }

    /// Inserts one posting, keeping element and id order.
    pub fn insert(&mut self, elem: u32, id: u32) {
        match self.elems.binary_search(&elem) {
            Ok(i) => {
                let lo = self.offsets[i] as usize;
                let hi = self.offsets[i + 1] as usize;
                let pos = lo + self.ids[lo..hi].partition_point(|&x| raw(x) <= id);
                self.ids.insert(pos, id);
                for off in &mut self.offsets[i + 1..] {
                    *off += 1;
                }
            }
            Err(i) => {
                let pos = self.offsets[i] as usize;
                self.elems.insert(i, elem);
                self.offsets.insert(i + 1, self.offsets[i]);
                self.ids.insert(pos, id);
                for off in &mut self.offsets[i + 1..] {
                    *off += 1;
                }
            }
        }
    }

    /// Tombstones the posting `(elem, id)`; returns true if found alive.
    pub fn tombstone(&mut self, elem: u32, id: u32) -> bool {
        if let Ok(i) = self.elems.binary_search(&elem) {
            let lo = self.offsets[i] as usize;
            let hi = self.offsets[i + 1] as usize;
            if let Ok(p) = self.ids[lo..hi].binary_search_by_key(&id, |&x| raw(x)) {
                let slot = &mut self.ids[lo + p];
                if *slot & TOMBSTONE == 0 {
                    *slot |= TOMBSTONE;
                    return true;
                }
            }
        }
        false
    }

    /// Merges a batch of `(elem, id)` pairs in one rebuild pass —
    /// `O(existing + batch log batch)` instead of one memmove per pair.
    pub fn merge_in(&mut self, new: &mut [(u32, u32)]) {
        if new.is_empty() {
            return;
        }
        new.sort_unstable_by_key(|&(e, id)| (e, id));
        let mut out = FlatBuilder::with_capacity(self.ids.len() + new.len());
        let mut ni = 0usize;
        for (i, &e) in self.elems.iter().enumerate() {
            // New pairs for elements strictly before `e`.
            while ni < new.len() && new[ni].0 < e {
                out.push(new[ni].0, new[ni].1);
                ni += 1;
            }
            let lo = self.offsets[i] as usize;
            let hi = self.offsets[i + 1] as usize;
            let mut oi = lo;
            // Merge same-element runs by raw id.
            while oi < hi && ni < new.len() && new[ni].0 == e {
                if raw(self.ids[oi]) <= new[ni].1 {
                    out.push(e, self.ids[oi]);
                    oi += 1;
                } else {
                    out.push(e, new[ni].1);
                    ni += 1;
                }
            }
            for &id in &self.ids[oi..hi] {
                out.push(e, id);
            }
            while ni < new.len() && new[ni].0 == e {
                out.push(e, new[ni].1);
                ni += 1;
            }
        }
        while ni < new.len() {
            out.push(new[ni].0, new[ni].1);
            ni += 1;
        }
        let (elems, offsets, ids) = out.finish();
        *self = CompactInverted {
            elems,
            offsets,
            ids,
        };
    }

    /// Number of stored postings (including tombstoned).
    pub fn num_postings(&self) -> usize {
        self.ids.len()
    }

    /// True if no posting is stored.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Approximate heap footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        (self.elems.capacity() + self.offsets.capacity() + self.ids.capacity()) * 4
    }

    /// The sorted element directory (introspection for validators).
    pub fn elements(&self) -> &[u32] {
        &self.elems
    }

    /// The offset array: `offsets()[i]..offsets()[i+1]` brackets the
    /// postings of `elements()[i]` (introspection for validators).
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// The flat postings array across all elements, tombstone bits
    /// included (introspection for validators).
    pub fn all_ids(&self) -> &[u32] {
        &self.ids
    }

    /// Deliberately breaks the offset invariant so validator tests can
    /// confirm the corruption is reported.
    #[cfg(feature = "testing")]
    pub fn testing_corrupt_offsets(&mut self) {
        if let Some(last) = self.offsets.last_mut() {
            *last += 1;
        }
    }
}

/// A compact *temporal* inverted index: postings carry the object's time
/// interval alongside its id.
///
/// Used by the *performance* variant of irHINT (Section 4.1), whose
/// per-division `QueryTemporalIF` filters postings by the division's
/// residual temporal condition before intersecting.
#[derive(Debug, Clone)]
pub struct CompactTemporalInverted {
    elems: Vec<u32>,
    offsets: Vec<u32>,
    ids: Vec<u32>,
    sts: Vec<u64>,
    ends: Vec<u64>,
}

/// A view of one element's temporal postings: parallel slices.
#[derive(Debug, Clone, Copy)]
pub struct TemporalPostings<'a> {
    /// Object ids, sorted by raw id; tombstone bit marks deleted entries.
    pub ids: &'a [u32],
    /// Interval starts.
    pub sts: &'a [u64],
    /// Interval ends.
    pub ends: &'a [u64],
}

impl<'a> TemporalPostings<'a> {
    /// An empty postings view.
    pub fn empty() -> Self {
        TemporalPostings {
            ids: &[],
            sts: &[],
            ends: &[],
        }
    }

    /// Number of postings in the view.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True if the view holds no postings.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

impl Default for CompactTemporalInverted {
    fn default() -> Self {
        Self::new()
    }
}

impl CompactTemporalInverted {
    /// Creates an empty index.
    pub fn new() -> Self {
        CompactTemporalInverted {
            elems: Vec::new(),
            offsets: vec![0],
            ids: Vec::new(),
            sts: Vec::new(),
            ends: Vec::new(),
        }
    }

    /// Builds from `(element, id, st, end)` tuples; consumes and sorts the
    /// buffer.
    pub fn build(entries: &mut [(u32, u32, u64, u64)]) -> Self {
        entries.sort_unstable_by_key(|&(e, id, _, _)| (e, id));
        let mut b = TemporalFlatBuilder::with_capacity(entries.len());
        for &(e, id, st, end) in entries.iter() {
            b.push(e, id, st, end);
        }
        b.finish()
    }

    /// The temporal postings of `elem`.
    pub fn postings(&self, elem: u32) -> TemporalPostings<'_> {
        match self.elems.binary_search(&elem) {
            Ok(i) => {
                let lo = self.offsets[i] as usize;
                let hi = self.offsets[i + 1] as usize;
                TemporalPostings {
                    ids: &self.ids[lo..hi],
                    sts: &self.sts[lo..hi],
                    ends: &self.ends[lo..hi],
                }
            }
            Err(_) => TemporalPostings::empty(),
        }
    }

    /// Inserts one temporal posting, keeping element and id order.
    pub fn insert(&mut self, elem: u32, id: u32, st: u64, end: u64) {
        let (i, pos) = match self.elems.binary_search(&elem) {
            Ok(i) => {
                let lo = self.offsets[i] as usize;
                let hi = self.offsets[i + 1] as usize;
                (i, lo + self.ids[lo..hi].partition_point(|&x| raw(x) <= id))
            }
            Err(i) => {
                let pos = self.offsets[i] as usize;
                self.elems.insert(i, elem);
                self.offsets.insert(i + 1, self.offsets[i]);
                (i, pos)
            }
        };
        self.ids.insert(pos, id);
        self.sts.insert(pos, st);
        self.ends.insert(pos, end);
        for off in &mut self.offsets[i + 1..] {
            *off += 1;
        }
    }

    /// Tombstones the posting `(elem, id)`; returns true if found alive.
    pub fn tombstone(&mut self, elem: u32, id: u32) -> bool {
        if let Ok(i) = self.elems.binary_search(&elem) {
            let lo = self.offsets[i] as usize;
            let hi = self.offsets[i + 1] as usize;
            if let Ok(p) = self.ids[lo..hi].binary_search_by_key(&id, |&x| raw(x)) {
                let slot = &mut self.ids[lo + p];
                if *slot & TOMBSTONE == 0 {
                    *slot |= TOMBSTONE;
                    return true;
                }
            }
        }
        false
    }

    /// Merges a batch of `(elem, id, st, end)` tuples in one rebuild pass —
    /// `O(existing + batch log batch)` instead of one memmove per tuple.
    pub fn merge_in(&mut self, new: &mut [(u32, u32, u64, u64)]) {
        if new.is_empty() {
            return;
        }
        new.sort_unstable_by_key(|&(e, id, _, _)| (e, id));
        let mut out = TemporalFlatBuilder::with_capacity(self.ids.len() + new.len());
        let mut ni = 0usize;
        for (i, &e) in self.elems.iter().enumerate() {
            while ni < new.len() && new[ni].0 < e {
                let (ne, nid, nst, nend) = new[ni];
                out.push(ne, nid, nst, nend);
                ni += 1;
            }
            let lo = self.offsets[i] as usize;
            let hi = self.offsets[i + 1] as usize;
            let mut oi = lo;
            while oi < hi && ni < new.len() && new[ni].0 == e {
                if raw(self.ids[oi]) <= new[ni].1 {
                    out.push(e, self.ids[oi], self.sts[oi], self.ends[oi]);
                    oi += 1;
                } else {
                    let (_, nid, nst, nend) = new[ni];
                    out.push(e, nid, nst, nend);
                    ni += 1;
                }
            }
            while oi < hi {
                out.push(e, self.ids[oi], self.sts[oi], self.ends[oi]);
                oi += 1;
            }
            while ni < new.len() && new[ni].0 == e {
                let (_, nid, nst, nend) = new[ni];
                out.push(e, nid, nst, nend);
                ni += 1;
            }
        }
        while ni < new.len() {
            let (ne, nid, nst, nend) = new[ni];
            out.push(ne, nid, nst, nend);
            ni += 1;
        }
        *self = out.finish();
    }

    /// Number of stored postings (including tombstoned).
    pub fn num_postings(&self) -> usize {
        self.ids.len()
    }

    /// True if no posting is stored.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Approximate heap footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        (self.elems.capacity() + self.offsets.capacity() + self.ids.capacity()) * 4
            + (self.sts.capacity() + self.ends.capacity()) * 8
    }

    /// The sorted element directory (introspection for validators).
    pub fn elements(&self) -> &[u32] {
        &self.elems
    }

    /// The offset array: `offsets()[i]..offsets()[i+1]` brackets the
    /// postings of `elements()[i]` (introspection for validators).
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// The flat postings array across all elements, tombstone bits
    /// included (introspection for validators).
    pub fn all_ids(&self) -> &[u32] {
        &self.ids
    }

    /// The flat interval-start column (introspection for validators).
    pub fn all_sts(&self) -> &[u64] {
        &self.sts
    }

    /// The flat interval-end column (introspection for validators).
    pub fn all_ends(&self) -> &[u64] {
        &self.ends
    }

    /// Deliberately truncates one parallel column so validator tests can
    /// confirm the corruption is reported.
    #[cfg(feature = "testing")]
    pub fn testing_corrupt_parallel(&mut self) {
        self.ends.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_lookup() {
        let mut pairs = vec![(2u32, 5u32), (1, 3), (2, 1), (1, 9), (7, 4)];
        let idx = CompactInverted::build(&mut pairs);
        assert_eq!(idx.postings(1), &[3, 9]);
        assert_eq!(idx.postings(2), &[1, 5]);
        assert_eq!(idx.postings(7), &[4]);
        assert_eq!(idx.postings(3), &[] as &[u32]);
        assert_eq!(idx.num_postings(), 5);
    }

    #[test]
    fn insert_matches_build() {
        let mut pairs = vec![(2u32, 5u32), (1, 3), (2, 1), (1, 9), (7, 4)];
        let built = CompactInverted::build(&mut pairs.clone());
        let mut inc = CompactInverted::new();
        for (e, id) in pairs.drain(..) {
            inc.insert(e, id);
        }
        for e in [0u32, 1, 2, 3, 7] {
            assert_eq!(built.postings(e), inc.postings(e), "elem {e}");
        }
    }

    #[test]
    fn tombstone_marks_without_removing() {
        let mut pairs = vec![(1u32, 3u32), (1, 9)];
        let mut idx = CompactInverted::build(&mut pairs);
        assert!(idx.tombstone(1, 3));
        assert!(!idx.tombstone(1, 3));
        assert!(!idx.tombstone(1, 4));
        assert_eq!(idx.postings(1), &[3 | TOMBSTONE, 9]);
    }

    #[test]
    fn temporal_build_and_lookup() {
        let mut entries = vec![(1u32, 4u32, 10u64, 20u64), (1, 2, 5, 8), (3, 2, 5, 8)];
        let idx = CompactTemporalInverted::build(&mut entries);
        let p = idx.postings(1);
        assert_eq!(p.ids, &[2, 4]);
        assert_eq!(p.sts, &[5, 10]);
        assert_eq!(p.ends, &[8, 20]);
        assert!(idx.postings(9).is_empty());
    }

    #[test]
    fn temporal_insert_keeps_parallel_arrays() {
        let mut idx = CompactTemporalInverted::new();
        idx.insert(5, 10, 100, 200);
        idx.insert(5, 3, 50, 60);
        idx.insert(2, 7, 1, 2);
        let p = idx.postings(5);
        assert_eq!(p.ids, &[3, 10]);
        assert_eq!(p.sts, &[50, 100]);
        let p2 = idx.postings(2);
        assert_eq!(p2.ends, &[2]);
        assert!(idx.tombstone(5, 10));
    }
}

#[cfg(test)]
mod merge_tests {
    use super::*;

    #[test]
    fn merge_in_equals_rebuild() {
        let mut base_pairs = vec![(1u32, 2u32), (1, 8), (3, 1), (5, 9)];
        let mut idx = CompactInverted::build(&mut base_pairs);
        let mut batch = vec![(0u32, 4u32), (1, 5), (3, 0), (6, 2), (1, 9)];
        idx.merge_in(&mut batch);
        let mut all = vec![
            (1u32, 2u32),
            (1, 8),
            (3, 1),
            (5, 9),
            (0, 4),
            (1, 5),
            (3, 0),
            (6, 2),
            (1, 9),
        ];
        let want = CompactInverted::build(&mut all);
        for e in 0..8u32 {
            assert_eq!(idx.postings(e), want.postings(e), "elem {e}");
        }
    }

    #[test]
    fn merge_in_empty_batch_is_noop() {
        let mut pairs = vec![(1u32, 2u32)];
        let mut idx = CompactInverted::build(&mut pairs);
        idx.merge_in(&mut Vec::new());
        assert_eq!(idx.postings(1), &[2]);
    }

    #[test]
    fn merge_into_empty_index() {
        let mut idx = CompactInverted::new();
        idx.merge_in(&mut [(2u32, 7u32), (1, 3)]);
        assert_eq!(idx.postings(1), &[3]);
        assert_eq!(idx.postings(2), &[7]);
    }

    #[test]
    fn temporal_merge_in_equals_rebuild() {
        let mut base = vec![(1u32, 2u32, 10u64, 20u64), (3, 1, 5, 6)];
        let mut idx = CompactTemporalInverted::build(&mut base);
        let mut batch = vec![(1u32, 5u32, 30u64, 40u64), (0, 9, 1, 2), (3, 7, 8, 9)];
        idx.merge_in(&mut batch);
        let mut all = vec![
            (1u32, 2u32, 10u64, 20u64),
            (3, 1, 5, 6),
            (1, 5, 30, 40),
            (0, 9, 1, 2),
            (3, 7, 8, 9),
        ];
        let want = CompactTemporalInverted::build(&mut all);
        for e in 0..5u32 {
            let (a, b) = (idx.postings(e), want.postings(e));
            assert_eq!(a.ids, b.ids, "elem {e}");
            assert_eq!(a.sts, b.sts, "elem {e}");
            assert_eq!(a.ends, b.ends, "elem {e}");
        }
    }
}
