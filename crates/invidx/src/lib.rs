//! # tir-invidx
//!
//! Inverted-index substrate for temporal information retrieval:
//!
//! * [`Dictionary`] — string-to-element-id interning with document
//!   frequencies;
//! * [`InvertedIndex`] — a corpus-level inverted index for classic
//!   containment search;
//! * [`CompactInverted`] / [`CompactTemporalInverted`] — flat,
//!   low-overhead per-division indexes used inside irHINT partitions;
//! * [`kernels`] — merge / galloping / adaptive sorted-set intersection
//!   primitives, tombstone-aware;
//! * [`container`] — hybrid array/bitmap posting containers chosen by
//!   density at build/compaction time;
//! * [`planner`] — the cost-based conjunction planner and reusable
//!   [`QueryScratch`] arena with per-query kernel counters;
//! * [`compress`] — delta/varint compressed postings (the paper's
//!   compression future-work direction).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compact;
pub mod compress;
pub mod container;
pub mod dict;
pub mod kernels;
pub mod plain;
pub mod planner;
pub mod sigfile;

pub use compact::{CompactInverted, CompactTemporalInverted, TemporalPostings};
pub use compress::{CompressedPostings, CompressedTemporalPostings};
pub use container::{ContainerConfig, DenseBits, HybridPostings, PostingContainer};
pub use dict::Dictionary;
pub use kernels::{
    contains_sorted, intersect_adaptive_into, intersect_gallop_into, intersect_merge_into,
    kway_merge_dedup, live, mark_hits, raw, TOMBSTONE,
};
pub use plain::InvertedIndex;
pub use planner::{global_stats, Kernel, PlanStats, Postings, QueryScratch};
pub use sigfile::{Signature, SignatureFile};
