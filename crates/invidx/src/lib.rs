//! # tir-invidx
//!
//! Inverted-index substrate for temporal information retrieval:
//!
//! * [`Dictionary`] — string-to-element-id interning with document
//!   frequencies;
//! * [`InvertedIndex`] — a corpus-level inverted index for classic
//!   containment search;
//! * [`CompactInverted`] / [`CompactTemporalInverted`] — flat,
//!   low-overhead per-division indexes used inside irHINT partitions;
//! * [`kernels`] — merge / galloping / adaptive sorted-set intersection
//!   primitives, tombstone-aware;
//! * [`simd`] — runtime-dispatched SSE2/SSSE3/AVX2 variants of the hot
//!   kernels (the one audited `unsafe` module in this crate; scalar
//!   fallbacks always available, `TIR_SIMD=off` forces them);
//! * [`container`] — hybrid array/bitmap/run posting containers chosen
//!   by density and run structure at build/compaction time;
//! * [`planner`] — the cost-based conjunction planner and reusable
//!   [`QueryScratch`] arena with per-query kernel counters;
//! * [`compress`] — delta/varint compressed postings and stream-vbyte
//!   [`BlockPostings`] with per-block skip bounds (the paper's
//!   compression future-work direction).

// `deny`, not `forbid`, so the audited [`simd`] module can locally
// allow intrinsics — the same carve-out `tir-persist` uses for its mmap
// wrapper. The `unsafe-code` analyze rule pins the allowlist to exactly
// these two files.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod compact;
pub mod compress;
pub mod container;
pub mod dict;
pub mod kernels;
pub mod plain;
pub mod planner;
pub mod sigfile;
pub mod simd;

pub use compact::{CompactInverted, CompactTemporalInverted, TemporalPostings};
pub use compress::{BlockPostings, CompressedPostings, CompressedTemporalPostings};
pub use container::{ContainerConfig, DenseBits, HybridPostings, PostingContainer, RunSet};
pub use dict::Dictionary;
pub use kernels::{
    contains_sorted, intersect_adaptive_into, intersect_gallop_into, intersect_gallop_rev_into,
    intersect_merge_into, kway_merge_dedup, live, mark_hits, mark_hits_gallop,
    mark_hits_gallop_rev, raw, TOMBSTONE,
};
pub use plain::InvertedIndex;
pub use planner::{global_stats, Kernel, PlanStats, Postings, QueryScratch};
pub use sigfile::{Signature, SignatureFile};
pub use simd::SimdLevel;
