//! Cost-based conjunction planner and per-query scratch arena.
//!
//! Every index method evaluates a time-travel query as a conjunction:
//! seed a candidate set from the least frequent element, then intersect
//! with the remaining elements in ascending document frequency. This
//! module owns the *how* of each intersection step:
//!
//! * sorted array vs sorted array → **merge** or **gallop**, picked by the
//!   size ratio ([`crate::kernels::GALLOP_RATIO`]);
//! * anything vs a dense bitmap container → **bitmap-probe** (O(1)
//!   membership per candidate), or **word-AND** when the candidate set is
//!   itself dense enough to be worth materializing as a bitmap, after
//!   which consecutive dense steps AND whole 64-bit words;
//! * candidate membership probes (the Algorithm 3 / mark-hits pattern)
//!   → a candidate bitmap when the universe is small enough, binary
//!   search otherwise.
//!
//! All state lives in a reusable [`QueryScratch`] so a steady-state query
//! performs no allocation beyond its reply vector, and every step is
//! counted: per-query via [`QueryScratch::last_stats`], process-wide via
//! [`global_stats`] (surfaced through `tir serve`'s `STATS`).

use std::sync::atomic::{AtomicU64, Ordering};

use crate::container::{DenseBits, PostingContainer};
use crate::kernels::{
    intersect_gallop_into, intersect_merge_into, live, mark_hits, raw, GALLOP_RATIO,
};

/// The kernel a conjunction step ran on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// Linear zipper merge of two sorted arrays.
    Merge,
    /// Exponential-search (galloping) intersection or binary-search probe.
    Gallop,
    /// O(1) membership tests against a bitmap.
    BitmapProbe,
    /// 64-bit word-at-a-time AND of two bitmaps.
    WordAnd,
}

/// Per-query planner counters: how many steps each kernel won and how
/// many elements (or words) each scanned. `scanned` is maintained as the
/// running total, so `merge_scanned + gallop_scanned +
/// bitmap_probe_scanned + word_and_scanned == scanned` is an invariant
/// `tir-check` can audit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanStats {
    /// Steps answered by the merge kernel.
    pub merge_steps: u64,
    /// Steps answered by the gallop / binary-search kernel.
    pub gallop_steps: u64,
    /// Steps answered by bitmap probing.
    pub bitmap_probe_steps: u64,
    /// Steps answered by word-AND.
    pub word_and_steps: u64,
    /// Elements scanned by merge steps.
    pub merge_scanned: u64,
    /// Elements scanned by gallop steps.
    pub gallop_scanned: u64,
    /// Elements probed by bitmap steps.
    pub bitmap_probe_scanned: u64,
    /// Words scanned by word-AND steps (plus bitmap build costs).
    pub word_and_scanned: u64,
    /// Total elements scanned over all kernels.
    pub scanned: u64,
}

impl PlanStats {
    /// Records one step.
    #[inline]
    pub fn note(&mut self, kernel: Kernel, scanned: u64) {
        match kernel {
            Kernel::Merge => {
                self.merge_steps += 1;
                self.merge_scanned += scanned;
            }
            Kernel::Gallop => {
                self.gallop_steps += 1;
                self.gallop_scanned += scanned;
            }
            Kernel::BitmapProbe => {
                self.bitmap_probe_steps += 1;
                self.bitmap_probe_scanned += scanned;
            }
            Kernel::WordAnd => {
                self.word_and_steps += 1;
                self.word_and_scanned += scanned;
            }
        }
        self.scanned += scanned;
    }

    /// Total steps over all kernels.
    pub fn steps(&self) -> u64 {
        self.merge_steps + self.gallop_steps + self.bitmap_probe_steps + self.word_and_steps
    }

    /// Sum of the per-kernel scanned counters — must equal
    /// [`PlanStats::scanned`].
    pub fn kernel_scanned_sum(&self) -> u64 {
        self.merge_scanned + self.gallop_scanned + self.bitmap_probe_scanned + self.word_and_scanned
    }

    fn is_zero(&self) -> bool {
        self.steps() == 0 && self.scanned == 0
    }
}

struct GlobalCounters {
    merge_steps: AtomicU64,
    gallop_steps: AtomicU64,
    bitmap_probe_steps: AtomicU64,
    word_and_steps: AtomicU64,
    merge_scanned: AtomicU64,
    gallop_scanned: AtomicU64,
    bitmap_probe_scanned: AtomicU64,
    word_and_scanned: AtomicU64,
    scanned: AtomicU64,
}

static GLOBAL: GlobalCounters = GlobalCounters {
    merge_steps: AtomicU64::new(0),
    gallop_steps: AtomicU64::new(0),
    bitmap_probe_steps: AtomicU64::new(0),
    word_and_steps: AtomicU64::new(0),
    merge_scanned: AtomicU64::new(0),
    gallop_scanned: AtomicU64::new(0),
    bitmap_probe_scanned: AtomicU64::new(0),
    word_and_scanned: AtomicU64::new(0),
    scanned: AtomicU64::new(0),
};

fn flush_global(s: &PlanStats) {
    if s.is_zero() {
        return;
    }
    // analyze:allow(atomic-ordering): monotonic stat counters, read only for reporting
    GLOBAL
        .merge_steps
        .fetch_add(s.merge_steps, Ordering::Relaxed);
    // analyze:allow(atomic-ordering): monotonic stat counters, read only for reporting
    GLOBAL
        .gallop_steps
        .fetch_add(s.gallop_steps, Ordering::Relaxed);
    // analyze:allow(atomic-ordering): monotonic stat counters, read only for reporting
    GLOBAL
        .bitmap_probe_steps
        .fetch_add(s.bitmap_probe_steps, Ordering::Relaxed);
    // analyze:allow(atomic-ordering): monotonic stat counters, read only for reporting
    GLOBAL
        .word_and_steps
        .fetch_add(s.word_and_steps, Ordering::Relaxed);
    // analyze:allow(atomic-ordering): monotonic stat counters, read only for reporting
    GLOBAL
        .merge_scanned
        .fetch_add(s.merge_scanned, Ordering::Relaxed);
    // analyze:allow(atomic-ordering): monotonic stat counters, read only for reporting
    GLOBAL
        .gallop_scanned
        .fetch_add(s.gallop_scanned, Ordering::Relaxed);
    // analyze:allow(atomic-ordering): monotonic stat counters, read only for reporting
    GLOBAL
        .bitmap_probe_scanned
        .fetch_add(s.bitmap_probe_scanned, Ordering::Relaxed);
    // analyze:allow(atomic-ordering): monotonic stat counters, read only for reporting
    GLOBAL
        .word_and_scanned
        .fetch_add(s.word_and_scanned, Ordering::Relaxed);
    // analyze:allow(atomic-ordering): monotonic stat counters, read only for reporting
    GLOBAL.scanned.fetch_add(s.scanned, Ordering::Relaxed);
}

/// Process-wide accumulated planner counters (every query answered since
/// start, all threads). Point-in-time read; cross-counter tearing is
/// acceptable for reporting.
pub fn global_stats() -> PlanStats {
    // analyze:allow(atomic-ordering): monotonic stat counters, read only for reporting
    PlanStats {
        merge_steps: GLOBAL.merge_steps.load(Ordering::Relaxed),
        gallop_steps: GLOBAL.gallop_steps.load(Ordering::Relaxed),
        bitmap_probe_steps: GLOBAL.bitmap_probe_steps.load(Ordering::Relaxed),
        word_and_steps: GLOBAL.word_and_steps.load(Ordering::Relaxed),
        merge_scanned: GLOBAL.merge_scanned.load(Ordering::Relaxed),
        gallop_scanned: GLOBAL.gallop_scanned.load(Ordering::Relaxed),
        bitmap_probe_scanned: GLOBAL.bitmap_probe_scanned.load(Ordering::Relaxed),
        word_and_scanned: GLOBAL.word_and_scanned.load(Ordering::Relaxed),
        scanned: GLOBAL.scanned.load(Ordering::Relaxed),
    }
}

/// One side of a conjunction step.
#[derive(Debug, Clone, Copy)]
pub enum Postings<'a> {
    /// A raw-id-sorted slice, bit-31 tombstones allowed.
    Ids(&'a [u32]),
    /// A hybrid container (array or bitmap form).
    Container(&'a PostingContainer),
}

/// The candidate set becomes worth materializing as a bitmap once it
/// covers at least 1/`WORD_AND_DENSITY_DEN` of the dense side's universe:
/// below that, per-candidate probes touch less memory than whole-word
/// ANDs.
pub const WORD_AND_DENSITY_DEN: usize = 32;

/// Largest id universe a *candidate* bitmap is built for (2^26 ids =
/// 8 MiB of bits); bigger universes fall back to binary-search probes.
pub const MAX_PROBE_UNIVERSE: u32 = 1 << 26;

/// Reusable per-worker query state: candidate/output buffers, the plan
/// order, a candidate bitmap, and the per-query kernel counters. Holding
/// one per serve worker (or bench loop) makes steady-state queries
/// allocation-free apart from the reply vector.
#[derive(Debug, Default)]
pub struct QueryScratch {
    /// Query plan buffer (elements in ascending-frequency order).
    pub plan: Vec<u32>,
    /// The current candidate set (sorted, live raw ids) when the planner
    /// is in array form. Seed this before calling
    /// [`QueryScratch::intersect`].
    pub cands: Vec<u32>,
    next: Vec<u32>,
    bits: Vec<u64>,
    bits_live: bool,
    bits_words: usize,
    bits_count: u64,
    loaded: Vec<u32>,
    hits: Vec<bool>,
    probe_bits: bool,
    stats: PlanStats,
    last: PlanStats,
}

impl QueryScratch {
    /// Starts a new query: flushes the previous query's counters to the
    /// process-wide totals and clears all candidate state.
    pub fn reset(&mut self) {
        self.finish_query();
        self.cands.clear();
        self.plan.clear();
    }

    /// Flushes pending counters (also called by [`QueryScratch::reset`]
    /// and on drop, so drive-by uses cannot lose counts).
    fn finish_query(&mut self) {
        if !self.stats.is_zero() {
            flush_global(&self.stats);
            self.last = self.stats;
            self.stats = PlanStats::default();
        }
        if self.bits_live {
            self.zero_bits();
            self.bits_live = false;
        }
    }

    /// The counters of the most recently finished query.
    pub fn last_stats(&self) -> PlanStats {
        self.last
    }

    /// Records a step that ran outside the planner's own kernels (e.g.
    /// cTIF's streaming decode-intersect) so the totals stay honest.
    #[inline]
    pub fn note(&mut self, kernel: Kernel, scanned: u64) {
        self.stats.note(kernel, scanned);
    }

    /// True if the candidate set is empty — the early-exit test between
    /// conjunction steps.
    #[inline]
    pub fn is_empty(&self) -> bool {
        if self.bits_live {
            self.bits_count == 0
        } else {
            self.cands.is_empty()
        }
    }

    /// One conjunction step: replaces the candidate set with its
    /// intersection against `side`, picking the kernel from the operand
    /// shapes and sizes.
    pub fn intersect(&mut self, side: Postings<'_>) {
        match side {
            Postings::Ids(ids) => self.intersect_ids(ids),
            Postings::Container(PostingContainer::Sparse { ids, .. }) => self.intersect_ids(ids),
            Postings::Container(PostingContainer::Dense(d)) => self.intersect_dense(d),
        }
    }

    fn intersect_ids(&mut self, ids: &[u32]) {
        if self.bits_live {
            // Downshift: walk the sorted array, keep ids present in the
            // candidate bitmap. Output is raw-id-sorted by construction.
            self.cands.clear();
            for &p in ids {
                let r = raw(p);
                if live(p) && self.bit(r) {
                    self.cands.push(r);
                }
            }
            self.zero_bits();
            self.bits_live = false;
            self.stats.note(Kernel::BitmapProbe, ids.len() as u64);
            return;
        }
        self.next.clear();
        if self.cands.len().saturating_mul(GALLOP_RATIO) < ids.len() {
            intersect_gallop_into(&self.cands, ids, &mut self.next);
            self.stats.note(Kernel::Gallop, self.cands.len() as u64);
        } else {
            intersect_merge_into(&self.cands, ids, &mut self.next);
            self.stats
                .note(Kernel::Merge, (self.cands.len() + ids.len()) as u64);
        }
        std::mem::swap(&mut self.cands, &mut self.next);
    }

    fn intersect_dense(&mut self, d: &DenseBits) {
        let words = d.present_words();
        if self.bits_live {
            // Word-AND with the incoming bitmap; ids beyond its universe
            // cannot match, so the tail of the candidate bitmap clears.
            let keep = self.bits_words.min(words.len());
            let mut count = 0u64;
            for (b, (&p, &del)) in self
                .bits
                .iter_mut()
                .zip(words.iter().zip(d.deleted_words()))
                .take(keep)
            {
                let v = *b & p & !del;
                *b = v;
                count += u64::from(v.count_ones());
            }
            for w in keep..self.bits_words {
                self.bits[w] = 0;
            }
            self.bits_words = keep;
            self.bits_count = count;
            self.stats.note(Kernel::WordAnd, keep as u64);
            return;
        }
        if self.cands.len().saturating_mul(WORD_AND_DENSITY_DEN) >= d.universe() as usize {
            // Dense candidates: materialize them as a bitmap once, then
            // this and consecutive dense steps run word-at-a-time.
            let w = words.len();
            if self.bits.len() < w {
                self.bits.resize(w, 0);
            }
            let build = self.cands.len();
            self.bits[..w].fill(0);
            for &c in &self.cands {
                if c < d.universe() {
                    self.bits[c as usize / 64] |= 1u64 << (c % 64);
                }
            }
            let mut count = 0u64;
            for (b, (&p, &del)) in self
                .bits
                .iter_mut()
                .zip(words.iter().zip(d.deleted_words()))
                .take(w)
            {
                let v = *b & p & !del;
                *b = v;
                count += u64::from(v.count_ones());
            }
            self.bits_words = w;
            self.bits_count = count;
            self.bits_live = true;
            self.stats.note(Kernel::WordAnd, (w + build) as u64);
        } else {
            // Sparse candidates: O(1) probe per candidate.
            self.next.clear();
            for &c in &self.cands {
                if d.contains_live(c) {
                    self.next.push(c);
                }
            }
            self.stats
                .note(Kernel::BitmapProbe, self.cands.len() as u64);
            std::mem::swap(&mut self.cands, &mut self.next);
        }
    }

    /// Finishes the query: materializes the candidate set (ascending if
    /// the planner ended in bitmap form) into `out` and flushes counters.
    pub fn take_into(&mut self, out: &mut Vec<u32>) {
        if self.bits_live {
            for w in 0..self.bits_words {
                let mut m = self.bits[w];
                self.bits[w] = 0;
                while m != 0 {
                    // analyze:allow(unguarded-cast): word index * 64 + bit is a valid u32 id
                    out.push((w * 64) as u32 + m.trailing_zeros());
                    m &= m - 1;
                }
            }
            self.bits_live = false;
        } else {
            out.append(&mut self.cands);
        }
        self.finish_query();
    }

    #[inline]
    fn bit(&self, id: u32) -> bool {
        let w = id as usize / 64;
        w < self.bits_words && (self.bits[w] >> (id % 64)) & 1 == 1
    }

    fn zero_bits(&mut self) {
        for w in &mut self.bits[..self.bits_words] {
            *w = 0;
        }
        self.bits_words = 0;
        self.bits_count = 0;
    }

    // ----- candidate-probe mode (Algorithm 3 / mark-hits call sites) -----

    /// Indexes `cands` (unique live raw ids, any order) for repeated
    /// [`QueryScratch::probe_take`] calls: a candidate bitmap when the id
    /// range is small enough, a sorted copy with hit flags otherwise.
    /// `universe` is a sizing hint (`max id + 1` if known; 0 is fine —
    /// the candidate maximum is used); ranges beyond
    /// [`MAX_PROBE_UNIVERSE`] fall back to binary-search probes.
    pub fn load_candidates(&mut self, cands: &[u32], universe: u32) {
        let needed = cands
            .iter()
            .fold(universe, |u, &c| u.max(c.saturating_add(1)));
        self.loaded.clear();
        self.loaded.extend_from_slice(cands);
        if needed > 0 && needed <= MAX_PROBE_UNIVERSE {
            self.probe_bits = true;
            let w = (needed as usize).div_ceil(64);
            if self.bits.len() < w {
                self.bits.resize(w, 0);
            }
            self.bits_words = self.bits_words.max(w);
            for &c in &self.loaded {
                self.bits[c as usize / 64] |= 1u64 << (c % 64);
            }
            self.stats
                .note(Kernel::BitmapProbe, self.loaded.len() as u64);
        } else {
            self.probe_bits = false;
            self.loaded.sort_unstable();
            self.hits.clear();
            self.hits.resize(self.loaded.len(), false);
            self.stats.note(Kernel::Gallop, self.loaded.len() as u64);
        }
    }

    /// Tests whether `raw_id` is a loaded candidate not yet taken, and
    /// takes it — each candidate is emitted at most once per load, which
    /// replaces the mark-hits pass over replicated sub-lists.
    ///
    /// Deliberately does no counter bookkeeping: this is the hottest
    /// per-element call in the probe pattern, so call sites account the
    /// elements they scanned in bulk via [`QueryScratch::note_probed`].
    #[inline]
    pub fn probe_take(&mut self, raw_id: u32) -> bool {
        if self.probe_bits {
            let w = raw_id as usize / 64;
            if w < self.bits_words && (self.bits[w] >> (raw_id % 64)) & 1 == 1 {
                self.bits[w] &= !(1u64 << (raw_id % 64));
                return true;
            }
            false
        } else if let Ok(i) = self.loaded.binary_search(&raw_id) {
            !std::mem::replace(&mut self.hits[i], true)
        } else {
            false
        }
    }

    /// Records `scanned` posting elements probed through
    /// [`QueryScratch::probe_take`] since the last
    /// [`QueryScratch::load_candidates`], attributed to whichever probe
    /// kernel that load selected. Called once per posting list (or per
    /// round) rather than per element so the probe loop stays free of
    /// counter read-modify-writes.
    #[inline]
    pub fn note_probed(&mut self, scanned: u64) {
        let kernel = if self.probe_bits {
            Kernel::BitmapProbe
        } else {
            Kernel::Gallop
        };
        self.stats.note(kernel, scanned);
    }

    // ----- merge-marking rounds (sorted replicated sub-lists) -----

    /// Begins a merge-marking round over a sorted candidate set of `n`
    /// ids: clears and sizes the per-candidate hit flags. Cheaper than
    /// probe mode when the postings runs are id-sorted, because each
    /// [`QueryScratch::mark`] is a branch-light linear zipper.
    pub fn begin_mark(&mut self, n: usize) {
        self.hits.clear();
        self.hits.resize(n, false);
    }

    /// Merge-marks every candidate with a live posting in `postings`
    /// (both sorted ascending; postings by raw id). A candidate may be
    /// marked by several runs — e.g. slice-replicated sub-lists — and is
    /// still emitted once by [`QueryScratch::finish_mark`].
    pub fn mark(&mut self, cands: &[u32], postings: &[u32]) {
        mark_hits(cands, postings, &mut self.hits);
        self.stats
            .note(Kernel::Merge, (cands.len() + postings.len()) as u64);
    }

    /// Ends a merge-marking round: compacts `cands` in place (preserving
    /// sorted order) to the candidates that were marked.
    pub fn finish_mark(&mut self, cands: &mut Vec<u32>) {
        debug_assert_eq!(self.hits.len(), cands.len());
        let mut i = 0;
        cands.retain(|_| {
            let hit = self.hits[i];
            i += 1;
            hit
        });
        self.hits.clear();
    }

    /// Takes the internal secondary buffer for call sites that run their
    /// own merge loops (e.g. cTIF's compressed streaming intersection).
    /// Give it back with [`QueryScratch::put_aux`] so its capacity is
    /// reused by later queries.
    pub fn take_aux(&mut self) -> Vec<u32> {
        let mut aux = std::mem::take(&mut self.next);
        aux.clear();
        aux
    }

    /// Returns the buffer taken with [`QueryScratch::take_aux`].
    pub fn put_aux(&mut self, mut aux: Vec<u32>) {
        aux.clear();
        self.next = aux;
    }

    /// Ends a probe round, clearing the candidate index so the next
    /// [`QueryScratch::load_candidates`] starts clean.
    pub fn end_probe(&mut self) {
        if self.probe_bits {
            for &c in &self.loaded {
                let w = c as usize / 64;
                if w < self.bits.len() {
                    self.bits[w] &= !(1u64 << (c % 64));
                }
            }
            self.bits_words = 0;
        } else {
            self.hits.clear();
        }
        self.loaded.clear();
    }
}

impl Drop for QueryScratch {
    fn drop(&mut self) {
        self.finish_query();
    }
}

/// Standalone planned intersection for call sites without a scratch
/// (e.g. the corpus-level [`crate::InvertedIndex`]): merge-or-gallop by
/// ratio, counted into the process-wide totals.
pub fn intersect_ids_into(cands: &[u32], ids: &[u32], out: &mut Vec<u32>) -> Kernel {
    let mut stats = PlanStats::default();
    let kernel = if cands.len().saturating_mul(GALLOP_RATIO) < ids.len() {
        intersect_gallop_into(cands, ids, out);
        stats.note(Kernel::Gallop, cands.len() as u64);
        Kernel::Gallop
    } else {
        intersect_merge_into(cands, ids, out);
        stats.note(Kernel::Merge, (cands.len() + ids.len()) as u64);
        Kernel::Merge
    };
    flush_global(&stats);
    kernel
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::container::ContainerConfig;
    use crate::kernels::TOMBSTONE;

    fn seq(scratch: &mut QueryScratch, seed: &[u32], sides: &[Postings<'_>]) -> Vec<u32> {
        scratch.reset();
        scratch.cands.extend_from_slice(seed);
        for side in sides {
            if scratch.is_empty() {
                break;
            }
            scratch.intersect(*side);
        }
        let mut out = Vec::new();
        scratch.take_into(&mut out);
        out
    }

    #[test]
    fn array_steps_match_kernels() {
        let mut s = QueryScratch::default();
        let got = seq(
            &mut s,
            &[1, 3, 5, 7, 9],
            &[Postings::Ids(&[1, 2, 3, 7]), Postings::Ids(&[3, 7, 8])],
        );
        assert_eq!(got, vec![3, 7]);
        let st = s.last_stats();
        assert_eq!(st.steps(), 2);
        assert_eq!(st.kernel_scanned_sum(), st.scanned);
    }

    #[test]
    fn dense_probe_and_word_and() {
        let cfg = ContainerConfig { density_den: 4 };
        let dense_ids: Vec<u32> = (0..128).collect();
        let c = PostingContainer::from_sorted(&dense_ids, 128, cfg);
        assert!(c.is_dense());

        // Sparse candidates: bitmap-probe.
        let mut s = QueryScratch::default();
        let got = seq(&mut s, &[2, 500], &[Postings::Container(&c)]);
        assert_eq!(got, vec![2]);
        assert_eq!(s.last_stats().bitmap_probe_steps, 1);

        // Dense candidates: word-AND, result extracted ascending.
        let cands: Vec<u32> = (0..128).filter(|i| i % 2 == 0).collect();
        let got = seq(&mut s, &cands, &[Postings::Container(&c)]);
        assert_eq!(got, cands);
        assert_eq!(s.last_stats().word_and_steps, 1);

        // Word-AND chains across consecutive dense steps, then
        // downshifts cleanly on a sparse side.
        let evens = PostingContainer::from_sorted(&cands, 128, cfg);
        let got = seq(
            &mut s,
            &(0..128).collect::<Vec<_>>(),
            &[
                Postings::Container(&c),
                Postings::Container(&evens),
                Postings::Ids(&[4, 5, 6, 200]),
            ],
        );
        assert_eq!(got, vec![4, 6]);
        let st = s.last_stats();
        assert_eq!(st.word_and_steps, 2);
        assert_eq!(st.bitmap_probe_steps, 1);
    }

    #[test]
    fn tombstones_respected_on_every_path() {
        let cfg = ContainerConfig { density_den: 4 };
        let ids: Vec<u32> = (0..64)
            .map(|i| if i == 10 { i | TOMBSTONE } else { i })
            .collect();
        let c = PostingContainer::from_sorted(&ids, 64, cfg);
        let mut s = QueryScratch::default();
        // probe path
        assert_eq!(
            seq(&mut s, &[9, 10, 11], &[Postings::Container(&c)]),
            vec![9, 11]
        );
        // word-AND path
        let all: Vec<u32> = (0..64).collect();
        let got = seq(&mut s, &all, &[Postings::Container(&c)]);
        assert!(!got.contains(&10) && got.len() == 63);
        // downshift path skips tombstoned array entries
        let arr = [9u32, 10 | TOMBSTONE, 11];
        let got = seq(
            &mut s,
            &all,
            &[Postings::Container(&c), Postings::Ids(&arr)],
        );
        assert_eq!(got, vec![9, 11]);
    }

    #[test]
    fn probe_mode_takes_each_candidate_once() {
        let mut s = QueryScratch::default();
        // 100 exercises the candidate bitmap; u32::MAX overflows
        // MAX_PROBE_UNIVERSE and exercises the sorted fallback.
        for universe in [100u32, u32::MAX] {
            s.reset();
            s.load_candidates(&[5, 1, 9], universe);
            assert!(s.probe_take(1));
            assert!(!s.probe_take(1), "taken candidates never re-emit");
            assert!(!s.probe_take(2));
            assert!(s.probe_take(9));
            s.end_probe();
            // A fresh load sees a clean slate.
            s.load_candidates(&[1], universe);
            assert!(s.probe_take(1));
            s.end_probe();
        }
    }

    #[test]
    fn mark_rounds_compact_to_hit_candidates() {
        let mut s = QueryScratch::default();
        s.reset();
        let mut cands = vec![1u32, 4, 7, 9];
        s.begin_mark(cands.len());
        // Replicated runs: 7 appears in both, and is still emitted once.
        s.mark(&cands, &[2, 7, 9 | TOMBSTONE]);
        s.mark(&cands, &[4, 7]);
        s.finish_mark(&mut cands);
        assert_eq!(cands, vec![4, 7]);
        // A fresh round starts from clean flags.
        s.begin_mark(cands.len());
        s.mark(&cands, &[4]);
        s.finish_mark(&mut cands);
        assert_eq!(cands, vec![4]);
        let stats = {
            s.reset();
            s.last_stats()
        };
        assert_eq!(stats.kernel_scanned_sum(), stats.scanned);
        assert!(stats.merge_steps >= 3);
    }

    #[test]
    fn global_counters_accumulate() {
        let before = global_stats();
        let mut out = Vec::new();
        intersect_ids_into(&[1, 2, 3], &[2, 3, 4], &mut out);
        assert_eq!(out, vec![2, 3]);
        let after = global_stats();
        assert!(after.scanned > before.scanned);
        assert_eq!(after.kernel_scanned_sum(), after.scanned);
    }
}
