//! Cost-based conjunction planner and per-query scratch arena.
//!
//! Every index method evaluates a time-travel query as a conjunction:
//! seed a candidate set from the least frequent element, then intersect
//! with the remaining elements in ascending document frequency. This
//! module owns the *how* of each intersection step:
//!
//! * sorted array vs sorted array → **merge** or **gallop**, picked by the
//!   size ratio ([`crate::kernels::GALLOP_RATIO`]);
//! * anything vs a dense bitmap container → **bitmap-probe** (O(1)
//!   membership per candidate), or **word-AND** when the candidate set is
//!   itself dense enough to be worth materializing as a bitmap, after
//!   which consecutive dense steps AND whole 64-bit words;
//! * candidate membership probes (the Algorithm 3 / mark-hits pattern)
//!   → a candidate bitmap when the universe is small enough, binary
//!   search otherwise.
//!
//! All state lives in a reusable [`QueryScratch`] so a steady-state query
//! performs no allocation beyond its reply vector, and every step is
//! counted: per-query via [`QueryScratch::last_stats`], process-wide via
//! [`global_stats`] (surfaced through `tir serve`'s `STATS`).

use std::sync::atomic::{AtomicU64, Ordering};

use crate::compress::BlockPostings;
use crate::container::{DenseBits, PostingContainer, RunSet};
use crate::kernels::{live, mark_hits, raw, GALLOP_RATIO};
use crate::simd;

/// The kernel a conjunction step ran on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// Linear zipper merge of two sorted arrays (scalar).
    Merge,
    /// SSE2 block-wise merge of two sorted arrays.
    SimdMerge,
    /// Exponential-search (galloping) intersection or binary-search
    /// probe (scalar or AVX2 — same cost shape, one counter).
    Gallop,
    /// O(1) membership tests against a bitmap.
    BitmapProbe,
    /// 64-bit word-at-a-time AND of two bitmaps.
    WordAnd,
    /// Range-at-a-time intersection against a run container.
    RunIntersect,
}

/// Per-query planner counters: how many steps each kernel won and how
/// many elements (or words) each scanned. `scanned` is maintained as the
/// running total, so `merge_scanned + simd_merge_scanned +
/// gallop_scanned + bitmap_probe_scanned + word_and_scanned +
/// run_intersect_scanned == scanned` is an invariant `tir-check` can
/// audit. `blocks_decoded` counts compressed blocks materialized for
/// block-at-a-time intersection and is deliberately *not* part of that
/// sum — it is a unit of decode work, not of elements scanned (those
/// are counted by the kernel the decoded block fed).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanStats {
    /// Steps answered by the scalar merge kernel.
    pub merge_steps: u64,
    /// Steps answered by the SSE2 block merge kernel.
    pub simd_merge_steps: u64,
    /// Steps answered by the gallop / binary-search kernel.
    pub gallop_steps: u64,
    /// Steps answered by bitmap probing.
    pub bitmap_probe_steps: u64,
    /// Steps answered by word-AND.
    pub word_and_steps: u64,
    /// Steps answered by run-range intersection.
    pub run_intersect_steps: u64,
    /// Elements scanned by scalar merge steps.
    pub merge_scanned: u64,
    /// Elements scanned by SSE2 block merge steps.
    pub simd_merge_scanned: u64,
    /// Elements scanned by gallop steps.
    pub gallop_scanned: u64,
    /// Elements probed by bitmap steps.
    pub bitmap_probe_scanned: u64,
    /// Words scanned by word-AND steps (plus bitmap build costs).
    pub word_and_scanned: u64,
    /// Runs plus candidates touched by run-intersect steps.
    pub run_intersect_scanned: u64,
    /// Total elements scanned over all kernels.
    pub scanned: u64,
    /// Compressed posting blocks decoded for block-at-a-time steps.
    pub blocks_decoded: u64,
}

impl PlanStats {
    /// Records one step.
    #[inline]
    pub fn note(&mut self, kernel: Kernel, scanned: u64) {
        match kernel {
            Kernel::Merge => {
                self.merge_steps += 1;
                self.merge_scanned += scanned;
            }
            Kernel::SimdMerge => {
                self.simd_merge_steps += 1;
                self.simd_merge_scanned += scanned;
            }
            Kernel::Gallop => {
                self.gallop_steps += 1;
                self.gallop_scanned += scanned;
            }
            Kernel::BitmapProbe => {
                self.bitmap_probe_steps += 1;
                self.bitmap_probe_scanned += scanned;
            }
            Kernel::WordAnd => {
                self.word_and_steps += 1;
                self.word_and_scanned += scanned;
            }
            Kernel::RunIntersect => {
                self.run_intersect_steps += 1;
                self.run_intersect_scanned += scanned;
            }
        }
        self.scanned += scanned;
    }

    /// Records compressed posting blocks decoded outside any single
    /// kernel step (the elements they produced are counted by the
    /// kernel that consumed them).
    #[inline]
    pub fn note_blocks(&mut self, blocks: u64) {
        self.blocks_decoded += blocks;
    }

    /// Total steps over all kernels.
    pub fn steps(&self) -> u64 {
        self.merge_steps
            + self.simd_merge_steps
            + self.gallop_steps
            + self.bitmap_probe_steps
            + self.word_and_steps
            + self.run_intersect_steps
    }

    /// Sum of the per-kernel scanned counters — must equal
    /// [`PlanStats::scanned`].
    pub fn kernel_scanned_sum(&self) -> u64 {
        self.merge_scanned
            + self.simd_merge_scanned
            + self.gallop_scanned
            + self.bitmap_probe_scanned
            + self.word_and_scanned
            + self.run_intersect_scanned
    }

    fn is_zero(&self) -> bool {
        self.steps() == 0 && self.scanned == 0 && self.blocks_decoded == 0
    }
}

struct GlobalCounters {
    merge_steps: AtomicU64,
    simd_merge_steps: AtomicU64,
    gallop_steps: AtomicU64,
    bitmap_probe_steps: AtomicU64,
    word_and_steps: AtomicU64,
    run_intersect_steps: AtomicU64,
    merge_scanned: AtomicU64,
    simd_merge_scanned: AtomicU64,
    gallop_scanned: AtomicU64,
    bitmap_probe_scanned: AtomicU64,
    word_and_scanned: AtomicU64,
    run_intersect_scanned: AtomicU64,
    scanned: AtomicU64,
    blocks_decoded: AtomicU64,
}

static GLOBAL: GlobalCounters = GlobalCounters {
    merge_steps: AtomicU64::new(0),
    simd_merge_steps: AtomicU64::new(0),
    gallop_steps: AtomicU64::new(0),
    bitmap_probe_steps: AtomicU64::new(0),
    word_and_steps: AtomicU64::new(0),
    run_intersect_steps: AtomicU64::new(0),
    merge_scanned: AtomicU64::new(0),
    simd_merge_scanned: AtomicU64::new(0),
    gallop_scanned: AtomicU64::new(0),
    bitmap_probe_scanned: AtomicU64::new(0),
    word_and_scanned: AtomicU64::new(0),
    run_intersect_scanned: AtomicU64::new(0),
    scanned: AtomicU64::new(0),
    blocks_decoded: AtomicU64::new(0),
};

fn flush_global(s: &PlanStats) {
    if s.is_zero() {
        return;
    }
    // analyze:allow(atomic-ordering): monotonic stat counters, read only for reporting
    GLOBAL
        .merge_steps
        .fetch_add(s.merge_steps, Ordering::Relaxed);
    // analyze:allow(atomic-ordering): monotonic stat counters, read only for reporting
    GLOBAL
        .simd_merge_steps
        .fetch_add(s.simd_merge_steps, Ordering::Relaxed);
    // analyze:allow(atomic-ordering): monotonic stat counters, read only for reporting
    GLOBAL
        .gallop_steps
        .fetch_add(s.gallop_steps, Ordering::Relaxed);
    // analyze:allow(atomic-ordering): monotonic stat counters, read only for reporting
    GLOBAL
        .bitmap_probe_steps
        .fetch_add(s.bitmap_probe_steps, Ordering::Relaxed);
    // analyze:allow(atomic-ordering): monotonic stat counters, read only for reporting
    GLOBAL
        .word_and_steps
        .fetch_add(s.word_and_steps, Ordering::Relaxed);
    // analyze:allow(atomic-ordering): monotonic stat counters, read only for reporting
    GLOBAL
        .run_intersect_steps
        .fetch_add(s.run_intersect_steps, Ordering::Relaxed);
    // analyze:allow(atomic-ordering): monotonic stat counters, read only for reporting
    GLOBAL
        .merge_scanned
        .fetch_add(s.merge_scanned, Ordering::Relaxed);
    // analyze:allow(atomic-ordering): monotonic stat counters, read only for reporting
    GLOBAL
        .simd_merge_scanned
        .fetch_add(s.simd_merge_scanned, Ordering::Relaxed);
    // analyze:allow(atomic-ordering): monotonic stat counters, read only for reporting
    GLOBAL
        .gallop_scanned
        .fetch_add(s.gallop_scanned, Ordering::Relaxed);
    // analyze:allow(atomic-ordering): monotonic stat counters, read only for reporting
    GLOBAL
        .bitmap_probe_scanned
        .fetch_add(s.bitmap_probe_scanned, Ordering::Relaxed);
    // analyze:allow(atomic-ordering): monotonic stat counters, read only for reporting
    GLOBAL
        .word_and_scanned
        .fetch_add(s.word_and_scanned, Ordering::Relaxed);
    // analyze:allow(atomic-ordering): monotonic stat counters, read only for reporting
    GLOBAL
        .run_intersect_scanned
        .fetch_add(s.run_intersect_scanned, Ordering::Relaxed);
    // analyze:allow(atomic-ordering): monotonic stat counters, read only for reporting
    GLOBAL.scanned.fetch_add(s.scanned, Ordering::Relaxed);
    // analyze:allow(atomic-ordering): monotonic stat counters, read only for reporting
    GLOBAL
        .blocks_decoded
        .fetch_add(s.blocks_decoded, Ordering::Relaxed);
}

/// Process-wide accumulated planner counters (every query answered since
/// start, all threads). Point-in-time read; cross-counter tearing is
/// acceptable for reporting.
pub fn global_stats() -> PlanStats {
    // analyze:allow(atomic-ordering): monotonic stat counters, read only for reporting
    PlanStats {
        merge_steps: GLOBAL.merge_steps.load(Ordering::Relaxed),
        simd_merge_steps: GLOBAL.simd_merge_steps.load(Ordering::Relaxed),
        gallop_steps: GLOBAL.gallop_steps.load(Ordering::Relaxed),
        bitmap_probe_steps: GLOBAL.bitmap_probe_steps.load(Ordering::Relaxed),
        word_and_steps: GLOBAL.word_and_steps.load(Ordering::Relaxed),
        run_intersect_steps: GLOBAL.run_intersect_steps.load(Ordering::Relaxed),
        merge_scanned: GLOBAL.merge_scanned.load(Ordering::Relaxed),
        simd_merge_scanned: GLOBAL.simd_merge_scanned.load(Ordering::Relaxed),
        gallop_scanned: GLOBAL.gallop_scanned.load(Ordering::Relaxed),
        bitmap_probe_scanned: GLOBAL.bitmap_probe_scanned.load(Ordering::Relaxed),
        word_and_scanned: GLOBAL.word_and_scanned.load(Ordering::Relaxed),
        run_intersect_scanned: GLOBAL.run_intersect_scanned.load(Ordering::Relaxed),
        scanned: GLOBAL.scanned.load(Ordering::Relaxed),
        blocks_decoded: GLOBAL.blocks_decoded.load(Ordering::Relaxed),
    }
}

/// One side of a conjunction step.
#[derive(Debug, Clone, Copy)]
pub enum Postings<'a> {
    /// A raw-id-sorted slice, bit-31 tombstones allowed.
    Ids(&'a [u32]),
    /// A hybrid container (array, bitmap, or run form).
    Container(&'a PostingContainer),
    /// Stream-vbyte block-compressed postings, decoded (and skipped)
    /// block-at-a-time.
    Blocks(&'a BlockPostings),
}

/// The candidate set becomes worth materializing as a bitmap once it
/// covers at least 1/`WORD_AND_DENSITY_DEN` of the dense side's universe:
/// below that, per-candidate probes touch less memory than whole-word
/// ANDs.
pub const WORD_AND_DENSITY_DEN: usize = 32;

/// Largest id universe a *candidate* bitmap is built for (2^26 ids =
/// 8 MiB of bits); bigger universes fall back to binary-search probes.
pub const MAX_PROBE_UNIVERSE: u32 = 1 << 26;

/// Reusable per-worker query state: candidate/output buffers, the plan
/// order, a candidate bitmap, and the per-query kernel counters. Holding
/// one per serve worker (or bench loop) makes steady-state queries
/// allocation-free apart from the reply vector.
#[derive(Debug, Default)]
pub struct QueryScratch {
    /// Query plan buffer (elements in ascending-frequency order).
    pub plan: Vec<u32>,
    /// The current candidate set (sorted, live raw ids) when the planner
    /// is in array form. Seed this before calling
    /// [`QueryScratch::intersect`].
    pub cands: Vec<u32>,
    next: Vec<u32>,
    bits: Vec<u64>,
    bits_live: bool,
    bits_words: usize,
    bits_count: u64,
    loaded: Vec<u32>,
    hits: Vec<bool>,
    blk: Vec<u32>,
    probe_bits: bool,
    stats: PlanStats,
    last: PlanStats,
    deadline: Option<std::time::Instant>,
    deadline_probe_at: u64,
    deadline_expired: bool,
}

/// Scanned elements between wall-clock probes of an armed deadline: the
/// progress counter the kernels already maintain gates `Instant::now()`,
/// so cheap queries never touch the clock.
const DEADLINE_PROBE_EVERY: u64 = 4096;

impl QueryScratch {
    /// Starts a new query: flushes the previous query's counters to the
    /// process-wide totals and clears all candidate state.
    pub fn reset(&mut self) {
        self.finish_query();
        self.cands.clear();
        self.plan.clear();
    }

    /// Flushes pending counters (also called by [`QueryScratch::reset`]
    /// and on drop, so drive-by uses cannot lose counts).
    fn finish_query(&mut self) {
        if !self.stats.is_zero() {
            flush_global(&self.stats);
            self.last = self.stats;
            self.stats = PlanStats::default();
        }
        if self.bits_live {
            self.zero_bits();
            self.bits_live = false;
        }
    }

    /// The counters of the most recently finished query.
    pub fn last_stats(&self) -> PlanStats {
        self.last
    }

    /// Arms (or clears) a per-query deadline. The serve worker sets this
    /// before `query_into`; conjunction steps then probe the wall clock
    /// once per [`DEADLINE_PROBE_EVERY`] scanned elements and, on
    /// expiry, drop every candidate so the rest of the plan collapses to
    /// O(1) early-exits. After the query, [`QueryScratch::timed_out`]
    /// says whether the built answer is partial and must be discarded. A
    /// query that completes without ever probing past its deadline is
    /// complete and servable regardless of the clock.
    pub fn set_deadline(&mut self, deadline: Option<std::time::Instant>) {
        self.deadline = deadline;
        self.deadline_probe_at = DEADLINE_PROBE_EVERY;
        self.deadline_expired = false;
    }

    /// True if an armed deadline expired mid-plan: the answer in `out`
    /// is partial and must not be served.
    #[inline]
    pub fn timed_out(&self) -> bool {
        self.deadline_expired
    }

    /// Deadline probe: cheap progress check first, wall clock only every
    /// [`DEADLINE_PROBE_EVERY`] scanned elements. On expiry, collapses
    /// the candidate state so every remaining plan step early-exits.
    #[inline]
    fn check_deadline(&mut self) {
        let Some(deadline) = self.deadline else {
            return;
        };
        if !self.deadline_expired {
            if self.stats.scanned < self.deadline_probe_at {
                return;
            }
            self.deadline_probe_at = self.stats.scanned + DEADLINE_PROBE_EVERY;
            if std::time::Instant::now() < deadline {
                return;
            }
            self.deadline_expired = true;
        }
        self.cands.clear();
        if self.bits_live {
            self.zero_bits();
            self.bits_live = false;
        }
    }

    /// Records a step that ran outside the planner's own kernels (e.g.
    /// cTIF's streaming decode-intersect) so the totals stay honest.
    #[inline]
    pub fn note(&mut self, kernel: Kernel, scanned: u64) {
        self.stats.note(kernel, scanned);
    }

    /// True if the candidate set is empty — the early-exit test between
    /// conjunction steps.
    #[inline]
    pub fn is_empty(&self) -> bool {
        if self.bits_live {
            self.bits_count == 0
        } else {
            self.cands.is_empty()
        }
    }

    /// One conjunction step: replaces the candidate set with its
    /// intersection against `side`, picking the kernel from the operand
    /// shapes and sizes.
    pub fn intersect(&mut self, side: Postings<'_>) {
        self.check_deadline();
        match side {
            Postings::Ids(ids) => self.intersect_ids(ids),
            Postings::Container(PostingContainer::Sparse { ids, .. }) => self.intersect_ids(ids),
            Postings::Container(PostingContainer::Dense(d)) => self.intersect_dense(d),
            Postings::Container(PostingContainer::Runs(r)) => self.intersect_runs(r),
            Postings::Blocks(bp) => self.intersect_blocks(bp),
        }
    }

    fn intersect_ids(&mut self, ids: &[u32]) {
        if self.bits_live {
            // Downshift: walk the sorted array, keep ids present in the
            // candidate bitmap. Output is raw-id-sorted by construction.
            self.cands.clear();
            for &p in ids {
                let r = raw(p);
                if live(p) && self.bit(r) {
                    self.cands.push(r);
                }
            }
            self.zero_bits();
            self.bits_live = false;
            self.stats.note(Kernel::BitmapProbe, ids.len() as u64);
            return;
        }
        self.next.clear();
        if self.cands.len().saturating_mul(GALLOP_RATIO) < ids.len() {
            // Scalar and AVX2 gallop share one counter: same cost shape.
            simd::gallop_into(&self.cands, ids, &mut self.next);
            self.stats.note(Kernel::Gallop, self.cands.len() as u64);
        } else if ids.len().saturating_mul(GALLOP_RATIO) < self.cands.len() {
            // Opposite skew: iterate the small postings side, gallop
            // through the candidates. Same counter as forward gallop —
            // the scanned side is the one iterated.
            crate::kernels::intersect_gallop_rev_into(&self.cands, ids, &mut self.next);
            self.stats.note(Kernel::Gallop, ids.len() as u64);
        } else {
            let vector = simd::merge_into(&self.cands, ids, &mut self.next);
            let kernel = if vector {
                Kernel::SimdMerge
            } else {
                Kernel::Merge
            };
            self.stats
                .note(kernel, (self.cands.len() + ids.len()) as u64);
        }
        std::mem::swap(&mut self.cands, &mut self.next);
    }

    fn intersect_dense(&mut self, d: &DenseBits) {
        let words = d.present_words();
        if self.bits_live {
            // Word-AND with the incoming bitmap; ids beyond its universe
            // cannot match, so the tail of the candidate bitmap clears.
            let keep = self.bits_words.min(words.len());
            let count = simd::and_words(
                &mut self.bits[..keep],
                &words[..keep],
                &d.deleted_words()[..keep],
            );
            for w in keep..self.bits_words {
                self.bits[w] = 0;
            }
            self.bits_words = keep;
            self.bits_count = count;
            self.stats.note(Kernel::WordAnd, keep as u64);
            return;
        }
        if self.cands.len().saturating_mul(WORD_AND_DENSITY_DEN) >= d.universe() as usize {
            // Dense candidates: materialize them as a bitmap once, then
            // this and consecutive dense steps run word-at-a-time.
            let w = words.len();
            if self.bits.len() < w {
                self.bits.resize(w, 0);
            }
            let build = self.cands.len();
            self.bits[..w].fill(0);
            for &c in &self.cands {
                if c < d.universe() {
                    self.bits[c as usize / 64] |= 1u64 << (c % 64);
                }
            }
            let count = simd::and_words(&mut self.bits[..w], words, d.deleted_words());
            self.bits_words = w;
            self.bits_count = count;
            self.bits_live = true;
            self.stats.note(Kernel::WordAnd, (w + build) as u64);
        } else {
            // Sparse candidates: O(1) probe per candidate.
            self.next.clear();
            for &c in &self.cands {
                if d.contains_live(c) {
                    self.next.push(c);
                }
            }
            self.stats
                .note(Kernel::BitmapProbe, self.cands.len() as u64);
            std::mem::swap(&mut self.cands, &mut self.next);
        }
    }

    // Outlined: keeps the Ids/Dense fast paths tight inside
    // `intersect`'s inlined dispatch.
    #[inline(never)]
    fn intersect_runs(&mut self, r: &RunSet) {
        let runs = r.runs();
        let del = r.deleted();
        if self.bits_live {
            // The run set is a bitmap in disguise: clear the candidate
            // bits in the gaps between runs (and past the last run),
            // then knock out the tombstoned ids.
            let mut prev = 0u64;
            for &(s, l) in runs {
                self.clear_bit_range(prev, u64::from(s));
                prev = u64::from(l) + 1;
            }
            self.clear_bit_range(prev, self.bits_words as u64 * 64);
            for &d in del {
                let w = d as usize / 64;
                if w < self.bits_words {
                    self.bits[w] &= !(1u64 << (d % 64));
                }
            }
            let mut count = 0u64;
            for &w in &self.bits[..self.bits_words] {
                count += u64::from(w.count_ones());
            }
            self.bits_count = count;
            self.stats.note(
                Kernel::RunIntersect,
                (self.bits_words + runs.len() + del.len()) as u64,
            );
            return;
        }
        // Array candidates: two regimes, mirroring merge-vs-gallop on
        // sorted arrays. A candidate set much smaller than the run list
        // probes the runs per candidate (O(cands log runs) with a moving
        // lower bound) — walking every run would cost O(runs log cands)
        // and dominates tiny-candidate queries against long run lists.
        self.next.clear();
        let mut di = 0usize;
        if self.cands.len().saturating_mul(GALLOP_RATIO) < runs.len() {
            let mut lo = 0usize;
            for ci in 0..self.cands.len() {
                let c = self.cands[ci];
                lo += runs[lo..].partition_point(|&(_, l)| l < c);
                if lo == runs.len() {
                    break;
                }
                if runs[lo].0 <= c {
                    while di < del.len() && del[di] < c {
                        di += 1;
                    }
                    if di >= del.len() || del[di] != c {
                        self.next.push(c);
                    }
                }
            }
            self.stats
                .note(Kernel::RunIntersect, self.cands.len() as u64);
        } else {
            // Comparable sizes: one cursor walk over both — O(runs +
            // candidates), no per-id probes.
            let mut ci = 0usize;
            for &(s, l) in runs {
                ci += self.cands[ci..].partition_point(|&c| c < s);
                while ci < self.cands.len() && self.cands[ci] <= l {
                    let c = self.cands[ci];
                    while di < del.len() && del[di] < c {
                        di += 1;
                    }
                    if di >= del.len() || del[di] != c {
                        self.next.push(c);
                    }
                    ci += 1;
                }
                if ci == self.cands.len() {
                    break;
                }
            }
            self.stats
                .note(Kernel::RunIntersect, (runs.len() + self.cands.len()) as u64);
        }
        std::mem::swap(&mut self.cands, &mut self.next);
    }

    #[inline(never)]
    fn intersect_blocks(&mut self, bp: &BlockPostings) {
        if self.bits_live {
            // Downshift block-at-a-time: blocks whose first id is past
            // the bitmap's live words can never match, so decoding stops
            // there; everything decoded is probed like a sorted array.
            self.cands.clear();
            let limit = self.bits_words as u64 * 64;
            let mut blocks = 0u64;
            let mut scanned = 0u64;
            for b in 0..bp.num_blocks() {
                if u64::from(bp.block_first(b)) >= limit {
                    break;
                }
                self.blk.clear();
                bp.decode_block_into(b, &mut self.blk);
                blocks += 1;
                scanned += self.blk.len() as u64;
                for &p in &self.blk {
                    let r = raw(p);
                    let w = r as usize / 64;
                    if live(p) && w < self.bits_words && (self.bits[w] >> (r % 64)) & 1 == 1 {
                        self.cands.push(r);
                    }
                }
            }
            self.zero_bits();
            self.bits_live = false;
            self.stats.note(Kernel::BitmapProbe, scanned);
            self.stats.note_blocks(blocks);
            return;
        }
        self.next.clear();
        let st = bp.intersect_into(&self.cands, &mut self.next, &mut self.blk);
        let kernel = if st.vector {
            Kernel::SimdMerge
        } else {
            Kernel::Merge
        };
        self.stats.note(kernel, st.scanned);
        self.stats.note_blocks(st.blocks_decoded);
        std::mem::swap(&mut self.cands, &mut self.next);
    }

    /// Clears candidate-bitmap bits in `[start, end)` (clamped to the
    /// live words).
    fn clear_bit_range(&mut self, start: u64, end: u64) {
        let limit = self.bits_words as u64 * 64;
        let (start, end) = (start.min(limit), end.min(limit));
        if start >= end {
            return;
        }
        let (sw, sb) = ((start / 64) as usize, start % 64);
        let (ew, eb) = ((end / 64) as usize, end % 64);
        if sw == ew {
            self.bits[sw] &= !(((1u64 << eb) - 1) & !((1u64 << sb) - 1));
            return;
        }
        self.bits[sw] &= (1u64 << sb) - 1;
        for w in &mut self.bits[sw + 1..ew] {
            *w = 0;
        }
        if eb > 0 {
            self.bits[ew] &= !((1u64 << eb) - 1);
        }
    }

    /// Finishes the query: materializes the candidate set (ascending if
    /// the planner ended in bitmap form) into `out` and flushes counters.
    pub fn take_into(&mut self, out: &mut Vec<u32>) {
        if self.bits_live {
            for w in 0..self.bits_words {
                let mut m = self.bits[w];
                self.bits[w] = 0;
                while m != 0 {
                    // analyze:allow(unguarded-cast): word index * 64 + bit is a valid u32 id
                    out.push((w * 64) as u32 + m.trailing_zeros());
                    m &= m - 1;
                }
            }
            self.bits_live = false;
        } else {
            out.append(&mut self.cands);
        }
        self.finish_query();
    }

    #[inline]
    fn bit(&self, id: u32) -> bool {
        let w = id as usize / 64;
        w < self.bits_words && (self.bits[w] >> (id % 64)) & 1 == 1
    }

    fn zero_bits(&mut self) {
        for w in &mut self.bits[..self.bits_words] {
            *w = 0;
        }
        self.bits_words = 0;
        self.bits_count = 0;
    }

    // ----- candidate-probe mode (Algorithm 3 / mark-hits call sites) -----

    /// Indexes `cands` (unique live raw ids, any order) for repeated
    /// [`QueryScratch::probe_take`] calls: a candidate bitmap when the id
    /// range is small enough, a sorted copy with hit flags otherwise.
    /// `universe` is a sizing hint (`max id + 1` if known; 0 is fine —
    /// the candidate maximum is used); ranges beyond
    /// [`MAX_PROBE_UNIVERSE`] fall back to binary-search probes.
    pub fn load_candidates(&mut self, cands: &[u32], universe: u32) {
        let needed = cands
            .iter()
            .fold(universe, |u, &c| u.max(c.saturating_add(1)));
        self.loaded.clear();
        self.loaded.extend_from_slice(cands);
        if needed > 0 && needed <= MAX_PROBE_UNIVERSE {
            self.probe_bits = true;
            let w = (needed as usize).div_ceil(64);
            if self.bits.len() < w {
                self.bits.resize(w, 0);
            }
            self.bits_words = self.bits_words.max(w);
            for &c in &self.loaded {
                self.bits[c as usize / 64] |= 1u64 << (c % 64);
            }
            self.stats
                .note(Kernel::BitmapProbe, self.loaded.len() as u64);
        } else {
            self.probe_bits = false;
            self.loaded.sort_unstable();
            self.hits.clear();
            self.hits.resize(self.loaded.len(), false);
            self.stats.note(Kernel::Gallop, self.loaded.len() as u64);
        }
    }

    /// Tests whether `raw_id` is a loaded candidate not yet taken, and
    /// takes it — each candidate is emitted at most once per load, which
    /// replaces the mark-hits pass over replicated sub-lists.
    ///
    /// Deliberately does no counter bookkeeping: this is the hottest
    /// per-element call in the probe pattern, so call sites account the
    /// elements they scanned in bulk via [`QueryScratch::note_probed`].
    #[inline]
    pub fn probe_take(&mut self, raw_id: u32) -> bool {
        if self.probe_bits {
            let w = raw_id as usize / 64;
            if w < self.bits_words && (self.bits[w] >> (raw_id % 64)) & 1 == 1 {
                self.bits[w] &= !(1u64 << (raw_id % 64));
                return true;
            }
            false
        } else if let Ok(i) = self.loaded.binary_search(&raw_id) {
            !std::mem::replace(&mut self.hits[i], true)
        } else {
            false
        }
    }

    /// Records `scanned` posting elements probed through
    /// [`QueryScratch::probe_take`] since the last
    /// [`QueryScratch::load_candidates`], attributed to whichever probe
    /// kernel that load selected. Called once per posting list (or per
    /// round) rather than per element so the probe loop stays free of
    /// counter read-modify-writes.
    #[inline]
    pub fn note_probed(&mut self, scanned: u64) {
        let kernel = if self.probe_bits {
            Kernel::BitmapProbe
        } else {
            Kernel::Gallop
        };
        self.stats.note(kernel, scanned);
    }

    // ----- merge-marking rounds (sorted replicated sub-lists) -----

    /// Begins a merge-marking round over a sorted candidate set of `n`
    /// ids: clears and sizes the per-candidate hit flags. Cheaper than
    /// probe mode when the postings runs are id-sorted, because each
    /// [`QueryScratch::mark`] is a branch-light linear zipper.
    pub fn begin_mark(&mut self, n: usize) {
        self.hits.clear();
        self.hits.resize(n, false);
    }

    /// Merge-marks every candidate with a live posting in `postings`
    /// (both sorted ascending; postings by raw id). A candidate may be
    /// marked by several runs — e.g. slice-replicated sub-lists — and is
    /// still emitted once by [`QueryScratch::finish_mark`].
    pub fn mark(&mut self, cands: &[u32], postings: &[u32]) {
        self.check_deadline();
        if self.deadline_expired {
            // Past deadline: mark nothing, so finish_mark empties the
            // caller's candidate buffer and its plan early-exits.
            return;
        }
        if postings.len().saturating_mul(GALLOP_RATIO) < cands.len() {
            // Skewed round: iterate the small postings side, gallop
            // through the candidates (same dispatch as intersect_ids).
            crate::kernels::mark_hits_gallop_rev(cands, postings, &mut self.hits);
            self.stats.note(Kernel::Gallop, postings.len() as u64);
        } else if cands.len().saturating_mul(GALLOP_RATIO) < postings.len() {
            // Opposite skew — few surviving candidates against a long
            // sub-list (the dominant slicing shape: ~10^2 cands vs 10^4
            // postings): gallop through the postings per candidate.
            crate::kernels::mark_hits_gallop(cands, postings, &mut self.hits);
            self.stats.note(Kernel::Gallop, cands.len() as u64);
        } else {
            mark_hits(cands, postings, &mut self.hits);
            self.stats
                .note(Kernel::Merge, (cands.len() + postings.len()) as u64);
        }
    }

    /// Ends a merge-marking round: compacts `cands` in place (preserving
    /// sorted order) to the candidates that were marked.
    pub fn finish_mark(&mut self, cands: &mut Vec<u32>) {
        debug_assert_eq!(self.hits.len(), cands.len());
        let mut i = 0;
        cands.retain(|_| {
            let hit = self.hits[i];
            i += 1;
            hit
        });
        self.hits.clear();
    }

    /// Takes the internal secondary buffer for call sites that run their
    /// own merge loops (e.g. cTIF's compressed streaming intersection).
    /// Give it back with [`QueryScratch::put_aux`] so its capacity is
    /// reused by later queries.
    pub fn take_aux(&mut self) -> Vec<u32> {
        let mut aux = std::mem::take(&mut self.next);
        aux.clear();
        aux
    }

    /// Returns the buffer taken with [`QueryScratch::take_aux`].
    pub fn put_aux(&mut self, mut aux: Vec<u32>) {
        aux.clear();
        self.next = aux;
    }

    /// Takes the block-decode buffer for call sites that stream
    /// [`BlockPostings`] themselves (e.g. cTIF's overlay union). Give it
    /// back with [`QueryScratch::put_blk`].
    pub fn take_blk(&mut self) -> Vec<u32> {
        let mut blk = std::mem::take(&mut self.blk);
        blk.clear();
        blk
    }

    /// Returns the buffer taken with [`QueryScratch::take_blk`].
    pub fn put_blk(&mut self, mut blk: Vec<u32>) {
        blk.clear();
        self.blk = blk;
    }

    /// Records compressed blocks decoded by an external streaming loop
    /// (see [`QueryScratch::note`] for the matching element counts).
    #[inline]
    pub fn note_blocks(&mut self, blocks: u64) {
        self.stats.note_blocks(blocks);
    }

    /// Ends a probe round, clearing the candidate index so the next
    /// [`QueryScratch::load_candidates`] starts clean.
    pub fn end_probe(&mut self) {
        if self.probe_bits {
            for &c in &self.loaded {
                let w = c as usize / 64;
                if w < self.bits.len() {
                    self.bits[w] &= !(1u64 << (c % 64));
                }
            }
            self.bits_words = 0;
        } else {
            self.hits.clear();
        }
        self.loaded.clear();
    }
}

impl Drop for QueryScratch {
    fn drop(&mut self) {
        self.finish_query();
    }
}

/// Standalone planned intersection for call sites without a scratch
/// (e.g. the corpus-level [`crate::InvertedIndex`]): merge-or-gallop by
/// ratio, counted into the process-wide totals.
pub fn intersect_ids_into(cands: &[u32], ids: &[u32], out: &mut Vec<u32>) -> Kernel {
    let mut stats = PlanStats::default();
    let kernel = if cands.len().saturating_mul(GALLOP_RATIO) < ids.len() {
        simd::gallop_into(cands, ids, out);
        stats.note(Kernel::Gallop, cands.len() as u64);
        Kernel::Gallop
    } else if ids.len().saturating_mul(GALLOP_RATIO) < cands.len() {
        crate::kernels::intersect_gallop_rev_into(cands, ids, out);
        stats.note(Kernel::Gallop, ids.len() as u64);
        Kernel::Gallop
    } else if simd::merge_into(cands, ids, out) {
        stats.note(Kernel::SimdMerge, (cands.len() + ids.len()) as u64);
        Kernel::SimdMerge
    } else {
        stats.note(Kernel::Merge, (cands.len() + ids.len()) as u64);
        Kernel::Merge
    };
    flush_global(&stats);
    kernel
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::container::ContainerConfig;
    use crate::kernels::TOMBSTONE;

    fn seq(scratch: &mut QueryScratch, seed: &[u32], sides: &[Postings<'_>]) -> Vec<u32> {
        scratch.reset();
        scratch.cands.extend_from_slice(seed);
        for side in sides {
            if scratch.is_empty() {
                break;
            }
            scratch.intersect(*side);
        }
        let mut out = Vec::new();
        scratch.take_into(&mut out);
        out
    }

    #[test]
    fn expired_deadline_collapses_the_plan_and_flags_timeout() {
        let big: Vec<u32> = (0..20_000u32).map(|i| i * 2).collect();
        let mut s = QueryScratch::default();

        // A deadline already in the past: the first step past the probe
        // threshold must flag the timeout and empty the candidates.
        s.set_deadline(Some(std::time::Instant::now()));
        s.reset();
        s.cands.extend_from_slice(&big);
        s.intersect(Postings::Ids(&big)); // accrues > DEADLINE_PROBE_EVERY
        s.intersect(Postings::Ids(&big)); // probe fires here at the latest
        assert!(s.timed_out());
        assert!(s.is_empty(), "expired plan must hold no candidates");

        // Disarming restores normal behavior on the same scratch.
        s.set_deadline(None);
        s.reset();
        s.cands.extend_from_slice(&[2, 4, 6]);
        s.intersect(Postings::Ids(&big));
        assert!(!s.timed_out());
        let mut out = Vec::new();
        s.take_into(&mut out);
        assert_eq!(out, vec![2, 4, 6]);

        // A generous deadline never fires even on heavy plans.
        s.set_deadline(Some(
            std::time::Instant::now() + std::time::Duration::from_secs(600),
        ));
        s.reset();
        s.cands.extend_from_slice(&big);
        s.intersect(Postings::Ids(&big));
        s.intersect(Postings::Ids(&big));
        assert!(!s.timed_out());
    }

    #[test]
    fn array_steps_match_kernels() {
        let mut s = QueryScratch::default();
        let got = seq(
            &mut s,
            &[1, 3, 5, 7, 9],
            &[Postings::Ids(&[1, 2, 3, 7]), Postings::Ids(&[3, 7, 8])],
        );
        assert_eq!(got, vec![3, 7]);
        let st = s.last_stats();
        assert_eq!(st.steps(), 2);
        assert_eq!(st.kernel_scanned_sum(), st.scanned);
    }

    #[test]
    fn dense_probe_and_word_and() {
        let cfg = ContainerConfig { density_den: 4 };
        // Evens: singleton runs fail the run rule, density picks bitmap.
        let dense_ids: Vec<u32> = (0..128).map(|i| i * 2).collect();
        let c = PostingContainer::from_sorted(&dense_ids, 256, cfg);
        assert!(c.is_dense());

        // Sparse candidates: bitmap-probe.
        let mut s = QueryScratch::default();
        let got = seq(&mut s, &[2, 3, 500], &[Postings::Container(&c)]);
        assert_eq!(got, vec![2]);
        assert_eq!(s.last_stats().bitmap_probe_steps, 1);

        // Dense candidates: word-AND, result extracted ascending.
        let cands: Vec<u32> = (0..64).map(|i| i * 4).collect();
        let got = seq(&mut s, &cands, &[Postings::Container(&c)]);
        assert_eq!(got, cands);
        assert_eq!(s.last_stats().word_and_steps, 1);

        // Word-AND chains across consecutive dense steps, then
        // downshifts cleanly on a sparse side.
        let fours = PostingContainer::from_sorted(&cands, 256, cfg);
        assert!(fours.is_dense());
        let got = seq(
            &mut s,
            &(0..256).collect::<Vec<_>>(),
            &[
                Postings::Container(&c),
                Postings::Container(&fours),
                Postings::Ids(&[4, 5, 6, 8, 500]),
            ],
        );
        assert_eq!(got, vec![4, 8]);
        let st = s.last_stats();
        assert_eq!(st.word_and_steps, 2);
        assert_eq!(st.bitmap_probe_steps, 1);
        assert_eq!(st.kernel_scanned_sum(), st.scanned);
    }

    #[test]
    fn runs_intersect_in_array_and_bitmap_mode() {
        let cfg = ContainerConfig { density_den: 4 };
        let run_ids: Vec<u32> = (100..=140)
            .map(|i| if i == 120 { i | TOMBSTONE } else { i })
            .collect();
        let rc = PostingContainer::from_sorted(&run_ids, 256, cfg);
        assert!(rc.is_runs());

        // Array candidates: cursor walk over the runs.
        let mut s = QueryScratch::default();
        let got = seq(
            &mut s,
            &[50, 100, 120, 140, 200],
            &[Postings::Container(&rc)],
        );
        assert_eq!(got, vec![100, 140], "ends kept, tombstone dropped");
        assert_eq!(s.last_stats().run_intersect_steps, 1);

        // Bitmap candidates (after a word-AND step): gap clearing.
        let dense_ids: Vec<u32> = (0..128).map(|i| i * 2).collect();
        let dc = PostingContainer::from_sorted(&dense_ids, 256, cfg);
        assert!(dc.is_dense());
        let seed: Vec<u32> = (0..256).collect();
        let got = seq(
            &mut s,
            &seed,
            &[Postings::Container(&dc), Postings::Container(&rc)],
        );
        let want: Vec<u32> = (100..=140).filter(|i| i % 2 == 0 && *i != 120).collect();
        assert_eq!(got, want);
        let st = s.last_stats();
        assert_eq!(st.word_and_steps, 1);
        assert_eq!(st.run_intersect_steps, 1);
        assert_eq!(st.kernel_scanned_sum(), st.scanned);
    }

    #[test]
    fn blocks_intersect_in_array_and_bitmap_mode() {
        // 8 blocks of evens over [0, 2048).
        let ids: Vec<u32> = (0..1024).map(|i| i * 2).collect();
        let bp = BlockPostings::encode(&ids);
        assert_eq!(bp.num_blocks(), 8);

        // Array candidates confined to one block: the rest skip.
        let mut s = QueryScratch::default();
        let cands: Vec<u32> = (600..700).collect();
        let got = seq(&mut s, &cands, &[Postings::Blocks(&bp)]);
        let want: Vec<u32> = (600..700).filter(|c| c % 2 == 0).collect();
        assert_eq!(got, want);
        let st = s.last_stats();
        assert_eq!(st.blocks_decoded, 1);
        assert_eq!(st.steps(), 1);
        assert_eq!(st.kernel_scanned_sum(), st.scanned);

        // Bitmap candidates: decoding stops at the bitmap's last word.
        let cfg = ContainerConfig { density_den: 4 };
        let dense_ids: Vec<u32> = (0..128).map(|i| i * 2).collect();
        let dc = PostingContainer::from_sorted(&dense_ids, 256, cfg);
        let seed: Vec<u32> = (0..256).collect();
        let got = seq(
            &mut s,
            &seed,
            &[Postings::Container(&dc), Postings::Blocks(&bp)],
        );
        assert_eq!(got, dense_ids, "evens in [0, 256) survive both sides");
        let st = s.last_stats();
        assert!(
            st.blocks_decoded < bp.num_blocks() as u64,
            "blocks past the bitmap universe stay undecoded"
        );
        assert_eq!(st.kernel_scanned_sum(), st.scanned);
    }

    #[test]
    fn large_arrays_dispatch_to_the_vector_merge() {
        // Both sides must clear SIMD_MERGE_MIN or the wrapper (correctly)
        // routes to scalar.
        let n = crate::simd::SIMD_MERGE_MIN as u32 + 77;
        let a: Vec<u32> = (0..n).map(|i| i * 3).collect();
        let b: Vec<u32> = (0..n).map(|i| i * 2).collect();
        let mut want = Vec::new();
        crate::kernels::intersect_merge_into(&a, &b, &mut want);
        let mut s = QueryScratch::default();
        let got = seq(&mut s, &a, &[Postings::Ids(&b)]);
        assert_eq!(got, want);
        let st = s.last_stats();
        if simd::level() >= crate::simd::SimdLevel::Sse2 {
            assert_eq!(st.simd_merge_steps, 1, "big merge takes the SSE2 path");
        } else {
            assert_eq!(st.merge_steps, 1, "scalar fallback under TIR_SIMD=off");
        }
        assert_eq!(st.kernel_scanned_sum(), st.scanned);
    }

    #[test]
    fn tombstones_respected_on_every_path() {
        let cfg = ContainerConfig { density_den: 4 };
        let ids: Vec<u32> = (0..64)
            .map(|i| {
                let id = i * 2;
                if id == 20 {
                    id | TOMBSTONE
                } else {
                    id
                }
            })
            .collect();
        let c = PostingContainer::from_sorted(&ids, 128, cfg);
        assert!(c.is_dense());
        let mut s = QueryScratch::default();
        // probe path
        assert_eq!(
            seq(&mut s, &[18, 20, 22], &[Postings::Container(&c)]),
            vec![18, 22]
        );
        // word-AND path
        let all: Vec<u32> = (0..64).map(|i| i * 2).collect();
        let got = seq(&mut s, &all, &[Postings::Container(&c)]);
        assert!(!got.contains(&20) && got.len() == 63);
        // downshift path skips tombstoned array entries
        let arr = [18u32, 20 | TOMBSTONE, 22];
        let got = seq(
            &mut s,
            &all,
            &[Postings::Container(&c), Postings::Ids(&arr)],
        );
        assert_eq!(got, vec![18, 22]);
    }

    #[test]
    fn probe_mode_takes_each_candidate_once() {
        let mut s = QueryScratch::default();
        // 100 exercises the candidate bitmap; u32::MAX overflows
        // MAX_PROBE_UNIVERSE and exercises the sorted fallback.
        for universe in [100u32, u32::MAX] {
            s.reset();
            s.load_candidates(&[5, 1, 9], universe);
            assert!(s.probe_take(1));
            assert!(!s.probe_take(1), "taken candidates never re-emit");
            assert!(!s.probe_take(2));
            assert!(s.probe_take(9));
            s.end_probe();
            // A fresh load sees a clean slate.
            s.load_candidates(&[1], universe);
            assert!(s.probe_take(1));
            s.end_probe();
        }
    }

    #[test]
    fn mark_rounds_compact_to_hit_candidates() {
        let mut s = QueryScratch::default();
        s.reset();
        let mut cands = vec![1u32, 4, 7, 9];
        s.begin_mark(cands.len());
        // Replicated runs: 7 appears in both, and is still emitted once.
        s.mark(&cands, &[2, 7, 9 | TOMBSTONE]);
        s.mark(&cands, &[4, 7]);
        s.finish_mark(&mut cands);
        assert_eq!(cands, vec![4, 7]);
        // A fresh round starts from clean flags.
        s.begin_mark(cands.len());
        s.mark(&cands, &[4]);
        s.finish_mark(&mut cands);
        assert_eq!(cands, vec![4]);
        let stats = {
            s.reset();
            s.last_stats()
        };
        assert_eq!(stats.kernel_scanned_sum(), stats.scanned);
        assert!(stats.merge_steps >= 3);
    }

    #[test]
    fn global_counters_accumulate() {
        let before = global_stats();
        let mut out = Vec::new();
        intersect_ids_into(&[1, 2, 3], &[2, 3, 4], &mut out);
        assert_eq!(out, vec![2, 3]);
        let after = global_stats();
        assert!(after.scanned > before.scanned);
        assert_eq!(after.kernel_scanned_sum(), after.scanned);
    }
}
