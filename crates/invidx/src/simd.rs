//! Vectorized intersection and decode kernels with runtime dispatch.
//!
//! This is the **second of exactly two modules in the workspace allowed
//! to contain `unsafe`** (the `unsafe-code` rule of `tir-analyze`
//! machine-checks the allowlist; the other is the mmap wrapper in
//! `tir-persist`). Everything here is `core::arch::x86_64` intrinsics
//! behind runtime CPU-feature detection, and every entry point has a
//! scalar fallback in [`crate::kernels`] that remains the source of
//! truth: the differential proptests in `tests/prop_kernels.rs` pit
//! each vector path against its scalar twin and a `BTreeSet` oracle.
//!
//! Dispatch is decided once per process ([`level`]) from CPUID, and can
//! be forced down with the `TIR_SIMD` environment variable
//! (`off`/`0`/`scalar`, `sse2`, `ssse3`, `avx2`) — CI runs the kernel
//! suite with `TIR_SIMD=off` to keep the scalar fallback honest.
//!
//! Kernels:
//!
//! * [`merge_into`] — SSE2 block-wise merge intersection (Schlegel-style
//!   cyclic-shift compare of 4-id blocks, all 16 lane pairs per round),
//!   tombstone-aware via the sign bit;
//! * [`gallop_into`] — AVX2 galloping intersection: 8-id block-granular
//!   exponential search plus a single 8-lane compare in the final block;
//! * [`and_words`] — AVX2 `dst & present & !deleted` over 4 × u64 lanes
//!   with a folded population count;
//! * [`svb_decode_into`] — SSSE3 stream-vbyte delta decode (per-control
//!   `pshufb` shuffle from a 256-entry table) with an in-register
//!   prefix sum, used by [`crate::compress::BlockPostings`].

#![allow(unsafe_code)]

use std::sync::OnceLock;

use crate::kernels;

/// The vector instruction tier selected for this process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SimdLevel {
    /// No vector kernels: scalar fallbacks only.
    Scalar,
    /// SSE2 (x86-64 baseline): block merge intersection.
    Sse2,
    /// SSSE3: adds the `pshufb` stream-vbyte decoder.
    Ssse3,
    /// AVX2: adds 8-wide gallop probes and 256-bit word-AND.
    Avx2,
}

/// The dispatch level, decided once per process: the best tier CPUID
/// reports, capped by the `TIR_SIMD` environment variable (`off`, `0`
/// or `scalar` force [`SimdLevel::Scalar`]; `sse2`/`ssse3`/`avx2` cap
/// at that tier; anything else is ignored).
pub fn level() -> SimdLevel {
    static LEVEL: OnceLock<SimdLevel> = OnceLock::new();
    *LEVEL.get_or_init(detect)
}

fn detect() -> SimdLevel {
    let cap = detect_cpu();
    match std::env::var("TIR_SIMD").ok().as_deref() {
        Some("off") | Some("0") | Some("scalar") => SimdLevel::Scalar,
        Some("sse2") => cap.min(SimdLevel::Sse2),
        Some("ssse3") => cap.min(SimdLevel::Ssse3),
        Some("avx2") => cap.min(SimdLevel::Avx2),
        _ => cap,
    }
}

#[cfg(target_arch = "x86_64")]
fn detect_cpu() -> SimdLevel {
    if std::arch::is_x86_feature_detected!("avx2") {
        SimdLevel::Avx2
    } else if std::arch::is_x86_feature_detected!("ssse3") {
        SimdLevel::Ssse3
    } else {
        // SSE2 is part of the x86-64 baseline — always present.
        SimdLevel::Sse2
    }
}

#[cfg(not(target_arch = "x86_64"))]
fn detect_cpu() -> SimdLevel {
    SimdLevel::Scalar
}

/// Inputs shorter than this run the scalar kernel directly: below one
/// or two vector blocks the dispatch and tail handling cost more than
/// they save, and keeping tiny steps on the scalar counters stops the
/// `SimdMerge` stats from being dominated by trivial intersections.
pub const SIMD_MIN_LEN: usize = 16;

/// Minimum length of the *shorter* side before the SSE2 merge beats the
/// scalar zipper. Measured on the density grid across three universes:
/// the block kernel wins 2-3× when both sides hold at least a few
/// thousand ids ((8‰,8‰) of 2^20: 29µs vs 85µs) but loses up to 1.5×
/// on short inputs, where the scalar loop's predictable branches win
/// ((1‰,1‰): 1.14 vs 1.74 ns/elem). The crossover sits near 4k on the
/// shorter side (BENCH_kernels.json).
pub const SIMD_MERGE_MIN: usize = 4096;

/// Minimum postings length before the AVX2 gallop probe beats scalar
/// galloping. In gallop's selected regime (postings at least
/// `GALLOP_RATIO` × cands) the 8-lane probe wins from ~512 postings
/// ((1‰,8‰) of 65536: 523ns vs 640ns) and widens with size; below that
/// the block search costs more than the two scalar binary searches.
pub const SIMD_GALLOP_MIN: usize = 512;

/// Merge intersection with the same contract as
/// [`kernels::intersect_merge_into`] (clean sorted candidates, postings
/// raw-id-sorted with optional bit-31 tombstones, matches appended to
/// `out`). Returns `true` if the SSE2 block kernel ran, `false` if the
/// scalar fallback did — callers attribute the step to
/// `Kernel::SimdMerge` or `Kernel::Merge` accordingly.
#[inline]
pub fn merge_into(cands: &[u32], postings: &[u32], out: &mut Vec<u32>) -> bool {
    if cands.len().min(postings.len()) >= SIMD_MERGE_MIN {
        return merge_into_forced(cands, postings, out);
    }
    kernels::intersect_merge_into(cands, postings, out);
    false
}

/// [`merge_into`] without the [`SIMD_MERGE_MIN`] size gate: the vector
/// kernel runs whenever the CPU supports it, at any length. For the
/// grid harness (which measures the crossover the gate encodes) and the
/// differential tests (which must cover vector tails at small lengths);
/// production dispatch goes through [`merge_into`].
#[inline]
pub fn merge_into_forced(cands: &[u32], postings: &[u32], out: &mut Vec<u32>) -> bool {
    #[cfg(target_arch = "x86_64")]
    if !cands.is_empty() && !postings.is_empty() && level() >= SimdLevel::Sse2 {
        // SAFETY: SSE2 is unconditionally available on x86-64 (and
        // `level()` reports at least Sse2 only on that arch).
        // analyze:allow(unsafe-code): target-feature call gated by runtime dispatch; sse2 is the x86-64 baseline
        unsafe { x86::merge_sse2(cands, postings, out) };
        return true;
    }
    kernels::intersect_merge_into(cands, postings, out);
    false
}

/// Galloping intersection with the same contract as
/// [`kernels::intersect_gallop_into`]. Returns `true` if the AVX2 block
/// kernel ran. The step stays attributed to `Kernel::Gallop` either
/// way — the grid harness benches both variants directly.
#[inline]
pub fn gallop_into(cands: &[u32], postings: &[u32], out: &mut Vec<u32>) -> bool {
    if postings.len() >= SIMD_GALLOP_MIN {
        return gallop_into_forced(cands, postings, out);
    }
    kernels::intersect_gallop_into(cands, postings, out);
    false
}

/// [`gallop_into`] without the [`SIMD_GALLOP_MIN`] size gate — same
/// purpose as [`merge_into_forced`].
#[inline]
pub fn gallop_into_forced(cands: &[u32], postings: &[u32], out: &mut Vec<u32>) -> bool {
    #[cfg(target_arch = "x86_64")]
    if !cands.is_empty() && !postings.is_empty() && level() >= SimdLevel::Avx2 {
        // SAFETY: AVX2 support was verified by CPUID via `level()`.
        // analyze:allow(unsafe-code): target-feature call gated by runtime avx2 detection
        unsafe { x86::gallop_avx2(cands, postings, out) };
        return true;
    }
    kernels::intersect_gallop_into(cands, postings, out);
    false
}

/// Computes `dst[k] = dst[k] & present[k] & !deleted[k]` over the
/// common prefix of the three slices and returns the total popcount of
/// the result — one fused pass over the planner's word-AND chain. Uses
/// 256-bit lanes under AVX2, a scalar loop otherwise.
#[inline]
pub fn and_words(dst: &mut [u64], present: &[u64], deleted: &[u64]) -> u64 {
    let n = dst.len().min(present.len()).min(deleted.len());
    #[cfg(target_arch = "x86_64")]
    if n >= 8 && level() >= SimdLevel::Avx2 {
        // SAFETY: AVX2 support was verified by CPUID via `level()`.
        // analyze:allow(unsafe-code): target-feature call gated by runtime avx2 detection
        return unsafe { x86::and_words_avx2(&mut dst[..n], &present[..n], &deleted[..n]) };
    }
    let mut count = 0u64;
    for ((d, &p), &t) in dst[..n].iter_mut().zip(&present[..n]).zip(&deleted[..n]) {
        let v = *d & p & !t;
        *d = v;
        count += u64::from(v.count_ones());
    }
    count
}

/// Decodes one stream-vbyte block: writes `first` to `out[0]`, then
/// applies the `out.len() - 1` encoded deltas cumulatively (stream-vbyte
/// layout: one control byte per 4 deltas, 2 bits each giving the
/// little-endian byte length minus one, data bytes in a separate
/// stream). Returns `(ctrl_bytes, data_bytes)` consumed.
///
/// The SSSE3 path reads `data` 16 bytes at a time and only runs while a
/// full 16-byte load stays in bounds — encoders that pad their data
/// stream (see `BlockPostings`) decode fully vectorized, unpadded
/// callers fall back to the scalar tail for the last few groups.
#[inline]
pub fn svb_decode_into(first: u32, ctrl: &[u8], data: &[u8], out: &mut [u32]) -> (usize, usize) {
    if out.is_empty() {
        return (0, 0);
    }
    #[cfg(target_arch = "x86_64")]
    if out.len() > SIMD_MIN_LEN && level() >= SimdLevel::Ssse3 {
        // SAFETY: SSSE3 support was verified by CPUID via `level()`.
        // analyze:allow(unsafe-code): target-feature call gated by runtime ssse3 detection
        return unsafe { x86::svb_decode_ssse3(first, ctrl, data, out) };
    }
    out[0] = first;
    svb_decode_tail(1, 0, 0, first, ctrl, data, out)
}

/// Scalar stream-vbyte decode resuming from mid-stream state: fills
/// `out[k..]` starting from running id `base`, cursors `ci` into `ctrl`
/// and `pos` into `data` (with `k - 1` values already consumed from the
/// current group when `(k - 1) % 4 != 0`). Shared by the scalar path
/// and the vector kernel's tail. Returns the final `(ci, pos)`.
fn svb_decode_tail(
    mut k: usize,
    mut ci: usize,
    mut pos: usize,
    mut base: u32,
    ctrl: &[u8],
    data: &[u8],
    out: &mut [u32],
) -> (usize, usize) {
    let n = out.len();
    while k < n {
        let c = ctrl[ci];
        ci += 1;
        let mut lane = 0;
        while lane < 4 && k < n {
            let nbytes = ((c >> (2 * lane)) & 3) as usize + 1;
            let mut v = 0u32;
            for (shift, &byte) in data[pos..pos + nbytes].iter().enumerate() {
                v |= u32::from(byte) << (8 * shift);
            }
            pos += nbytes;
            base = base.wrapping_add(v);
            out[k] = base;
            k += 1;
            lane += 1;
        }
    }
    (ci, pos)
}

/// Stream-vbyte shuffle tables, one entry per control byte: the 16-lane
/// `pshufb` mask expanding the packed little-endian bytes of 4 values
/// to 4 × u32 (0x80 lanes zero-fill), and the total data bytes the
/// control byte consumes.
#[cfg(target_arch = "x86_64")]
struct SvbTables {
    shuffle: [[u8; 16]; 256],
    len: [u8; 256],
}

#[cfg(target_arch = "x86_64")]
static SVB_TABLES: SvbTables = build_svb_tables();

#[cfg(target_arch = "x86_64")]
const fn build_svb_tables() -> SvbTables {
    let mut shuffle = [[0x80u8; 16]; 256];
    let mut len = [0u8; 256];
    let mut c = 0usize;
    while c < 256 {
        let mut src = 0u8;
        let mut value = 0usize;
        while value < 4 {
            // analyze:allow(unguarded-cast): masked to 2 bits, fits u8
            let nbytes = ((c >> (2 * value)) & 3) as u8 + 1;
            let mut b = 0u8;
            while b < 4 {
                shuffle[c][value * 4 + b as usize] = if b < nbytes { src + b } else { 0x80 };
                b += 1;
            }
            src += nbytes;
            value += 1;
        }
        len[c] = src;
        c += 1;
    }
    SvbTables { shuffle, len }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{svb_decode_tail, SVB_TABLES};
    use crate::kernels::{live, raw, TOMBSTONE};
    use std::arch::x86_64::{
        __m128i, __m256i, _mm256_and_si256, _mm256_andnot_si256, _mm256_castsi256_ps,
        _mm256_cmpeq_epi32, _mm256_cmpgt_epi32, _mm256_extract_epi64, _mm256_loadu_si256,
        _mm256_movemask_ps, _mm256_or_si256, _mm256_set1_epi32, _mm256_srai_epi32,
        _mm256_storeu_si256, _mm_add_epi32, _mm_and_si128, _mm_andnot_si128, _mm_castsi128_ps,
        _mm_cmpeq_epi32, _mm_cvtsi128_si32, _mm_loadu_si128, _mm_movemask_ps, _mm_or_si128,
        _mm_set1_epi32, _mm_shuffle_epi32, _mm_shuffle_epi8, _mm_slli_si128, _mm_srai_epi32,
        _mm_storeu_si128,
    };

    /// Rotate-left-by-k lane orders for `_mm_shuffle_epi32` (result lane
    /// `i` takes source lane `(i + k) & 3`): lane selectors [1,2,3,0],
    /// [2,3,0,1] and [3,0,1,2] packed 2 bits each.
    const ROT1: i32 = 0x39;
    const ROT2: i32 = 0x4E;
    const ROT3: i32 = 0x93;

    /// SSE2 block-wise merge intersection. Compares every candidate in a
    /// 4-id block against every posting in a 4-id block (4 rotations ×
    /// 4 lanes = all 16 pairs), masking tombstoned postings via their
    /// sign bit, then advances whichever block's last id is smaller —
    /// the classic cyclic-shift merge. Ids are unique per side, so each
    /// candidate matches at most once and output order stays ascending.
    ///
    /// SAFETY contract (upheld by the `merge_into` wrapper): SSE2 must
    /// be available, which is guaranteed on every x86-64 CPU. All
    /// pointer arithmetic stays in bounds: vector loads read lanes
    /// `i..i + 4` / `j..j + 4` only while `i + 4 <= cands.len()` and
    /// `j + 4 <= postings.len()`.
    // analyze:allow(unsafe-code): sse2 intrinsics on bounds-checked 4-id blocks; sse2 is the x86-64 baseline
    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn merge_sse2(cands: &[u32], postings: &[u32], out: &mut Vec<u32>) {
        // analyze:allow(unguarded-cast): !TOMBSTONE = 0x7fff_ffff, bit-identical as i32
        let raw_mask = _mm_set1_epi32(!TOMBSTONE as i32);
        let (mut i, mut j) = (0usize, 0usize);
        let (na, nb) = (cands.len(), postings.len());
        while i + 4 <= na && j + 4 <= nb {
            let va = _mm_loadu_si128(cands.as_ptr().add(i).cast::<__m128i>());
            let vb_stored = _mm_loadu_si128(postings.as_ptr().add(j).cast::<__m128i>());
            let vb = _mm_and_si128(vb_stored, raw_mask);
            // Tombstone bit is the sign bit: arithmetic shift smears it
            // into an all-ones lane mask for deleted postings.
            let dead = _mm_srai_epi32(vb_stored, 31);
            let mut hit = _mm_andnot_si128(dead, _mm_cmpeq_epi32(va, vb));
            let b1 = _mm_shuffle_epi32::<ROT1>(vb);
            let d1 = _mm_shuffle_epi32::<ROT1>(dead);
            hit = _mm_or_si128(hit, _mm_andnot_si128(d1, _mm_cmpeq_epi32(va, b1)));
            let b2 = _mm_shuffle_epi32::<ROT2>(vb);
            let d2 = _mm_shuffle_epi32::<ROT2>(dead);
            hit = _mm_or_si128(hit, _mm_andnot_si128(d2, _mm_cmpeq_epi32(va, b2)));
            let b3 = _mm_shuffle_epi32::<ROT3>(vb);
            let d3 = _mm_shuffle_epi32::<ROT3>(dead);
            hit = _mm_or_si128(hit, _mm_andnot_si128(d3, _mm_cmpeq_epi32(va, b3)));
            // analyze:allow(unguarded-cast): movemask_ps yields 4 low bits
            let mut m = _mm_movemask_ps(_mm_castsi128_ps(hit)) as u32;
            while m != 0 {
                out.push(cands[i + m.trailing_zeros() as usize]);
                m &= m - 1;
            }
            let a_last = cands[i + 3];
            let b_last = raw(postings[j + 3]);
            // Advance the block(s) whose last id cannot match anything
            // further: both on a tie.
            if a_last <= b_last {
                i += 4;
            }
            if b_last <= a_last {
                j += 4;
            }
        }
        crate::kernels::intersect_merge_into(&cands[i..], &postings[j..], out);
    }

    /// AVX2 galloping intersection: per candidate, an exponential search
    /// over 8-id blocks (comparing only each block's last raw id),
    /// narrowed by binary search to one block, which a single 8-lane
    /// compare resolves — equality, liveness, and the next start
    /// position all come out of three movemasks.
    ///
    /// SAFETY contract (upheld by the `gallop_into` wrapper): AVX2 must
    /// be available (runtime-detected). The vector load reads lanes
    /// `l..l + 8` only when `l + 8 <= postings.len()`.
    // analyze:allow(unsafe-code): avx2 intrinsics on bounds-checked 8-id blocks, avx2 runtime-detected by the caller
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn gallop_avx2(cands: &[u32], postings: &[u32], out: &mut Vec<u32>) {
        let n = postings.len();
        // analyze:allow(unguarded-cast): !TOMBSTONE = 0x7fff_ffff, bit-identical as i32
        let raw_mask = _mm256_set1_epi32(!TOMBSTONE as i32);
        let mut lo = 0usize;
        for &c in cands {
            if lo >= n {
                break;
            }
            // Exponential search on block-last ids: find a window
            // [lo, hi) whose last block can hold the first raw id >= c.
            let mut step = 8usize;
            let mut hi = lo + 8;
            while hi <= n && raw(postings[hi - 1]) < c {
                lo = hi;
                hi = lo + step;
                step <<= 1;
            }
            hi = hi.min(n);
            if lo >= hi {
                break;
            }
            // Binary search down to one 8-id block. Invariant: the first
            // posting with raw id >= c (if any) has index in [lo, hi].
            while hi - lo > 8 {
                let mid = lo + (hi - lo) / 2;
                if raw(postings[mid]) < c {
                    lo = mid + 1;
                } else {
                    hi = mid + 1;
                }
            }
            if lo + 8 <= n {
                let stored = _mm256_loadu_si256(postings.as_ptr().add(lo).cast::<__m256i>());
                let vb = _mm256_and_si256(stored, raw_mask);
                let dead = _mm256_srai_epi32(stored, 31);
                // analyze:allow(unguarded-cast): broadcasting a raw id < 2^31, bit-identical as i32
                let vc = _mm256_set1_epi32(c as i32);
                let eq = _mm256_cmpeq_epi32(vb, vc);
                // Raw ids fit in 31 bits, so signed compare is exact.
                let ge = _mm256_or_si256(eq, _mm256_cmpgt_epi32(vb, vc));
                // analyze:allow(unguarded-cast): movemask_ps yields 8 low bits
                let ge_m = _mm256_movemask_ps(_mm256_castsi256_ps(ge)) as u32;
                if ge_m == 0 {
                    // Whole block < c; resume after it.
                    lo += 8;
                    continue;
                }
                let k = ge_m.trailing_zeros() as usize;
                // analyze:allow(unguarded-cast): movemask_ps yields 8 low bits
                let eq_m = _mm256_movemask_ps(_mm256_castsi256_ps(eq)) as u32;
                // analyze:allow(unguarded-cast): movemask_ps yields 8 low bits
                let live_m = !(_mm256_movemask_ps(_mm256_castsi256_ps(dead)) as u32);
                if (eq_m >> k) & 1 == 1 {
                    if (live_m >> k) & 1 == 1 {
                        out.push(c);
                    }
                    lo += k + 1;
                } else {
                    lo += k;
                }
            } else {
                // Fewer than 8 postings left: scalar resolve.
                let idx = lo + postings[lo..n].partition_point(|&p| raw(p) < c);
                if idx < n && raw(postings[idx]) == c {
                    if live(postings[idx]) {
                        out.push(c);
                    }
                    lo = idx + 1;
                } else {
                    lo = idx;
                }
            }
        }
    }

    /// AVX2 fused AND-ANDNOT-popcount over u64 words (see
    /// `super::and_words`). All three slices have equal length.
    ///
    /// SAFETY contract (upheld by the `and_words` wrapper): AVX2 must be
    /// available (runtime-detected). Vector loads/stores touch lanes
    /// `k..k + 4` only while `k + 4 <= len`; `dst` is `&mut` so it
    /// cannot alias the shared inputs.
    // analyze:allow(unsafe-code): avx2 intrinsics on bounds-checked 4-word lanes, avx2 runtime-detected by the caller
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn and_words_avx2(dst: &mut [u64], present: &[u64], deleted: &[u64]) -> u64 {
        let n = dst.len();
        debug_assert!(present.len() == n && deleted.len() == n);
        let mut count = 0u64;
        let mut k = 0usize;
        while k + 4 <= n {
            let d = _mm256_loadu_si256(dst.as_ptr().add(k).cast::<__m256i>());
            let p = _mm256_loadu_si256(present.as_ptr().add(k).cast::<__m256i>());
            let t = _mm256_loadu_si256(deleted.as_ptr().add(k).cast::<__m256i>());
            let v = _mm256_andnot_si256(t, _mm256_and_si256(d, p));
            _mm256_storeu_si256(dst.as_mut_ptr().add(k).cast::<__m256i>(), v);
            count += u64::from((_mm256_extract_epi64::<0>(v) as u64).count_ones());
            count += u64::from((_mm256_extract_epi64::<1>(v) as u64).count_ones());
            count += u64::from((_mm256_extract_epi64::<2>(v) as u64).count_ones());
            count += u64::from((_mm256_extract_epi64::<3>(v) as u64).count_ones());
            k += 4;
        }
        while k < n {
            let v = dst[k] & present[k] & !deleted[k];
            dst[k] = v;
            count += u64::from(v.count_ones());
            k += 1;
        }
        count
    }

    /// SSSE3 stream-vbyte decode (see `super::svb_decode_into`): one
    /// `pshufb` per control byte expands 4 packed deltas to u32 lanes,
    /// an in-register shift-add pair turns them into a prefix sum, and
    /// the running base rides in lane 3 between groups. Falls back to
    /// the scalar tail when fewer than 4 values remain or a full
    /// 16-byte data load would run out of bounds.
    ///
    /// SAFETY contract (upheld by the `svb_decode_into` wrapper): SSSE3
    /// must be available (runtime-detected). The 16-byte data load at
    /// `pos` only happens while `pos + 16 <= data.len()`, and the store
    /// writes `out[k..k + 4]` only while `k + 4 <= out.len()`.
    // analyze:allow(unsafe-code): ssse3 intrinsics; every 16-byte load and 4-lane store is bounds-checked in the loop condition
    #[target_feature(enable = "ssse3")]
    pub(super) unsafe fn svb_decode_ssse3(
        first: u32,
        ctrl: &[u8],
        data: &[u8],
        out: &mut [u32],
    ) -> (usize, usize) {
        let n = out.len();
        out[0] = first;
        // analyze:allow(unguarded-cast): id < 2^31 broadcast, bit-identical as i32
        let mut base = _mm_set1_epi32(first as i32);
        let (mut k, mut ci, mut pos) = (1usize, 0usize, 0usize);
        while k + 4 <= n && ci < ctrl.len() && pos + 16 <= data.len() {
            let c = ctrl[ci] as usize;
            let shuf = _mm_loadu_si128(SVB_TABLES.shuffle[c].as_ptr().cast::<__m128i>());
            let packed = _mm_loadu_si128(data.as_ptr().add(pos).cast::<__m128i>());
            let deltas = _mm_shuffle_epi8(packed, shuf);
            // In-register prefix sum of the 4 deltas.
            let s1 = _mm_add_epi32(deltas, _mm_slli_si128::<4>(deltas));
            let s2 = _mm_add_epi32(s1, _mm_slli_si128::<8>(s1));
            let ids = _mm_add_epi32(s2, base);
            _mm_storeu_si128(out.as_mut_ptr().add(k).cast::<__m128i>(), ids);
            // Splat lane 3 (the last id) as the next group's base.
            base = _mm_shuffle_epi32::<0xFF>(ids);
            ci += 1;
            pos += SVB_TABLES.len[c] as usize;
            k += 4;
        }
        // analyze:allow(unguarded-cast): lane 3 of a u32-id vector, bit-identical as u32
        let running = _mm_cvtsi128_si32(base) as u32;
        svb_decode_tail(k, ci, pos, running, ctrl, data, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::TOMBSTONE;

    #[test]
    fn level_is_stable_and_at_least_scalar() {
        assert_eq!(level(), level());
        assert!(level() >= SimdLevel::Scalar);
    }

    #[test]
    fn merge_matches_scalar_on_blocky_input() {
        let cands: Vec<u32> = (0..256).map(|i| i * 2).collect();
        let postings: Vec<u32> = (0..256)
            .map(|i| {
                if i % 7 == 0 {
                    (i * 3) | TOMBSTONE
                } else {
                    i * 3
                }
            })
            .collect();
        let mut want = Vec::new();
        kernels::intersect_merge_into(&cands, &postings, &mut want);
        let mut got = Vec::new();
        merge_into_forced(&cands, &postings, &mut got);
        assert_eq!(got, want);
    }

    #[test]
    fn gallop_matches_scalar_on_skewed_input() {
        let postings: Vec<u32> = (0..4096)
            .map(|i| {
                if i % 5 == 0 {
                    (i * 2) | TOMBSTONE
                } else {
                    i * 2
                }
            })
            .collect();
        let cands: Vec<u32> = (0..64).map(|i| i * 131).collect();
        let mut want = Vec::new();
        kernels::intersect_gallop_into(&cands, &postings, &mut want);
        let mut got = Vec::new();
        gallop_into_forced(&cands, &postings, &mut got);
        assert_eq!(got, want);
    }

    #[test]
    fn and_words_matches_scalar() {
        let present: Vec<u64> = (0..33)
            .map(|i| 0x9e37_79b9_7f4a_7c15u64.rotate_left(i))
            .collect();
        let deleted: Vec<u64> = (0..33)
            .map(|i| 0x0123_4567_89ab_cdefu64.rotate_right(i))
            .collect();
        let mut dst: Vec<u64> = (0..33).map(|i| u64::MAX >> (i % 17)).collect();
        let mut want = dst.clone();
        let mut want_count = 0u64;
        for ((w, &p), &t) in want.iter_mut().zip(&present).zip(&deleted) {
            *w &= p & !t;
            want_count += u64::from(w.count_ones());
        }
        let got_count = and_words(&mut dst, &present, &deleted);
        assert_eq!(dst, want);
        assert_eq!(got_count, want_count);
    }

    #[test]
    fn svb_round_trip_with_and_without_pad() {
        let ids: Vec<u32> = (0..321u32)
            .scan(7u32, |acc, i| {
                *acc += 1 + i.wrapping_mul(2654435761u32.wrapping_mul(i)) % 1000;
                Some(*acc)
            })
            .collect();
        let mut ctrl = Vec::new();
        let mut data = Vec::new();
        // Inline encoder mirroring crate::compress::svb_encode_deltas.
        for chunk in ids
            .windows(2)
            .map(|w| w[1] - w[0])
            .collect::<Vec<_>>()
            .chunks(4)
        {
            let mut c = 0u8;
            for (lane, &v) in chunk.iter().enumerate() {
                let nbytes = (4 - (v.leading_zeros() / 8).min(3)) as usize;
                c |= ((nbytes - 1) as u8) << (2 * lane);
                data.extend_from_slice(&v.to_le_bytes()[..nbytes]);
            }
            ctrl.push(c);
        }
        for pad in [0usize, 16] {
            let mut padded = data.clone();
            padded.resize(data.len() + pad, 0);
            let mut out = vec![0u32; ids.len()];
            let (ci, pos) = svb_decode_into(ids[0], &ctrl, &padded, &mut out);
            assert_eq!(out, ids);
            assert_eq!(ci, ctrl.len());
            assert_eq!(pos, data.len());
        }
    }
}
