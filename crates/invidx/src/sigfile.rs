//! Signature files — the competing IR index family of Section 6.1.
//!
//! Every element hashes to a fixed number of bits in a `W`-bit word;
//! superimposing (OR-ing) the codes of an object's elements yields the
//! *object signature*. A containment query ORs its elements' codes and
//! scans all signatures: objects whose signature does not cover the query
//! signature are filtered out cheaply; survivors are verified against
//! their actual descriptions (superimposition causes false positives).
//!
//! The temporal-IR paper builds exclusively on inverted files because
//! surveys showed signature files lose on containment search; the
//! `temporal_ir` criterion bench `sigfile_vs_inverted` lets you watch
//! that happen.

use crate::kernels::live;

/// Number of 64-bit words per signature.
const SIG_WORDS: usize = 2;
/// Bits set per element.
const BITS_PER_ELEM: usize = 3;

/// A superimposed-coding signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Signature([u64; SIG_WORDS]);

impl Signature {
    /// The code of a single element.
    pub fn of_element(e: u32) -> Self {
        let mut sig = [0u64; SIG_WORDS];
        // Three independent multiplicative hashes pick the bits.
        let mut h = e as u64 ^ 0x9E37_79B9_7F4A_7C15;
        for _ in 0..BITS_PER_ELEM {
            h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9) ^ (h >> 31);
            let bit = (h % (SIG_WORDS as u64 * 64)) as usize;
            sig[bit / 64] |= 1u64 << (bit % 64);
        }
        Signature(sig)
    }

    /// The superimposed code of an element set.
    pub fn of_description(desc: &[u32]) -> Self {
        let mut sig = Signature::default();
        for &e in desc {
            sig.or_assign(Signature::of_element(e));
        }
        sig
    }

    /// `self |= other`.
    pub fn or_assign(&mut self, other: Signature) {
        for (a, b) in self.0.iter_mut().zip(other.0) {
            *a |= b;
        }
    }

    /// True if this signature covers every bit of `query` — the cheap
    /// filter (necessary, not sufficient, for containment).
    #[inline]
    pub fn covers(&self, query: &Signature) -> bool {
        self.0.iter().zip(&query.0).all(|(a, b)| a & b == *b)
    }
}

/// A sequential signature file over `(object id, description)` pairs.
#[derive(Debug, Clone, Default)]
pub struct SignatureFile {
    ids: Vec<u32>,
    sigs: Vec<Signature>,
    descs: Vec<Vec<u32>>,
}

impl SignatureFile {
    /// Builds from objects; descriptions must be sorted sets.
    pub fn build<'a>(objects: impl IntoIterator<Item = (u32, &'a [u32])>) -> Self {
        let mut sf = SignatureFile::default();
        for (id, desc) in objects {
            sf.insert(id, desc);
        }
        sf
    }

    /// Adds one object.
    pub fn insert(&mut self, id: u32, desc: &[u32]) {
        debug_assert!(desc.windows(2).all(|w| w[0] < w[1]), "sorted set expected");
        self.ids.push(id);
        self.sigs.push(Signature::of_description(desc));
        self.descs.push(desc.to_vec());
    }

    /// All object ids whose description contains every query element
    /// (exact: survivors of the signature filter are verified).
    pub fn containment_query(&self, query: &[u32]) -> Vec<u32> {
        if query.is_empty() {
            return Vec::new();
        }
        let mut q = query.to_vec();
        q.sort_unstable();
        q.dedup();
        let q_sig = Signature::of_description(&q);
        let mut out = Vec::new();
        for i in 0..self.ids.len() {
            if live(self.ids[i]) && self.sigs[i].covers(&q_sig) && contains_all(&self.descs[i], &q)
            {
                out.push(self.ids[i]);
            }
        }
        out
    }

    /// Signature-filter drop rate for a query: fraction of objects
    /// eliminated without touching their descriptions (diagnostics).
    pub fn filter_rate(&self, query: &[u32]) -> f64 {
        if self.ids.is_empty() {
            return 0.0;
        }
        let q_sig = Signature::of_description(query);
        let passed = self.sigs.iter().filter(|s| s.covers(&q_sig)).count();
        1.0 - passed as f64 / self.ids.len() as f64
    }

    /// Number of stored objects.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Approximate heap footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.ids.capacity() * 4
            + self.sigs.capacity() * std::mem::size_of::<Signature>()
            + self
                .descs
                .iter()
                .map(|d| d.capacity() * 4 + std::mem::size_of::<Vec<u32>>())
                .sum::<usize>()
    }
}

fn contains_all(desc: &[u32], query: &[u32]) -> bool {
    let mut it = desc.iter();
    'outer: for &q in query {
        for &d in it.by_ref() {
            if d == q {
                continue 'outer;
            }
            if d > q {
                return false;
            }
        }
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plain::InvertedIndex;

    fn objects() -> Vec<(u32, Vec<u32>)> {
        (0..400u32)
            .map(|i| {
                let mut d = vec![i % 11, 11 + i % 7, 18 + i % 5];
                d.sort_unstable();
                d.dedup();
                (i, d)
            })
            .collect()
    }

    #[test]
    fn matches_inverted_index() {
        let objs = objects();
        let sf = SignatureFile::build(objs.iter().map(|(id, d)| (*id, d.as_slice())));
        let inv = InvertedIndex::build(objs.iter().map(|(id, d)| (*id, d.as_slice())));
        for q in [vec![0u32], vec![0, 11], vec![3, 12, 20], vec![99], vec![]] {
            assert_eq!(
                sf.containment_query(&q),
                inv.containment_query(&q),
                "q={q:?}"
            );
        }
    }

    #[test]
    fn covers_is_necessary_for_containment() {
        let desc = vec![1u32, 5, 9];
        let obj_sig = Signature::of_description(&desc);
        for sub in [vec![1u32], vec![5, 9], vec![1, 5, 9]] {
            assert!(obj_sig.covers(&Signature::of_description(&sub)));
        }
    }

    #[test]
    fn filter_actually_filters() {
        let objs = objects();
        let sf = SignatureFile::build(objs.iter().map(|(id, d)| (*id, d.as_slice())));
        // A query for elements no object combines should drop most rows
        // before verification.
        let rate = sf.filter_rate(&[0, 12, 21]);
        assert!(rate > 0.3, "filter rate {rate}");
    }

    #[test]
    fn duplicate_query_elements_are_fine() {
        let objs = objects();
        let sf = SignatureFile::build(objs.iter().map(|(id, d)| (*id, d.as_slice())));
        assert_eq!(sf.containment_query(&[0, 0, 0]), sf.containment_query(&[0]));
    }
}
