//! Sorted-set intersection kernels for id-sorted postings.
//!
//! All kernels operate on `u32` id slices sorted ascending by their *raw*
//! id (tombstone bit masked out). The candidate side is always clean
//! (query-time sets never contain tombstones); the postings side may
//! contain logically deleted entries, which are skipped.

/// Tombstone marker shared with the interval indexes: deleted postings
/// have this bit set.
pub const TOMBSTONE: u32 = 1 << 31;

/// True if the stored id is live (not tombstoned).
#[inline]
pub fn live(id: u32) -> bool {
    id & TOMBSTONE == 0
}

/// The id with the tombstone bit masked out.
#[inline]
pub fn raw(id: u32) -> u32 {
    id & !TOMBSTONE
}

/// Debug helper: checks that a slice is sorted ascending by raw id.
pub fn is_sorted_by_raw(ids: &[u32]) -> bool {
    ids.windows(2).all(|w| raw(w[0]) <= raw(w[1]))
}

/// Shared O(n) sortedness precondition for every kernel, compiled out in
/// release builds: `debug_assert_sorted!(xs)` for clean candidate sets,
/// `debug_assert_sorted!(xs, raw)` for postings sorted by raw id
/// (tombstone bit ignored).
#[macro_export]
macro_rules! debug_assert_sorted {
    ($ids:expr) => {
        debug_assert!(
            $ids.windows(2).all(|w| w[0] <= w[1]),
            "candidate slice not sorted ascending"
        )
    };
    ($ids:expr, raw) => {
        debug_assert!(
            $crate::kernels::is_sorted_by_raw($ids),
            "postings slice not sorted by raw id"
        )
    };
}

/// Classic merge (zipper) intersection: appends every candidate that has a
/// live posting to `out`. Linear in `cands.len() + postings.len()`.
#[inline]
pub fn intersect_merge_into(cands: &[u32], postings: &[u32], out: &mut Vec<u32>) {
    debug_assert_sorted!(cands);
    debug_assert_sorted!(postings, raw);
    let (mut i, mut j) = (0, 0);
    while i < cands.len() && j < postings.len() {
        let c = cands[i];
        let p = raw(postings[j]);
        match c.cmp(&p) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                if live(postings[j]) {
                    out.push(c);
                }
                i += 1;
                j += 1;
            }
        }
    }
}

/// Galloping (exponential-search) intersection, efficient when `cands` is
/// much smaller than `postings`: `O(|cands| * log |postings|)`.
#[inline]
pub fn intersect_gallop_into(cands: &[u32], postings: &[u32], out: &mut Vec<u32>) {
    debug_assert_sorted!(cands);
    debug_assert_sorted!(postings, raw);
    let mut lo = 0usize;
    for &c in cands {
        // Gallop to find the first posting with raw id >= c.
        let mut step = 1usize;
        let mut hi = lo;
        while hi < postings.len() && raw(postings[hi]) < c {
            lo = hi + 1;
            hi = lo + step;
            step <<= 1;
        }
        let hi = hi.min(postings.len());
        let idx = lo + postings[lo..hi].partition_point(|&p| raw(p) < c);
        if idx < postings.len() && raw(postings[idx]) == c {
            if live(postings[idx]) {
                out.push(c);
            }
            lo = idx + 1;
        } else {
            lo = idx;
        }
        if lo >= postings.len() {
            break;
        }
    }
}

/// Reversed gallop for the opposite skew — postings much smaller than
/// the candidate set: iterates the postings (skipping tombstones) and
/// gallops through `cands`. `O(|postings| * log |cands|)` where a merge
/// would scan `|cands| + |postings|`; at a 40:1 cands:postings ratio
/// that is ~3x less work.
#[inline]
pub fn intersect_gallop_rev_into(cands: &[u32], postings: &[u32], out: &mut Vec<u32>) {
    debug_assert_sorted!(cands);
    debug_assert_sorted!(postings, raw);
    let mut lo = 0usize;
    for &p in postings {
        if !live(p) {
            continue;
        }
        let c = raw(p);
        // Gallop to find the first candidate >= c.
        let mut step = 1usize;
        let mut hi = lo;
        while hi < cands.len() && cands[hi] < c {
            lo = hi + 1;
            hi = lo + step;
            step <<= 1;
        }
        let hi = hi.min(cands.len());
        let idx = lo + cands[lo..hi].partition_point(|&x| x < c);
        if idx < cands.len() && cands[idx] == c {
            out.push(c);
            lo = idx + 1;
        } else {
            lo = idx;
        }
        if lo >= cands.len() {
            break;
        }
    }
}

/// Ratio above which [`intersect_adaptive_into`] switches from merging to
/// galloping. Retuned 16 → 8 on the vectorized-kernel density grid: the
/// 8-lane gallop probe already beats both merge forms at an 8:1
/// postings:cands ratio ((1‰,8‰): 8.0µs vs 10.8µs scalar merge; (8‰,64‰):
/// 106µs vs 133µs vector merge) and ties at 4:1, where the old scalar
/// crossover sat near 16:1 (BENCH_kernels.json).
pub const GALLOP_RATIO: usize = 8;

/// Picks merge or gallop (either direction) based on the size ratio of
/// the inputs.
#[inline]
pub fn intersect_adaptive_into(cands: &[u32], postings: &[u32], out: &mut Vec<u32>) {
    if cands.len().saturating_mul(GALLOP_RATIO) < postings.len() {
        intersect_gallop_into(cands, postings, out);
    } else if postings.len().saturating_mul(GALLOP_RATIO) < cands.len() {
        intersect_gallop_rev_into(cands, postings, out);
    } else {
        intersect_merge_into(cands, postings, out);
    }
}

/// Binary-search membership test in a clean sorted candidate set — the
/// per-object probe of Algorithm 3.
#[inline]
pub fn contains_sorted(cands: &[u32], id: u32) -> bool {
    cands.binary_search(&id).is_ok()
}

/// Marks `hits[i] = true` for every candidate `cands[i]` that has a live
/// posting. Used when a candidate may occur in several postings runs (e.g.
/// replicated slice sub-lists) and must still be emitted once.
#[inline]
pub fn mark_hits(cands: &[u32], postings: &[u32], hits: &mut [bool]) {
    debug_assert_eq!(cands.len(), hits.len());
    debug_assert_sorted!(cands);
    debug_assert_sorted!(postings, raw);
    let (mut i, mut j) = (0, 0);
    while i < cands.len() && j < postings.len() {
        let c = cands[i];
        let p = raw(postings[j]);
        match c.cmp(&p) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                if live(postings[j]) {
                    hits[i] = true;
                }
                i += 1;
                j += 1;
            }
        }
    }
}

/// Galloping variant of [`mark_hits`] for candidate sets much smaller
/// than the postings run: per candidate, an exponential search through
/// `postings` replaces the zipper's element-by-element scan —
/// `O(|cands| * log |postings|)` against `O(|cands| + |postings|)`. On
/// the slicing benchmark this is the dominant mark shape (slice
/// sub-lists run to tens of thousands of ids against a few hundred
/// surviving candidates).
#[inline]
pub fn mark_hits_gallop(cands: &[u32], postings: &[u32], hits: &mut [bool]) {
    debug_assert_eq!(cands.len(), hits.len());
    debug_assert_sorted!(cands);
    debug_assert_sorted!(postings, raw);
    let mut lo = 0usize;
    for (i, &c) in cands.iter().enumerate() {
        let mut step = 1usize;
        let mut hi = lo;
        while hi < postings.len() && raw(postings[hi]) < c {
            lo = hi + 1;
            hi = lo + step;
            step <<= 1;
        }
        let hi = hi.min(postings.len());
        let idx = lo + postings[lo..hi].partition_point(|&p| raw(p) < c);
        if idx < postings.len() && raw(postings[idx]) == c {
            if live(postings[idx]) {
                hits[i] = true;
            }
            lo = idx + 1;
        } else {
            lo = idx;
        }
        if lo >= postings.len() {
            break;
        }
    }
}

/// Reversed-gallop variant of [`mark_hits`] for postings much smaller
/// than the candidate set: iterates the live postings and gallops
/// through `cands`, marking matches by index —
/// `O(|postings| * log |cands|)` against the merge's full
/// `O(|cands| + |postings|)` scan. Same marking semantics: per call,
/// the first occurrence of each matching candidate value is marked per
/// matching posting.
#[inline]
pub fn mark_hits_gallop_rev(cands: &[u32], postings: &[u32], hits: &mut [bool]) {
    debug_assert_eq!(cands.len(), hits.len());
    debug_assert_sorted!(cands);
    debug_assert_sorted!(postings, raw);
    let mut lo = 0usize;
    for &p in postings {
        if !live(p) {
            continue;
        }
        let c = raw(p);
        let mut step = 1usize;
        let mut hi = lo;
        while hi < cands.len() && cands[hi] < c {
            lo = hi + 1;
            hi = lo + step;
            step <<= 1;
        }
        let hi = hi.min(cands.len());
        let idx = lo + cands[lo..hi].partition_point(|&x| x < c);
        if idx < cands.len() && cands[idx] == c {
            hits[idx] = true;
            lo = idx + 1;
        } else {
            lo = idx;
        }
        if lo >= cands.len() {
            break;
        }
    }
}

/// Merges many sorted id runs into one sorted, deduplicated vector.
/// Tombstoned entries are dropped.
pub fn kway_merge_dedup(runs: &[&[u32]]) -> Vec<u32> {
    let total: usize = runs.iter().map(|r| r.len()).sum();
    let mut all = Vec::with_capacity(total);
    for run in runs {
        all.extend(run.iter().copied().filter(|&id| live(id)));
    }
    all.sort_unstable();
    all.dedup();
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_all(cands: &[u32], postings: &[u32], want: &[u32]) {
        for f in [
            intersect_merge_into as fn(&[u32], &[u32], &mut Vec<u32>),
            intersect_gallop_into,
            intersect_gallop_rev_into,
            intersect_adaptive_into,
        ] {
            let mut out = Vec::new();
            f(cands, postings, &mut out);
            assert_eq!(out, want);
        }
    }

    #[test]
    fn basic_intersection() {
        check_all(&[1, 3, 5, 7], &[2, 3, 4, 7, 9], &[3, 7]);
        check_all(&[], &[1, 2], &[]);
        check_all(&[1, 2], &[], &[]);
        check_all(&[5], &[5], &[5]);
    }

    #[test]
    fn skips_tombstones() {
        let postings = [1, 2 | TOMBSTONE, 3, 7 | TOMBSTONE];
        check_all(&[1, 2, 3, 7], &postings, &[1, 3]);
    }

    #[test]
    fn reversed_gallop_handles_large_candidate_sets() {
        let cands: Vec<u32> = (0..10_000).map(|i| i * 3).collect();
        let postings = [0u32, 2999 * 3, (5000 * 3) | TOMBSTONE, 9999 * 3, 30_001];
        let mut out = Vec::new();
        intersect_gallop_rev_into(&cands, &postings, &mut out);
        assert_eq!(out, vec![0, 2999 * 3, 9999 * 3]);
        // The adaptive dispatch picks it at this skew and must agree.
        let mut adaptive = Vec::new();
        intersect_adaptive_into(&cands, &postings, &mut adaptive);
        assert_eq!(adaptive, out);
    }

    #[test]
    fn gallop_handles_large_gaps() {
        let postings: Vec<u32> = (0..10_000).map(|i| i * 3).collect();
        let cands = [0u32, 2999 * 3, 9999 * 3, 30_001];
        let mut out = Vec::new();
        intersect_gallop_into(&cands, &postings, &mut out);
        assert_eq!(out, vec![0, 2999 * 3, 9999 * 3]);
    }

    #[test]
    fn kway_merge_dedups_and_drops_dead() {
        let a = [1u32, 4, 9];
        let b = [2u32, 4 | TOMBSTONE, 9];
        let got = kway_merge_dedup(&[&a, &b]);
        assert_eq!(got, vec![1, 2, 4, 9]);
    }

    #[test]
    fn contains_sorted_works() {
        assert!(contains_sorted(&[1, 5, 9], 5));
        assert!(!contains_sorted(&[1, 5, 9], 4));
        assert!(!contains_sorted(&[], 4));
    }
}
