//! A corpus-level inverted index for classic (non-temporal) containment
//! search, used as a building block and as the degenerate 100%-extent
//! baseline in the evaluation.

use crate::kernels::{live, raw, TOMBSTONE};
use crate::planner::intersect_ids_into;
use std::collections::HashMap;

/// Inverted index over a corpus: element id → id-sorted postings list.
///
/// Containment queries (`q.d ⊆ o.d`) are answered by intersecting the
/// postings of all query elements, cheapest list first.
#[derive(Debug, Clone, Default)]
pub struct InvertedIndex {
    lists: HashMap<u32, Vec<u32>>,
    num_objects: usize,
}

impl InvertedIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds from `(object id, description)` pairs. Descriptions must be
    /// duplicate-free per object; object ids must be unique and ascending
    /// insertion keeps postings sorted for free.
    pub fn build<'a>(objects: impl IntoIterator<Item = (u32, &'a [u32])>) -> Self {
        let mut idx = Self::new();
        for (id, desc) in objects {
            idx.insert(id, desc);
        }
        idx
    }

    /// Adds one object.
    pub fn insert(&mut self, id: u32, desc: &[u32]) {
        for &e in desc {
            let list = self.lists.entry(e).or_default();
            match list.last() {
                Some(&last) if raw(last) > id => {
                    let pos = list.partition_point(|&x| raw(x) <= id);
                    list.insert(pos, id);
                }
                _ => list.push(id),
            }
        }
        self.num_objects += 1;
    }

    /// Tombstones one object. Returns true if any posting was marked.
    pub fn delete(&mut self, id: u32, desc: &[u32]) -> bool {
        let mut any = false;
        for &e in desc {
            if let Some(list) = self.lists.get_mut(&e) {
                if let Ok(p) = list.binary_search_by_key(&id, |&x| raw(x)) {
                    if live(list[p]) {
                        list[p] |= TOMBSTONE;
                        any = true;
                    }
                }
            }
        }
        if any {
            self.num_objects -= 1;
        }
        any
    }

    /// The postings of one element (empty if unknown).
    pub fn postings(&self, elem: u32) -> &[u32] {
        self.lists.get(&elem).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Document frequency (live-agnostic: counts stored postings).
    pub fn freq(&self, elem: u32) -> usize {
        self.postings(elem).len()
    }

    /// All object ids containing every element of `query`, ascending.
    /// An empty `query` returns an empty result (matching the paper's
    /// queries, which always carry at least one element).
    pub fn containment_query(&self, query: &[u32]) -> Vec<u32> {
        let ordered = order_by_freq(self, query);
        let Some((&first, rest)) = ordered.split_first() else {
            return Vec::new();
        };
        let mut cands: Vec<u32> = self
            .postings(first)
            .iter()
            .copied()
            .filter(|&id| live(id))
            .collect();
        let mut next = Vec::new();
        for &e in rest {
            next.clear();
            intersect_ids_into(&cands, self.postings(e), &mut next);
            std::mem::swap(&mut cands, &mut next);
            if cands.is_empty() {
                break;
            }
        }
        cands
    }

    /// Number of live objects.
    pub fn len(&self) -> usize {
        self.num_objects
    }

    /// True if the index holds no object.
    pub fn is_empty(&self) -> bool {
        self.num_objects == 0
    }

    /// Approximate heap footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.lists
            .values()
            .map(|l| l.capacity() * 4 + std::mem::size_of::<Vec<u32>>() + 16)
            .sum()
    }

    /// Calls `f(element, postings)` for every stored list, in
    /// unspecified element order (introspection for validators).
    pub fn for_each_list(&self, mut f: impl FnMut(u32, &[u32])) {
        for (&e, list) in &self.lists {
            f(e, list);
        }
    }
}

/// Returns the query elements ordered by ascending document frequency —
/// the standard processing order that keeps intermediate results small.
fn order_by_freq(idx: &InvertedIndex, query: &[u32]) -> Vec<u32> {
    let mut q = query.to_vec();
    q.sort_unstable_by_key(|&e| idx.freq(e));
    q.dedup();
    q
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> InvertedIndex {
        // Objects from the paper's running example (a=0, b=1, c=2).
        let descs: Vec<(u32, Vec<u32>)> = vec![
            (1, vec![0, 1, 2]),
            (2, vec![0, 2]),
            (3, vec![1]),
            (4, vec![0, 1, 2]),
            (5, vec![1, 2]),
            (6, vec![2]),
            (7, vec![0, 2]),
            (8, vec![2]),
        ];
        InvertedIndex::build(descs.iter().map(|(id, d)| (*id, d.as_slice())))
    }

    #[test]
    fn running_example_containment() {
        let idx = sample();
        assert_eq!(idx.containment_query(&[0, 2]), vec![1, 2, 4, 7]);
        assert_eq!(idx.containment_query(&[1]), vec![1, 3, 4, 5]);
        assert_eq!(idx.containment_query(&[0, 1, 2]), vec![1, 4]);
        assert_eq!(idx.containment_query(&[]), Vec::<u32>::new());
    }

    #[test]
    fn unknown_element_gives_empty() {
        let idx = sample();
        assert!(idx.containment_query(&[99]).is_empty());
        assert!(idx.containment_query(&[0, 99]).is_empty());
    }

    #[test]
    fn delete_hides_object() {
        let mut idx = sample();
        assert!(idx.delete(4, &[0, 1, 2]));
        assert!(!idx.delete(4, &[0, 1, 2]));
        assert_eq!(idx.containment_query(&[0, 2]), vec![1, 2, 7]);
        assert_eq!(idx.len(), 7);
    }

    #[test]
    fn out_of_order_insert_keeps_postings_sorted() {
        let mut idx = InvertedIndex::new();
        idx.insert(5, &[1]);
        idx.insert(2, &[1]);
        idx.insert(9, &[1]);
        assert_eq!(idx.postings(1), &[2, 5, 9]);
    }
}
