//! Self-test corpus: every shipped rule must (a) fire on a seeded
//! violation and (b) stay silent on the fixed or annotated form. This is
//! the proof the acceptance criteria ask for, and a regression net for
//! the lexer: several snippets hide rule triggers inside strings and
//! comments where they must NOT fire.

use tir_analyze::{analyze_snippet, Analysis, Config};

fn rules_fired(src: &str) -> Vec<&'static str> {
    let mut rules: Vec<&'static str> = analyze_snippet(src).iter().map(|d| d.rule).collect();
    rules.sort_unstable();
    rules.dedup();
    rules
}

// ---------------------------------------------------------------- panic-path

#[test]
fn panic_path_fires_on_unwrap() {
    let diags = analyze_snippet("fn f(x: Option<u32>) -> u32 { x.unwrap() }");
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].rule, "panic-path");
    assert_eq!((diags[0].line, diags[0].col), (1, 33));
}

#[test]
fn panic_path_silent_on_justified_expect() {
    assert!(
        rules_fired(r#"fn f(x: Option<u32>) -> u32 { x.expect("caller checked") }"#).is_empty()
    );
}

#[test]
fn panic_path_fires_on_messageless_expect() {
    assert_eq!(
        rules_fired(r#"fn f(x: Option<u32>, m: &str) -> u32 { x.expect(m) }"#),
        ["panic-path"]
    );
    assert_eq!(
        rules_fired(r#"fn f(x: Option<u32>) -> u32 { x.expect("") }"#),
        ["panic-path"]
    );
}

#[test]
fn panic_path_fires_on_denied_macros() {
    for src in [
        "fn f() { todo!() }",
        "fn f() { unimplemented!() }",
        "fn f(x: u32) { dbg!(x); }",
        "fn f() { panic!(\"boom\") }",
    ] {
        assert_eq!(rules_fired(src), ["panic-path"], "{src}");
    }
}

#[test]
fn panic_path_silent_inside_strings_and_comments() {
    for src in [
        r#"fn f() -> &'static str { "call .unwrap() then panic!(now)" }"#,
        "/// call .unwrap() at your peril\n//! dbg! example\n// todo! later\nfn f() {}",
        r##"fn f() -> &'static str { r#".unwrap() and todo!"# }"##,
        "/* nested /* .unwrap() */ todo! */ fn f() {}",
    ] {
        assert!(rules_fired(src).is_empty(), "{src}");
    }
}

#[test]
fn panic_path_silent_in_test_modules() {
    let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { x.unwrap(); panic!(); }\n}\n";
    assert!(rules_fired(src).is_empty());
}

#[test]
fn panic_path_allow_suppresses() {
    let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() } // analyze:allow(panic-path): demo";
    assert!(rules_fired(src).is_empty());
}

// ------------------------------------------------------------ atomic-ordering

#[test]
fn atomic_ordering_fires_without_justification() {
    let diags = analyze_snippet("fn f(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }");
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].rule, "atomic-ordering");
}

#[test]
fn atomic_ordering_silent_with_justified_allow() {
    let src = "fn f(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); } \
               // analyze:allow(atomic-ordering): monotonic telemetry counter";
    assert!(rules_fired(src).is_empty());
}

#[test]
fn atomic_ordering_bare_allow_still_fires() {
    let src = "fn f(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); } \
               // analyze:allow(atomic-ordering)";
    assert_eq!(rules_fired(src), ["atomic-ordering"]);
}

#[test]
fn atomic_ordering_own_line_allow_covers_chain() {
    let src = "fn f(s: &Stats) {\n    \
               // analyze:allow(atomic-ordering): counter, no sync piggybacks\n    \
               s.stats\n        .violations\n        .fetch_add(1, Ordering::Relaxed);\n}\n";
    assert!(rules_fired(src).is_empty(), "{:?}", analyze_snippet(src));
}

#[test]
fn atomic_ordering_silent_on_stronger_orderings() {
    assert!(rules_fired("fn f(c: &AtomicU64) { c.store(1, Ordering::SeqCst); }").is_empty());
    assert!(rules_fired("fn f(c: &AtomicU64) -> u64 { c.load(Ordering::Acquire) }").is_empty());
}

// ----------------------------------------------------------------- raw-lock

#[test]
fn raw_lock_fires_on_bare_lock_unwrap() {
    let src = "fn f(m: &Mutex<u32>) -> u32 { *m.lock().unwrap() }";
    let mut fired = rules_fired(src);
    fired.sort_unstable();
    // Both the bare .lock() and the .unwrap() are wrong here.
    assert_eq!(fired, ["panic-path", "raw-lock"]);
}

#[test]
fn raw_lock_silent_on_helper() {
    assert!(rules_fired("fn f(m: &Mutex<u32>) -> u32 { *lock(m) }").is_empty());
}

#[test]
fn raw_lock_allow_for_helper_internals() {
    let src = "fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {\n    \
               // analyze:allow(raw-lock): this IS the helper\n    \
               m.lock().expect(\"poisoned\")\n}\n";
    assert!(rules_fired(src).is_empty(), "{:?}", analyze_snippet(src));
}

// --------------------------------------------------------------- lock-order

const INVERSION: &str = "\
impl S {
    fn ab(&self) {
        let a = lock(&self.alpha);
        let b = lock(&self.beta);
        use_both(&a, &b);
    }
    fn ba(&self) {
        let b = lock(&self.beta);
        let a = lock(&self.alpha);
        use_both(&a, &b);
    }
}
";

#[test]
fn lock_order_fires_on_inversion() {
    // Nested acquisitions also fire blocking-under-lock (each inner
    // lock waits while the outer is held); the cycle itself is one
    // lock-order diagnostic.
    let diags: Vec<_> = analyze_snippet(INVERSION)
        .into_iter()
        .filter(|d| d.rule == "lock-order")
        .collect();
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert!(diags[0].message.contains("alpha"), "{}", diags[0].message);
    assert!(diags[0].message.contains("beta"));
    assert!(
        diags[0].message.contains("snippet.rs:3"),
        "witness sites named: {}",
        diags[0].message
    );
}

#[test]
fn lock_order_silent_on_consistent_order() {
    let src = "\
impl S {
    fn ab(&self) {
        let a = lock(&self.alpha);
        let b = lock(&self.beta);
        use_both(&a, &b);
    }
    fn also_ab(&self) {
        let a = lock(&self.alpha);
        let b = lock(&self.beta);
        use_both(&a, &b);
    }
}
";
    // Consistent order: no cycle, so lock-order stays silent. The
    // nested held regions still surface as blocking-under-lock.
    assert_eq!(rules_fired(src), ["blocking-under-lock"]);
}

#[test]
fn lock_order_fires_on_relock_of_held_mutex() {
    let src = "\
fn f(s: &S) {
    let a = lock(&s.alpha);
    let again = lock(&s.alpha);
}
";
    let diags: Vec<_> = analyze_snippet(src)
        .into_iter()
        .filter(|d| d.rule == "lock-order")
        .collect();
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert!(diags[0].message.contains("re-locked"));
}

#[test]
fn lock_order_respects_scopes_and_drop() {
    // Guard dropped by block end / drop() before the second acquisition:
    // no edge, no cycle even though the textual order inverts.
    let src = "\
impl S {
    fn ab(&self) {
        { let a = lock(&self.alpha); use_one(&a); }
        let b = lock(&self.beta);
    }
    fn ba(&self) {
        let b = lock(&self.beta);
        drop(b);
        let a = lock(&self.alpha);
    }
}
";
    assert!(rules_fired(src).is_empty(), "{:?}", analyze_snippet(src));
}

#[test]
fn lock_order_temporaries_live_for_one_statement() {
    // Two temporaries in one statement DO order against each other…
    let one_stmt = "fn f(s: &S) { use_both(lock(&s.alpha), lock(&s.beta)); }\n\
                    fn g(s: &S) { use_both(lock(&s.beta), lock(&s.alpha)); }";
    assert_eq!(rules_fired(one_stmt), ["blocking-under-lock", "lock-order"]);
    // …but a temporary does not leak into the next statement.
    let two_stmts = "fn f(s: &S) { use_one(lock(&s.alpha)); use_one(lock(&s.beta)); }\n\
                     fn g(s: &S) { use_one(lock(&s.beta)); use_one(lock(&s.alpha)); }";
    assert!(rules_fired(two_stmts).is_empty());
}

#[test]
fn lock_order_method_form_is_recognized() {
    let src = "\
impl S {
    fn ab(&self) {
        let a = self.alpha.lock();
        let b = self.beta.lock();
        use_both(&a, &b);
    }
    fn ba(&self) {
        let b = self.beta.lock();
        let a = self.alpha.lock();
        use_both(&a, &b);
    }
}
";
    let fired = rules_fired(src);
    assert!(fired.contains(&"lock-order"), "{fired:?}");
}

#[test]
fn lock_order_allow_excludes_site_from_graph() {
    let src = "\
impl S {
    fn ab(&self) {
        let a = lock(&self.alpha);
        let b = lock(&self.beta);
        use_both(&a, &b);
    }
    fn ba(&self) {
        let b = lock(&self.beta);
        // analyze:allow(lock-order): beta is a shard-private clone here
        let a = lock(&self.alpha);
        use_both(&a, &b);
    }
}
";
    let fired = rules_fired(src);
    assert!(!fired.contains(&"lock-order"), "{:?}", analyze_snippet(src));
}

// ------------------------------------------------------------ unguarded-cast

#[test]
fn cast_fires_on_narrowing() {
    let diags = analyze_snippet("fn f(n: usize) -> u32 { n as u32 }");
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].rule, "unguarded-cast");
}

#[test]
fn cast_silent_on_widening_and_annotated() {
    assert!(rules_fired("fn f(n: u32) -> u64 { n as u64 }").is_empty());
    assert!(rules_fired("fn f(n: u32) -> usize { n as usize }").is_empty());
    assert!(rules_fired(
        "fn f(n: usize) -> u32 { n as u32 } // analyze:allow(unguarded-cast): n < 2^32 by construction"
    )
    .is_empty());
}

#[test]
fn cast_scoped_to_configured_crates() {
    let src = "fn f(n: usize) -> u32 { n as u32 }";
    let mut a = Analysis::new(Config {
        cast_crates: Some(vec!["hint".into()]),
        ..Config::default()
    });
    a.add_file("serve", "serve/lib.rs", src);
    a.add_file("hint", "hint/lib.rs", src);
    let diags = a.finish();
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].path, "hint/lib.rs");
}

// --------------------------------------------------------- unbounded-channel

#[test]
fn channel_fires_on_qualified_call_and_import() {
    assert_eq!(
        rules_fired("fn f() { let (tx, rx) = mpsc::channel::<u32>(); }"),
        ["unbounded-channel"]
    );
    assert_eq!(
        rules_fired("use std::sync::mpsc::channel;\nfn f() {}"),
        ["unbounded-channel"]
    );
    assert_eq!(
        rules_fired("use std::sync::mpsc::{channel, Receiver};\nfn f() {}"),
        ["unbounded-channel"]
    );
}

#[test]
fn channel_silent_on_bounded() {
    assert!(rules_fired(
        "use std::sync::mpsc::{sync_channel, Receiver};\nfn f() { let (tx, rx) = sync_channel::<u32>(8); }"
    )
    .is_empty());
}

// ------------------------------------------------------------------- engine

#[test]
fn diagnostics_are_sorted_and_addressed() {
    let src = "fn f(x: Option<u32>, m: &Mutex<u32>) {\n    let a = m.lock().unwrap();\n    x.unwrap();\n}\n";
    let diags = analyze_snippet(src);
    assert!(diags.len() >= 3, "{diags:?}");
    for w in diags.windows(2) {
        assert!((w[0].line, w[0].col) <= (w[1].line, w[1].col));
    }
    let rendered = diags[0].to_string();
    assert!(rendered.starts_with("snippet.rs:2:"), "{rendered}");
}

#[test]
fn files_seen_counts() {
    let mut a = Analysis::new(Config::default());
    a.add_file("x", "a.rs", "fn a() {}");
    a.add_file("x", "b.rs", "fn b() {}");
    assert_eq!(a.files_seen(), 2);
    assert!(a.finish().is_empty());
}

// ------------------------------------------------------ blocking-under-lock

#[test]
fn blocking_fires_on_recv_while_holding() {
    let src = "fn f(s: &S, rx: &Receiver<u32>) {\n    let g = lock(&s.state);\n    let x = rx.recv();\n}\n";
    let diags = analyze_snippet(src);
    assert_eq!(rules_fired(src), ["blocking-under-lock"]);
    assert!(diags[0].message.contains("`recv`"), "{}", diags[0].message);
    assert!(diags[0].message.contains("state"), "{}", diags[0].message);
}

#[test]
fn blocking_fires_on_sleep_and_io_while_holding() {
    for call in [
        "thread::sleep(d)",
        "handle.join()",
        "reader.read_line(&mut buf)",
    ] {
        let src = format!("fn f(s: &S) {{\n    let g = lock(&s.state);\n    {call};\n}}\n");
        assert_eq!(rules_fired(&src), ["blocking-under-lock"], "{call}");
    }
}

#[test]
fn blocking_fires_on_nested_acquisition() {
    let src = "fn f(s: &S) {\n    let a = lock(&s.alpha);\n    let b = lock(&s.beta);\n}\n";
    let diags = analyze_snippet(src);
    assert_eq!(rules_fired(src), ["blocking-under-lock"]);
    assert!(
        diags[0].message.contains("acquiring mutex `beta`"),
        "{}",
        diags[0].message
    );
}

#[test]
fn blocking_silent_after_guard_released() {
    // drop() release and block-scoped guard: the wait happens lock-free.
    let dropped = "fn f(s: &S, rx: &Receiver<u32>) {\n    let g = lock(&s.state);\n    drop(g);\n    let x = rx.recv();\n}\n";
    assert!(rules_fired(dropped).is_empty(), "{dropped}");
    let scoped = "fn f(s: &S, rx: &Receiver<u32>) {\n    { let g = lock(&s.state); g.bump(); }\n    let x = rx.recv();\n}\n";
    assert!(rules_fired(scoped).is_empty(), "{scoped}");
}

#[test]
fn blocking_justified_allow_silences_bare_allow_fires() {
    let justified = "fn f(s: &S, rx: &Receiver<u32>) {\n    let g = lock(&s.state);\n    let x = rx.recv(); // analyze:allow(blocking-under-lock): 1-slot ack channel, holder is the only sender\n}\n";
    assert!(rules_fired(justified).is_empty());
    let bare = "fn f(s: &S, rx: &Receiver<u32>) {\n    let g = lock(&s.state);\n    let x = rx.recv(); // analyze:allow(blocking-under-lock)\n}\n";
    let diags = analyze_snippet(bare);
    assert_eq!(rules_fired(bare), ["blocking-under-lock"]);
    assert!(
        diags[0].message.contains("justification"),
        "{}",
        diags[0].message
    );
}

// ------------------------------------------------------- panic-reachability

#[test]
fn panic_reach_fires_with_full_chain() {
    let src = "fn worker_loop(rx: &Receiver<Job>) {\n    helper();\n}\nfn helper(x: Option<u32>) {\n    x.unwrap();\n}\n";
    let diags: Vec<_> = analyze_snippet(src)
        .into_iter()
        .filter(|d| d.rule == "panic-reachability")
        .collect();
    assert_eq!(diags.len(), 1, "{diags:?}");
    let msg = &diags[0].message;
    assert!(msg.contains("worker_loop (snippet.rs:1)"), "{msg}");
    assert!(msg.contains("helper (snippet.rs:4)"), "{msg}");
}

#[test]
fn panic_reach_fires_on_messaged_expect_unlike_panic_path() {
    // A messaged .expect() passes the line-local rule but still kills a
    // serving thread: only panic-reachability fires.
    let src =
        "fn accept_loop(x: Option<u32>) {\n    x.expect(\"listener configured at startup\");\n}\n";
    assert_eq!(rules_fired(src), ["panic-reachability"]);
}

#[test]
fn panic_reach_silent_off_the_serving_roots() {
    let src = "fn island(x: Option<u32>) {\n    x.expect(\"not reachable from serving\");\n}\n";
    assert!(rules_fired(src).is_empty());
}

#[test]
fn panic_reach_silent_on_fixed_form() {
    let src = "fn worker_loop(rx: &Receiver<Job>) {\n    if helper().is_none() { return; }\n}\nfn helper() -> Option<u32> {\n    None\n}\n";
    assert!(rules_fired(src).is_empty());
}

#[test]
fn panic_reach_justified_allow_silences_bare_allow_fires() {
    let justified = "fn accept_loop(m: &Mutex<u32>) {\n    // analyze:allow(panic-reachability): poisoned mutex means invariants are gone; die loudly\n    let g = m.lock().expect(\"poisoned\"); // analyze:allow(raw-lock): demo helper body\n}\n";
    assert!(
        rules_fired(justified).is_empty(),
        "{:?}",
        analyze_snippet(justified)
    );
    let bare = "fn accept_loop(x: Option<u32>) {\n    // analyze:allow(panic-reachability)\n    x.expect(\"boom\");\n}\n";
    assert_eq!(rules_fired(bare), ["panic-reachability"]);
}

// ----------------------------------------------------------- hot-path-alloc

#[test]
fn hot_path_alloc_fires_on_clone_in_query_into() {
    let src = "impl Tif {\n    fn query_into(&self, out: &mut Vec<u32>) {\n        let v = self.ids.clone();\n    }\n}\n";
    let diags = analyze_snippet(src);
    assert_eq!(rules_fired(src), ["hot-path-alloc"]);
    assert!(diags[0].message.contains("`clone`"), "{}", diags[0].message);
}

#[test]
fn hot_path_alloc_fires_transitively_with_chain() {
    let src = "fn query_into(out: &mut Vec<u32>) {\n    helper();\n}\nfn helper() {\n    let v = Vec::new();\n}\n";
    let diags = analyze_snippet(src);
    assert_eq!(rules_fired(src), ["hot-path-alloc"]);
    let msg = &diags[0].message;
    assert!(msg.contains("`Vec::new`"), "{msg}");
    assert!(
        msg.contains("query_into (snippet.rs:1) -> helper (snippet.rs:4)"),
        "{msg}"
    );
}

#[test]
fn hot_path_alloc_fires_on_macros_and_kernel_roots() {
    assert_eq!(
        rules_fired(
            "fn intersect_merge_into(a: &[u32]) {\n    let label = format!(\"{a:?}\");\n}\n"
        ),
        ["hot-path-alloc"]
    );
    assert_eq!(
        rules_fired("fn mark_hits(a: &[u32]) {\n    let v = vec![1, 2];\n}\n"),
        ["hot-path-alloc"]
    );
}

#[test]
fn hot_path_alloc_silent_on_arena_growth() {
    // Growth through every arena-backed route: the caller-owned out
    // buffer, the scratch parameter's fields, a let-binding taken from
    // the scratch, and the declared arena's own impl.
    let src = "\
impl QueryScratch {
    fn intersect(&mut self) {
        self.bits.resize(64, false);
        let staging = Vec::with_capacity(8);
    }
}
impl Tif {
    fn query_into(&self, scratch: &mut QueryScratch, out: &mut Vec<u32>) {
        scratch.reset();
        scratch.intersect();
        scratch.cands.push(1);
        let mut cands = std::mem::take(&mut scratch.cands);
        cands.push(2);
        out.extend_from_slice(&cands);
    }
}
";
    assert!(rules_fired(src).is_empty(), "{:?}", analyze_snippet(src));
}

#[test]
fn hot_path_alloc_fires_on_non_arena_growth() {
    let src = "impl Tif {\n    fn query_into(&self, out: &mut Vec<u32>) {\n        self.cache.push(1);\n    }\n}\n";
    let diags = analyze_snippet(src);
    assert_eq!(rules_fired(src), ["hot-path-alloc"]);
    assert!(
        diags[0].message.contains("non-arena receiver"),
        "{}",
        diags[0].message
    );
}

#[test]
fn hot_path_alloc_cuts_the_cold_path_delegate() {
    // The trait's default query_into delegates to the allocating cold
    // path; the `query` cut keeps the walk out of it.
    let src = "\
trait TemporalIrIndex {
    fn query_into(&self, out: &mut Vec<u32>) {
        out.extend(self.query());
    }
}
impl Tif {
    fn query(&self) -> Vec<u32> {
        let mut v = Vec::new();
        v.clone()
    }
}
";
    assert!(rules_fired(src).is_empty(), "{:?}", analyze_snippet(src));
}

#[test]
fn hot_path_alloc_arc_clone_is_not_an_allocation() {
    let src = "fn query_into(out: &mut Vec<u32>) {\n    let snap = Arc::clone(&CURRENT);\n}\n";
    assert!(rules_fired(src).is_empty());
}

#[test]
fn hot_path_alloc_justified_allow_silences_bare_allow_fires() {
    let justified = "fn query_into(out: &mut Vec<u32>) {\n    let v = names.to_vec(); // analyze:allow(hot-path-alloc): build-time path, not steady state\n}\n";
    assert!(rules_fired(justified).is_empty());
    let bare = "fn query_into(out: &mut Vec<u32>) {\n    let v = names.to_vec(); // analyze:allow(hot-path-alloc)\n}\n";
    let diags = analyze_snippet(bare);
    assert_eq!(rules_fired(bare), ["hot-path-alloc"]);
    assert!(
        diags[0].message.contains("justification"),
        "{}",
        diags[0].message
    );
}

// ------------------------------- suppression extents against the call-graph
// tier (satellite: trailing vs own-line allows, cfg(test) and the parser)

#[test]
fn trailing_allow_covers_only_its_line_for_graph_rules() {
    let src = "fn query_into(out: &mut Vec<u32>) {\n    let a = x.to_vec(); // analyze:allow(hot-path-alloc): warm-up only\n    let b = y.to_vec();\n}\n";
    let diags = analyze_snippet(src);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].line, 3, "second site still fires");
}

#[test]
fn own_line_allow_covers_the_whole_next_statement_for_graph_rules() {
    let src = "fn query_into(out: &mut Vec<u32>) {\n    // analyze:allow(hot-path-alloc): one-time label, off the steady state\n    let label = parts\n        .iter()\n        .collect();\n    let stray = other.to_vec();\n}\n";
    let diags = analyze_snippet(src);
    assert_eq!(diags.len(), 1, "chain covered, next stmt not: {diags:?}");
    assert_eq!(diags[0].line, 6);
}

#[test]
fn cfg_test_items_are_invisible_to_graph_rules() {
    // Seeded violations inside #[cfg(test)] modules — including nested
    // modules — must not reach the parser or the call graph.
    let src = "\
fn live() {}
#[cfg(test)]
mod tests {
    fn query_into(out: &mut Vec<u32>) {
        let v = data.clone();
    }
    mod nested {
        fn worker_loop(x: Option<u32>) {
            x.unwrap();
        }
    }
}
";
    assert!(rules_fired(src).is_empty(), "{:?}", analyze_snippet(src));
}

// ----------------------------------------------------------- untrusted-length

/// Runs the engine over `src` as the `persist` crate — the scope the
/// workspace gate applies the taint audit and the rename-ordering
/// checks to.
fn persist_diags(src: &str) -> Vec<tir_analyze::Diagnostic> {
    let mut a = Analysis::new(Config::default());
    a.add_file("persist", "persist/x.rs", src);
    a.finish()
}

#[test]
fn untrusted_length_fires_on_index_sink_with_def_use_chain() {
    let src = "fn f(b: &[u8]) {\n    let n = read_u32(b, 0) as usize;\n    let v = &b[..n];\n}\n";
    let diags = analyze_snippet(src);
    assert_eq!(rules_fired(src), ["untrusted-length"]);
    let msg = &diags[0].message;
    assert!(msg.contains("`n` <- `read_u32(..)` at line 2"), "{msg}");
    assert!(msg.contains("slice index/range"), "{msg}");
}

#[test]
fn untrusted_length_fires_on_capacity_sink() {
    let src = "fn f(b: &[u8]) {\n    let count = read_u64(b, 8) as usize;\n    let v: Vec<u32> = Vec::with_capacity(count);\n}\n";
    let diags = analyze_snippet(src);
    assert_eq!(rules_fired(src), ["untrusted-length"]);
    assert!(
        diags[0].message.contains("`with_capacity` argument"),
        "{}",
        diags[0].message
    );
}

#[test]
fn untrusted_length_fires_on_offset_arithmetic() {
    let src = "fn f(b: &[u8], pos: usize) -> usize {\n    let dlen = read_u32(b, pos) as usize;\n    pos + dlen * 4\n}\n";
    let diags = analyze_snippet(src);
    assert_eq!(rules_fired(src), ["untrusted-length"]);
    assert!(
        diags[0].message.contains("offset-arithmetic operand"),
        "{}",
        diags[0].message
    );
}

#[test]
fn untrusted_length_fires_on_decoder_directly_in_sink() {
    let src = "fn f(b: &[u8]) {\n    let v = &b[read_u32(b, 0) as usize..];\n}\n";
    let diags = analyze_snippet(src);
    assert_eq!(rules_fired(src), ["untrusted-length"]);
    assert!(
        diags[0].message.contains("`read_u32(..)` used directly"),
        "{}",
        diags[0].message
    );
}

#[test]
fn untrusted_length_silent_on_bounds_checked_value() {
    let src = "fn f(b: &[u8]) -> Option<&[u8]> {\n    let n = read_u32(b, 0) as usize;\n    if n > b.len() {\n        return None;\n    }\n    Some(&b[..n])\n}\n";
    assert!(rules_fired(src).is_empty(), "{:?}", analyze_snippet(src));
}

#[test]
fn untrusted_length_silent_on_guard_clamped_value() {
    let src = "fn f(b: &[u8]) {\n    let n = read_u32(b, 0) as usize;\n    let v: Vec<u32> = Vec::with_capacity(n.min(4096));\n}\n";
    assert!(rules_fired(src).is_empty(), "{:?}", analyze_snippet(src));
}

#[test]
fn untrusted_length_backward_validation_through_derived_total() {
    // Checking the derived `total` bounds the raw `len` it was built
    // from: the later index on `len` is safe.
    let src = "fn f(b: &[u8]) -> Option<&[u8]> {\n    let len = read_u32(b, 0) as usize;\n    let total = 12 + len;\n    if b.len() < total {\n        return None;\n    }\n    Some(&b[12..12 + len])\n}\n";
    assert!(rules_fired(src).is_empty(), "{:?}", analyze_snippet(src));
}

#[test]
fn untrusted_length_justified_allow_silences_bare_allow_fires() {
    let justified = "fn f(b: &[u8]) {\n    let n = read_u32(b, 0) as usize;\n    let v = &b[..n]; // analyze:allow(untrusted-length): section CRC verified before any field decode\n}\n";
    assert!(rules_fired(justified).is_empty());
    let bare = "fn f(b: &[u8]) {\n    let n = read_u32(b, 0) as usize;\n    let v = &b[..n]; // analyze:allow(untrusted-length)\n}\n";
    let diags = analyze_snippet(bare);
    assert_eq!(rules_fired(bare), ["untrusted-length"]);
    assert!(
        diags[0].message.contains("justification"),
        "{}",
        diags[0].message
    );
}

#[test]
fn untrusted_length_scoped_to_configured_crates() {
    let src = "fn f(b: &[u8]) {\n    let n = read_u32(b, 0) as usize;\n    let v = &b[..n];\n}\n";
    let mut a = Analysis::new(Config {
        taint_crates: Some(vec!["persist".into()]),
        ..Config::default()
    });
    a.add_file("serve", "serve/lib.rs", src);
    a.add_file("persist", "persist/lib.rs", src);
    let diags = a.finish();
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].path, "persist/lib.rs");
}

// --------------------------------------------------------- durability-ordering

#[test]
fn durability_fires_on_apply_before_fsync_with_observed_order() {
    let src = "\
impl Durability {
    fn apply_batch(&mut self) {
        self.wal.append(epoch, ops);
        apply_ops(index, ops);
        self.wal.sync();
    }
}
";
    let diags = analyze_snippet(src);
    assert_eq!(rules_fired(src), ["durability-ordering"]);
    let msg = &diags[0].message;
    assert!(
        msg.contains("applies at line 4 before the fsync at line 5"),
        "{msg}"
    );
    assert!(
        msg.contains("append (line 3) -> apply_ops (line 4) -> sync (line 5)"),
        "observed call order printed: {msg}"
    );
}

#[test]
fn durability_fires_on_missing_wal_append() {
    let src = "fn apply_batch(&mut self) {\n    apply_ops(index, ops);\n}\n";
    let diags = analyze_snippet(src);
    assert_eq!(rules_fired(src), ["durability-ordering"]);
    assert!(
        diags[0].message.contains("no WAL `append` call"),
        "{}",
        diags[0].message
    );
}

#[test]
fn durability_fires_on_ack_before_fsync_path() {
    let src = "\
fn drain(tx: &Sender<u64>, eng: &mut Engine) {
    tx.send(epoch);
    eng.apply_batch(index, ops);
}
";
    let diags = analyze_snippet(src);
    assert_eq!(rules_fired(src), ["durability-ordering"]);
    let msg = &diags[0].message;
    assert!(
        msg.contains("`send` at line 2 precedes the durable `apply_batch` call at line 3"),
        "{msg}"
    );
}

#[test]
fn durability_silent_on_correct_engine_shape() {
    let src = "\
impl Durability {
    fn apply_batch(&mut self) {
        self.wal.append(epoch, ops);
        self.wal.sync();
        apply_ops(index, ops);
    }
}
fn drain(tx: &Sender<u64>, eng: &mut Engine) {
    eng.apply_batch(index, ops);
    tx.send(epoch);
}
";
    assert!(rules_fired(src).is_empty(), "{:?}", analyze_snippet(src));
}

#[test]
fn durability_fires_on_unsynced_rename_in_persist() {
    let src = "\
fn publish(tmp: &Path, dst: &Path) {
    write_stuff(tmp);
    fs::rename(tmp, dst);
}
";
    let diags = persist_diags(src);
    let msgs: Vec<&str> = diags.iter().map(|d| d.message.as_str()).collect();
    assert_eq!(diags.len(), 2, "{msgs:?}");
    assert!(
        msgs.iter().any(|m| m.contains("before any fsync")),
        "{msgs:?}"
    );
    assert!(
        msgs.iter().any(|m| m.contains("directory fsync")),
        "{msgs:?}"
    );
}

#[test]
fn durability_silent_on_fsync_rename_fsync() {
    // The data fsync may be transitive: `finish` reaches a sync through
    // the call graph, the directory fsync follows the rename directly.
    let src = "\
fn finish(f: &File) {
    f.sync_all();
}
fn publish(f: &File, d: &File, tmp: &Path, dst: &Path) {
    finish(f);
    fs::rename(tmp, dst);
    d.sync_all();
}
";
    assert!(persist_diags(src).is_empty(), "{:?}", persist_diags(src));
}

#[test]
fn durability_rename_checks_scoped_to_persist_crate() {
    // The same unsynced rename outside the persist crate is not a
    // durability site (tmp-file juggling in tests/tools).
    let src = "fn publish(tmp: &Path, dst: &Path) {\n    fs::rename(tmp, dst);\n}\n";
    assert!(rules_fired(src).is_empty(), "{:?}", analyze_snippet(src));
}

#[test]
fn durability_justified_allow_silences_bare_allow_fires() {
    let justified = "fn apply_batch(&mut self) { // analyze:allow(durability-ordering): recovery replay — the WAL being replayed is already durable\n    apply_ops(index, ops);\n}\n";
    assert!(rules_fired(justified).is_empty());
    let bare = "fn apply_batch(&mut self) { // analyze:allow(durability-ordering)\n    apply_ops(index, ops);\n}\n";
    let diags = analyze_snippet(bare);
    assert_eq!(rules_fired(bare), ["durability-ordering"]);
    assert!(
        diags[0].message.contains("justification"),
        "{}",
        diags[0].message
    );
}

// --------------------------------------------------------------- error-swallow

#[test]
fn error_swallow_fires_on_discarded_fsync() {
    let src = "fn f(file: &File) {\n    let _ = file.sync_all();\n}\n";
    let diags = analyze_snippet(src);
    assert_eq!(rules_fired(src), ["error-swallow"]);
    assert!(
        diags[0].message.contains("swallows the `io::Result`"),
        "{}",
        diags[0].message
    );
}

#[test]
fn error_swallow_fires_on_ok_discard() {
    let src = "fn f(file: &File) {\n    file.sync_all().ok();\n}\n";
    let diags = analyze_snippet(src);
    assert_eq!(rules_fired(src), ["error-swallow"]);
    assert!(
        diags[0].message.contains("`.ok()` discards"),
        "{}",
        diags[0].message
    );
}

#[test]
fn error_swallow_resolves_workspace_io_results() {
    // `persist_marker` is no std API: only its declared return type says
    // io::Result, through the workspace call graph.
    let src = "\
fn persist_marker(dir: &Path) -> io::Result<()> {
    Ok(())
}
fn f(dir: &Path) {
    let _ = persist_marker(dir);
}
";
    let diags = analyze_snippet(src);
    assert_eq!(rules_fired(src), ["error-swallow"]);
    assert!(
        diags[0].message.contains("persist_marker"),
        "{}",
        diags[0].message
    );
}

#[test]
fn error_swallow_silent_on_non_io_discards() {
    for src in [
        "fn f(h: JoinHandle<()>) {\n    let _ = h.join();\n}\n",
        "fn f(s: &str) -> Option<u32> {\n    s.parse().ok()\n}\n",
        "fn f(tx: &Sender<u32>) {\n    let _ = tx.send(1);\n}\n",
    ] {
        assert!(rules_fired(src).is_empty(), "{src}");
    }
}

#[test]
fn error_swallow_silent_in_test_modules() {
    let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t(f: &File) {\n        let _ = f.sync_all();\n        f.flush().ok();\n    }\n}\n";
    assert!(rules_fired(src).is_empty());
}

#[test]
fn error_swallow_justified_allow_silences_bare_allow_fires() {
    let justified = "fn f(file: &File) {\n    let _ = file.sync_all(); // analyze:allow(error-swallow): best-effort flush on the abort path, error returned right after\n}\n";
    assert!(rules_fired(justified).is_empty());
    let bare =
        "fn f(file: &File) {\n    let _ = file.sync_all(); // analyze:allow(error-swallow)\n}\n";
    let diags = analyze_snippet(bare);
    assert_eq!(rules_fired(bare), ["error-swallow"]);
    assert!(
        diags[0].message.contains("justification"),
        "{}",
        diags[0].message
    );
}

// ----------------------------- cross-phase suppression extents (fn items vs
// the dataflow and reach tiers; trailing vs own-line; nested cfg(test))

#[test]
fn fn_item_allow_suppresses_dataflow_rule_in_whole_body() {
    // An own-line allow above a fn item extends through the closing
    // brace: dataflow diagnostics attributed anywhere inside are covered.
    let src = "\
// analyze:allow(untrusted-length): fuzz harness — lengths bounded by the generator
fn f(b: &[u8]) {
    let n = read_u32(b, 0) as usize;
    let v = &b[..n];
    let w: Vec<u32> = Vec::with_capacity(n);
}
";
    assert!(rules_fired(src).is_empty(), "{:?}", analyze_snippet(src));
}

#[test]
fn fn_item_allow_suppresses_reach_rule_in_whole_body() {
    // panic-reachability attributes its diagnostic to the panic site,
    // so the allow sits on the fn item owning that site and must cover
    // every line of its body.
    let src = "\
fn worker_loop(x: Option<u32>) {
    helper(x);
}
// analyze:allow(panic-reachability): poison propagation — invariants are gone, die loudly
fn helper(x: Option<u32>) {
    x.expect(\"boot invariant\");
}
";
    assert!(rules_fired(src).is_empty(), "{:?}", analyze_snippet(src));
}

#[test]
fn fn_item_allow_suppresses_error_swallow_in_whole_body() {
    let src = "\
// analyze:allow(error-swallow): teardown path — the process exits right after
fn shutdown(file: &File, sock: &TcpStream) {
    let _ = file.sync_all();
    let _ = sock.shutdown(Shutdown::Both);
}
";
    assert!(rules_fired(src).is_empty(), "{:?}", analyze_snippet(src));
}

#[test]
fn trailing_allow_on_fn_line_does_not_cover_the_body() {
    // The trailing form covers exactly its own line; a dataflow
    // diagnostic attributed to a body line still fires.
    let src = "fn f(b: &[u8]) { // analyze:allow(untrusted-length): signature line only\n    let n = read_u32(b, 0) as usize;\n    let v = &b[..n];\n}\n";
    let diags = analyze_snippet(src);
    assert_eq!(rules_fired(src), ["untrusted-length"]);
    assert_eq!(diags[0].line, 3, "{diags:?}");
}

#[test]
fn nested_cfg_test_invisible_to_dataflow_rules() {
    let src = "\
fn live() {}
#[cfg(test)]
mod tests {
    fn t(b: &[u8]) {
        let n = read_u32(b, 0) as usize;
        let v = &b[..n];
    }
    mod nested {
        fn apply_batch(&mut self) {
            apply_ops(index, ops);
        }
        fn u(f: &File) {
            let _ = f.sync_all();
        }
    }
}
";
    assert!(rules_fired(src).is_empty(), "{:?}", analyze_snippet(src));
}

#[test]
fn cfg_test_sibling_does_not_hide_live_violations() {
    // A live seeded violation next to a stripped test module still fires:
    // stripping removes exactly the annotated item, nothing after it.
    let src = "\
#[cfg(test)]
mod tests {
    fn helper() {}
}
fn query_into(out: &mut Vec<u32>) {
    let v = data.clone();
}
";
    assert_eq!(rules_fired(src), ["hot-path-alloc"]);
}
