//! A lightweight item/function parser layered on the [`crate::lexer`].
//!
//! This is deliberately not a full Rust grammar: the whole-program rules
//! need exactly three structural facts that token-local scanning cannot
//! provide —
//!
//! 1. **function boundaries**: every `fn` item with its name, signature
//!    parameters, and brace-matched body token range;
//! 2. **ownership**: which `impl`/`trait` block a function lives in, so
//!    `QueryScratch::intersect` is distinguishable from a free
//!    `intersect` and scratch-arena impls can be allowlisted wholesale;
//! 3. **call sites**: every `callee(…)`, `recv.callee(…)`,
//!    `Qual::callee(…)`, and `mac!(…)` inside a body, with enough
//!    context (qualifier, receiver-chain root) for suffix-based
//!    resolution in [`crate::callgraph`].
//!
//! The parser runs on the prepared [`SourceFile`] token stream, so
//! `#[cfg(test)]` items are already stripped and string/comment contents
//! can never masquerade as code. Closures are not separate functions:
//! their calls attribute to the enclosing `fn`, which is the right model
//! for reachability (the closure runs when the function runs, or is
//! spawned by it).

use crate::lexer::{Token, TokenKind};
use crate::source::SourceFile;

/// One parsed function parameter.
#[derive(Debug, Clone)]
pub struct Param {
    /// Binding name (`self` for any self form; the last pattern ident
    /// otherwise, which covers `mut x: T` and simple tuple patterns).
    pub name: String,
    /// The declared type as space-joined token text (`& mut QueryScratch`).
    pub ty: String,
}

/// One parsed `fn` item.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Crate the file belongs to (the analysis grouping key).
    pub krate: String,
    /// Workspace-relative path of the defining file.
    pub path: String,
    /// Function name.
    pub name: String,
    /// Enclosing `impl`/`trait` type name, if any (`QueryScratch` for
    /// `impl QueryScratch { fn intersect … }`).
    pub owner: Option<String>,
    /// 1-based line of the function name.
    pub line: u32,
    /// 1-based column of the function name.
    pub col: u32,
    /// Parsed signature parameters.
    pub params: Vec<Param>,
    /// The declared return type as space-joined token text
    /// (`io :: Result < ( ) >`); empty for `()`-returning functions.
    /// The `error-swallow` rule matches on it to recognize discarded
    /// workspace `io::Result`s.
    pub ret: String,
    /// The body tokens, including the outer braces. Empty for bodyless
    /// trait-method declarations.
    pub tokens: Vec<Token>,
}

impl FnDef {
    /// `Owner::name` when owned, plain `name` otherwise — for diagnostics.
    pub fn qual_name(&self) -> String {
        match &self.owner {
            Some(o) => format!("{o}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct Call {
    /// Callee name (method or function name; macro name for macros).
    pub name: String,
    /// `Some("Vec")` for `Vec::new(…)` — the path segment right before
    /// the final `::`.
    pub qual: Option<String>,
    /// For method calls, the first identifier of the receiver chain
    /// (`scratch` in `scratch.cands.push(…)`); `None` when the receiver
    /// is a computed expression.
    pub recv_root: Option<String>,
    /// Whether this is a method call (`recv.name(…)`).
    pub is_method: bool,
    /// Whether this is a macro invocation (`name!(…)`).
    pub is_macro: bool,
    /// 1-based line of the callee name.
    pub line: u32,
    /// 1-based column of the callee name.
    pub col: u32,
}

/// Keywords that look like `ident (` in the token stream but are not
/// calls.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "in", "as", "move", "loop", "else", "let", "ref",
    "mut", "box", "unsafe", "break", "continue", "where", "impl", "dyn", "fn",
];

/// Parses every `fn` item in `file` (test items already stripped by
/// [`SourceFile::parse`]), attributing each to its enclosing
/// `impl`/`trait` block.
pub fn parse_fns(krate: &str, file: &SourceFile) -> Vec<FnDef> {
    let t = &file.tokens;
    let mut out = Vec::new();
    // Stack of (owner name, brace depth at which the owning block opened).
    let mut owners: Vec<(Option<String>, i64)> = Vec::new();
    let mut pending_owner: Option<Option<String>> = None;
    let mut depth: i64 = 0;
    let mut i = 0;
    while i < t.len() {
        let tok = &t[i];
        if tok.is_punct('{') {
            depth += 1;
            if let Some(owner) = pending_owner.take() {
                owners.push((owner, depth));
            }
            i += 1;
            continue;
        }
        if tok.is_punct('}') {
            depth -= 1;
            while owners.last().is_some_and(|&(_, d)| d > depth) {
                owners.pop();
            }
            i += 1;
            continue;
        }
        if tok.is_ident("impl") || tok.is_ident("trait") {
            let (owner, at) = parse_owner_header(t, i + 1);
            pending_owner = Some(owner);
            i = at; // at the `{` (or wherever the header scan stopped)
            continue;
        }
        if tok.is_ident("fn") {
            let owner = owners.last().and_then(|(o, _)| o.clone());
            if let Some((def, next)) = parse_fn(krate, file, t, i, owner) {
                out.push(def);
                i = next;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// Scans an `impl`/`trait` header starting just past the keyword,
/// returning the owning type name and the index of the body `{` (or the
/// terminating `;`). For `impl Trait for Type` the type wins; generics
/// and `where` clauses are skipped.
fn parse_owner_header(t: &[Token], start: usize) -> (Option<String>, usize) {
    let mut angle = 0i64;
    let mut paren = 0i64;
    let mut pre: Option<String> = None;
    let mut post: Option<String> = None;
    let mut saw_for = false;
    let mut in_where = false;
    let mut j = start;
    while j < t.len() {
        let tok = &t[j];
        if tok.is_punct('<') {
            angle += 1;
        } else if tok.is_punct('>') {
            angle -= 1;
        } else if tok.is_punct('(') {
            paren += 1;
        } else if tok.is_punct(')') {
            paren -= 1;
        } else if (tok.is_punct('{') || tok.is_punct(';')) && angle <= 0 && paren == 0 {
            break;
        } else if tok.kind == TokenKind::Ident && angle <= 0 && paren == 0 && !in_where {
            if tok.is_ident("for") {
                saw_for = true;
            } else if tok.is_ident("where") {
                in_where = true;
            } else if saw_for {
                // First path segment after `for` is enough to name the
                // type; later segments of `a::b::Type` refine it.
                post = Some(tok.text.clone());
                in_where = followed_by_where(t, j);
                if !in_where {
                    post = last_path_segment(t, j);
                }
            } else {
                pre = last_path_segment(t, j);
            }
        }
        j += 1;
    }
    (post.or(pre), j)
}

/// From an ident at `j`, walks a `a::b::c` path forward and returns the
/// final segment.
fn last_path_segment(t: &[Token], j: usize) -> Option<String> {
    let mut k = j;
    loop {
        let next_is_path = t.get(k + 1).is_some_and(|x| x.is_punct(':'))
            && t.get(k + 2).is_some_and(|x| x.is_punct(':'))
            && t.get(k + 3).is_some_and(|x| x.kind == TokenKind::Ident);
        if next_is_path {
            k += 3;
        } else {
            return Some(t[k].text.clone());
        }
    }
}

fn followed_by_where(t: &[Token], j: usize) -> bool {
    t.get(j + 1).is_some_and(|x| x.is_ident("where"))
}

/// Parses one `fn` starting at index `at` (the `fn` token). Returns the
/// definition and the index to resume scanning from.
fn parse_fn(
    krate: &str,
    file: &SourceFile,
    t: &[Token],
    at: usize,
    owner: Option<String>,
) -> Option<(FnDef, usize)> {
    let name_tok = t.get(at + 1)?;
    if name_tok.kind != TokenKind::Ident {
        return None;
    }
    let mut j = at + 2;
    // Generic parameters: skip a balanced `<…>` group.
    if t.get(j).is_some_and(|x| x.is_punct('<')) {
        let mut angle = 0i64;
        while j < t.len() {
            if t[j].is_punct('<') {
                angle += 1;
            } else if t[j].is_punct('>') {
                angle -= 1;
                if angle == 0 {
                    j += 1;
                    break;
                }
            }
            j += 1;
        }
    }
    // Parameter list.
    if !t.get(j).is_some_and(|x| x.is_punct('(')) {
        return None;
    }
    let params_open = j;
    let mut paren = 0i64;
    while j < t.len() {
        if t[j].is_punct('(') {
            paren += 1;
        } else if t[j].is_punct(')') {
            paren -= 1;
            if paren == 0 {
                break;
            }
        }
        j += 1;
    }
    let params_close = j;
    let params = parse_params(
        &t[params_open + 1..params_close.min(t.len())],
        owner.as_deref(),
    );
    // Return type / where clause: scan to the body `{` or a `;`
    // (trait-method declaration). Parenthesized groups in the return
    // type are skipped; `->` introduces no braces in this codebase's
    // signatures.
    j = params_close + 1;
    let sig_start = j;
    let mut sig_end = t.len();
    let mut paren = 0i64;
    let mut body: Vec<Token> = Vec::new();
    while j < t.len() {
        let tok = &t[j];
        if tok.is_punct('(') || tok.is_punct('[') {
            paren += 1;
        } else if tok.is_punct(')') || tok.is_punct(']') {
            paren -= 1;
        } else if tok.is_punct(';') && paren == 0 {
            sig_end = j;
            j += 1;
            break;
        } else if tok.is_punct('{') && paren == 0 {
            sig_end = j;
            let open = j;
            let mut braces = 0i64;
            while j < t.len() {
                if t[j].is_punct('{') {
                    braces += 1;
                } else if t[j].is_punct('}') {
                    braces -= 1;
                    if braces == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
            body = t[open..j].to_vec();
            break;
        }
        j += 1;
    }
    let ret = return_type(&t[sig_start..sig_end.min(t.len())]);
    Some((
        FnDef {
            krate: krate.to_string(),
            path: file.path.clone(),
            name: name_tok.text.clone(),
            owner,
            line: name_tok.line,
            col: name_tok.col,
            params,
            ret,
            tokens: body,
        },
        j,
    ))
}

/// The declared return type out of the signature tokens between the
/// parameter list's `)` and the body `{` (or declaration `;`): the
/// space-joined text after `->`, stopping at a top-level `where`.
fn return_type(sig: &[Token]) -> String {
    let mut start = None;
    for k in 0..sig.len().saturating_sub(1) {
        if sig[k].is_punct('-') && sig[k + 1].is_punct('>') {
            start = Some(k + 2);
            break;
        }
    }
    let Some(start) = start else {
        return String::new();
    };
    let mut depth = 0i64;
    let mut out: Vec<&str> = Vec::new();
    for tok in &sig[start..] {
        if tok.is_punct('<') || tok.is_punct('(') || tok.is_punct('[') {
            depth += 1;
        } else if tok.is_punct('>') || tok.is_punct(')') || tok.is_punct(']') {
            depth -= 1;
        } else if tok.is_ident("where") && depth <= 0 {
            break;
        }
        out.push(tok.text.as_str());
    }
    out.join(" ")
}

/// Splits a parameter token slice at top-level commas and extracts
/// (name, type) per parameter.
fn parse_params(t: &[Token], owner: Option<&str>) -> Vec<Param> {
    let mut params = Vec::new();
    let mut depth = 0i64;
    let mut start = 0usize;
    let mut pieces: Vec<&[Token]> = Vec::new();
    for (k, tok) in t.iter().enumerate() {
        if tok.is_punct('(') || tok.is_punct('[') || tok.is_punct('<') {
            depth += 1;
        } else if tok.is_punct(')') || tok.is_punct(']') || tok.is_punct('>') {
            depth -= 1;
        } else if tok.is_punct(',') && depth <= 0 {
            pieces.push(&t[start..k]);
            start = k + 1;
        }
    }
    if start < t.len() {
        pieces.push(&t[start..]);
    }
    for piece in pieces {
        if piece.is_empty() {
            continue;
        }
        // The colon separating pattern from type, at top level.
        let mut depth = 0i64;
        let mut colon: Option<usize> = None;
        for (k, tok) in piece.iter().enumerate() {
            if tok.is_punct('(') || tok.is_punct('[') || tok.is_punct('<') {
                depth += 1;
            } else if tok.is_punct(')') || tok.is_punct(']') || tok.is_punct('>') {
                depth -= 1;
            } else if tok.is_punct(':') && depth == 0 {
                // `::` in a default-type path is two colon tokens; a
                // pattern colon is a lone one.
                let double = piece.get(k + 1).is_some_and(|x| x.is_punct(':'))
                    || (k > 0 && piece[k - 1].is_punct(':'));
                if !double {
                    colon = Some(k);
                    break;
                }
            }
        }
        match colon {
            None => {
                // A self form: `self`, `&self`, `&mut self`.
                if piece.iter().any(|x| x.is_ident("self")) {
                    params.push(Param {
                        name: "self".to_string(),
                        ty: owner.unwrap_or("Self").to_string(),
                    });
                }
            }
            Some(c) => {
                let name = piece[..c]
                    .iter()
                    .rev()
                    .find(|x| {
                        x.kind == TokenKind::Ident && !x.is_ident("mut") && !x.is_ident("ref")
                    })
                    .map(|x| x.text.clone());
                let ty = piece[c + 1..]
                    .iter()
                    .map(|x| x.text.as_str())
                    .collect::<Vec<_>>()
                    .join(" ");
                if let Some(name) = name {
                    params.push(Param { name, ty });
                }
            }
        }
    }
    params
}

/// Extracts every call site from a body token slice. See [`Call`] for
/// the recognized forms.
pub fn extract_calls(tokens: &[Token]) -> Vec<Call> {
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        let tok = &tokens[i];
        if tok.kind != TokenKind::Ident {
            continue;
        }
        let Some(next) = tokens.get(i + 1) else {
            continue;
        };
        // Macro invocation: `name ! (` / `name ! [` / `name ! {`.
        if next.is_punct('!')
            && tokens
                .get(i + 2)
                .is_some_and(|d| d.is_punct('(') || d.is_punct('[') || d.is_punct('{'))
        {
            out.push(Call {
                name: tok.text.clone(),
                qual: None,
                recv_root: None,
                is_method: false,
                is_macro: true,
                line: tok.line,
                col: tok.col,
            });
            continue;
        }
        if !next.is_punct('(') {
            continue;
        }
        if NON_CALL_KEYWORDS.iter().any(|k| tok.is_ident(k)) {
            continue;
        }
        // `fn name(` is a definition (nested items / closures in bodies).
        if i > 0 && tokens[i - 1].is_ident("fn") {
            continue;
        }
        let is_method = i > 0 && tokens[i - 1].is_punct('.');
        let qual = if !is_method
            && i >= 3
            && tokens[i - 1].is_punct(':')
            && tokens[i - 2].is_punct(':')
            && tokens[i - 3].kind == TokenKind::Ident
        {
            Some(tokens[i - 3].text.clone())
        } else {
            None
        };
        let recv_root = if is_method {
            receiver_root(tokens, i - 1)
        } else {
            None
        };
        out.push(Call {
            name: tok.text.clone(),
            qual,
            recv_root,
            is_method,
            is_macro: false,
            line: tok.line,
            col: tok.col,
        });
    }
    out
}

/// Walks a `a.b.c.` receiver chain backwards from the `.` at `dot`,
/// returning the chain's first identifier, or `None` when the receiver
/// is a computed expression (`f().g(…)`, `x[0].g(…)`).
fn receiver_root(tokens: &[Token], dot: usize) -> Option<String> {
    let mut k = dot; // index of a `.` whose left side we inspect
    loop {
        if k == 0 {
            return None;
        }
        let left = &tokens[k - 1];
        if left.kind != TokenKind::Ident && left.kind != TokenKind::Number {
            return None; // `)`, `]`, `?`, literal-free chains: computed
        }
        if k >= 2 && tokens[k - 2].is_punct('.') {
            k -= 2;
            continue;
        }
        return Some(left.text.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> Vec<FnDef> {
        parse_fns("snippet", &SourceFile::parse("snippet.rs", src))
    }

    #[test]
    fn free_and_impl_fns_with_owners() {
        let fns = parse(
            "fn free() {}\n\
             impl QueryScratch {\n    fn intersect(&mut self, side: Postings<'_>) {}\n}\n\
             impl fmt::Display for Diagnostic {\n    fn fmt(&self) {}\n}\n",
        );
        let names: Vec<(String, Option<String>)> = fns
            .iter()
            .map(|f| (f.name.clone(), f.owner.clone()))
            .collect();
        assert_eq!(
            names,
            vec![
                ("free".into(), None),
                ("intersect".into(), Some("QueryScratch".into())),
                ("fmt".into(), Some("Diagnostic".into())),
            ]
        );
    }

    #[test]
    fn generic_impl_headers_resolve_the_type() {
        let fns = parse(
            "impl<I: TemporalIrIndex + Clone> QueryPool<I> {\n    fn submit(&self) {}\n}\n\
             impl<T> Deref for TrackedGuard<'_, T> {\n    fn deref(&self) -> &T { &self.inner }\n}\n",
        );
        assert_eq!(fns[0].owner.as_deref(), Some("QueryPool"));
        assert_eq!(fns[1].owner.as_deref(), Some("TrackedGuard"));
    }

    #[test]
    fn trait_blocks_own_default_methods() {
        let fns = parse(
            "pub trait TemporalIrIndex {\n    fn query(&self, q: &Q) -> Vec<u32>;\n    \
             fn query_into(&self, q: &Q, out: &mut Vec<u32>) { out.extend(self.query(q)); }\n}\n",
        );
        assert_eq!(fns.len(), 2);
        assert_eq!(fns[0].owner.as_deref(), Some("TemporalIrIndex"));
        assert!(fns[0].tokens.is_empty(), "declaration has no body");
        assert!(!fns[1].tokens.is_empty(), "default method has a body");
    }

    #[test]
    fn params_capture_names_and_types() {
        let fns = parse(
            "impl Tif {\n    fn query_into(&self, q: &TimeTravelQuery, scratch: &mut QueryScratch, out: &mut Vec<ObjectId>) {}\n}\n",
        );
        let p = &fns[0].params;
        assert_eq!(p[0].name, "self");
        assert_eq!(p[0].ty, "Tif");
        assert_eq!(p[2].name, "scratch");
        assert!(p[2].ty.contains("QueryScratch"), "{}", p[2].ty);
        assert_eq!(p[3].name, "out");
        assert!(p[3].ty.contains("Vec"), "{}", p[3].ty);
    }

    #[test]
    fn nested_modules_keep_owner_attribution() {
        let fns = parse(
            "mod outer {\n    impl Widget {\n        fn inner(&self) {}\n    }\n    fn free_in_mod() {}\n}\n\
             fn top() {}\n",
        );
        assert_eq!(fns[0].owner.as_deref(), Some("Widget"));
        assert_eq!(fns[1].owner, None, "mod does not leak the impl owner");
        assert_eq!(fns[2].owner, None);
    }

    #[test]
    fn cfg_test_functions_are_invisible() {
        let fns = parse(
            "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n    mod nested {\n        fn deeper() {}\n    }\n}\n",
        );
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].name, "live");
    }

    #[test]
    fn calls_with_quals_receivers_and_macros() {
        let fns = parse(
            "fn f(scratch: &mut QueryScratch) {\n    \
             let v = Vec::new();\n    \
             scratch.cands.push(1);\n    \
             helper(2);\n    \
             format!(\"x\");\n    \
             self.store.snapshot().index.len();\n}\n",
        );
        let calls = extract_calls(&fns[0].tokens);
        let find = |n: &str| calls.iter().find(|c| c.name == n).expect("call present");
        assert_eq!(find("new").qual.as_deref(), Some("Vec"));
        assert_eq!(find("push").recv_root.as_deref(), Some("scratch"));
        assert!(find("push").is_method);
        assert!(!find("helper").is_method);
        assert!(find("format").is_macro);
        // `.len()` follows `snapshot()` — a computed receiver.
        assert_eq!(find("len").recv_root, None);
        assert_eq!(find("snapshot").recv_root.as_deref(), Some("self"));
    }

    #[test]
    fn closure_calls_attribute_to_enclosing_fn() {
        let fns = parse(
            "fn accept_loop() {\n    spawn(move || {\n        serve_connection(1);\n    });\n}\n",
        );
        let calls = extract_calls(&fns[0].tokens);
        assert!(calls.iter().any(|c| c.name == "serve_connection"));
    }

    #[test]
    fn bodyless_then_braced_items_resume_cleanly() {
        let fns = parse(
            "trait T {\n    fn a(&self);\n    fn b(&self) { marker(); }\n}\n\
             fn after() {}\n",
        );
        assert_eq!(fns.len(), 3);
        assert_eq!(fns[2].name, "after");
    }
}
