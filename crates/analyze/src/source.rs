//! A lexed source file plus everything the rules need to judge it:
//! the code-token stream with `#[cfg(test)]` regions removed, and the
//! parsed `// analyze:allow(rule)` suppressions with their line extents.
//!
//! ## Suppression syntax
//!
//! ```text
//! stats.served.fetch_add(1, Ordering::Relaxed); // analyze:allow(atomic-ordering): telemetry counter
//!
//! // analyze:allow(unguarded-cast): masked to 7 bits above
//! let byte = (v & 0x7f) as u8;
//! ```
//!
//! A trailing allow covers its own line. An allow on a line of its own
//! covers the *statement* that starts on the next code line (through the
//! terminating `;` or the end of the enclosing block), so multi-line
//! method chains need only one annotation. The text after the optional
//! `:` is the justification; the `atomic-ordering` rule requires it to
//! be non-empty.

use crate::lexer::{lex, Token, TokenKind};

/// One parsed `analyze:allow(...)` annotation.
#[derive(Debug, Clone)]
pub struct Allow {
    /// The rule name inside the parentheses.
    pub rule: String,
    /// First source line the annotation covers.
    pub from_line: u32,
    /// Last source line the annotation covers (inclusive).
    pub to_line: u32,
    /// Free-text justification after the `:` (may be empty).
    pub justification: String,
}

/// A file ready for rule evaluation.
#[derive(Debug)]
pub struct SourceFile {
    /// Path as reported in diagnostics (workspace-relative by convention).
    pub path: String,
    /// Code tokens only: comments stripped, `#[cfg(test)]` items removed.
    pub tokens: Vec<Token>,
    /// Parsed suppressions, extents resolved.
    pub allows: Vec<Allow>,
}

impl SourceFile {
    /// Lexes and prepares `text`.
    pub fn parse(path: impl Into<String>, text: &str) -> SourceFile {
        let all = lex(text);
        let comments: Vec<&Token> = all
            .iter()
            .filter(|t| matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
            .collect();
        let code: Vec<Token> = all
            .iter()
            .filter(|t| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
            .cloned()
            .collect();
        let code = strip_test_items(code);
        let allows = resolve_allows(&comments, &code);
        SourceFile {
            path: path.into(),
            tokens: code,
            allows,
        }
    }

    /// The innermost allow for `rule` covering `line`, if any.
    pub fn allow(&self, rule: &str, line: u32) -> Option<&Allow> {
        self.allows
            .iter()
            .find(|a| a.rule == rule && (a.from_line..=a.to_line).contains(&line))
    }
}

/// The innermost allow for `rule` covering `line` of `path`, out of a
/// per-path allow map — the whole-program rules' counterpart of
/// [`SourceFile::allow`] (they run after the per-file pass, against
/// retained annotations).
pub fn allow_in<'a>(
    allows: &'a std::collections::HashMap<String, Vec<Allow>>,
    path: &str,
    rule: &str,
    line: u32,
) -> Option<&'a Allow> {
    allows
        .get(path)?
        .iter()
        .find(|a| a.rule == rule && (a.from_line..=a.to_line).contains(&line))
}

/// Removes every item annotated `#[cfg(test)]` from the token stream
/// (the repo convention keeps unit tests in a trailing `mod tests`).
/// Only the exact form `cfg(test)` matches — `cfg(not(test))` is live
/// code and stays.
fn strip_test_items(tokens: Vec<Token>) -> Vec<Token> {
    let mut out = Vec::with_capacity(tokens.len());
    let mut i = 0;
    while i < tokens.len() {
        if is_cfg_test_attr(&tokens, i) {
            // Skip the attribute itself (7 tokens: # [ cfg ( test ) ])
            // and then the item it decorates: everything through the
            // matching `}` of its first top-level brace, or through a
            // `;` for braceless items (`#[cfg(test)] use …;`).
            i += 7;
            let mut depth = 0usize;
            while i < tokens.len() {
                let t = &tokens[i];
                if t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct('}') {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                } else if t.is_punct(';') && depth == 0 {
                    i += 1;
                    break;
                }
                i += 1;
            }
        } else {
            out.push(tokens[i].clone());
            i += 1;
        }
    }
    out
}

fn is_cfg_test_attr(tokens: &[Token], i: usize) -> bool {
    tokens.len() >= i + 7
        && tokens[i].is_punct('#')
        && tokens[i + 1].is_punct('[')
        && tokens[i + 2].is_ident("cfg")
        && tokens[i + 3].is_punct('(')
        && tokens[i + 4].is_ident("test")
        && tokens[i + 5].is_punct(')')
        && tokens[i + 6].is_punct(']')
}

/// Parses `analyze:allow(rule)` / `analyze:allow(rule): why` out of a
/// comment body, tolerating doc sigils and leading whitespace.
fn parse_allow(comment: &str) -> Option<(String, String)> {
    let body = comment
        .trim_start_matches('/')
        .trim_start_matches(['!', '*'])
        .trim_start();
    let rest = body.strip_prefix("analyze:allow(")?;
    let close = rest.find(')')?;
    let rule = rest[..close].trim().to_string();
    if rule.is_empty() {
        return None;
    }
    let after = rest[close + 1..].trim_start();
    let justification = after.strip_prefix(':').unwrap_or("").trim().to_string();
    Some((rule, justification))
}

fn resolve_allows(comments: &[&Token], code: &[Token]) -> Vec<Allow> {
    let mut allows = Vec::new();
    for c in comments {
        let Some((rule, justification)) = parse_allow(&c.text) else {
            continue;
        };
        let trailing = code.iter().any(|t| t.line == c.line && t.col < c.col);
        let (from_line, to_line) = if trailing {
            (c.line, c.line)
        } else {
            statement_extent(code, c.line)
        };
        allows.push(Allow {
            rule,
            from_line,
            to_line,
            justification,
        });
    }
    allows
}

/// For an own-line allow above `after_line`, the covered range: from the
/// first code line past the comment through the end of the statement
/// starting there (`;` at the statement's own nesting level, or the
/// closing brace of the block it opens).
fn statement_extent(code: &[Token], after_line: u32) -> (u32, u32) {
    let Some(start) = code.iter().position(|t| t.line > after_line) else {
        return (after_line + 1, after_line + 1);
    };
    let from = code[start].line;
    let mut depth = 0i64;
    let mut last = from;
    for t in &code[start..] {
        last = t.line;
        if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct('}') || t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
            // Balanced `(..)` / `[..]` pairs (calls, generic tuples, array
            // literals) stay inside the statement; only a `}` closing a
            // block the statement opened — or any close past the
            // statement's own level — ends it.
            if depth < 0 || (depth == 0 && t.is_punct('}')) {
                break;
            }
        } else if t.is_punct(';') && depth == 0 {
            break;
        }
    }
    (from, last)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_modules_are_stripped() {
        let f = SourceFile::parse(
            "x.rs",
            "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n",
        );
        assert!(f.tokens.iter().any(|t| t.is_ident("live")));
        assert!(!f.tokens.iter().any(|t| t.is_ident("unwrap")));
    }

    #[test]
    fn cfg_not_test_is_kept() {
        let f = SourceFile::parse("x.rs", "#[cfg(not(test))]\nfn live() { marker(); }\n");
        assert!(f.tokens.iter().any(|t| t.is_ident("marker")));
    }

    #[test]
    fn braceless_cfg_test_item() {
        let f = SourceFile::parse("x.rs", "#[cfg(test)]\nuse foo::bar;\nfn live() {}\n");
        assert!(!f.tokens.iter().any(|t| t.is_ident("bar")));
        assert!(f.tokens.iter().any(|t| t.is_ident("live")));
    }

    #[test]
    fn trailing_allow_covers_its_line() {
        let f = SourceFile::parse(
            "x.rs",
            "fn f() {\n    g(); // analyze:allow(some-rule): fine here\n    h();\n}\n",
        );
        let a = f.allow("some-rule", 2).expect("allow on line 2");
        assert_eq!(a.justification, "fine here");
        assert!(f.allow("some-rule", 3).is_none());
    }

    #[test]
    fn own_line_allow_covers_whole_statement() {
        let f = SourceFile::parse(
            "x.rs",
            "fn f() {\n    // analyze:allow(some-rule)\n    stats\n        .counter\n        .bump();\n    other();\n}\n",
        );
        assert!(f.allow("some-rule", 3).is_some());
        assert!(f.allow("some-rule", 5).is_some(), "chain tail covered");
        assert!(f.allow("some-rule", 6).is_none(), "next stmt not covered");
    }

    #[test]
    fn own_line_allow_survives_balanced_parens_in_types() {
        // `Vec<(A, B)>` closes a paren pair on the `let` line; the
        // statement must still extend to its terminating `;`.
        let f = SourceFile::parse(
            "x.rs",
            "fn f() {\n    // analyze:allow(some-rule): audited\n    let pairs: Vec<(String, String)> = [\n        (a, b.load()),\n        (c, d.load()),\n    ]\n    .to_vec();\n    other();\n}\n",
        );
        assert!(f.allow("some-rule", 4).is_some(), "array rows covered");
        assert!(f.allow("some-rule", 7).is_some(), "chained call covered");
        assert!(f.allow("some-rule", 8).is_none(), "next stmt not covered");
    }

    #[test]
    fn allow_without_justification_parses_empty() {
        let f = SourceFile::parse("x.rs", "// analyze:allow(r)\nfn f() {}\n");
        assert_eq!(f.allow("r", 2).expect("covers fn line").justification, "");
    }
}
