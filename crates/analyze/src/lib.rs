//! # tir-analyze
//!
//! A from-scratch, dependency-free static-analysis engine for the
//! temporal-ir workspace. It replaces the PR 1 substring scanner with a
//! real Rust [`lexer`] (strings, raw strings, char literals, nested
//! comments, raw identifiers), a lightweight item/function [`parser`]
//! layered on it, a workspace-wide [`callgraph`] with suffix-based name
//! resolution and a [`reach`]ability engine, and an intra-procedural
//! [`dataflow`] phase (def-use chains, taint, guard tracking) — feeding
//! a rule framework that produces `path:line:col` diagnostics with
//! per-site `// analyze:allow(rule-name)` suppressions (see [`source`]
//! for the exact syntax and extents).
//!
//! ## Rule catalog
//!
//! Token-local rules, judged per file:
//!
//! | rule | fires on |
//! |------|----------|
//! | `lock-order` | cycles in the per-crate Mutex-acquisition graph; re-locking a held mutex |
//! | `atomic-ordering` | any `Ordering::Relaxed` without a per-site justification comment |
//! | `raw-lock` | bare `.lock()` calls that bypass the tracked poison-tolerant helper |
//! | `panic-path` | `.unwrap()`, `todo!`, `unimplemented!`, `dbg!`, `panic!`, message-less `.expect()` in library code |
//! | `unguarded-cast` | narrowing `as` casts in hot-path crates without a fits-proof annotation |
//! | `unbounded-channel` | `std::sync::mpsc::channel()` (no backpressure) |
//! | `blocking-under-lock` | channel/thread/socket/I-O waits or nested acquisitions inside a lock-held region |
//! | `unsafe-code` | any `unsafe` token; non-suppressible outside the audited mmap wrapper, per-site justified inside it |
//!
//! Whole-program rules, judged over the workspace call graph (and the
//! per-function dataflow results) in [`Analysis::finish`]:
//!
//! | rule | fires on |
//! |------|----------|
//! | `hot-path-alloc` | allocating APIs reachable from `query_into` / planner kernels, outside declared scratch arenas |
//! | `panic-reachability` | panicking calls reachable from the serve accept loop / worker pool, with the full call chain |
//! | `untrusted-length` | disk-decoded lengths/offsets reaching an index, capacity, or arithmetic sink unchecked, with the def-use chain |
//! | `durability-ordering` | append → fsync → apply/ack order broken in the durable engine; `fs::rename` before data fsync or without a directory fsync |
//! | `error-swallow` | `let _ =` / `.ok()` discarding an `io::Result` in library code |
//!
//! `#[cfg(test)]` items are exempt from every rule. The driver is
//! `cargo xtask analyze` (part of `cargo xtask lint`); the old
//! `cargo xtask srclint` is an alias kept for CI and muscle memory.
//!
//! ```
//! use tir_analyze::{Analysis, Config};
//!
//! let mut a = Analysis::new(Config::default());
//! a.add_file("demo", "demo/lib.rs", "fn f(x: Option<u32>) -> u32 { x.unwrap() }");
//! let diags = a.finish();
//! assert_eq!(diags.len(), 1);
//! assert_eq!(diags[0].rule, "panic-path");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod callgraph;
pub mod dataflow;
pub mod diag;
pub mod lexer;
pub mod parser;
pub mod reach;
pub mod rules;
pub mod source;

use std::collections::{BTreeMap, HashMap};

pub use diag::Diagnostic;
pub use source::SourceFile;

use callgraph::CallGraph;
use parser::FnDef;
use rules::lock_order::LockGraph;
use source::Allow;

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Crates the `unguarded-cast` rule applies to (`None` = every
    /// crate). The workspace gate restricts it to the hot-path crates
    /// `hint`, `invidx`, `core`, where a silent truncation corrupts
    /// query answers.
    pub cast_crates: Option<Vec<String>>,
    /// Function names whose bodies root the `hot-path-alloc`
    /// reachability walk: the `query_into` implementations and the
    /// planner kernels.
    pub hot_path_roots: Vec<String>,
    /// Call names the hot-path walk does not traverse. `query` by
    /// default: the `TemporalIrIndex` default `query_into` delegates to
    /// the allocating cold-path `query`.
    pub hot_path_cuts: Vec<String>,
    /// Type names declared as scratch arenas: their impls are exempt
    /// from `hot-path-alloc`, and receivers rooted in them may grow.
    pub scratch_arenas: Vec<String>,
    /// Substrings of parameter types that mark a binding as a legal
    /// growth sink (caller-owned output buffers, arena borrows).
    pub growth_sinks: Vec<String>,
    /// Function names rooting the `panic-reachability` walk: the serve
    /// accept loop and the worker pool's thread body.
    pub serve_roots: Vec<String>,
    /// Path suffixes of the files allowed to contain (per-site
    /// justified) `unsafe` — the audited mmap wrapper. Everywhere else
    /// `unsafe-code` fires non-suppressibly.
    pub unsafe_audited_paths: Vec<String>,
    /// Crates the `untrusted-length` taint audit applies to (`None` =
    /// every crate). The workspace gate restricts it to `persist`,
    /// where byte parsers decode attacker-controllable lengths.
    pub taint_crates: Option<Vec<String>>,
    /// Call names that produce untrusted values: the little-endian
    /// decoders and the byte-column accessor.
    pub taint_sources: Vec<String>,
    /// Call names that validate a value they receive or clamp: flowing
    /// through one marks the receiver chain and arguments validated.
    pub taint_guards: Vec<String>,
    /// Function names that are durable entry points: each must order
    /// append → fsync → apply internally, and callers must ack after
    /// calling one (`durability-ordering`).
    pub durable_entries: Vec<String>,
    /// Call names that append to the WAL.
    pub durable_appends: Vec<String>,
    /// Call names that flush to stable storage.
    pub durable_syncs: Vec<String>,
    /// Call names that apply ops to the in-memory index.
    pub durable_applies: Vec<String>,
    /// Method names that ack a client (checked to follow the durable
    /// entry call in token order).
    pub durable_acks: Vec<String>,
    /// When set, only the named rules run — the `cargo xtask analyze
    /// --rule <name>` debugging path skips every other rule's pass
    /// entirely (including the reachability walks). `None` = all rules.
    pub rule_filter: Option<Vec<String>>,
}

impl Config {
    /// Whether `rule` participates in this session (see
    /// [`Config::rule_filter`]).
    pub fn rule_enabled(&self, rule: &str) -> bool {
        self.rule_filter
            .as_ref()
            .is_none_or(|f| f.iter().any(|r| r == rule))
    }
}

impl Default for Config {
    fn default() -> Config {
        let s = |v: &[&str]| v.iter().map(|x| x.to_string()).collect();
        Config {
            cast_crates: None,
            hot_path_roots: s(&[
                "query_into",
                "intersect_merge_into",
                "intersect_gallop_into",
                "intersect_adaptive_into",
                "mark_hits",
                "intersect_ids_into",
            ]),
            hot_path_cuts: s(&["query"]),
            scratch_arenas: s(&["QueryScratch"]),
            growth_sinks: s(&["QueryScratch", "Vec", "String"]),
            serve_roots: s(&["accept_loop", "worker_loop"]),
            unsafe_audited_paths: s(&["persist/src/mmap.rs", "invidx/src/simd.rs"]),
            taint_crates: None,
            taint_sources: s(&["read_u32", "read_u64", "get"]),
            taint_guards: s(&[
                "min",
                "max",
                "clamp",
                "checked_add",
                "checked_sub",
                "checked_mul",
                "saturating_add",
                "saturating_sub",
                "saturating_mul",
                "is_multiple_of",
            ]),
            durable_entries: s(&["apply_batch"]),
            durable_appends: s(&["append"]),
            durable_syncs: s(&["sync", "sync_all", "sync_data"]),
            durable_applies: s(&["apply_ops"]),
            durable_acks: s(&["send"]),
            rule_filter: None,
        }
    }
}

/// Everything [`Analysis::finish_report`] returns: the inputs seen, the
/// suppression inventory, and the sorted findings — the payload of
/// `cargo xtask analyze --json`.
pub struct Report {
    /// Number of files fed to the session.
    pub files: usize,
    /// Count of `analyze:allow` annotations per rule name across all
    /// files — the audit surface a reviewer diffs against the baseline.
    pub allows: BTreeMap<String, usize>,
    /// Every diagnostic, sorted by path/line/column/rule.
    pub diagnostics: Vec<Diagnostic>,
}

/// The analysis session: feed files with [`Analysis::add_file`], collect
/// everything with [`Analysis::finish`]. Token-local rules run
/// immediately; `lock-order` cycles and the whole-program rules
/// (`hot-path-alloc`, `panic-reachability`) resolve at the end, once
/// the complete call graph exists.
pub struct Analysis {
    config: Config,
    diags: Vec<Diagnostic>,
    graphs: HashMap<String, LockGraph>,
    files: usize,
    fns: Vec<FnDef>,
    allows_by_path: HashMap<String, Vec<Allow>>,
    allow_counts: BTreeMap<String, usize>,
}

impl Analysis {
    /// Starts an empty session.
    pub fn new(config: Config) -> Analysis {
        Analysis {
            config,
            diags: Vec::new(),
            graphs: HashMap::new(),
            files: 0,
            fns: Vec::new(),
            allows_by_path: HashMap::new(),
            allow_counts: BTreeMap::new(),
        }
    }

    /// Number of files fed so far.
    pub fn files_seen(&self) -> usize {
        self.files
    }

    /// Lexes `text` and runs every applicable per-file rule, retaining
    /// the parsed functions and suppressions for the whole-program
    /// passes. `krate` groups files for the lock-order graph; `path` is
    /// what diagnostics report.
    pub fn add_file(&mut self, krate: &str, path: &str, text: &str) {
        self.files += 1;
        let file = SourceFile::parse(path, text);

        let mut raw: Vec<Diagnostic> = Vec::new();
        let on = |rule: &str| self.config.rule_enabled(rule);
        if on(rules::panic_path::NAME) {
            raw.extend(rules::panic_path::check(&file));
        }
        if on(rules::atomic_ordering::NAME) {
            raw.extend(rules::atomic_ordering::check(&file));
        }
        if on(rules::raw_lock::NAME) {
            raw.extend(rules::raw_lock::check(&file));
        }
        if on(rules::channel::NAME) {
            raw.extend(rules::channel::check(&file));
        }
        if on(rules::blocking_under_lock::NAME) {
            raw.extend(rules::blocking_under_lock::check(&file));
        }
        if on(rules::unsafe_code::NAME) {
            raw.extend(rules::unsafe_code::check(
                &file,
                &self.config.unsafe_audited_paths,
            ));
        }
        let cast_applies = match &self.config.cast_crates {
            None => true,
            Some(list) => list.iter().any(|c| c == krate),
        };
        if cast_applies && on(rules::cast::NAME) {
            raw.extend(rules::cast::check(&file));
        }

        // Suppression pass: a diagnostic is dropped when a matching
        // allow covers its line (rules that interpret annotations
        // themselves mark their output non-suppressible).
        self.diags.extend(
            raw.into_iter()
                .filter(|d| !d.suppressible || file.allow(d.rule, d.line).is_none()),
        );

        let graph = self.graphs.entry(krate.to_string()).or_default();
        self.diags.extend(graph.add_file(&file));

        self.fns.extend(parser::parse_fns(krate, &file));
        for a in &file.allows {
            *self.allow_counts.entry(a.rule.clone()).or_insert(0) += 1;
        }
        self.allows_by_path.insert(path.to_string(), file.allows);
    }

    /// Resolves the per-crate lock graphs, builds the workspace call
    /// graph, runs the whole-program rules, and returns the full
    /// [`Report`], diagnostics sorted by path/line/column.
    pub fn finish_report(mut self) -> Report {
        let mut crates: Vec<&String> = self.graphs.keys().collect();
        crates.sort();
        let mut late_diags = Vec::new();
        if self.config.rule_enabled(rules::lock_order::NAME) {
            for krate in crates {
                late_diags.extend(self.graphs[krate].check_cycles(krate));
            }
        }

        let graph = CallGraph::build(std::mem::take(&mut self.fns));
        if self.config.rule_enabled(rules::hot_path_alloc::NAME) {
            late_diags.extend(rules::hot_path_alloc::check(
                &graph,
                &self.allows_by_path,
                &self.config,
            ));
        }
        if self.config.rule_enabled(rules::panic_reach::NAME) {
            late_diags.extend(rules::panic_reach::check(
                &graph,
                &self.allows_by_path,
                &self.config,
            ));
        }
        if self.config.rule_enabled(rules::untrusted_length::NAME) {
            late_diags.extend(rules::untrusted_length::check(
                &graph,
                &self.allows_by_path,
                &self.config,
            ));
        }
        if self.config.rule_enabled(rules::durability_order::NAME) {
            late_diags.extend(rules::durability_order::check(
                &graph,
                &self.allows_by_path,
                &self.config,
            ));
        }
        if self.config.rule_enabled(rules::error_swallow::NAME) {
            late_diags.extend(rules::error_swallow::check(&graph, &self.allows_by_path));
        }

        self.diags.extend(late_diags);
        // Catch-all for per-file passes that piggyback on shared state
        // (the lock graph emits self-relock diagnostics while being
        // built): a filtered session reports only the selected rules.
        let config = &self.config;
        self.diags.retain(|d| config.rule_enabled(d.rule));
        self.diags.sort_by(|a, b| {
            (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule))
        });
        Report {
            files: self.files,
            allows: self.allow_counts,
            diagnostics: self.diags,
        }
    }

    /// [`Analysis::finish_report`] for callers that only want the
    /// diagnostics.
    pub fn finish(self) -> Vec<Diagnostic> {
        self.finish_report().diagnostics
    }
}

/// Convenience: run every rule over one snippet as crate `snippet`.
/// Used by the self-test corpus and handy in doctests.
pub fn analyze_snippet(text: &str) -> Vec<Diagnostic> {
    let mut a = Analysis::new(Config::default());
    a.add_file("snippet", "snippet.rs", text);
    a.finish()
}
