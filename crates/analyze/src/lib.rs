//! # tir-analyze
//!
//! A from-scratch, dependency-free static-analysis engine for the
//! temporal-ir workspace. It replaces the PR 1 substring scanner with a
//! real Rust [`lexer`] (strings, raw strings, char literals, nested
//! comments, raw identifiers) and a rule framework producing
//! `path:line:col` diagnostics with per-site
//! `// analyze:allow(rule-name)` suppressions (see [`source`] for the
//! exact syntax and extents).
//!
//! ## Rule catalog
//!
//! | rule | fires on |
//! |------|----------|
//! | `lock-order` | cycles in the per-crate Mutex-acquisition graph; re-locking a held mutex |
//! | `atomic-ordering` | any `Ordering::Relaxed` without a per-site justification comment |
//! | `raw-lock` | bare `.lock()` calls that bypass the tracked poison-tolerant helper |
//! | `panic-path` | `.unwrap()`, `todo!`, `unimplemented!`, `dbg!`, `panic!`, message-less `.expect()` in library code |
//! | `unguarded-cast` | narrowing `as` casts in hot-path crates without a fits-proof annotation |
//! | `unbounded-channel` | `std::sync::mpsc::channel()` (no backpressure) |
//!
//! `#[cfg(test)]` items are exempt from every rule. The driver is
//! `cargo xtask analyze` (part of `cargo xtask lint`); the old
//! `cargo xtask srclint` is an alias kept for CI and muscle memory.
//!
//! ```
//! use tir_analyze::{Analysis, Config};
//!
//! let mut a = Analysis::new(Config::default());
//! a.add_file("demo", "demo/lib.rs", "fn f(x: Option<u32>) -> u32 { x.unwrap() }");
//! let diags = a.finish();
//! assert_eq!(diags.len(), 1);
//! assert_eq!(diags[0].rule, "panic-path");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diag;
pub mod lexer;
pub mod rules;
pub mod source;

use std::collections::HashMap;

pub use diag::Diagnostic;
pub use source::SourceFile;

use rules::lock_order::LockGraph;

/// Engine configuration.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Crates the `unguarded-cast` rule applies to (`None` = every
    /// crate). The workspace gate restricts it to the hot-path crates
    /// `hint`, `invidx`, `core`, where a silent truncation corrupts
    /// query answers.
    pub cast_crates: Option<Vec<String>>,
}

/// The analysis session: feed files with [`Analysis::add_file`], collect
/// everything with [`Analysis::finish`]. Per-file rules run immediately;
/// `lock-order` accumulates a graph per crate and is resolved at the end.
pub struct Analysis {
    config: Config,
    diags: Vec<Diagnostic>,
    graphs: HashMap<String, LockGraph>,
    files: usize,
}

impl Analysis {
    /// Starts an empty session.
    pub fn new(config: Config) -> Analysis {
        Analysis {
            config,
            diags: Vec::new(),
            graphs: HashMap::new(),
            files: 0,
        }
    }

    /// Number of files fed so far.
    pub fn files_seen(&self) -> usize {
        self.files
    }

    /// Lexes `text` and runs every applicable rule. `krate` groups files
    /// for the lock-order graph; `path` is what diagnostics report.
    pub fn add_file(&mut self, krate: &str, path: &str, text: &str) {
        self.files += 1;
        let file = SourceFile::parse(path, text);

        let mut raw: Vec<Diagnostic> = Vec::new();
        raw.extend(rules::panic_path::check(&file));
        raw.extend(rules::atomic_ordering::check(&file));
        raw.extend(rules::raw_lock::check(&file));
        raw.extend(rules::channel::check(&file));
        let cast_applies = match &self.config.cast_crates {
            None => true,
            Some(list) => list.iter().any(|c| c == krate),
        };
        if cast_applies {
            raw.extend(rules::cast::check(&file));
        }

        // Suppression pass: a diagnostic is dropped when a matching
        // allow covers its line (rules that interpret annotations
        // themselves mark their output non-suppressible).
        self.diags.extend(
            raw.into_iter()
                .filter(|d| !d.suppressible || file.allow(d.rule, d.line).is_none()),
        );

        let graph = self.graphs.entry(krate.to_string()).or_default();
        self.diags.extend(graph.add_file(&file));
    }

    /// Resolves the per-crate lock graphs and returns every diagnostic,
    /// sorted by path/line/column.
    pub fn finish(mut self) -> Vec<Diagnostic> {
        let mut crates: Vec<&String> = self.graphs.keys().collect();
        crates.sort();
        let mut cycle_diags = Vec::new();
        for krate in crates {
            cycle_diags.extend(self.graphs[krate].check_cycles(krate));
        }
        self.diags.extend(cycle_diags);
        self.diags.sort_by(|a, b| {
            (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule))
        });
        self.diags
    }
}

/// Convenience: run every rule over one snippet as crate `snippet`.
/// Used by the self-test corpus and handy in doctests.
pub fn analyze_snippet(text: &str) -> Vec<Diagnostic> {
    let mut a = Analysis::new(Config::default());
    a.add_file("snippet", "snippet.rs", text);
    a.finish()
}
