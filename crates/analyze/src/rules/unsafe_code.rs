//! `unsafe-code`: library crates are `#![forbid(unsafe_code)]` with a
//! short audited exception list — the mmap wrapper in `tir-persist` and
//! the SIMD intrinsics module in `tir-invidx`. This rule makes those
//! exceptions checkable: any `unsafe` token outside the configured
//! audited files is a **non-suppressible** diagnostic (an inline allow
//! cannot widen the audit surface), and even inside an audited file
//! every site needs a per-site
//! `// analyze:allow(unsafe-code): why this is sound` justification.

use crate::diag::Diagnostic;
use crate::source::SourceFile;

/// Rule name, as used by `analyze:allow(...)`.
pub const NAME: &str = "unsafe-code";

/// Runs the rule over one file. `audited_paths` are path suffixes of
/// the files allowed to contain justified `unsafe` (the mmap wrapper
/// and the SIMD intrinsics module).
pub fn check(file: &SourceFile, audited_paths: &[String]) -> Vec<Diagnostic> {
    let audited = audited_paths
        .iter()
        .any(|p| file.path.ends_with(p.as_str()));
    let mut out = Vec::new();
    for tok in &file.tokens {
        if !tok.is_ident("unsafe") {
            continue;
        }
        let d = if audited {
            Diagnostic::new(
                NAME,
                &file.path,
                tok.line,
                tok.col,
                "unsafe in an audited file still needs a per-site justification",
            )
        } else {
            Diagnostic::new(
                NAME,
                &file.path,
                tok.line,
                tok.col,
                "unsafe outside the audited exception list; library crates \
                 are forbid(unsafe_code)",
            )
            .unsuppressible()
        };
        out.push(d);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn audited() -> Vec<String> {
        vec!["persist/src/mmap.rs".to_string()]
    }

    #[test]
    fn unsafe_outside_audit_is_unsuppressible() {
        let f = SourceFile::parse(
            "crates/core/src/tif.rs",
            "// analyze:allow(unsafe-code): nice try\nfn f() { unsafe { work() } }\n",
        );
        let d = check(&f, &audited());
        assert_eq!(d.len(), 1);
        assert!(!d[0].suppressible);
    }

    #[test]
    fn unsafe_in_audited_file_is_suppressible() {
        let f = SourceFile::parse(
            "crates/persist/src/mmap.rs",
            "fn f() { unsafe { work() } }\n",
        );
        let d = check(&f, &audited());
        assert_eq!(d.len(), 1);
        assert!(d[0].suppressible, "audited files suppress per-site");
    }

    #[test]
    fn test_code_is_exempt() {
        let f = SourceFile::parse(
            "crates/core/src/tif.rs",
            "#[cfg(test)]\nmod tests {\n    fn t() { unsafe { work() } }\n}\n",
        );
        assert!(check(&f, &audited()).is_empty());
    }
}
