//! `lock-order`: extract a Mutex-acquisition graph per crate and fail on
//! cycles. Two threads taking the same two locks in opposite orders is a
//! deadlock that no unit test reliably reproduces; the rule catches it at
//! the source level.
//!
//! ## Model
//!
//! Acquisition sites are recognized in two forms:
//!
//! * helper form — `lock(&self.current)` (the tracked `lock()` helper):
//!   the mutex name is the last path segment inside the call;
//! * method form — `guard.lock()`: the name is the identifier preceding
//!   `.lock`.
//!
//! Within a function body the rule tracks which guards are *held*:
//!
//! * a guard bound directly by `let g = lock(…)` lives until the
//!   enclosing block closes or an explicit `drop(g)`;
//! * a temporary guard (`*lock(&x) = …`, `f(lock(&a), lock(&b))`) lives
//!   to the end of its statement.
//!
//! Every acquisition B while A is held contributes a directed edge
//! `A → B` (first witness site pair recorded). Edges across all files of
//! one crate form the graph; a cycle — including the 1-cycle of
//! re-locking a mutex already held, which with `std::sync::Mutex` is an
//! instant deadlock — is reported with the witnessing sites of every
//! edge on the cycle.
//!
//! Mutexes are identified by field/variable name, which is deliberately
//! coarse: the rule is a reviewer that errs toward asking, and a
//! false pairing is silenced per site with `// analyze:allow(lock-order)`.
//! The runtime witness in `tir-serve` (`witness.rs`) keys by mutex
//! *address* and covers whatever this approximation misses.

use std::collections::{HashMap, HashSet};

use crate::diag::Diagnostic;
use crate::lexer::Token;
use crate::source::SourceFile;

/// Rule name, as used by `analyze:allow(...)`.
pub const NAME: &str = "lock-order";

/// Where an edge endpoint was witnessed.
#[derive(Debug, Clone)]
pub struct Site {
    /// File of the acquisition.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl std::fmt::Display for Site {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}:{}", self.path, self.line, self.col)
    }
}

/// The per-crate acquisition graph, fed one file at a time.
#[derive(Debug, Default)]
pub struct LockGraph {
    /// `(held, acquired) → (site holding, site acquiring)`, first witness.
    edges: HashMap<(String, String), (Site, Site)>,
}

impl LockGraph {
    /// Scans one file's functions and adds every held-across edge.
    /// Immediate re-lock of a held name is reported straight away.
    pub fn add_file(&mut self, file: &SourceFile) -> Vec<Diagnostic> {
        let mut diags = Vec::new();
        for acq in scan_file(file).pairs {
            let AcquisitionPair { held, acquired } = acq;
            if held.name == acquired.name {
                diags.push(Diagnostic::new(
                    NAME,
                    &file.path,
                    acquired.site.line,
                    acquired.site.col,
                    format!(
                        "mutex `{}` re-locked while already held (acquired at {}); \
                         std::sync::Mutex self-deadlocks",
                        acquired.name, held.site
                    ),
                ));
                continue;
            }
            self.edges
                .entry((held.name.clone(), acquired.name.clone()))
                .or_insert((held.site.clone(), acquired.site.clone()));
        }
        diags
    }

    /// Cycle check over the accumulated graph. Each cycle is one
    /// diagnostic naming every edge with its witness sites.
    pub fn check_cycles(&self, crate_name: &str) -> Vec<Diagnostic> {
        let mut adj: HashMap<&str, Vec<&str>> = HashMap::new();
        for (from, to) in self.edges.keys() {
            adj.entry(from).or_default().push(to);
        }
        let mut nodes: Vec<&str> = adj.keys().copied().collect();
        nodes.sort_unstable();

        let mut done: HashSet<&str> = HashSet::new();
        let mut diags = Vec::new();
        for &start in &nodes {
            if done.contains(start) {
                continue;
            }
            let mut on_path: Vec<&str> = Vec::new();
            if let Some(cycle) = dfs(start, &adj, &mut on_path, &mut done) {
                // One diagnostic per cycle: mark its nodes handled so the
                // same loop is not re-reported from another entry point.
                for n in &cycle {
                    done.insert(n);
                }
                let mut lines = Vec::new();
                for w in cycle.windows(2) {
                    if let Some((hs, as_)) = self.edges.get(&(w[0].to_string(), w[1].to_string())) {
                        lines.push(format!(
                            "`{}` then `{}` ({} holds, {} acquires)",
                            w[0], w[1], hs, as_
                        ));
                    }
                }
                let (line, col) = self
                    .edges
                    .get(&(cycle[0].to_string(), cycle[1].to_string()))
                    .map(|(_, a)| (a.line, a.col))
                    .unwrap_or((0, 0));
                diags.push(
                    Diagnostic::new(
                        NAME,
                        &format!("crates/{crate_name}"),
                        line,
                        col,
                        format!(
                            "lock-order cycle in crate `{crate_name}`: {}",
                            lines.join("; ")
                        ),
                    )
                    .unsuppressible(),
                );
            }
        }
        diags
    }
}

/// DFS returning the first cycle found as a node path `[a, …, a]`.
fn dfs<'a>(
    node: &'a str,
    adj: &HashMap<&'a str, Vec<&'a str>>,
    on_path: &mut Vec<&'a str>,
    done: &mut HashSet<&'a str>,
) -> Option<Vec<&'a str>> {
    if let Some(pos) = on_path.iter().position(|&n| n == node) {
        let mut cycle: Vec<&str> = on_path[pos..].to_vec();
        cycle.push(node);
        return Some(cycle);
    }
    if done.contains(node) {
        return None;
    }
    on_path.push(node);
    if let Some(nexts) = adj.get(node) {
        let mut sorted = nexts.clone();
        sorted.sort_unstable();
        for next in sorted {
            if let Some(c) = dfs(next, adj, on_path, done) {
                return Some(c);
            }
        }
    }
    on_path.pop();
    done.insert(node);
    None
}

struct Held {
    name: String,
    site: Site,
    /// Variable the guard is bound to (None for statement temporaries).
    var: Option<String>,
    /// Brace depth at binding; the guard dies when depth drops below.
    depth: i64,
    /// Acquired at a site with a `lock-order` allow: kept out of the
    /// acquisition graph on both sides, but still a held region for the
    /// blocking scan.
    suppressed: bool,
}

pub(crate) struct AcquisitionPair {
    pub(crate) held: HeldRef,
    pub(crate) acquired: HeldRef,
}

pub(crate) struct HeldRef {
    pub(crate) name: String,
    pub(crate) site: Site,
}

/// A potentially blocking operation observed while at least one lock
/// guard was live — the raw material of the `blocking-under-lock` rule.
pub(crate) struct BlockingSite {
    /// What blocked: the call name, or `acquiring mutex `x`` for a
    /// nested lock acquisition.
    pub(crate) what: String,
    /// Name of the (first-acquired still-held) mutex.
    pub(crate) held_name: String,
    /// Where that mutex was acquired.
    pub(crate) held_site: Site,
    /// 1-based line of the blocking call.
    pub(crate) line: u32,
    /// 1-based column of the blocking call.
    pub(crate) col: u32,
}

/// Everything one pass over a file's functions yields: held-across
/// acquisition pairs (for the lock graph) and blocking calls made while
/// holding a guard (for `blocking-under-lock`).
pub(crate) struct FileScan {
    pub(crate) pairs: Vec<AcquisitionPair>,
    pub(crate) blocking: Vec<BlockingSite>,
}

/// Method names that can block the calling thread: channel operations,
/// thread joins/parking, socket syscalls, and buffered I/O. A call to
/// any of these while a mutex guard is live serializes every other
/// acquirer behind an unbounded wait.
const BLOCKING_CALLS: &[&str] = &[
    "recv",
    "recv_timeout",
    "send",
    "join",
    "sleep",
    "park",
    "park_timeout",
    "wait",
    "wait_timeout",
    "accept",
    "connect",
    "read_line",
    "read_to_end",
    "read_to_string",
    "read_exact",
    "write_all",
    "write_fmt",
    "flush",
    "copy",
];

/// Walks every `fn` body in the file, yielding a (held, acquired) pair
/// for each acquisition made while another guard is live, plus every
/// blocking call made in a lock-held region. Acquisition sites carrying
/// `analyze:allow(lock-order)` are excluded from the graph (but still
/// tracked as held, so the blocking scan stays sound).
pub(crate) fn scan_file(file: &SourceFile) -> FileScan {
    let t = &file.tokens;
    let mut scan = FileScan {
        pairs: Vec::new(),
        blocking: Vec::new(),
    };
    let mut i = 0;
    while i < t.len() {
        if t[i].is_ident("fn") {
            // Find the body `{` (skipping the parameter list and any
            // parenthesized groups in the return type).
            let mut j = i + 1;
            let mut paren = 0i64;
            while j < t.len() {
                if t[j].is_punct('(') {
                    paren += 1;
                } else if t[j].is_punct(')') {
                    paren -= 1;
                } else if t[j].is_punct('{') && paren == 0 {
                    break;
                } else if t[j].is_punct(';') && paren == 0 {
                    break; // trait method declaration, no body
                }
                j += 1;
            }
            if j < t.len() && t[j].is_punct('{') {
                let end = scan_body(file, j, &mut scan);
                i = end;
                continue;
            }
            i = j + 1;
            continue;
        }
        i += 1;
    }
    scan
}

/// Processes one brace-matched body starting at the `{` at `open`;
/// returns the index just past the matching `}`.
fn scan_body(file: &SourceFile, open: usize, scan: &mut FileScan) -> usize {
    let t = &file.tokens;
    let mut depth = 0i64;
    let mut held: Vec<Held> = Vec::new();
    let mut i = open;
    while i < t.len() {
        let tok = &t[i];
        if tok.is_punct('{') {
            depth += 1;
            held.retain(|h| h.var.is_some());
            i += 1;
            continue;
        }
        if tok.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
            held.retain(|h| h.var.is_some() && h.depth <= depth);
            i += 1;
            continue;
        }
        if tok.is_punct(';') {
            held.retain(|h| h.var.is_some());
            i += 1;
            continue;
        }
        // drop(var) releases a bound guard early.
        if i + 3 < t.len()
            && tok.is_ident("drop")
            && t[i + 1].is_punct('(')
            && t[i + 3].is_punct(')')
        {
            let var = t[i + 2].text.clone();
            held.retain(|h| h.var.as_deref() != Some(var.as_str()));
            i += 4;
            continue;
        }
        if let Some(acq) = match_acquisition(t, i) {
            let site = Site {
                path: file.path.clone(),
                line: t[acq.name_idx].line,
                col: t[acq.name_idx].col,
            };
            let suppressed = file.allow(NAME, site.line).is_some();
            if let Some(h) = held.first() {
                // A nested acquisition is also a blocking operation:
                // the inner lock's wait happens with the outer held.
                scan.blocking.push(BlockingSite {
                    what: format!("acquiring mutex `{}`", acq.mutex),
                    held_name: h.name.clone(),
                    held_site: h.site.clone(),
                    line: site.line,
                    col: site.col,
                });
            }
            if !suppressed {
                for h in held.iter().filter(|h| !h.suppressed) {
                    scan.pairs.push(AcquisitionPair {
                        held: HeldRef {
                            name: h.name.clone(),
                            site: h.site.clone(),
                        },
                        acquired: HeldRef {
                            name: acq.mutex.clone(),
                            site: site.clone(),
                        },
                    });
                }
            }
            // Track the guard either way, so a lock-order allow does
            // not blind the blocking scan to the held region.
            held.push(Held {
                name: acq.mutex,
                site,
                var: acq.bound_var,
                depth,
                suppressed,
            });
            i = acq.resume;
            continue;
        }
        // Blocking call in a held region: `recv.name(` or a bare
        // `sleep(…)`-style free call.
        if !held.is_empty()
            && tok.kind == crate::lexer::TokenKind::Ident
            && t.get(i + 1).is_some_and(|n| n.is_punct('('))
            && BLOCKING_CALLS.iter().any(|b| tok.is_ident(b))
        {
            let h = &held[0];
            scan.blocking.push(BlockingSite {
                what: format!("`{}`", tok.text),
                held_name: h.name.clone(),
                held_site: h.site.clone(),
                line: tok.line,
                col: tok.col,
            });
            i += 1;
            continue;
        }
        i += 1;
    }
    i
}

struct Acquisition {
    /// Name identifying the mutex (last path segment of the receiver).
    mutex: String,
    /// Token index of the name, for the diagnostic position.
    name_idx: usize,
    /// `Some(var)` when the guard is directly `let`-bound.
    bound_var: Option<String>,
    /// Token index to resume scanning from.
    resume: usize,
}

/// Recognizes an acquisition starting at token `i`, either
/// `lock(&path.to.mutex …)` (helper form, `lock` not preceded by `.`)
/// or `path.to.mutex.lock(` (method form, matched at the receiver's
/// final identifier).
fn match_acquisition(t: &[Token], i: usize) -> Option<Acquisition> {
    // Helper form: ident `lock` + `(`, not a method call on something.
    if t[i].is_ident("lock")
        && t.get(i + 1).is_some_and(|n| n.is_punct('('))
        && (i == 0 || !t[i - 1].is_punct('.'))
    {
        // The mutex name: last identifier inside the balanced parens.
        let mut j = i + 1;
        let mut paren = 0i64;
        let mut last_ident: Option<usize> = None;
        while j < t.len() {
            if t[j].is_punct('(') {
                paren += 1;
            } else if t[j].is_punct(')') {
                paren -= 1;
                if paren == 0 {
                    break;
                }
            } else if t[j].kind == crate::lexer::TokenKind::Ident {
                last_ident = Some(j);
            }
            j += 1;
        }
        let name_idx = last_ident?;
        return Some(Acquisition {
            mutex: t[name_idx].text.clone(),
            name_idx,
            bound_var: binding_before(t, i),
            resume: j + 1,
        });
    }
    // Method form: `<recv>.lock(` — match at the ident preceding `.lock(`.
    if i + 3 < t.len()
        && t[i].kind == crate::lexer::TokenKind::Ident
        && t[i + 1].is_punct('.')
        && t[i + 2].is_ident("lock")
        && t[i + 3].is_punct('(')
    {
        // Walk back over the `a.b.c` receiver chain to find its start,
        // then look for a direct `let var =` binding.
        let mut start = i;
        while start >= 2
            && t[start - 1].is_punct('.')
            && t[start - 2].kind == crate::lexer::TokenKind::Ident
        {
            start -= 2;
        }
        return Some(Acquisition {
            mutex: t[i].text.clone(),
            name_idx: i,
            bound_var: binding_before(t, start),
            resume: i + 4,
        });
    }
    None
}

/// If the tokens immediately before `expr_start` are `let [mut] v =`
/// (ignoring `&`/`*` sigils), the guard is bound to `v`.
fn binding_before(t: &[Token], expr_start: usize) -> Option<String> {
    let mut k = expr_start;
    while k > 0 && (t[k - 1].is_punct('&') || t[k - 1].is_punct('*')) {
        k -= 1;
    }
    if k >= 3
        && t[k - 1].is_punct('=')
        && t[k - 2].kind == crate::lexer::TokenKind::Ident
        && (t[k - 3].is_ident("let") || t[k - 3].is_ident("mut"))
    {
        return Some(t[k - 2].text.clone());
    }
    None
}
