//! `blocking-under-lock`: no blocking operation inside a lock-held
//! region.
//!
//! A mutex in the serving stack guards microseconds of pointer work.
//! The moment a holder blocks — a channel `recv`/`send`, a thread
//! `join`, a `sleep`, socket or buffered I/O, or acquiring a *second*
//! mutex — every other acquirer serializes behind an unbounded wait,
//! and tail latency inherits whatever the blocked holder was waiting
//! for. This rule extends the `lock-order` scanner's guard tracking
//! (helper-form `lock(&x)` and method-form `x.lock()` acquisitions,
//! `let`-bound vs statement-temporary guard lifetimes, early `drop`)
//! from *acquisition pairs* to *held-region extents*: any blocking call
//! made while at least one guard is live fires.
//!
//! Like `atomic-ordering`, a suppression must say why:
//!
//! ```text
//! // analyze:allow(blocking-under-lock): bounded by the 1-slot ack channel; holder is the only sender
//! let done = ack_rx.recv();
//! ```
//!
//! A bare allow still fires — the annotation is the audit trail.

use crate::diag::Diagnostic;
use crate::rules::lock_order;
use crate::source::SourceFile;

/// Rule name, as used by `analyze:allow(...)`.
pub const NAME: &str = "blocking-under-lock";

/// Runs the rule over one file.
pub fn check(file: &SourceFile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for b in lock_order::scan_file(file).blocking {
        let message = format!(
            "{} while holding mutex `{}` (acquired at {}): blocking under a lock \
             serializes every other acquirer; release the guard first or annotate \
             `// analyze:allow({NAME}): <why the wait is bounded>`",
            b.what, b.held_name, b.held_site
        );
        match file.allow(NAME, b.line) {
            Some(allow) if !allow.justification.is_empty() => {}
            Some(_) => out.push(
                Diagnostic::new(
                    NAME,
                    &file.path,
                    b.line,
                    b.col,
                    format!(
                        "analyze:allow({NAME}) requires a justification: \
                         `// analyze:allow({NAME}): <why the wait is bounded>`"
                    ),
                )
                .unsuppressible(),
            ),
            None => {
                out.push(Diagnostic::new(NAME, &file.path, b.line, b.col, message).unsuppressible())
            }
        }
    }
    out
}
