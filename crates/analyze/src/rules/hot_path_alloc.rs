//! `hot-path-alloc`: statically prove the zero-alloc query hot path.
//!
//! The adaptive-intersection PR made every `query_into` implementation
//! depend on a runtime invariant — steady state allocates nothing but
//! the reply vector — that nothing enforced; one stray `clone()` in a
//! kernel silently erases the tIF speedup. This rule walks the
//! workspace call graph from every hot-path root (`query_into`
//! implementations and the planner kernels, [`crate::Config::hot_path_roots`])
//! and flags any reachable allocating API.
//!
//! ## What counts as allocating
//!
//! * constructors: `Vec::new` / `with_capacity`, `Box::new`,
//!   `String::new` / `from`, map/set constructors, `vec!`, `format!`;
//! * allocating transforms: `.clone()`, `.to_vec()`, `.collect()`,
//!   `.to_string()`, `.to_owned()`, `.concat()`, `.repeat()`, and the
//!   allocating `.sort*()` family (`sort_unstable*` is exempt);
//! * growth calls (`.push()`, `.extend*()`, `.resize()`, `.reserve()`,
//!   …) — **unless** the receiver is arena-backed (below), because
//!   growing a warmed-up arena buffer is exactly the amortized-to-zero
//!   pattern the hot path is built on.
//!
//! `Arc::clone` / `Rc::clone` are refcount bumps, not allocations, and
//! are exempt.
//!
//! ## The scratch-arena allowlist
//!
//! Types named in [`crate::Config::scratch_arenas`] (`QueryScratch` by
//! default) are declared arenas: their `impl` blocks are exempt
//! wholesale, and elsewhere a growth call is exempt when its receiver
//! chain roots in arena-backed storage — `self` inside an arena impl, a
//! parameter whose type mentions an arena or a caller-owned
//! `Vec`/`String` sink ([`crate::Config::growth_sinks`]), or a local
//! `let` whose initializer borrows/takes from a tainted binding
//! (`let mut cands = std::mem::take(&mut scratch.cands)`).
//!
//! ## Traversal cuts
//!
//! Calls named in [`crate::Config::hot_path_cuts`] (`query` by default)
//! are not traversed: the `TemporalIrIndex` default `query_into`
//! delegates to the allocating cold-path `query`, which exists
//! precisely to take the allocations the hot path must not.
//!
//! Escapes require a justification, `atomic-ordering` style: a bare
//! `analyze:allow(hot-path-alloc)` still fires.

use std::collections::{HashMap, HashSet};

use crate::callgraph::CallGraph;
use crate::diag::Diagnostic;
use crate::parser::{Call, FnDef};
use crate::reach::Reach;
use crate::source::{allow_in, Allow};
use crate::Config;

/// Rule name, as used by `analyze:allow(...)`.
pub const NAME: &str = "hot-path-alloc";

/// Call names that always allocate, receiver notwithstanding.
const ALWAYS_ALLOC: &[&str] = &[
    "clone",
    "to_vec",
    "collect",
    "to_string",
    "to_owned",
    "into_owned",
    "concat",
    "repeat",
    "sort",
    "sort_by",
    "sort_by_key",
];

/// Allocating macros.
const ALLOC_MACROS: &[&str] = &["format", "vec"];

/// Container/path qualifiers whose constructors allocate.
const ALLOC_QUALS: &[&str] = &[
    "Vec", "String", "Box", "HashMap", "HashSet", "BTreeMap", "BTreeSet", "VecDeque", "Arc", "Rc",
];

/// Constructor names checked against [`ALLOC_QUALS`].
const ALLOC_CTORS: &[&str] = &["new", "with_capacity", "from"];

/// Growth calls: allocate only when the backing buffer is cold, so they
/// are exempt on arena-backed receivers.
const GROWTH: &[&str] = &[
    "push",
    "push_str",
    "extend",
    "extend_from_slice",
    "append",
    "resize",
    "reserve",
    "reserve_exact",
    "insert",
];

/// Runs the rule over the whole-workspace call graph.
pub fn check(
    graph: &CallGraph,
    allows: &HashMap<String, Vec<Allow>>,
    config: &Config,
) -> Vec<Diagnostic> {
    let roots: Vec<usize> = graph
        .fns()
        .iter()
        .enumerate()
        .filter(|(_, f)| config.hot_path_roots.iter().any(|r| r == &f.name))
        .map(|(i, _)| i)
        .collect();
    // Per-function taint sets, shared by the traversal filter and the
    // per-site judgment below.
    let tainted_all: Vec<HashSet<String>> = graph
        .fns()
        .iter()
        .map(|f| tainted_idents(f, config))
        .collect();
    // A growth call on an arena-backed receiver is a std container
    // method by construction — do not let it suffix-resolve into
    // same-named workspace builders (`FlatBuilder::push` is build-time
    // code, not hot-path code).
    let skip = |caller: usize, call: &Call| -> bool {
        GROWTH.iter().any(|g| *g == call.name)
            && call
                .recv_root
                .as_ref()
                .is_some_and(|r| tainted_all[caller].contains(r))
    };
    let reach = Reach::compute_filtered(graph, &roots, &config.hot_path_cuts, &skip);
    let mut out = Vec::new();
    for &id in reach.order() {
        let f = &graph.fns()[id];
        if f.owner
            .as_deref()
            .is_some_and(|o| config.scratch_arenas.iter().any(|a| a == o))
        {
            continue; // arena internals: the allowlisted allocator itself
        }
        let tainted = &tainted_all[id];
        for call in graph.calls(id) {
            let Some(what) = alloc_kind(call, tainted) else {
                continue;
            };
            match allow_in(allows, &f.path, NAME, call.line) {
                Some(allow) if !allow.justification.is_empty() => {}
                Some(_) => out.push(
                    Diagnostic::new(
                        NAME,
                        &f.path,
                        call.line,
                        call.col,
                        format!(
                            "analyze:allow({NAME}) requires a justification: \
                             `// analyze:allow({NAME}): <why this allocation is acceptable>`"
                        ),
                    )
                    .unsuppressible(),
                ),
                None => out.push(
                    Diagnostic::new(
                        NAME,
                        &f.path,
                        call.line,
                        call.col,
                        format!(
                            "allocating call {what} on the zero-alloc query hot path; \
                             reached via {}: route it through a declared scratch arena \
                             ({:?}) or annotate `// analyze:allow({NAME}): <why>`",
                            reach.chain(graph, id),
                            config.scratch_arenas
                        ),
                    )
                    .unsuppressible(),
                ),
            }
        }
    }
    out
}

/// Classifies a call site; `Some(label)` when it allocates under the
/// taint model described in the module docs.
fn alloc_kind(call: &Call, tainted: &HashSet<String>) -> Option<String> {
    if call.is_macro {
        return ALLOC_MACROS
            .iter()
            .find(|m| **m == call.name)
            .map(|m| format!("`{m}!`"));
    }
    if let Some(q) = &call.qual {
        if (q == "Arc" || q == "Rc") && call.name == "clone" {
            return None; // refcount bump, no allocation
        }
        if ALLOC_QUALS.iter().any(|a| a == q) && ALLOC_CTORS.iter().any(|c| *c == call.name) {
            return Some(format!("`{q}::{}`", call.name));
        }
    }
    if ALWAYS_ALLOC.iter().any(|a| *a == call.name) {
        return Some(format!("`{}`", call.name));
    }
    if GROWTH.iter().any(|g| *g == call.name) {
        let arena_backed = call.recv_root.as_ref().is_some_and(|r| tainted.contains(r));
        if !arena_backed {
            return Some(format!("`{}` on a non-arena receiver", call.name));
        }
    }
    None
}

/// Identifiers in `f` that denote arena-backed storage: qualifying
/// parameters, plus `let` bindings whose initializer mentions one
/// (single forward pass — enough for the take/put-back idiom).
fn tainted_idents(f: &FnDef, config: &Config) -> HashSet<String> {
    let mut tainted: HashSet<String> = HashSet::new();
    for p in &f.params {
        let arena_self = p.name == "self" && config.scratch_arenas.contains(&p.ty);
        let sink = config
            .growth_sinks
            .iter()
            .any(|s| p.ty.contains(s.as_str()));
        if arena_self || sink {
            tainted.insert(p.name.clone());
        }
    }
    let t = &f.tokens;
    let mut i = 0;
    while i < t.len() {
        if !t[i].is_ident("let") {
            i += 1;
            continue;
        }
        // `if let` / `while let` bind through patterns, not initializer
        // expressions, and their "statement" has no terminating `;` —
        // skip them so the scan does not swallow the bindings that
        // follow inside the block.
        if i > 0 && (t[i - 1].is_ident("if") || t[i - 1].is_ident("while")) {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        if t.get(j).is_some_and(|x| x.is_ident("mut")) {
            j += 1;
        }
        let Some(name_tok) = t.get(j) else { break };
        if name_tok.kind != crate::lexer::TokenKind::Ident {
            i = j;
            continue;
        }
        // Find `=` then scan the initializer to the statement's `;`.
        let mut k = j + 1;
        while k < t.len() && !t[k].is_punct('=') && !t[k].is_punct(';') {
            k += 1;
        }
        if k < t.len() && t[k].is_punct('=') {
            let mut depth = 0i64;
            let mut rhs_tainted = false;
            let mut m = k + 1;
            while m < t.len() {
                let tok = &t[m];
                if tok.is_punct('(') || tok.is_punct('[') || tok.is_punct('{') {
                    depth += 1;
                } else if tok.is_punct(')') || tok.is_punct(']') || tok.is_punct('}') {
                    depth -= 1;
                } else if tok.is_punct(';') && depth <= 0 {
                    break;
                } else if tok.kind == crate::lexer::TokenKind::Ident && tainted.contains(&tok.text)
                {
                    rhs_tainted = true;
                }
                m += 1;
            }
            if rhs_tainted {
                tainted.insert(name_tok.text.clone());
            }
            i = m;
        } else {
            i = k;
        }
    }
    tainted
}
