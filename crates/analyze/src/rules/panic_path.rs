//! `panic-path`: library code must not reach a panic through sloppy
//! means. Denied in non-test code: `.unwrap()`, `todo!`, `unimplemented!`,
//! `dbg!`, `panic!`, and `.expect(…)` whose argument is anything but a
//! non-empty string literal (the justification-message convention this
//! workspace has used since PR 1). `assert!`/`debug_assert!` stay legal —
//! they state invariants, which is the opposite of sloppy.
//!
//! This supersedes the old `srclint` substring scanner: matches are on
//! the token stream, so `"docs mention .unwrap()"` and comments can
//! never fire.

use crate::diag::Diagnostic;
use crate::source::SourceFile;

/// Rule name, as used by `analyze:allow(...)`.
pub const NAME: &str = "panic-path";

const DENIED_MACROS: &[(&str, &str)] = &[
    ("todo", "todo! must not ship in library code"),
    (
        "unimplemented",
        "unimplemented! must not ship in library code",
    ),
    ("dbg", "dbg! is debug cruft"),
    (
        "panic",
        "explicit panic! in library code; return an error or use expect(\"why\") at the boundary",
    ),
];

/// Runs the rule over one file.
pub fn check(file: &SourceFile) -> Vec<Diagnostic> {
    let t = &file.tokens;
    let mut out = Vec::new();
    for i in 0..t.len() {
        // .unwrap( — method position only, so a local `fn unwrap()` or an
        // identifier named unwrap does not fire.
        if i + 2 < t.len()
            && t[i].is_punct('.')
            && t[i + 1].is_ident("unwrap")
            && t[i + 2].is_punct('(')
        {
            out.push(Diagnostic::new(
                NAME,
                &file.path,
                t[i + 1].line,
                t[i + 1].col,
                "unwrap() panics without context; use expect(\"why\") or handle the None/Err",
            ));
        }
        // .expect(<not a non-empty string literal>)
        if i + 3 < t.len()
            && t[i].is_punct('.')
            && t[i + 1].is_ident("expect")
            && t[i + 2].is_punct('(')
        {
            let arg = &t[i + 3];
            let literal_msg = arg.kind == crate::lexer::TokenKind::Str
                && !arg.text.trim_matches('"').trim().is_empty();
            if !literal_msg {
                out.push(Diagnostic::new(
                    NAME,
                    &file.path,
                    t[i + 1].line,
                    t[i + 1].col,
                    "expect() must carry a non-empty string-literal justification",
                ));
            }
        }
        // Denied macros: ident immediately followed by `!`.
        if i + 1 < t.len() && t[i + 1].is_punct('!') {
            for &(name, why) in DENIED_MACROS {
                if t[i].is_ident(name) {
                    out.push(Diagnostic::new(NAME, &file.path, t[i].line, t[i].col, why));
                }
            }
        }
    }
    out
}
