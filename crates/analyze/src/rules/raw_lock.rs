//! `raw-lock`: library code must go through the poison-tolerant
//! `lock()` helper (`tir-serve`'s `crates/serve/src/witness.rs`), never
//! call `.lock()` on a `Mutex` directly. The helper is where poisoning
//! policy lives *and* where the dynamic lock-order witness hooks in —
//! a bare `.lock().unwrap()` bypasses both.
//!
//! The helper's own internals (and the witness registry, which cannot
//! recurse through itself) carry `// analyze:allow(raw-lock)` with an
//! explanation.

use crate::diag::Diagnostic;
use crate::source::SourceFile;

/// Rule name, as used by `analyze:allow(...)`.
pub const NAME: &str = "raw-lock";

/// Runs the rule over one file.
pub fn check(file: &SourceFile) -> Vec<Diagnostic> {
    let t = &file.tokens;
    let mut out = Vec::new();
    for i in 0..t.len() {
        if i + 2 < t.len()
            && t[i].is_punct('.')
            && t[i + 1].is_ident("lock")
            && t[i + 2].is_punct('(')
        {
            out.push(Diagnostic::new(
                NAME,
                &file.path,
                t[i + 1].line,
                t[i + 1].col,
                "bare .lock() bypasses the poison policy and the lock-order witness; \
                 use the tracked lock() helper",
            ));
        }
    }
    out
}
