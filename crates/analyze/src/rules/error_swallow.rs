//! `error-swallow`: discarded `io::Result`s are denied in library code.
//!
//! `let _ = file.sync_all();` compiles, type-checks, and silently
//! converts a failed fsync into imagined durability — the exact failure
//! mode the WAL exists to prevent. This rule flags the two discard
//! idioms on any call that returns an `io::Result`:
//!
//! * `let _ = <expr>;` — fires on the **first** I/O call in the
//!   initializer (nested closures are separate statements and judged on
//!   their own);
//! * `<call>(…).ok()` — the `Result` → `Option` conversion that throws
//!   the error away regardless of what happens to the `Option`.
//!
//! A call "returns an `io::Result`" when its name is a known std I/O
//! API (`sync_all`, `flush`, `write_all`, `rename`, `spawn`, …) or when
//! it resolves through the workspace call graph to a function whose
//! declared return type mentions `io` and `Result` — so discarding a
//! workspace `fn serve_connection(…) -> io::Result<()>` is caught the
//! same as discarding std's `sync_all`. Non-I/O discards (`let _ =
//! handle.join()`, `parse().ok()`) stay silent, as does test code.
//!
//! Escapes require a justification, `atomic-ordering` style: a bare
//! `analyze:allow(error-swallow)` still fires.

use std::collections::HashMap;

use crate::callgraph::CallGraph;
use crate::diag::Diagnostic;
use crate::lexer::{Token, TokenKind};
use crate::parser::{extract_calls, Call};
use crate::source::{allow_in, Allow};

/// Rule name, as used by `analyze:allow(...)`.
pub const NAME: &str = "error-swallow";

/// std calls that return `io::Result` (or, for `spawn`, wrap one): no
/// workspace definition exists to resolve to, so they are judged by
/// name.
const IO_CALLS: &[&str] = &[
    "sync_all",
    "sync_data",
    "flush",
    "write",
    "write_all",
    "write_fmt",
    "read",
    "read_exact",
    "read_to_end",
    "read_to_string",
    "set_len",
    "set_permissions",
    "rename",
    "remove_file",
    "remove_dir",
    "remove_dir_all",
    "create_dir",
    "create_dir_all",
    "hard_link",
    "copy",
    "connect",
    "shutdown",
    "set_nodelay",
    "set_read_timeout",
    "set_write_timeout",
    "spawn",
];

/// Runs the rule over the whole-workspace call graph.
pub fn check(graph: &CallGraph, allows: &HashMap<String, Vec<Allow>>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for f in graph.fns() {
        let t = &f.tokens;
        for i in 0..t.len() {
            // `let _ = <expr> ;`
            if t[i].is_ident("let")
                && t.get(i + 1).is_some_and(|x| x.is_ident("_"))
                && t.get(i + 2).is_some_and(|x| x.is_punct('='))
            {
                let rhs = rhs_extent(t, i + 3);
                let calls = extract_calls(&t[i + 3..rhs]);
                if let Some(call) = calls
                    .iter()
                    .find(|c| !c.is_macro && io_result_call(graph, c))
                {
                    judge(
                        &mut out,
                        allows,
                        &f.path,
                        call,
                        format!(
                            "`let _ =` swallows the `io::Result` of `{}`",
                            call_label(call)
                        ),
                    );
                }
            }
            // `<call>(…).ok()`
            if t[i].is_ident("ok")
                && i >= 2
                && t[i - 1].is_punct('.')
                && t[i - 2].is_punct(')')
                && t.get(i + 1).is_some_and(|x| x.is_punct('('))
                && t.get(i + 2).is_some_and(|x| x.is_punct(')'))
            {
                if let Some(call) = callee_before(t, i - 2) {
                    if io_result_call(graph, &call) {
                        judge(
                            &mut out,
                            allows,
                            &f.path,
                            &call,
                            format!(
                                "`.ok()` discards the `io::Result` error of `{}`",
                                call_label(&call)
                            ),
                        );
                    }
                }
            }
        }
    }
    out
}

/// The index just past a discard initializer: its terminating `;` at
/// depth 0 (brackets of all three kinds tracked).
fn rhs_extent(t: &[Token], from: usize) -> usize {
    let mut depth = 0i64;
    let mut m = from;
    while m < t.len() {
        let x = &t[m];
        if x.is_punct('(') || x.is_punct('[') || x.is_punct('{') {
            depth += 1;
        } else if x.is_punct(')') || x.is_punct(']') || x.is_punct('}') {
            depth -= 1;
            if depth < 0 {
                return m;
            }
        } else if x.is_punct(';') && depth == 0 {
            return m;
        }
        m += 1;
    }
    m
}

/// Reconstructs the call whose argument list closes at `close` (a `)`),
/// for the `.ok()` receiver: walks back over the balanced group to the
/// callee ident and rebuilds its qualifier/method context.
fn callee_before(t: &[Token], close: usize) -> Option<Call> {
    let mut depth = 0i64;
    let mut m = close;
    loop {
        let x = &t[m];
        if x.is_punct(')') {
            depth += 1;
        } else if x.is_punct('(') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        }
        if m == 0 {
            return None;
        }
        m -= 1;
    }
    if m == 0 {
        return None;
    }
    let name_tok = &t[m - 1];
    if name_tok.kind != TokenKind::Ident {
        return None;
    }
    let i = m - 1;
    let is_method = i > 0 && t[i - 1].is_punct('.');
    let qual = if !is_method
        && i >= 3
        && t[i - 1].is_punct(':')
        && t[i - 2].is_punct(':')
        && t[i - 3].kind == TokenKind::Ident
    {
        Some(t[i - 3].text.clone())
    } else {
        None
    };
    Some(Call {
        name: name_tok.text.clone(),
        qual,
        recv_root: None,
        is_method,
        is_macro: false,
        line: name_tok.line,
        col: name_tok.col,
    })
}

/// Whether `call` returns an `io::Result`: a known std I/O API by name,
/// or a workspace function whose declared return type says so.
fn io_result_call(graph: &CallGraph, call: &Call) -> bool {
    if IO_CALLS.iter().any(|n| *n == call.name) {
        return true;
    }
    graph.resolve(call).into_iter().any(|target| {
        let ret = &graph.fns()[target].ret;
        ret.contains("Result") && ret.contains("io")
    })
}

/// `Owner::name` / `.name` / `name`, for the message.
fn call_label(call: &Call) -> String {
    match (&call.qual, call.is_method) {
        (Some(q), _) => format!("{q}::{}", call.name),
        (None, true) => format!(".{}()", call.name),
        (None, false) => call.name.clone(),
    }
}

/// The shared allow judgment: justified allows pass, bare allows demand
/// a justification, everything else fires.
fn judge(
    out: &mut Vec<Diagnostic>,
    allows: &HashMap<String, Vec<Allow>>,
    path: &str,
    call: &Call,
    message: String,
) {
    match allow_in(allows, path, NAME, call.line) {
        Some(allow) if !allow.justification.is_empty() => {}
        Some(_) => out.push(
            Diagnostic::new(
                NAME,
                path,
                call.line,
                call.col,
                format!(
                    "analyze:allow({NAME}) requires a justification: \
                     `// analyze:allow({NAME}): <why this I/O error may be dropped>`"
                ),
            )
            .unsuppressible(),
        ),
        None => out.push(
            Diagnostic::new(
                NAME,
                path,
                call.line,
                call.col,
                format!(
                    "{message}: handle it, propagate with `?`, or annotate \
                     `// analyze:allow({NAME}): <why this I/O error may be dropped>`"
                ),
            )
            .unsuppressible(),
        ),
    }
}
