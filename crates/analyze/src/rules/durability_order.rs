//! `durability-ordering`: the durable tier's crash-safety contract,
//! proven over the call graph instead of trusted to review.
//!
//! The persist engine's guarantee is a strict order: an operation is
//! **appended** to the WAL, the WAL is **fsynced**, only then is the op
//! **applied** to the in-memory index, and only after that may the
//! client be **acked**. A snapshot becomes visible by **rename** only
//! after its sections hit disk, and the directory is fsynced after the
//! rename. Any reordering silently converts `kill -9` into data loss,
//! and nothing about the code's shape makes the order obvious — so this
//! rule re-derives it from the token-ordered call sites and the
//! workspace call graph on every run:
//!
//! 1. every durable entry point ([`crate::Config::durable_entries`],
//!    `apply_batch`) must contain `append` → `sync` → `apply_ops` calls
//!    in that token order;
//! 2. any function calling both a durable entry and an ack `send` must
//!    ack strictly after the first entry call — no ack-before-fsync
//!    path;
//! 3. an fsync must be call-graph-reachable from every durable entry;
//! 4. in the persist crate, every `fs::rename` must be preceded by a
//!    call that (transitively) reaches an fsync — the section data — and
//!    followed by one more fsync — the directory entry.
//!
//! Violations print the observed call order or the missing link.
//! Escapes require a justification: a bare
//! `analyze:allow(durability-ordering)` still fires.

use std::collections::HashMap;

use crate::callgraph::CallGraph;
use crate::diag::Diagnostic;
use crate::parser::Call;
use crate::reach::Reach;
use crate::source::{allow_in, Allow};
use crate::Config;

/// Rule name, as used by `analyze:allow(...)`.
pub const NAME: &str = "durability-ordering";

/// Runs the rule over the whole-workspace call graph.
pub fn check(
    graph: &CallGraph,
    allows: &HashMap<String, Vec<Allow>>,
    config: &Config,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let is_sync = |c: &Call| config.durable_syncs.iter().any(|s| s == &c.name);
    for (id, f) in graph.fns().iter().enumerate() {
        let calls = graph.calls(id);
        // Check 1 + 3: the entry point's internal order, and fsync
        // reachability from it.
        if config.durable_entries.iter().any(|e| e == &f.name) && !f.tokens.is_empty() {
            let append = calls
                .iter()
                .position(|c| config.durable_appends.iter().any(|a| a == &c.name));
            let sync = append.and_then(|a| calls[a..].iter().position(is_sync).map(|s| a + s));
            let apply = calls
                .iter()
                .position(|c| config.durable_applies.iter().any(|a| a == &c.name));
            let problem = match (append, sync, apply) {
                (None, _, _) => Some("no WAL `append` call".to_string()),
                (Some(_), None, _) => Some("no fsync after the WAL append".to_string()),
                (_, _, None) => None, // entry without an apply: nothing to order
                (Some(_), Some(s), Some(ap)) if ap < s => Some(format!(
                    "`{}` applies at line {} before the fsync at line {}",
                    calls[ap].name, calls[ap].line, calls[s].line
                )),
                _ => None,
            };
            if let Some(problem) = problem {
                judge(
                    &mut out,
                    allows,
                    &f.path,
                    f.line,
                    f.col,
                    format!(
                        "durable entry `{}` breaks append -> fsync -> apply: {problem} \
                         (observed order: {})",
                        f.qual_name(),
                        order_of(calls, config)
                    ),
                );
            } else if append.is_some() {
                // Check 3: some fsync must actually be reachable (the
                // direct `sync` call above may resolve to a stub).
                let reach = Reach::compute(graph, &[id], &[]);
                let reaches_sync = reach
                    .order()
                    .iter()
                    .any(|&r| graph.calls(r).iter().any(is_sync));
                if !reaches_sync {
                    judge(
                        &mut out,
                        allows,
                        &f.path,
                        f.line,
                        f.col,
                        format!(
                            "no fsync is reachable from durable entry `{}`",
                            f.qual_name()
                        ),
                    );
                }
            }
        }
        // Check 2: ack-after-apply in every caller of a durable entry.
        let entry_at = calls
            .iter()
            .position(|c| config.durable_entries.iter().any(|e| e == &c.name));
        if let Some(entry_at) = entry_at {
            for (i, c) in calls.iter().enumerate() {
                if i < entry_at && c.is_method && config.durable_acks.iter().any(|a| a == &c.name) {
                    judge(
                        &mut out,
                        allows,
                        &f.path,
                        c.line,
                        c.col,
                        format!(
                            "client ack `{}` at line {} precedes the durable `{}` call at \
                             line {}: an acked op must be fsynced first",
                            c.name, c.line, calls[entry_at].name, calls[entry_at].line
                        ),
                    );
                }
            }
        }
        // Check 4: rename ordering, persist crate only (snapshots and
        // sidecar logs are the only atomic-publish sites).
        if f.krate == "persist" {
            for (i, c) in calls.iter().enumerate() {
                if c.name != "rename" || c.qual.as_deref() != Some("fs") {
                    continue;
                }
                let data_synced = calls[..i].iter().any(|before| {
                    is_sync(before) || {
                        let targets = graph.resolve(before);
                        !targets.is_empty() && {
                            let reach = Reach::compute(graph, &targets, &[]);
                            reach
                                .order()
                                .iter()
                                .any(|&r| graph.calls(r).iter().any(is_sync))
                        }
                    }
                });
                if !data_synced {
                    judge(
                        &mut out,
                        allows,
                        &f.path,
                        c.line,
                        c.col,
                        format!(
                            "`fs::rename` in `{}` is reachable before any fsync of the \
                             renamed data: a crash can publish an unsynced file",
                            f.qual_name()
                        ),
                    );
                }
                let dir_synced = calls[i + 1..].iter().any(is_sync);
                if !dir_synced {
                    judge(
                        &mut out,
                        allows,
                        &f.path,
                        c.line,
                        c.col,
                        format!(
                            "`fs::rename` in `{}` is not followed by a directory fsync: \
                             a crash can lose the rename itself",
                            f.qual_name()
                        ),
                    );
                }
            }
        }
    }
    out
}

/// Renders the durability-relevant calls of `calls` in token order, for
/// the diagnostic ("append (engine.rs:255) -> apply_ops (engine.rs:260)").
fn order_of(calls: &[Call], config: &Config) -> String {
    let relevant: Vec<String> = calls
        .iter()
        .filter(|c| {
            config.durable_appends.iter().any(|n| n == &c.name)
                || config.durable_syncs.iter().any(|n| n == &c.name)
                || config.durable_applies.iter().any(|n| n == &c.name)
        })
        .map(|c| format!("{} (line {})", c.name, c.line))
        .collect();
    if relevant.is_empty() {
        "none of append/fsync/apply present".to_string()
    } else {
        relevant.join(" -> ")
    }
}

/// The shared allow judgment: justified allows pass, bare allows demand
/// a justification, everything else fires.
fn judge(
    out: &mut Vec<Diagnostic>,
    allows: &HashMap<String, Vec<Allow>>,
    path: &str,
    line: u32,
    col: u32,
    message: String,
) {
    match allow_in(allows, path, NAME, line) {
        Some(allow) if !allow.justification.is_empty() => {}
        Some(_) => out.push(
            Diagnostic::new(
                NAME,
                path,
                line,
                col,
                format!(
                    "analyze:allow({NAME}) requires a justification: \
                     `// analyze:allow({NAME}): <why this ordering is still crash-safe>`"
                ),
            )
            .unsuppressible(),
        ),
        None => out.push(
            Diagnostic::new(
                NAME,
                path,
                line,
                col,
                format!(
                    "{message}; restore the order or annotate \
                     `// analyze:allow({NAME}): <why this ordering is still crash-safe>`"
                ),
            )
            .unsuppressible(),
        ),
    }
}
