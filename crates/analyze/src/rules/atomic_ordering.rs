//! `atomic-ordering`: every `Ordering::Relaxed` site must carry a
//! justification. `Relaxed` is correct for monotonic telemetry counters
//! and id minting, and silently wrong anywhere a load is supposed to
//! observe writes published by another thread — the difference is
//! invisible in tests on x86, so the rule forces the author to write the
//! argument down at the site:
//!
//! ```text
//! stats.served.fetch_add(1, Ordering::Relaxed); // analyze:allow(atomic-ordering): telemetry counter; nothing reads it for synchronization
//! ```
//!
//! A bare `analyze:allow(atomic-ordering)` without the `: why` text still
//! fires — the annotation *is* the audit trail, so it must say something.
//! Diagnostics from this rule are non-suppressible by construction (the
//! rule itself interprets the annotation).

use crate::diag::Diagnostic;
use crate::source::SourceFile;

/// Rule name, as used by `analyze:allow(...)`.
pub const NAME: &str = "atomic-ordering";

/// Runs the rule over one file.
pub fn check(file: &SourceFile) -> Vec<Diagnostic> {
    let t = &file.tokens;
    let mut out = Vec::new();
    for i in 0..t.len() {
        let relaxed = i + 3 < t.len()
            && t[i].is_ident("Ordering")
            && t[i + 1].is_punct(':')
            && t[i + 2].is_punct(':')
            && t[i + 3].is_ident("Relaxed");
        if !relaxed {
            continue;
        }
        let site = &t[i + 3];
        match file.allow(NAME, site.line) {
            Some(allow) if !allow.justification.is_empty() => {}
            Some(_) => out.push(
                Diagnostic::new(
                    NAME,
                    &file.path,
                    site.line,
                    site.col,
                    "analyze:allow(atomic-ordering) requires a justification: \
                     `// analyze:allow(atomic-ordering): <why Relaxed is sufficient>`",
                )
                .unsuppressible(),
            ),
            None => out.push(
                Diagnostic::new(
                    NAME,
                    &file.path,
                    site.line,
                    site.col,
                    "Ordering::Relaxed requires a per-site justification comment: \
                     `// analyze:allow(atomic-ordering): <why Relaxed is sufficient>`",
                )
                .unsuppressible(),
            ),
        }
    }
    out
}
