//! `unguarded-cast`: lossy `as` casts in hot-path crates must be
//! annotated. An `as u32` silently truncates; in the index kernels
//! (`tir-hint`, `tir-invidx`, `tir-core`) a truncated id or bucket
//! number corrupts answers without a panic, which is exactly the class
//! of bug the paper's containment semantics cannot tolerate. Casts to
//! narrowing targets (`u8/u16/u32/i8/i16/i32/f32`) fire unless the site
//! carries `// analyze:allow(unguarded-cast): <why the value fits>`.
//! Widening or platform-width casts (`usize`, `u64`, `u128`, `f64`,
//! `i64`) are not flagged — the signal would drown.

use crate::diag::Diagnostic;
use crate::source::SourceFile;

/// Rule name, as used by `analyze:allow(...)`.
pub const NAME: &str = "unguarded-cast";

const NARROW: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32", "f32"];

/// Runs the rule over one file.
pub fn check(file: &SourceFile) -> Vec<Diagnostic> {
    let t = &file.tokens;
    let mut out = Vec::new();
    for i in 0..t.len().saturating_sub(1) {
        if !t[i].is_ident("as") {
            continue;
        }
        let target = &t[i + 1];
        if NARROW.iter().any(|n| target.is_ident(n)) {
            out.push(Diagnostic::new(
                NAME,
                &file.path,
                target.line,
                target.col,
                format!(
                    "narrowing cast `as {}` in a hot-path crate; prove the value fits and \
                     annotate `// analyze:allow(unguarded-cast): <why>`, or use try_from",
                    target.text
                ),
            ));
        }
    }
    out
}
