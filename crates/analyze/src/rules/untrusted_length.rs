//! `untrusted-length`: every length, count, or offset decoded from disk
//! must be range-checked before it can touch memory.
//!
//! The persist crate parses snapshot sections, WAL records, and termlog
//! entries out of raw bytes an attacker (or a bitflip) controls. A
//! single unchecked decoded length used as a slice index panics the
//! recovery path at best and, combined with arithmetic, silently
//! corrupts offsets at worst. This rule runs the [`crate::dataflow`]
//! phase over every function of the configured crates
//! ([`crate::Config::taint_crates`] — `persist` in the workspace gate)
//! and flags every **hot** binding — tainted by a decoder call
//! ([`crate::Config::taint_sources`]) and never validated by a
//! comparison or guard call ([`crate::Config::taint_guards`]) — that
//! reaches a sink:
//!
//! * a slice/array **index or range** operand (`&bytes[pos..pos + n]`);
//! * a **capacity/length argument** (`Vec::with_capacity`, `reserve`,
//!   `resize`, `set_len`);
//! * an **offset-arithmetic operand** (binary `+`, `-`, `*`), where an
//!   unchecked value wraps or overflows before any later bound check.
//!
//! A decoder call appearing *directly inside* a sink
//! (`&b[read_u32(b, 0) as usize]`) is flagged without any binding.
//! Diagnostics print the def-use chain (`` `total` <- `len` <-
//! `read_u32(..)` at line 12 ``) so the unchecked flow is visible at a
//! glance. Escapes require a justification: a bare
//! `analyze:allow(untrusted-length)` still fires.

use std::collections::{HashMap, HashSet};

use crate::callgraph::CallGraph;
use crate::dataflow::{self, Dataflow};
use crate::diag::Diagnostic;
use crate::lexer::{Token, TokenKind};
use crate::source::{allow_in, Allow};
use crate::Config;

/// Rule name, as used by `analyze:allow(...)`.
pub const NAME: &str = "untrusted-length";

/// Calls whose argument sizes an allocation or a length change.
const CAPACITY_SINKS: &[&str] = &[
    "with_capacity",
    "reserve",
    "reserve_exact",
    "resize",
    "set_len",
];

/// Runs the rule over every function of the taint-audited crates.
pub fn check(
    graph: &CallGraph,
    allows: &HashMap<String, Vec<Allow>>,
    config: &Config,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for f in graph.fns() {
        if let Some(crates) = &config.taint_crates {
            if !crates.iter().any(|c| c == &f.krate) {
                continue;
            }
        }
        let df = dataflow::analyze(f, &config.taint_sources, &config.taint_guards);
        let mut fired: HashSet<(u32, u32, String)> = HashSet::new();
        let t = &f.tokens;
        for k in 0..t.len() {
            let tok = &t[k];
            // Index/range sink: `[` after a value (`x[`, `)[`, `][`).
            if tok.is_punct('[') && k > 0 && value_end(&t[k - 1]) {
                sink_operands(t, k, ']', config, &df, |name, line, col, direct| {
                    judge(
                        &mut out,
                        &mut fired,
                        allows,
                        &f.path,
                        name,
                        line,
                        col,
                        "a slice index/range",
                        direct,
                        &df,
                    );
                });
            }
            // Capacity sink: `with_capacity(…)`, `reserve(…)`, ….
            if tok.kind == TokenKind::Ident
                && CAPACITY_SINKS.iter().any(|s| *s == tok.text)
                && t.get(k + 1).is_some_and(|x| x.is_punct('('))
            {
                let what = format!("a `{}` argument", tok.text);
                sink_operands(t, k + 1, ')', config, &df, |name, line, col, direct| {
                    judge(
                        &mut out, &mut fired, allows, &f.path, name, line, col, &what, direct, &df,
                    );
                });
            }
            // Offset-arithmetic sink: binary `+`, `-`, `*` with a hot
            // ident operand. `->`, compound assignment, and unary forms
            // are excluded by requiring a value on the left and no `=`
            // or `>` on the right.
            if tok.kind == TokenKind::Punct
                && matches!(tok.text.as_str(), "+" | "-" | "*")
                && k > 0
                && value_end(&t[k - 1])
                && !t
                    .get(k + 1)
                    .is_some_and(|x| x.is_punct('=') || x.is_punct('>'))
            {
                for side in [k - 1, k + 1] {
                    let Some(x) = t.get(side) else { continue };
                    if x.kind == TokenKind::Ident
                        && !dataflow::is_field_pos(t, side)
                        && df.is_hot(&x.text)
                    {
                        judge(
                            &mut out,
                            &mut fired,
                            allows,
                            &f.path,
                            Some(x.text.as_str()),
                            x.line,
                            x.col,
                            "an offset-arithmetic operand",
                            None,
                            &df,
                        );
                    }
                }
            }
        }
    }
    out
}

/// Whether `tok` can end a value expression (making a following `[` an
/// index rather than an array literal or attribute).
fn value_end(tok: &Token) -> bool {
    matches!(tok.kind, TokenKind::Ident | TokenKind::Number)
        || tok.is_punct(')')
        || tok.is_punct(']')
}

/// Walks the bracketed group opening at `open` (to the matching
/// `close_ch`), reporting every hot ident operand and every taint-source
/// call used directly in the sink. Idents guarded *at the sink site*
/// (`n.min(4096)`) are validated globally by the dataflow pass already,
/// so no special case is needed here.
fn sink_operands(
    t: &[Token],
    open: usize,
    close_ch: char,
    config: &Config,
    df: &Dataflow,
    mut report: impl FnMut(Option<&str>, u32, u32, Option<&str>),
) {
    let open_ch = t[open].text.chars().next().unwrap_or('(');
    let mut depth = 0i64;
    let mut m = open;
    while m < t.len() {
        let x = &t[m];
        if x.is_punct(open_ch) {
            depth += 1;
        } else if x.is_punct(close_ch) {
            depth -= 1;
            if depth == 0 {
                return;
            }
        } else if x.kind == TokenKind::Ident {
            let field = dataflow::is_field_pos(t, m);
            let callee = t.get(m + 1).is_some_and(|y| y.is_punct('('));
            if callee && config.taint_sources.iter().any(|s| s == &x.text) {
                report(None, x.line, x.col, Some(x.text.as_str()));
            } else if !field && !callee && df.is_hot(&x.text) {
                report(Some(x.text.as_str()), x.line, x.col, None);
            }
        }
        m += 1;
    }
}

/// The shared allow judgment: justified allows pass, bare allows demand
/// a justification, everything else is a full diagnostic with the
/// def-use chain.
#[allow(clippy::too_many_arguments)]
fn judge(
    out: &mut Vec<Diagnostic>,
    fired: &mut HashSet<(u32, u32, String)>,
    allows: &HashMap<String, Vec<Allow>>,
    path: &str,
    name: Option<&str>,
    line: u32,
    col: u32,
    sink: &str,
    direct_source: Option<&str>,
    df: &Dataflow,
) {
    let key = (
        line,
        col,
        name.or(direct_source).unwrap_or_default().to_string(),
    );
    if !fired.insert(key) {
        return;
    }
    match allow_in(allows, path, NAME, line) {
        Some(allow) if !allow.justification.is_empty() => {}
        Some(_) => out.push(
            Diagnostic::new(
                NAME,
                path,
                line,
                col,
                format!(
                    "analyze:allow({NAME}) requires a justification: \
                     `// analyze:allow({NAME}): <why this value needs no range check>`"
                ),
            )
            .unsuppressible(),
        ),
        None => {
            let flow = match (name, direct_source) {
                (Some(n), _) => format!("untrusted value {} reaches", df.chain(n)),
                (None, Some(src)) => format!("decoded value `{src}(..)` used directly as"),
                (None, None) => "untrusted value reaches".to_string(),
            };
            out.push(
                Diagnostic::new(
                    NAME,
                    path,
                    line,
                    col,
                    format!(
                        "{flow} {sink} without a range check: compare it against a bound \
                         (or clamp via a guard call) before use, or annotate \
                         `// analyze:allow({NAME}): <why this value needs no range check>`"
                    ),
                )
                .unsuppressible(),
            );
        }
    }
}
