//! `panic-reachability`: the serving loops must not be able to die.
//!
//! The line-local `panic-path` rule keeps `.unwrap()` and friends out of
//! library code generally, but it judges sites one at a time and accepts
//! a messaged `.expect("…")`. The serving stack has a stricter
//! obligation: a panic anywhere reachable from the accept loop or a
//! worker thread kills that thread — connections drop or a pool shard
//! goes permanently dark — so *messaged* expects are errors there too,
//! and the judgment has to be transitive.
//!
//! This rule walks the workspace call graph from
//! [`crate::Config::serve_roots`] (`accept_loop` and `worker_loop` by
//! default) and flags every reachable `.unwrap()` / `.expect()` /
//! `panic!` / `todo!` / `unimplemented!` / `unreachable!`, printing the
//! full call chain from the root so the report is actionable.
//!
//! Deliberate panics — the lock-order witness, poison propagation —
//! stay, with the argument written at the site:
//!
//! ```text
//! // analyze:allow(panic-reachability): poisoned serving mutex means invariants are gone; die loudly
//! m.lock().expect("serving mutex poisoned by a panicked thread")
//! ```
//!
//! A bare allow still fires — the annotation is the audit trail.

use std::collections::HashMap;

use crate::callgraph::CallGraph;
use crate::diag::Diagnostic;
use crate::reach::Reach;
use crate::source::{allow_in, Allow};
use crate::Config;

/// Rule name, as used by `analyze:allow(...)`.
pub const NAME: &str = "panic-reachability";

/// Method calls that panic on the unhappy path.
const PANIC_METHODS: &[&str] = &["unwrap", "expect"];

/// Macros that unconditionally panic when expanded.
const PANIC_MACROS: &[&str] = &["panic", "todo", "unimplemented", "unreachable"];

/// Runs the rule over the whole-workspace call graph.
pub fn check(
    graph: &CallGraph,
    allows: &HashMap<String, Vec<Allow>>,
    config: &Config,
) -> Vec<Diagnostic> {
    let roots: Vec<usize> = graph
        .fns()
        .iter()
        .enumerate()
        .filter(|(_, f)| config.serve_roots.iter().any(|r| r == &f.name))
        .map(|(i, _)| i)
        .collect();
    let reach = Reach::compute(graph, &roots, &[]);
    let mut out = Vec::new();
    for &id in reach.order() {
        let f = &graph.fns()[id];
        for call in graph.calls(id) {
            let panicking = if call.is_macro {
                PANIC_MACROS.iter().any(|m| *m == call.name)
            } else {
                PANIC_METHODS.iter().any(|m| *m == call.name)
            };
            if !panicking {
                continue;
            }
            let what = if call.is_macro {
                format!("`{}!`", call.name)
            } else {
                format!("`.{}()`", call.name)
            };
            match allow_in(allows, &f.path, NAME, call.line) {
                Some(allow) if !allow.justification.is_empty() => {}
                Some(_) => out.push(
                    Diagnostic::new(
                        NAME,
                        &f.path,
                        call.line,
                        call.col,
                        format!(
                            "analyze:allow({NAME}) requires a justification: \
                             `// analyze:allow({NAME}): <why this panic is the right failure mode>`"
                        ),
                    )
                    .unsuppressible(),
                ),
                None => out.push(
                    Diagnostic::new(
                        NAME,
                        &f.path,
                        call.line,
                        call.col,
                        format!(
                            "{what} can panic a serving thread; call chain: {}: \
                             return an error instead, or annotate \
                             `// analyze:allow({NAME}): <why this panic is the right failure mode>`",
                            reach.chain(graph, id)
                        ),
                    )
                    .unsuppressible(),
                ),
            }
        }
    }
    out
}
