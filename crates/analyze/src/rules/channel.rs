//! `unbounded-channel`: `std::sync::mpsc::channel()` is banned in
//! library code. An unbounded queue turns overload into unbounded memory
//! growth and tail-latency collapse; every queue in the serving stack is
//! a `sync_channel` with explicit `Overloaded` shedding (PR 2's
//! backpressure contract), and this rule keeps it that way. Both the
//! call form `mpsc::channel(...)` and the import form
//! `use std::sync::mpsc::channel` fire.

use crate::diag::Diagnostic;
use crate::source::SourceFile;

/// Rule name, as used by `analyze:allow(...)`.
pub const NAME: &str = "unbounded-channel";

/// Runs the rule over one file.
pub fn check(file: &SourceFile) -> Vec<Diagnostic> {
    let t = &file.tokens;
    let mut out = Vec::new();
    let mut i = 0;
    while i < t.len() {
        // `use … mpsc … channel … ;` — an import of the unbounded
        // constructor (plain or inside a brace group).
        if t[i].is_ident("use") {
            let mut saw_mpsc = false;
            let mut j = i + 1;
            while j < t.len() && !t[j].is_punct(';') {
                if t[j].is_ident("mpsc") {
                    saw_mpsc = true;
                } else if saw_mpsc && t[j].is_ident("channel") {
                    out.push(diag(file, t[j].line, t[j].col));
                }
                j += 1;
            }
            i = j;
            continue;
        }
        // `mpsc::channel(` — the qualified call form.
        if i + 3 < t.len()
            && t[i].is_ident("mpsc")
            && t[i + 1].is_punct(':')
            && t[i + 2].is_punct(':')
            && t[i + 3].is_ident("channel")
        {
            out.push(diag(file, t[i + 3].line, t[i + 3].col));
        }
        i += 1;
    }
    out
}

fn diag(file: &SourceFile, line: u32, col: u32) -> Diagnostic {
    Diagnostic::new(
        NAME,
        &file.path,
        line,
        col,
        "unbounded mpsc::channel() has no backpressure; use sync_channel(depth) \
         and shed load with an explicit Overloaded error",
    )
}
