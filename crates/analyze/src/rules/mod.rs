//! The rule catalog. Each rule is a function from a prepared
//! [`SourceFile`](crate::source::SourceFile) to diagnostics; `lock-order`
//! additionally aggregates a cross-file graph per crate (see
//! [`lock_order::LockGraph`]).

pub mod atomic_ordering;
pub mod blocking_under_lock;
pub mod cast;
pub mod channel;
pub mod durability_order;
pub mod error_swallow;
pub mod hot_path_alloc;
pub mod lock_order;
pub mod panic_path;
pub mod panic_reach;
pub mod raw_lock;
pub mod unsafe_code;
pub mod untrusted_length;

/// Names of every shipped rule, for reporting.
pub const RULE_NAMES: &[&str] = &[
    lock_order::NAME,
    atomic_ordering::NAME,
    raw_lock::NAME,
    panic_path::NAME,
    cast::NAME,
    channel::NAME,
    blocking_under_lock::NAME,
    hot_path_alloc::NAME,
    panic_reach::NAME,
    unsafe_code::NAME,
    untrusted_length::NAME,
    durability_order::NAME,
    error_swallow::NAME,
];
