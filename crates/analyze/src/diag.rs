//! Diagnostics: what a rule reports and how it prints.

/// One finding, addressed to a source position.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Stable kebab-case rule name (`lock-order`, `panic-path`, …) — the
    /// same name `// analyze:allow(...)` takes.
    pub rule: &'static str,
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column (characters).
    pub col: u32,
    /// Human explanation: what fired and what to do instead.
    pub message: String,
    /// Whether a matching `analyze:allow` comment silences it. Rules
    /// that *inspect* annotations themselves (atomic-ordering) emit
    /// non-suppressible diagnostics, otherwise a bare allow would
    /// defeat the justification requirement.
    pub suppressible: bool,
}

impl Diagnostic {
    /// A suppressible diagnostic (the common case).
    pub fn new(
        rule: &'static str,
        path: &str,
        line: u32,
        col: u32,
        message: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            rule,
            path: path.to_string(),
            line,
            col,
            message: message.into(),
            suppressible: true,
        }
    }

    /// Marks this diagnostic as immune to `analyze:allow` comments.
    pub fn unsuppressible(mut self) -> Diagnostic {
        self.suppressible = false;
        self
    }
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}",
            self.path, self.line, self.col, self.rule, self.message
        )
    }
}
