//! Reachability over the [`crate::callgraph`], with provenance.
//!
//! A breadth-first traversal from a set of root functions, recording for
//! every reached function the call edge it was first discovered through.
//! That parent chain is what makes a whole-program diagnostic
//! actionable: "allocating call reachable from `query_into`" is only
//! fixable when the report shows *which* path gets there.
//!
//! `cuts` stops the traversal at calls by name: the `TemporalIrIndex`
//! trait's default `query_into` delegates to the allocating cold-path
//! `query`, and without cutting that edge every hot-path root would
//! "reach" the entire cold path it exists to replace.

use std::collections::VecDeque;

use crate::callgraph::CallGraph;
use crate::parser::Call;

/// The result of one traversal.
pub struct Reach {
    /// `parent[id]` = the (caller id, call site) this function was first
    /// reached through; `None` for roots and unreached functions.
    parent: Vec<Option<(usize, Call)>>,
    /// Reached function ids in BFS discovery order (roots first).
    order: Vec<usize>,
    visited: Vec<bool>,
}

impl Reach {
    /// BFS from `roots`, not traversing calls whose name is in `cuts`.
    pub fn compute(graph: &CallGraph, roots: &[usize], cuts: &[String]) -> Reach {
        Reach::compute_filtered(graph, roots, cuts, &|_, _| false)
    }

    /// [`Reach::compute`] with a rule-supplied edge filter: `skip`
    /// returning `true` for a (caller id, call site) pair prunes that
    /// edge. `hot-path-alloc` uses it to stop growth calls on
    /// arena-backed receivers (std container methods by construction)
    /// from suffix-resolving to same-named workspace builders.
    pub fn compute_filtered(
        graph: &CallGraph,
        roots: &[usize],
        cuts: &[String],
        skip: &dyn Fn(usize, &Call) -> bool,
    ) -> Reach {
        let n = graph.fns().len();
        let mut r = Reach {
            parent: vec![None; n],
            order: Vec::new(),
            visited: vec![false; n],
        };
        let mut queue = VecDeque::new();
        for &root in roots {
            if !r.visited[root] {
                r.visited[root] = true;
                r.order.push(root);
                queue.push_back(root);
            }
        }
        while let Some(id) = queue.pop_front() {
            for call in graph.calls(id) {
                if cuts.iter().any(|c| c == &call.name) || skip(id, call) {
                    continue;
                }
                for target in graph.resolve(call) {
                    if !r.visited[target] {
                        r.visited[target] = true;
                        r.parent[target] = Some((id, call.clone()));
                        r.order.push(target);
                        queue.push_back(target);
                    }
                }
            }
        }
        r
    }

    /// Reached function ids, roots first, in discovery order.
    pub fn order(&self) -> &[usize] {
        &self.order
    }

    /// Whether function `id` was reached.
    pub fn reached(&self, id: usize) -> bool {
        self.visited.get(id).copied().unwrap_or(false)
    }

    /// The call chain from a root to `id`, rendered
    /// `root (path:line) -> … -> fn (path:line)` for diagnostics.
    pub fn chain(&self, graph: &CallGraph, id: usize) -> String {
        let mut hops = Vec::new();
        let mut cur = id;
        loop {
            let f = &graph.fns()[cur];
            hops.push(format!("{} ({}:{})", f.qual_name(), f.path, f.line));
            match &self.parent[cur] {
                Some((caller, _)) => cur = *caller,
                None => break,
            }
        }
        hops.reverse();
        hops.join(" -> ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_fns;
    use crate::source::SourceFile;

    fn graph(src: &str) -> CallGraph {
        CallGraph::build(parse_fns("snippet", &SourceFile::parse("snippet.rs", src)))
    }

    #[test]
    fn transitive_reachability_with_chain() {
        let g = graph(
            "fn root() { mid(); }\n\
             fn mid() { leaf(); }\n\
             fn leaf() {}\n\
             fn island() {}\n",
        );
        let r = Reach::compute(&g, &[g.named("root")[0]], &[]);
        let leaf = g.named("leaf")[0];
        assert!(r.reached(leaf));
        assert!(!r.reached(g.named("island")[0]));
        let chain = r.chain(&g, leaf);
        assert!(chain.starts_with("root ("), "{chain}");
        assert!(chain.ends_with("leaf (snippet.rs:3)"), "{chain}");
    }

    #[test]
    fn cuts_stop_traversal_by_call_name() {
        let g = graph(
            "fn query_into(&self) { self.query(); }\n\
             fn query() { cold_helper(); }\n\
             fn cold_helper() {}\n",
        );
        let r = Reach::compute(&g, &[g.named("query_into")[0]], &[String::from("query")]);
        assert!(!r.reached(g.named("query")[0]), "cut edge not traversed");
        assert!(!r.reached(g.named("cold_helper")[0]));
    }
}
