//! A small, dependency-free Rust lexer.
//!
//! This is not a full parser — it is exactly the tokenizer the rule
//! engine needs to never be fooled by surface syntax again: string
//! literals (including raw strings with any `#` count and byte strings),
//! char literals vs. lifetimes, nested block comments, raw identifiers,
//! and numeric literals all lex as single tokens, so a rule matching the
//! identifier `unwrap` can never fire inside `"docs mention .unwrap()"`
//! or `// call .unwrap() at your peril`.
//!
//! Every token carries its 1-based line and column (in characters), which
//! is what turns a rule hit into a `path:line:col` diagnostic.

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `lock`, `r#match`, …).
    Ident,
    /// A lifetime such as `'a` or `'static` (without ambiguity against
    /// char literals).
    Lifetime,
    /// Integer or float literal, suffix included (`0x7f`, `1_000u64`).
    Number,
    /// String literal of any flavour: `"…"`, `r"…"`, `r#"…"#`, `b"…"`.
    Str,
    /// Character or byte literal: `'x'`, `'\n'`, `b'\0'`.
    Char,
    /// A `// …` comment (doc comments included), text without newline.
    LineComment,
    /// A `/* … */` comment (nesting handled), text with newlines.
    BlockComment,
    /// Any other single character (`.`, `:`, `!`, `{`, …).
    Punct,
}

/// One lexeme with its source position.
#[derive(Debug, Clone)]
pub struct Token {
    /// The lexeme kind.
    pub kind: TokenKind,
    /// The exact source text of the lexeme (quotes/sigils included).
    pub text: String,
    /// 1-based line of the first character.
    pub line: u32,
    /// 1-based column (in characters) of the first character.
    pub col: u32,
}

impl Token {
    /// True when this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }

    /// True when this token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == name
    }
}

struct Cursor {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
}

impl Cursor {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    /// Consumes one character, tracking line/column.
    fn bump(&mut self, out: &mut String) {
        if let Some(c) = self.chars.get(self.pos).copied() {
            out.push(c);
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
                self.col = 1;
            } else {
                self.col += 1;
            }
        }
    }

    fn bump_n(&mut self, n: usize, out: &mut String) {
        for _ in 0..n {
            self.bump(out);
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenizes `src`. The lexer is lossy only about whitespace; every other
/// character lands in exactly one token. Malformed input (an unterminated
/// string, say) never panics — the remainder of the file is consumed into
/// the open token.
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut tokens = Vec::new();
    while let Some(c) = cur.peek(0) {
        if c.is_whitespace() {
            let mut sink = String::new();
            cur.bump(&mut sink);
            continue;
        }
        let (line, col) = (cur.line, cur.col);
        let mut text = String::new();
        let kind = match c {
            '/' if cur.peek(1) == Some('/') => {
                while let Some(ch) = cur.peek(0) {
                    if ch == '\n' {
                        break;
                    }
                    cur.bump(&mut text);
                }
                TokenKind::LineComment
            }
            '/' if cur.peek(1) == Some('*') => {
                cur.bump_n(2, &mut text);
                let mut depth = 1usize;
                while depth > 0 && cur.peek(0).is_some() {
                    if cur.peek(0) == Some('/') && cur.peek(1) == Some('*') {
                        cur.bump_n(2, &mut text);
                        depth += 1;
                    } else if cur.peek(0) == Some('*') && cur.peek(1) == Some('/') {
                        cur.bump_n(2, &mut text);
                        depth -= 1;
                    } else {
                        cur.bump(&mut text);
                    }
                }
                TokenKind::BlockComment
            }
            '"' => {
                lex_string(&mut cur, &mut text);
                TokenKind::Str
            }
            '\'' => lex_char_or_lifetime(&mut cur, &mut text),
            'r' | 'b' if starts_literal_prefix(&cur) => lex_prefixed_literal(&mut cur, &mut text),
            c if is_ident_start(c) => {
                while cur.peek(0).is_some_and(is_ident_continue) {
                    cur.bump(&mut text);
                }
                TokenKind::Ident
            }
            c if c.is_ascii_digit() => {
                lex_number(&mut cur, &mut text);
                TokenKind::Number
            }
            _ => {
                cur.bump(&mut text);
                TokenKind::Punct
            }
        };
        tokens.push(Token {
            kind,
            text,
            line,
            col,
        });
    }
    tokens
}

/// Does the cursor sit on `r"`, `r#`, `b"`, `b'`, `br"`, or `br#`?
/// (`r#ident` also answers true; [`lex_prefixed_literal`] sorts it out.)
fn starts_literal_prefix(cur: &Cursor) -> bool {
    match (cur.peek(0), cur.peek(1)) {
        (Some('r'), Some('"' | '#')) => true,
        (Some('b'), Some('"' | '\'')) => true,
        (Some('b'), Some('r')) => matches!(cur.peek(2), Some('"' | '#')),
        _ => false,
    }
}

/// Consumes a literal starting with `r`/`b`/`br`, or a raw identifier
/// (`r#match`), the cursor sitting on the prefix character.
fn lex_prefixed_literal(cur: &mut Cursor, text: &mut String) -> TokenKind {
    // Consume the sigil run: `r`, `b`, or `br`.
    cur.bump(text); // r | b
    if text.starts_with('b') && cur.peek(0) == Some('r') {
        cur.bump(text);
    }
    match cur.peek(0) {
        Some('\'') => {
            // b'x' byte literal.
            lex_char_body(cur, text);
            TokenKind::Char
        }
        Some('"') => {
            lex_string(cur, text);
            TokenKind::Str
        }
        Some('#') => {
            let mut hashes = 0usize;
            while cur.peek(hashes) == Some('#') {
                hashes += 1;
            }
            if cur.peek(hashes) == Some('"') {
                // Raw string r##"…"##: ends at `"` followed by `hashes` #s.
                cur.bump_n(hashes + 1, text);
                loop {
                    match cur.peek(0) {
                        None => break,
                        Some('"') if (0..hashes).all(|k| cur.peek(1 + k) == Some('#')) => {
                            cur.bump_n(1 + hashes, text);
                            break;
                        }
                        Some(_) => cur.bump(text),
                    }
                }
                TokenKind::Str
            } else {
                // Raw identifier r#ident.
                cur.bump(text); // '#'
                while cur.peek(0).is_some_and(is_ident_continue) {
                    cur.bump(text);
                }
                TokenKind::Ident
            }
        }
        _ => {
            // Just an identifier that happens to start with r/b.
            while cur.peek(0).is_some_and(is_ident_continue) {
                cur.bump(text);
            }
            TokenKind::Ident
        }
    }
}

/// Consumes a `"…"` string, the cursor on the opening quote. Escapes
/// (`\"`, `\\`) are honoured; newlines are legal inside.
fn lex_string(cur: &mut Cursor, text: &mut String) {
    cur.bump(text); // opening quote
    while let Some(ch) = cur.peek(0) {
        if ch == '\\' {
            cur.bump_n(2, text);
        } else if ch == '"' {
            cur.bump(text);
            break;
        } else {
            cur.bump(text);
        }
    }
}

/// Consumes `'…'` with the cursor on the opening quote (escapes handled).
fn lex_char_body(cur: &mut Cursor, text: &mut String) {
    cur.bump(text); // opening '
    while let Some(ch) = cur.peek(0) {
        if ch == '\\' {
            cur.bump_n(2, text);
        } else if ch == '\'' {
            cur.bump(text);
            break;
        } else {
            cur.bump(text);
        }
    }
}

/// Disambiguates `'a'` (char) from `'a` (lifetime), cursor on the `'`.
fn lex_char_or_lifetime(cur: &mut Cursor, text: &mut String) -> TokenKind {
    match cur.peek(1) {
        Some('\\') => {
            lex_char_body(cur, text);
            TokenKind::Char
        }
        Some(c) if is_ident_start(c) => {
            // `'x'` is a char; `'x` followed by anything else is a
            // lifetime (lifetimes are single identifiers, so one
            // ident-char plus a closing quote decides it).
            let mut end = 2;
            while cur.peek(end).is_some_and(is_ident_continue) {
                end += 1;
            }
            if cur.peek(end) == Some('\'') && end == 2 {
                lex_char_body(cur, text);
                TokenKind::Char
            } else {
                cur.bump(text); // '
                while cur.peek(0).is_some_and(is_ident_continue) {
                    cur.bump(text);
                }
                TokenKind::Lifetime
            }
        }
        Some(_) => {
            lex_char_body(cur, text);
            TokenKind::Char
        }
        None => {
            cur.bump(text);
            TokenKind::Punct
        }
    }
}

/// Consumes a numeric literal (int/float/hex/suffix), cursor on a digit.
/// `0..n` lexes as `0`, `.`, `.`, `n` — the dot is only part of the
/// number when a digit follows it.
fn lex_number(cur: &mut Cursor, text: &mut String) {
    while cur.peek(0).is_some_and(is_ident_continue) {
        cur.bump(text);
        // Exponent sign: `1e-5` / `2.5E+10`.
        if text.ends_with(['e', 'E'])
            && cur.peek(0).is_some_and(|c| c == '+' || c == '-')
            && cur.peek(1).is_some_and(|c| c.is_ascii_digit())
            && text.chars().next().is_some_and(|c| c.is_ascii_digit())
            && !text.starts_with("0x")
        {
            cur.bump(text);
        }
    }
    if cur.peek(0) == Some('.') && cur.peek(1).is_some_and(|c| c.is_ascii_digit()) {
        cur.bump(text); // '.'
        while cur.peek(0).is_some_and(is_ident_continue) {
            cur.bump(text);
            if text.ends_with(['e', 'E'])
                && cur.peek(0).is_some_and(|c| c == '+' || c == '-')
                && cur.peek(1).is_some_and(|c| c.is_ascii_digit())
            {
                cur.bump(text);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_puncts_and_positions() {
        let toks = lex("fn f() {\n    x.unwrap();\n}\n");
        let unwrap = toks.iter().find(|t| t.is_ident("unwrap")).expect("unwrap");
        assert_eq!((unwrap.line, unwrap.col), (2, 7));
        let dot = toks.iter().find(|t| t.is_punct('.')).expect("dot");
        assert_eq!((dot.line, dot.col), (2, 6));
    }

    #[test]
    fn strings_swallow_code_like_text() {
        let toks = kinds(r#"let s = "call .unwrap() and panic!";"#);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && t.contains("unwrap")));
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "unwrap"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let toks = kinds(r###"let s = r#"inner "quoted" .unwrap()"# ; done"###);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && t.contains("quoted")));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "done"));
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "unwrap"));
    }

    #[test]
    fn byte_and_char_literals() {
        let toks = kinds(r"let a = b'x'; let c = '\n'; let q = '('; let l: &'static str = s;");
        let chars: Vec<_> = toks.iter().filter(|(k, _)| *k == TokenKind::Char).collect();
        assert_eq!(chars.len(), 3, "{chars:?}");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Lifetime && t == "'static"));
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("/* outer /* inner .unwrap() */ still comment */ fn f() {}");
        assert!(matches!(toks[0].0, TokenKind::BlockComment));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "fn"));
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "unwrap"));
    }

    #[test]
    fn line_comments_and_docs() {
        let toks = kinds("/// docs mention .unwrap()\n//! and dbg!\nfn f() {}");
        assert_eq!(
            toks.iter()
                .filter(|(k, _)| *k == TokenKind::LineComment)
                .count(),
            2
        );
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "unwrap"));
    }

    #[test]
    fn numbers_do_not_eat_ranges() {
        let toks = kinds("for i in 0..n { let x = 1.5e-3; let y = 0x7f_u64; }");
        let nums: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Number)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(nums, ["0", "1.5e-3", "0x7f_u64"]);
    }

    #[test]
    fn raw_identifiers() {
        let toks = kinds("let r#match = 1;");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "r#match"));
    }

    #[test]
    fn unterminated_string_consumes_rest_without_panic() {
        let toks = kinds("let s = \"never closed");
        assert!(matches!(toks.last(), Some((TokenKind::Str, _))));
    }
}
