//! Workspace-wide call graph with suffix-based name resolution.
//!
//! Static resolution of Rust method calls without type inference is
//! undecidable in general, so the graph **over-approximates**: a call
//! named `foo` links to *every* workspace function named `foo`. That is
//! the right bias for a lint gate — the rules err toward asking, and a
//! false pairing is silenced with a justified `analyze:allow` at the
//! offending site. Two refinements keep the noise low in practice:
//!
//! - a qualified call `Owner::foo(…)` resolves only to functions whose
//!   `impl`/`trait` owner is literally `Owner`, when any exist;
//! - calls with no workspace definition (std, shims) are leaves — the
//!   rules judge them by *name pattern* at the call site instead.

use std::collections::HashMap;

use crate::parser::{extract_calls, Call, FnDef};

/// The graph: all parsed functions plus their extracted call sites.
pub struct CallGraph {
    fns: Vec<FnDef>,
    calls: Vec<Vec<Call>>,
    by_name: HashMap<String, Vec<usize>>,
}

impl CallGraph {
    /// Builds the graph from every function in the workspace, in feed
    /// order (deterministic: the driver sorts files).
    pub fn build(fns: Vec<FnDef>) -> CallGraph {
        let calls: Vec<Vec<Call>> = fns.iter().map(|f| extract_calls(&f.tokens)).collect();
        let mut by_name: HashMap<String, Vec<usize>> = HashMap::new();
        for (i, f) in fns.iter().enumerate() {
            by_name.entry(f.name.clone()).or_default().push(i);
        }
        CallGraph {
            fns,
            calls,
            by_name,
        }
    }

    /// All parsed functions, indexable by the ids this graph hands out.
    pub fn fns(&self) -> &[FnDef] {
        &self.fns
    }

    /// The call sites extracted from function `id`'s body.
    pub fn calls(&self, id: usize) -> &[Call] {
        &self.calls[id]
    }

    /// Ids of every function named `name`.
    pub fn named(&self, name: &str) -> &[usize] {
        self.by_name.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Resolves a call site to candidate definitions by name suffix.
    /// Macros never resolve (their bodies are judged at the call site).
    pub fn resolve(&self, call: &Call) -> Vec<usize> {
        if call.is_macro {
            return Vec::new();
        }
        let candidates = self.named(&call.name);
        if let Some(qual) = &call.qual {
            let owned: Vec<usize> = candidates
                .iter()
                .copied()
                .filter(|&i| self.fns[i].owner.as_deref() == Some(qual.as_str()))
                .collect();
            if !owned.is_empty() {
                return owned;
            }
            // A type qualifier with no workspace impl (`Vec::new`,
            // `Arc::clone`) is external — making it a leaf instead of a
            // name-wide wildcard keeps `Vec::new()` from "reaching"
            // every constructor in the workspace. A lowercase
            // qualifier is a module path (`kernels::mark_hits`) and
            // falls through to the name-wide set.
            if qual.chars().next().is_some_and(char::is_uppercase) {
                return Vec::new();
            }
        }
        candidates.to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_fns;
    use crate::source::SourceFile;

    fn graph(src: &str) -> CallGraph {
        CallGraph::build(parse_fns("snippet", &SourceFile::parse("snippet.rs", src)))
    }

    #[test]
    fn suffix_resolution_links_methods_by_name() {
        let g = graph(
            "impl A { fn helper(&self) {} }\n\
             impl B { fn helper(&self) {} }\n\
             fn caller(x: &A) { x.helper(); }\n",
        );
        let caller = g.named("caller")[0];
        let call = &g.calls(caller)[0];
        assert_eq!(g.resolve(call).len(), 2, "suffix match is intentional");
    }

    #[test]
    fn qualified_calls_restrict_to_the_owner() {
        let g = graph(
            "impl A { fn build() {} }\n\
             impl B { fn build() {} }\n\
             fn caller() { A::build(); }\n",
        );
        let caller = g.named("caller")[0];
        let targets = g.resolve(&g.calls(caller)[0]);
        assert_eq!(targets.len(), 1);
        assert_eq!(g.fns()[targets[0]].owner.as_deref(), Some("A"));
    }

    #[test]
    fn module_qualifiers_fall_back_to_name_wide() {
        let g = graph(
            "fn mark_hits() {}\n\
             fn caller() { kernels::mark_hits(); }\n",
        );
        let caller = g.named("caller")[0];
        assert_eq!(g.resolve(&g.calls(caller)[0]).len(), 1);
    }

    #[test]
    fn std_calls_are_leaves() {
        let g = graph("fn caller(v: &mut Vec<u32>) { v.sort_unstable(); }\n");
        let caller = g.named("caller")[0];
        assert!(g.resolve(&g.calls(caller)[0]).is_empty());
    }
}
