//! Intra-procedural dataflow: per-function def-use chains with a small
//! taint lattice and guard tracking — the engine's fourth phase, under
//! the lexer/parser/callgraph stack.
//!
//! A binding is **tainted** when its initializer (or any later
//! assignment to it) contains a call to a configured *taint source*
//! ([`crate::Config::taint_sources`] — the little-endian decoders
//! `read_u32`/`read_u64` and the byte-column accessor `get`), or reads
//! another tainted binding. Taint flows through `let` statements
//! (including tuple and enum patterns), plain and compound assignments
//! (`pos += dlen * 4`), and `for` patterns. The def scan runs **twice**,
//! so loop-carried flows (`prev = end` textually before `end`'s tainting
//! definition) converge.
//!
//! A tainted binding is **validated** once it flows through a check,
//! judged flow-insensitively at function granularity (robust to loops
//! and early returns, at the cost of accepting a check that textually
//! follows the use — the right bias for a lint that must not cry wolf
//! on `while pos < len { … }` idioms):
//!
//! * it appears as an operand of a comparison (`<`, `>`, `==`, `!=`,
//!   `<=`, `>=`) — bounds checks, CRC compares, monotonicity checks;
//! * it is the receiver or an argument of a *guard call*
//!   ([`crate::Config::taint_guards`] — `min`, `clamp`, `checked_add`,
//!   `is_multiple_of`, …).
//!
//! Validation propagates **backward** through the def-use chain:
//! checking `total` after `let total = HEADER + len` bounds `len` too.
//! Forward, a binding derived only from validated parents is clean; one
//! that mixes in a fresh source stays hot.
//!
//! [`Dataflow::chain`] renders the def-use provenance for diagnostics:
//! `` `total` <- `len` <- `read_u32(..)` at line 12 ``.

use std::collections::{HashMap, HashSet};

use crate::lexer::{Token, TokenKind};
use crate::parser::FnDef;

/// One tracked binding: where it was tainted and from what.
#[derive(Debug, Clone)]
pub struct Binding {
    /// Line of the (first) tainting definition.
    pub line: u32,
    /// The taint-source call in this binding's own defs, if any
    /// (`("read_u32", 12)`).
    pub source: Option<(String, u32)>,
    /// Tainted bindings read by this binding's defs.
    pub parents: Vec<String>,
}

/// The per-function dataflow result.
pub struct Dataflow {
    bindings: HashMap<String, Binding>,
    validated: HashSet<String>,
}

/// Runs the analysis over one function body.
pub fn analyze(f: &FnDef, sources: &[String], guards: &[String]) -> Dataflow {
    let mut bindings = HashMap::new();
    // Two sweeps: the second picks up loop-carried taint (`prev = end`
    // before `end`'s tainting def) — taint only grows, so this is a
    // bounded fixpoint for chains of depth one through a loop.
    for _ in 0..2 {
        scan_defs(&f.tokens, sources, &mut bindings);
    }
    let mut validated = HashSet::new();
    scan_validations(&f.tokens, guards, &mut validated);
    // Backward propagation: a validated binding bounds everything that
    // fed it (`if buf.len() < total` with `total = HEADER + len`).
    let mut queue: Vec<String> = validated.iter().cloned().collect();
    while let Some(v) = queue.pop() {
        if let Some(b) = bindings.get(&v) {
            for p in b.parents.clone() {
                if validated.insert(p.clone()) {
                    queue.push(p);
                }
            }
        }
    }
    Dataflow {
        bindings,
        validated,
    }
}

impl Dataflow {
    /// Whether `name` is tainted and **not** validated — i.e. an
    /// attacker-influenced value no check has bounded. The recursion
    /// follows parents so a binding copied from a validated one is
    /// clean, while one mixing in a fresh source stays hot.
    pub fn is_hot(&self, name: &str) -> bool {
        self.hot_inner(name, &mut HashSet::new())
    }

    fn hot_inner(&self, name: &str, visiting: &mut HashSet<String>) -> bool {
        if self.validated.contains(name) {
            return false;
        }
        let Some(b) = self.bindings.get(name) else {
            return false;
        };
        if !visiting.insert(name.to_string()) {
            return false; // def cycle: nothing new on this path
        }
        b.source.is_some() || b.parents.iter().any(|p| self.hot_inner(p, visiting))
    }

    /// The def-use provenance of `name`, rendered for diagnostics:
    /// `` `total` <- `len` <- `read_u32(..)` at line 12 ``.
    pub fn chain(&self, name: &str) -> String {
        let mut parts = vec![format!("`{name}`")];
        let mut seen = HashSet::new();
        let mut cur = name.to_string();
        while seen.insert(cur.clone()) {
            let Some(b) = self.bindings.get(&cur) else {
                break;
            };
            if let Some((src, line)) = &b.source {
                parts.push(format!("`{src}(..)` at line {line}"));
                break;
            }
            // Follow the hot parent when there is one, else any tracked
            // parent — the chain should end at a source if possible.
            let next = b
                .parents
                .iter()
                .find(|p| !seen.contains(*p) && self.is_hot(p))
                .or_else(|| b.parents.iter().find(|p| !seen.contains(*p)));
            let Some(next) = next else {
                break;
            };
            parts.push(format!("`{next}`"));
            cur = next.clone();
        }
        parts.join(" <- ")
    }
}

/// Whether the ident at `m` is a struct-field access (`s.offset`).
/// Range operands (`lo..hi` — the preceding token is the second `.` of
/// `..`) are value reads, not field names.
pub(crate) fn is_field_pos(t: &[Token], m: usize) -> bool {
    m > 0 && t[m - 1].is_punct('.') && !(m > 1 && t[m - 2].is_punct('.'))
}

/// A pattern/binding identifier: lowercase or `_`-prefixed, not the
/// bare discard and not a binding-mode keyword.
fn binds(tok: &Token) -> bool {
    if tok.kind != TokenKind::Ident || tok.text == "_" {
        return false;
    }
    if matches!(tok.text.as_str(), "mut" | "ref" | "box" | "self") {
        return false;
    }
    tok.text
        .chars()
        .next()
        .is_some_and(|c| c.is_lowercase() || c == '_')
}

/// One def-collection sweep: `let PAT [: TY] = RHS`, `x = RHS` /
/// `x op= RHS`, and `for PAT in RHS {`.
fn scan_defs(t: &[Token], sources: &[String], bindings: &mut HashMap<String, Binding>) {
    let mut i = 0;
    while i < t.len() {
        let tok = &t[i];
        if tok.is_ident("let")
            && !(i > 0 && (t[i - 1].is_ident("if") || t[i - 1].is_ident("while")))
        {
            // Pattern idents up to the top-level `=` (skipping the type
            // annotation after a lone `:`); nested tuple/enum patterns
            // bind at any bracket depth.
            let mut depth = 0i64;
            let mut in_type = false;
            let mut pat: Vec<(String, u32)> = Vec::new();
            let mut eq = None;
            let mut j = i + 1;
            while j < t.len() {
                let x = &t[j];
                if x.is_punct('(') || x.is_punct('[') || x.is_punct('<') {
                    depth += 1;
                } else if x.is_punct(')') || x.is_punct(']') || x.is_punct('>') {
                    depth -= 1;
                } else if x.is_punct('=') && depth <= 0 {
                    eq = Some(j);
                    break;
                } else if x.is_punct(';') && depth <= 0 {
                    break;
                } else if x.is_punct(':') && depth <= 0 {
                    in_type = true;
                } else if !in_type && binds(x) {
                    pat.push((x.text.clone(), x.line));
                }
                j += 1;
            }
            if let Some(eq) = eq {
                let (source, parents) = scan_rhs(t, eq + 1, false, sources, bindings);
                if source.is_some() || !parents.is_empty() {
                    for (name, line) in pat {
                        merge(bindings, name, line, &source, &parents);
                    }
                }
            }
            i += 1;
            continue;
        }
        // Assignment: `x = RHS` / `x op= RHS` (compound ops lex as two
        // puncts). Field writes (`s.x = …`) and `==`/`=>` are excluded.
        if binds(tok) && !(i > 0 && t[i - 1].is_punct('.')) {
            let mut eq = None;
            if let Some(n1) = t.get(i + 1) {
                if n1.is_punct('=') {
                    let cmp = t
                        .get(i + 2)
                        .is_some_and(|x| x.is_punct('=') || x.is_punct('>'));
                    if !cmp {
                        eq = Some(i + 2);
                    }
                } else if n1.kind == TokenKind::Punct
                    && "+-*/%&|^".contains(n1.text.as_str())
                    && t.get(i + 2).is_some_and(|x| x.is_punct('='))
                    && !t.get(i + 3).is_some_and(|x| x.is_punct('='))
                {
                    eq = Some(i + 3);
                }
            }
            if let Some(from) = eq {
                let (source, parents) = scan_rhs(t, from, false, sources, bindings);
                if source.is_some() || !parents.is_empty() {
                    merge(bindings, tok.text.clone(), tok.line, &source, &parents);
                }
                i += 1;
                continue;
            }
        }
        // `for PAT in RHS {`
        if tok.is_ident("for") {
            let mut pat: Vec<(String, u32)> = Vec::new();
            let mut j = i + 1;
            while j < t.len() && !t[j].is_ident("in") {
                if binds(&t[j]) {
                    pat.push((t[j].text.clone(), t[j].line));
                }
                j += 1;
            }
            if j < t.len() {
                let (source, parents) = scan_rhs(t, j + 1, true, sources, bindings);
                if source.is_some() || !parents.is_empty() {
                    for (name, line) in pat {
                        merge(bindings, name, line, &source, &parents);
                    }
                }
            }
        }
        i += 1;
    }
}

/// Records a (possibly repeated) tainting def of `name`: sources and
/// parents union across defs — the flow-insensitive merge.
fn merge(
    bindings: &mut HashMap<String, Binding>,
    name: String,
    line: u32,
    source: &Option<(String, u32)>,
    parents: &[String],
) {
    let b = bindings.entry(name.clone()).or_insert(Binding {
        line,
        source: None,
        parents: Vec::new(),
    });
    if b.source.is_none() {
        b.source = source.clone();
    }
    for p in parents {
        if *p != name && !b.parents.contains(p) {
            b.parents.push(p.clone());
        }
    }
}

/// Scans an initializer from `from` to its terminator (`;` or `else` at
/// depth 0; the body `{` too when `stop_at_brace` — the `for` form),
/// returning the first taint-source call and the tainted idents read.
fn scan_rhs(
    t: &[Token],
    from: usize,
    stop_at_brace: bool,
    sources: &[String],
    bindings: &HashMap<String, Binding>,
) -> (Option<(String, u32)>, Vec<String>) {
    let mut depth = 0i64;
    let mut source = None;
    let mut parents = Vec::new();
    let mut m = from;
    while m < t.len() {
        let tok = &t[m];
        if tok.is_punct('{') && depth == 0 && stop_at_brace {
            break;
        }
        if tok.is_punct('(') || tok.is_punct('[') || tok.is_punct('{') {
            depth += 1;
        } else if tok.is_punct(')') || tok.is_punct(']') || tok.is_punct('}') {
            depth -= 1;
            if depth < 0 {
                break;
            }
        } else if (tok.is_punct(';') || tok.is_ident("else")) && depth <= 0 {
            break;
        } else if tok.kind == TokenKind::Ident {
            let field = is_field_pos(t, m);
            let callee = t.get(m + 1).is_some_and(|x| x.is_punct('('));
            if callee && sources.iter().any(|s| s == &tok.text) {
                // Method sources (`offs.get(i)`) are calls too — the
                // `field` position does not exempt them.
                if source.is_none() {
                    source = Some((tok.text.clone(), tok.line));
                }
            } else if !field
                && !callee
                && bindings.contains_key(&tok.text)
                && !parents.contains(&tok.text)
            {
                parents.push(tok.text.clone());
            }
        }
        m += 1;
    }
    (source, parents)
}

/// The flow-insensitive validation sweep: comparison operands and
/// guard-call receivers/arguments.
fn scan_validations(t: &[Token], guards: &[String], validated: &mut HashSet<String>) {
    for k in 0..t.len() {
        let tok = &t[k];
        // Guard call: validate the receiver chain and every argument.
        if tok.kind == TokenKind::Ident
            && guards.iter().any(|g| g == &tok.text)
            && t.get(k + 1).is_some_and(|x| x.is_punct('('))
        {
            let mut m = k;
            while m >= 2 && t[m - 1].is_punct('.') && t[m - 2].kind == TokenKind::Ident {
                validated.insert(t[m - 2].text.clone());
                m -= 2;
            }
            let mut depth = 0i64;
            let mut a = k + 1;
            while a < t.len() {
                let x = &t[a];
                if x.is_punct('(') {
                    depth += 1;
                } else if x.is_punct(')') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if x.kind == TokenKind::Ident
                    && !is_field_pos(t, a)
                    && !t.get(a + 1).is_some_and(|y| y.is_punct('('))
                {
                    validated.insert(x.text.clone());
                }
                a += 1;
            }
            continue;
        }
        if is_comparison(t, k) {
            window(t, k, Dir::Left, validated);
            window(t, k, Dir::Right, validated);
        }
    }
}

/// Whether the punct at `k` starts a comparison operator. `<<`/`>>`
/// shifts, `->`, `=>`, turbofish `::<`, and assignment `=` are excluded;
/// generic angle brackets are accepted (their operands are type names,
/// which are not bindings, so over-validation cannot occur in practice).
///
/// Compound operators lex as adjacent single puncts, so the `=` arm
/// demands **column adjacency**: `n >= m` is a comparison, while the
/// spaced `>` and `=` of `let v: Vec<u8> = …` are a generic close
/// followed by a plain assignment.
fn is_comparison(t: &[Token], k: usize) -> bool {
    let tok = &t[k];
    if tok.kind != TokenKind::Punct {
        return false;
    }
    let prev = |c: char| k > 0 && t[k - 1].is_punct(c);
    let next = |c: char| t.get(k + 1).is_some_and(|x| x.is_punct(c));
    let adj_prev = |c: char| prev(c) && t[k - 1].line == tok.line && t[k - 1].col + 1 == tok.col;
    match tok.text.as_str() {
        "<" => !prev('<') && !next('<') && !prev(':'),
        ">" => !prev('>') && !next('>') && !prev('-') && !prev('='),
        "=" => {
            let adj_next_eq = t
                .get(k + 1)
                .is_some_and(|x| x.is_punct('=') && x.line == tok.line && x.col == tok.col + 1);
            // `==` (first token), or the second char of `!=`/`<=`/`>=`.
            (adj_next_eq && !prev('=') && !prev('!') && !prev('<') && !prev('>'))
                || adj_prev('!')
                || adj_prev('<')
                || adj_prev('>')
        }
        _ => false,
    }
}

enum Dir {
    Left,
    Right,
}

/// Collects the comparison's operand idents on one side of the operator
/// at `k`: identifiers (at any nesting depth inside the operand, so CRC
/// compares validate their call arguments too) up to an expression
/// boundary — `;`, `,`, `&&`/`||`, a lone `=`, a block brace, or the
/// bracket enclosing the comparison itself.
fn window(t: &[Token], k: usize, dir: Dir, validated: &mut HashSet<String>) {
    let mut depth = 0i64;
    let mut steps = 0;
    let mut m = k;
    loop {
        match dir {
            Dir::Left => {
                if m == 0 {
                    return;
                }
                m -= 1;
            }
            Dir::Right => {
                m += 1;
                if m >= t.len() {
                    return;
                }
            }
        }
        steps += 1;
        if steps > 64 {
            return;
        }
        let x = &t[m];
        let (open, close) = match dir {
            // Walking left, a `)` opens a nested group and a `(` closes
            // one (or bounds the window); mirrored on the right.
            Dir::Left => (")]}", "(["),
            Dir::Right => ("([", ")]}"),
        };
        if x.kind == TokenKind::Punct {
            let c = x.text.chars().next().unwrap_or(' ');
            if open.contains(c) {
                depth += 1;
                continue;
            }
            if close.contains(c) || (matches!(dir, Dir::Right) && c == '{') {
                if depth == 0 {
                    return;
                }
                depth -= 1;
                continue;
            }
            if depth == 0 {
                if c == ';' || c == ',' || c == '{' {
                    return;
                }
                // A lone `:` to the left is a type ascription (`let v:
                // Vec<u8> = …`) or a field init — either way the idents
                // beyond it are not this comparison's operands. `::`
                // paths continue the window.
                if matches!(dir, Dir::Left)
                    && c == ':'
                    && !(m > 0 && t[m - 1].is_punct(':'))
                    && !t.get(m + 1).is_some_and(|y| y.is_punct(':'))
                {
                    return;
                }
                // `&&` / `||` — two adjacent identical puncts.
                if (c == '&' || c == '|')
                    && ((m > 0 && t[m - 1].is_punct(c))
                        || t.get(m + 1).is_some_and(|y| y.is_punct(c)))
                {
                    return;
                }
                // A lone `=` (assignment) bounds the window; comparison
                // `=`s continue it.
                if c == '=' && !is_comparison(t, m) {
                    return;
                }
            }
            continue;
        }
        if x.kind == TokenKind::Ident && !is_field_pos(t, m) && binds(x) {
            validated.insert(x.text.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_fns;
    use crate::source::SourceFile;

    fn df(src: &str) -> Dataflow {
        let fns = parse_fns("snippet", &SourceFile::parse("snippet.rs", src));
        let s = |v: &[&str]| v.iter().map(|x| x.to_string()).collect::<Vec<_>>();
        analyze(
            &fns[0],
            &s(&["read_u32", "read_u64", "get"]),
            &s(&["min", "checked_add", "is_multiple_of"]),
        )
    }

    #[test]
    fn source_call_taints_and_comparison_validates() {
        let d = df(
            "fn f(b: &[u8]) {\n    let n = read_u32(b, 0) as usize;\n    let m = read_u32(b, 4) as usize;\n    if n > b.len() { return; }\n}\n",
        );
        assert!(!d.is_hot("n"), "comparison validates n");
        assert!(d.is_hot("m"), "m never checked");
        assert!(d.chain("m").contains("read_u32"), "{}", d.chain("m"));
    }

    #[test]
    fn backward_propagation_through_derived_total() {
        let d = df(
            "fn f(b: &[u8]) {\n    let len = read_u32(b, 0) as usize;\n    let total = 12 + len;\n    if b.len() < total { return; }\n}\n",
        );
        assert!(!d.is_hot("len"), "checking total bounds len");
    }

    #[test]
    fn loop_carried_assignment_converges() {
        let d = df(
            "fn f(b: &[u8]) {\n    let mut prev = 0;\n    loop {\n        let end = read_u32(b, 0);\n        if end < prev { break; }\n        prev = end;\n    }\n}\n",
        );
        assert!(!d.is_hot("prev"), "prev validated via the end compare");
        let b = d.bindings.get("prev").expect("prev tracked");
        assert!(
            b.parents.contains(&"end".to_string()),
            "loop-carried parent"
        );
    }

    #[test]
    fn guard_call_validates_receiver_and_args() {
        let d = df(
            "fn f(b: &[u8]) {\n    let n = read_u32(b, 0) as usize;\n    let k = read_u32(b, 4) as usize;\n    let v = Vec::with_capacity(n.min(4096));\n    let w = cap.checked_add(k);\n}\n",
        );
        assert!(!d.is_hot("n"), "min() receiver");
        assert!(!d.is_hot("k"), "checked_add argument");
        assert!(!d.is_hot("v"), "derived from validated only");
    }

    #[test]
    fn mixing_validated_parent_with_fresh_source_stays_hot() {
        let d = df(
            "fn f(b: &[u8]) {\n    let n = read_u32(b, 0) as usize;\n    if n > 4 { return; }\n    let m = n + read_u32(b, 4) as usize;\n}\n",
        );
        assert!(d.is_hot("m"), "fresh source in m's def");
    }

    #[test]
    fn generic_type_annotation_is_not_a_comparison() {
        // `let v: Vec<u32> = …` lexes as spaced `>` `=`: the pair must
        // not read as `>=` and validate the capacity operand.
        let d = df(
            "fn f(b: &[u8]) {\n    let count = read_u64(b, 8) as usize;\n    let v: Vec<u32> = Vec::with_capacity(count);\n}\n",
        );
        assert!(d.is_hot("count"), "annotation must not validate count");
        // A real spaced-out comparison still validates.
        let d = df(
            "fn f(b: &[u8]) {\n    let n = read_u32(b, 0) as usize;\n    if n >= b.len() { return; }\n}\n",
        );
        assert!(!d.is_hot("n"));
    }

    #[test]
    fn for_and_tuple_patterns_carry_taint() {
        let d = df(
            "fn f(b: &[u8]) {\n    let (lo, hi) = (read_u32(b, 0), read_u32(b, 4));\n    for row in lo..hi {\n        touch(row);\n    }\n}\n",
        );
        assert!(d.is_hot("lo"));
        assert!(d.is_hot("row"), "for-pattern inherits range taint");
    }
}
