//! Property tests for the validators: a structure that went through any
//! random build + insert + delete sequence must validate clean, and a
//! deliberately corrupted structure must report at least one violation.

use proptest::prelude::*;
use tir_check::Validate;
use tir_core::prelude::*;
use tir_hint::{Hint, HintConfig, IntervalRecord};
use tir_invidx::{BlockPostings, ContainerConfig, HybridPostings, Kernel, PlanStats};

const DOMAIN: u64 = 2000;
const DICT: u32 = 10;

fn arb_records(max: usize) -> impl Strategy<Value = Vec<IntervalRecord>> {
    prop::collection::vec((0..DOMAIN, 0..DOMAIN), 1..max).prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (a, b))| IntervalRecord::new(i as u32, a.min(b), a.max(b)))
            .collect()
    })
}

fn arb_collection(max_objects: usize) -> impl Strategy<Value = Collection> {
    prop::collection::vec(
        (
            0..DOMAIN,
            0..DOMAIN,
            prop::collection::btree_set(0..DICT, 1..5),
        ),
        1..max_objects,
    )
    .prop_map(|raw| {
        let objects = raw
            .into_iter()
            .enumerate()
            .map(|(i, (a, b, desc))| {
                Object::new(i as u32, a.min(b), a.max(b), desc.into_iter().collect())
            })
            .collect();
        Collection::new(objects)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn hint_validates_after_random_updates(
        base in arb_records(40),
        extra in arb_records(10),
        del_mask in prop::collection::vec(any::<bool>(), 40),
        m in 1u32..7,
    ) {
        let mut h = Hint::build(&base, HintConfig::with_m(m));
        for r in &extra {
            let r = IntervalRecord::new(r.id + 1000, r.st, r.end);
            h.insert(&r);
        }
        for (r, &kill) in base.iter().zip(del_mask.iter()) {
            if kill {
                h.delete(r);
            }
        }
        let v = h.validate();
        prop_assert!(v.is_empty(), "violations: {v:?}");
    }

    #[test]
    fn corrupted_hint_reports_a_violation(base in arb_records(30), m in 1u32..6) {
        let mut h = Hint::build(&base, HintConfig::with_m(m));
        h.testing_corrupt_dead_counter();
        let v = h.validate();
        prop_assert!(!v.is_empty(), "corrupted dead counter went unnoticed");
    }

    #[test]
    fn irhint_perf_validates_after_random_updates(
        coll in arb_collection(30),
        extra in arb_collection(8),
        del_mask in prop::collection::vec(any::<bool>(), 30),
        m in 1u32..7,
    ) {
        let mut idx = IrHintPerf::build_with_m(&coll, m);
        for o in extra.objects() {
            let o = Object::new(o.id + 1000, o.interval.st, o.interval.end, o.desc.clone());
            idx.insert(&o);
        }
        for (o, &kill) in coll.objects().iter().zip(del_mask.iter()) {
            if kill {
                idx.delete(o);
            }
        }
        let v = idx.validate();
        prop_assert!(v.is_empty(), "violations: {v:?}");
    }

    #[test]
    fn corrupted_irhint_perf_reports_a_violation(coll in arb_collection(20), m in 1u32..6) {
        let mut idx = IrHintPerf::build_with_m(&coll, m);
        idx.testing_corrupt();
        let v = idx.validate();
        prop_assert!(!v.is_empty(), "corrupted parallel arrays went unnoticed");
    }

    #[test]
    fn tif_and_hybrid_containers_validate_after_random_updates(
        coll in arb_collection(30),
        extra in arb_collection(8),
        del_mask in prop::collection::vec(any::<bool>(), 30),
    ) {
        let mut idx = Tif::build(&coll);
        for o in extra.objects() {
            let o = Object::new(o.id + 1000, o.interval.st, o.interval.end, o.desc.clone());
            idx.insert(&o);
        }
        for (o, &kill) in coll.objects().iter().zip(del_mask.iter()) {
            if kill {
                idx.delete(o);
            }
        }
        let v = idx.validate();
        prop_assert!(v.is_empty(), "violations: {v:?}");
    }

    #[test]
    fn hybrid_postings_validate_after_random_updates(
        lists in prop::collection::vec(prop::collection::btree_set(0u32..64, 1..32), 1..8),
        kills in prop::collection::vec((0u32..8, 0u32..64), 0..16),
    ) {
        let owned: Vec<Vec<u32>> = lists.iter().map(|s| s.iter().copied().collect()).collect();
        let mut h = HybridPostings::from_lists(
            owned.iter().enumerate().map(|(e, ids)| (e as u32, ids.as_slice())),
            64,
            ContainerConfig::default(),
        );
        for &(e, id) in &kills {
            h.tombstone(e, id);
        }
        let v = h.validate();
        prop_assert!(v.is_empty(), "violations: {v:?}");
        h.compact();
        let v = h.validate();
        prop_assert!(v.is_empty(), "violations after compact: {v:?}");
    }

    #[test]
    fn corrupted_hybrid_cardinality_reports_a_violation(
        ids in prop::collection::btree_set(0u32..200, 5..60),
    ) {
        let ids: Vec<u32> = ids.into_iter().collect();
        let mut h = HybridPostings::from_lists(
            std::iter::once((0u32, ids.as_slice())),
            200,
            ContainerConfig::default(),
        );
        h.testing_corrupt_cardinality();
        let v = h.validate();
        prop_assert!(!v.is_empty(), "desynced cardinality went unnoticed");
    }

    #[test]
    fn corrupted_hybrid_deleted_bit_reports_a_violation(hole in 100u32..200) {
        // 51 live evens of universe 200 are dense under the default 1/32
        // threshold without forming runs, and every odd-aligned id in
        // [100, 200) is a guaranteed hole the corruption hook can set a
        // stray deleted bit in.
        let hole = hole | 1;
        let ids: Vec<u32> = (0..50).map(|i| i * 2).chain(std::iter::once(hole)).collect();
        let mut h = HybridPostings::from_lists(
            std::iter::once((0u32, ids.as_slice())),
            200,
            ContainerConfig::default(),
        );
        prop_assert!(h.get(0).is_some_and(|c| c.is_dense()));
        h.tombstone(0, hole);
        prop_assert!(h.validate().is_empty());
        h.testing_corrupt_deleted_outside();
        let v = h.validate();
        prop_assert!(!v.is_empty(), "deleted bit outside the present set went unnoticed");
    }

    #[test]
    fn run_containers_validate_and_catch_corruption(n in 16u32..64, start in 0u32..20) {
        let ids: Vec<u32> = (start..start + n).collect();
        // Universe large enough that density (1/64) never wins the form
        // choice — clustered-but-sparse is the run container's regime.
        let mut h = HybridPostings::from_lists(
            std::iter::once((0u32, ids.as_slice())),
            10_000,
            ContainerConfig::default(),
        );
        prop_assert!(h.get(0).is_some_and(|c| c.is_runs()));
        h.tombstone(0, start + 3);
        prop_assert!(h.validate().is_empty());
        h.testing_corrupt_deleted_outside();
        let v = h.validate();
        prop_assert!(!v.is_empty(), "deleted id outside every run went unnoticed");
    }

    #[test]
    fn block_postings_validate_and_catch_corruption(
        ids in prop::collection::btree_set(0u32..100_000, 1..400),
    ) {
        let ids: Vec<u32> = ids.into_iter().collect();
        let mut bp = BlockPostings::encode(&ids);
        prop_assert!(bp.validate().is_empty(), "violations: {:?}", bp.validate());
        bp.testing_corrupt_skip_bound();
        prop_assert!(!bp.validate().is_empty(), "skip-bound desync went unnoticed");
    }

    #[test]
    fn plan_stats_validate_and_catch_desync(
        notes in prop::collection::vec((0u8..6, 0u64..1000), 0..32),
        bump in 1u64..100,
    ) {
        let mut stats = PlanStats::default();
        for &(k, scanned) in &notes {
            let kernel = match k {
                0 => Kernel::Merge,
                1 => Kernel::SimdMerge,
                2 => Kernel::Gallop,
                3 => Kernel::BitmapProbe,
                4 => Kernel::WordAnd,
                _ => Kernel::RunIntersect,
            };
            stats.note(kernel, scanned);
        }
        let v = stats.validate();
        prop_assert!(v.is_empty(), "violations: {v:?}");
        stats.scanned += bump;
        prop_assert!(!stats.validate().is_empty(), "scanned desync went unnoticed");
    }

    #[test]
    fn irhint_size_validates_after_random_updates(
        coll in arb_collection(30),
        del_mask in prop::collection::vec(any::<bool>(), 30),
        m in 1u32..7,
    ) {
        let mut idx = IrHintSize::build_with_m(&coll, m);
        for (o, &kill) in coll.objects().iter().zip(del_mask.iter()) {
            if kill {
                idx.delete(o);
            }
        }
        let v = idx.validate();
        prop_assert!(v.is_empty(), "violations: {v:?}");
    }
}
