//! Validators for the inverted-index substrate (`tir-invidx`).

use crate::{fail, Validate, Violation};
use tir_invidx::{
    live, raw, CompactInverted, CompactTemporalInverted, CompressedPostings, Dictionary,
    InvertedIndex,
};

impl Validate for Dictionary {
    fn validate(&self) -> Vec<Violation> {
        let mut out = Vec::new();
        let n = self.len();
        if self.num_mapped() != n {
            fail(
                &mut out,
                "dict/map",
                format!(
                    "term map has {} entries, term table has {n}",
                    self.num_mapped()
                ),
            );
        }
        if self.num_freq_slots() != n {
            fail(
                &mut out,
                "dict/freq",
                format!(
                    "freq table has {} slots, term table has {n}",
                    self.num_freq_slots()
                ),
            );
        }
        for id in 0..n as u32 {
            let path = format!("dict/term{id}");
            match self.term(id) {
                None => fail(&mut out, &path, "term table slot missing".into()),
                Some(t) => {
                    if self.lookup(t) != Some(id) {
                        fail(
                            &mut out,
                            &path,
                            format!("lookup({t:?}) = {:?}, want {id}", self.lookup(t)),
                        );
                    }
                }
            }
        }
        out
    }
}

impl Validate for InvertedIndex {
    fn validate(&self) -> Vec<Violation> {
        let mut out = Vec::new();
        self.for_each_list(|e, list| {
            let path = format!("invidx/elem{e}");
            if !list.windows(2).all(|w| raw(w[0]) < raw(w[1])) {
                fail(
                    &mut out,
                    &path,
                    "postings not strictly ascending by raw id".into(),
                );
            }
            let live_count = list.iter().filter(|&&id| live(id)).count();
            if live_count > self.len() {
                fail(
                    &mut out,
                    &path,
                    format!(
                        "{live_count} live postings but only {} live objects",
                        self.len()
                    ),
                );
            }
        });
        out
    }
}

/// Validates a flat element → postings directory: exact, monotone offsets
/// bracketing strictly ascending postings under a strictly ascending
/// element directory. Returns per-element live counts via `on_list`.
fn check_flat_directory(
    prefix: &str,
    elems: &[u32],
    offsets: &[u32],
    ids: &[u32],
    out: &mut Vec<Violation>,
    mut on_list: impl FnMut(u32, &[u32]),
) {
    if offsets.len() != elems.len() + 1 {
        fail(
            out,
            &format!("{prefix}/offsets"),
            format!(
                "{} offsets for {} elements (want elements + 1)",
                offsets.len(),
                elems.len()
            ),
        );
        return;
    }
    if offsets.first() != Some(&0) {
        fail(
            out,
            &format!("{prefix}/offsets"),
            "first offset is not 0".into(),
        );
        return;
    }
    if !offsets.windows(2).all(|w| w[0] <= w[1]) {
        fail(
            out,
            &format!("{prefix}/offsets"),
            "offsets not monotone".into(),
        );
        return;
    }
    if offsets.last().copied().unwrap_or(0) as usize != ids.len() {
        fail(
            out,
            &format!("{prefix}/offsets"),
            format!(
                "last offset {} does not match {} stored postings",
                offsets.last().copied().unwrap_or(0),
                ids.len()
            ),
        );
        return;
    }
    if !elems.windows(2).all(|w| w[0] < w[1]) {
        fail(
            out,
            &format!("{prefix}/elements"),
            "element directory not strictly ascending".into(),
        );
    }
    for (i, &e) in elems.iter().enumerate() {
        let list = &ids[offsets[i] as usize..offsets[i + 1] as usize];
        if !list.windows(2).all(|w| raw(w[0]) < raw(w[1])) {
            fail(
                out,
                &format!("{prefix}/elem{e}"),
                "postings not strictly ascending by raw id".into(),
            );
        }
        on_list(e, list);
    }
}

impl Validate for CompactInverted {
    fn validate(&self) -> Vec<Violation> {
        let mut out = Vec::new();
        check_flat_directory(
            "compact",
            self.elements(),
            self.offsets(),
            self.all_ids(),
            &mut out,
            |_, _| {},
        );
        out
    }
}

impl Validate for CompactTemporalInverted {
    fn validate(&self) -> Vec<Violation> {
        let mut out = Vec::new();
        let n = self.all_ids().len();
        if self.all_sts().len() != n || self.all_ends().len() != n {
            fail(
                &mut out,
                "compact_temporal/columns",
                format!(
                    "parallel columns disagree: {n} ids, {} starts, {} ends",
                    self.all_sts().len(),
                    self.all_ends().len()
                ),
            );
            return out;
        }
        for i in 0..n {
            if self.all_sts()[i] > self.all_ends()[i] {
                fail(
                    &mut out,
                    "compact_temporal/intervals",
                    format!(
                        "entry {i}: inverted interval [{}, {}]",
                        self.all_sts()[i],
                        self.all_ends()[i]
                    ),
                );
            }
        }
        check_flat_directory(
            "compact_temporal",
            self.elements(),
            self.offsets(),
            self.all_ids(),
            &mut out,
            |_, _| {},
        );
        out
    }
}

impl Validate for CompressedPostings {
    fn validate(&self) -> Vec<Violation> {
        let mut out = Vec::new();
        let data = self.raw_bytes();
        let mut pos = 0usize;
        let mut prev: Option<u64> = None;
        for i in 0..self.len() {
            // Bounds-checked varint walk: the production decoder indexes
            // unchecked, so a validator must never reuse it on possibly
            // corrupt bytes.
            let mut v = 0u64;
            let mut shift = 0u32;
            loop {
                let Some(&byte) = data.get(pos) else {
                    fail(
                        &mut out,
                        "compressed/stream",
                        format!("stream truncated inside posting {i} of {}", self.len()),
                    );
                    return out;
                };
                pos += 1;
                if shift >= 64 {
                    fail(
                        &mut out,
                        "compressed/stream",
                        format!("varint of posting {i} exceeds 64 bits"),
                    );
                    return out;
                }
                v |= ((byte & 0x7f) as u64) << shift;
                if byte & 0x80 == 0 {
                    break;
                }
                shift += 7;
            }
            let acc = match prev {
                None => v,
                Some(p) => {
                    if v == 0 {
                        fail(
                            &mut out,
                            "compressed/deltas",
                            format!("zero delta at posting {i}: ids not strictly ascending"),
                        );
                    }
                    p.saturating_add(v)
                }
            };
            if acc > u32::MAX as u64 {
                fail(
                    &mut out,
                    "compressed/deltas",
                    format!("posting {i} decodes to {acc}, beyond the u32 id space"),
                );
            }
            prev = Some(acc);
        }
        if pos != data.len() {
            fail(
                &mut out,
                "compressed/stream",
                format!("{} trailing bytes after the last posting", data.len() - pos),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_structures_validate() {
        let mut d = Dictionary::new();
        d.intern_description(["a", "b", "c"]);
        assert!(d.validate().is_empty());

        let mut inv = InvertedIndex::new();
        inv.insert(1, &[0, 1]);
        inv.insert(2, &[1]);
        assert!(inv.validate().is_empty());

        let ci = CompactInverted::build(&mut [(0, 1), (0, 2), (1, 2)]);
        assert!(ci.validate().is_empty());

        let ct = CompactTemporalInverted::build(&mut [(0, 1, 5, 9), (1, 2, 0, 3)]);
        assert!(ct.validate().is_empty());

        let cp = CompressedPostings::encode(&[1, 5, 1000]);
        assert!(cp.validate().is_empty());
    }

    #[test]
    fn empty_structures_validate() {
        assert!(Dictionary::new().validate().is_empty());
        assert!(InvertedIndex::new().validate().is_empty());
        assert!(CompactInverted::new().validate().is_empty());
        assert!(CompactTemporalInverted::new().validate().is_empty());
        assert!(CompressedPostings::encode(&[]).validate().is_empty());
    }
}
