//! Validators for the inverted-index substrate (`tir-invidx`).

use crate::{fail, Validate, Violation};
use tir_invidx::compress::BLOCK_LEN;
use tir_invidx::{
    live, raw, BlockPostings, CompactInverted, CompactTemporalInverted, CompressedPostings,
    Dictionary, HybridPostings, InvertedIndex, PlanStats, PostingContainer,
};

impl Validate for Dictionary {
    fn validate(&self) -> Vec<Violation> {
        let mut out = Vec::new();
        let n = self.len();
        if self.num_mapped() != n {
            fail(
                &mut out,
                "dict/map",
                format!(
                    "term map has {} entries, term table has {n}",
                    self.num_mapped()
                ),
            );
        }
        if self.num_freq_slots() != n {
            fail(
                &mut out,
                "dict/freq",
                format!(
                    "freq table has {} slots, term table has {n}",
                    self.num_freq_slots()
                ),
            );
        }
        for id in 0..n as u32 {
            let path = format!("dict/term{id}");
            match self.term(id) {
                None => fail(&mut out, &path, "term table slot missing".into()),
                Some(t) => {
                    if self.lookup(t) != Some(id) {
                        fail(
                            &mut out,
                            &path,
                            format!("lookup({t:?}) = {:?}, want {id}", self.lookup(t)),
                        );
                    }
                }
            }
        }
        out
    }
}

impl Validate for InvertedIndex {
    fn validate(&self) -> Vec<Violation> {
        let mut out = Vec::new();
        self.for_each_list(|e, list| {
            let path = format!("invidx/elem{e}");
            if !list.windows(2).all(|w| raw(w[0]) < raw(w[1])) {
                fail(
                    &mut out,
                    &path,
                    "postings not strictly ascending by raw id".into(),
                );
            }
            let live_count = list.iter().filter(|&&id| live(id)).count();
            if live_count > self.len() {
                fail(
                    &mut out,
                    &path,
                    format!(
                        "{live_count} live postings but only {} live objects",
                        self.len()
                    ),
                );
            }
        });
        out
    }
}

/// Validates a flat element → postings directory: exact, monotone offsets
/// bracketing strictly ascending postings under a strictly ascending
/// element directory. Returns per-element live counts via `on_list`.
fn check_flat_directory(
    prefix: &str,
    elems: &[u32],
    offsets: &[u32],
    ids: &[u32],
    out: &mut Vec<Violation>,
    mut on_list: impl FnMut(u32, &[u32]),
) {
    if offsets.len() != elems.len() + 1 {
        fail(
            out,
            &format!("{prefix}/offsets"),
            format!(
                "{} offsets for {} elements (want elements + 1)",
                offsets.len(),
                elems.len()
            ),
        );
        return;
    }
    if offsets.first() != Some(&0) {
        fail(
            out,
            &format!("{prefix}/offsets"),
            "first offset is not 0".into(),
        );
        return;
    }
    if !offsets.windows(2).all(|w| w[0] <= w[1]) {
        fail(
            out,
            &format!("{prefix}/offsets"),
            "offsets not monotone".into(),
        );
        return;
    }
    if offsets.last().copied().unwrap_or(0) as usize != ids.len() {
        fail(
            out,
            &format!("{prefix}/offsets"),
            format!(
                "last offset {} does not match {} stored postings",
                offsets.last().copied().unwrap_or(0),
                ids.len()
            ),
        );
        return;
    }
    if !elems.windows(2).all(|w| w[0] < w[1]) {
        fail(
            out,
            &format!("{prefix}/elements"),
            "element directory not strictly ascending".into(),
        );
    }
    for (i, &e) in elems.iter().enumerate() {
        let list = &ids[offsets[i] as usize..offsets[i + 1] as usize];
        if !list.windows(2).all(|w| raw(w[0]) < raw(w[1])) {
            fail(
                out,
                &format!("{prefix}/elem{e}"),
                "postings not strictly ascending by raw id".into(),
            );
        }
        on_list(e, list);
    }
}

impl Validate for CompactInverted {
    fn validate(&self) -> Vec<Violation> {
        let mut out = Vec::new();
        check_flat_directory(
            "compact",
            self.elements(),
            self.offsets(),
            self.all_ids(),
            &mut out,
            |_, _| {},
        );
        out
    }
}

impl Validate for CompactTemporalInverted {
    fn validate(&self) -> Vec<Violation> {
        let mut out = Vec::new();
        let n = self.all_ids().len();
        if self.all_sts().len() != n || self.all_ends().len() != n {
            fail(
                &mut out,
                "compact_temporal/columns",
                format!(
                    "parallel columns disagree: {n} ids, {} starts, {} ends",
                    self.all_sts().len(),
                    self.all_ends().len()
                ),
            );
            return out;
        }
        for i in 0..n {
            if self.all_sts()[i] > self.all_ends()[i] {
                fail(
                    &mut out,
                    "compact_temporal/intervals",
                    format!(
                        "entry {i}: inverted interval [{}, {}]",
                        self.all_sts()[i],
                        self.all_ends()[i]
                    ),
                );
            }
        }
        check_flat_directory(
            "compact_temporal",
            self.elements(),
            self.offsets(),
            self.all_ids(),
            &mut out,
            |_, _| {},
        );
        out
    }
}

impl Validate for HybridPostings {
    fn validate(&self) -> Vec<Violation> {
        let mut out = Vec::new();
        let universe = self.universe();
        let den = u64::from(self.config().density_den);
        self.for_each(|e, c| {
            let path = format!("hybrid/elem{e}");
            match c {
                PostingContainer::Sparse { ids, live: cached } => {
                    if !ids.windows(2).all(|w| raw(w[0]) < raw(w[1])) {
                        fail(
                            &mut out,
                            &path,
                            "sparse postings not strictly ascending by raw id".into(),
                        );
                    }
                    // analyze:allow(unguarded-cast): live count bounded by the u32 id universe
                    let counted = ids.iter().filter(|&&id| live(id)).count() as u32;
                    if counted != *cached {
                        fail(
                            &mut out,
                            &path,
                            format!("cached live count {cached}, counted {counted}"),
                        );
                    }
                    if let Some(&last) = ids.last() {
                        if raw(last) >= universe && universe > 0 {
                            fail(
                                &mut out,
                                &path,
                                format!("id {} outside universe {universe}", raw(last)),
                            );
                        }
                    }
                    // Inserts promote eagerly, so a live set at or above
                    // the density threshold must already have left the
                    // sparse form (for the bitmap or run container).
                    if u64::from(counted) * den >= u64::from(universe) && counted > 0 {
                        fail(
                            &mut out,
                            &path,
                            format!(
                                "sparse at {counted} live of universe {universe} \
                                 (threshold 1/{den}): should be dense or runs"
                            ),
                        );
                    }
                }
                PostingContainer::Dense(d) => {
                    let present_pop: u64 =
                        d.present_words().iter().map(|w| u64::from(w.count_ones())).sum();
                    if present_pop != u64::from(d.present_count()) {
                        fail(
                            &mut out,
                            &path,
                            format!(
                                "cached present count {}, popcount {present_pop}",
                                d.present_count()
                            ),
                        );
                    }
                    let deleted_pop: u64 =
                        d.deleted_words().iter().map(|w| u64::from(w.count_ones())).sum();
                    if deleted_pop != u64::from(d.deleted_count()) {
                        fail(
                            &mut out,
                            &path,
                            format!(
                                "cached deleted count {}, popcount {deleted_pop}",
                                d.deleted_count()
                            ),
                        );
                    }
                    if let Some((w, _)) = d
                        .present_words()
                        .iter()
                        .zip(d.deleted_words())
                        .enumerate()
                        .find(|(_, (&p, &del))| del & !p != 0)
                    {
                        fail(
                            &mut out,
                            &path,
                            format!("deleted bit outside the present set in word {w}"),
                        );
                    }
                    let own = d.universe();
                    let tail_bits = usize::from(own % 64 != 0);
                    let want_words = own as usize / 64 + tail_bits;
                    if d.present_words().len() != want_words
                        || d.deleted_words().len() != want_words
                    {
                        fail(
                            &mut out,
                            &path,
                            format!(
                                "universe {own} wants {want_words} words, has {} present / {} deleted",
                                d.present_words().len(),
                                d.deleted_words().len()
                            ),
                        );
                    } else if own % 64 != 0 {
                        let ghost = !0u64 << (own % 64);
                        if d.present_words().last().is_some_and(|&w| w & ghost != 0) {
                            fail(
                                &mut out,
                                &path,
                                format!("present bits set at or above universe {own}"),
                            );
                        }
                    }
                }
                PostingContainer::Runs(r) => {
                    let runs = r.runs();
                    for &(s, l) in runs {
                        if s > l {
                            fail(&mut out, &path, format!("run ({s}, {l}) has start > last"));
                        }
                    }
                    if !runs
                        .windows(2)
                        .all(|w| u64::from(w[0].1) + 1 < u64::from(w[1].0))
                    {
                        fail(
                            &mut out,
                            &path,
                            "runs not strictly ascending with gaps (adjacent runs \
                             should have merged)"
                                .into(),
                        );
                    }
                    let stored: u64 = runs.iter().map(|&(s, l)| u64::from(l - s) + 1).sum();
                    if stored != u64::from(r.present_count()) {
                        fail(
                            &mut out,
                            &path,
                            format!(
                                "cached stored count {}, runs cover {stored}",
                                r.present_count()
                            ),
                        );
                    }
                    let del = r.deleted();
                    if !del.windows(2).all(|w| w[0] < w[1]) {
                        fail(
                            &mut out,
                            &path,
                            "deleted overlay not strictly ascending".into(),
                        );
                    }
                    for &dd in del {
                        let i = runs.partition_point(|&(s, _)| s <= dd);
                        if i == 0 || runs[i - 1].1 < dd {
                            fail(
                                &mut out,
                                &path,
                                format!("deleted id {dd} outside every run"),
                            );
                            break;
                        }
                    }
                    if !runs.is_empty() && !r.run_rule_holds() {
                        fail(
                            &mut out,
                            &path,
                            format!(
                                "run rule broken: {} runs for {} stored ids \
                                 (should have demoted)",
                                runs.len(),
                                r.present_count()
                            ),
                        );
                    }
                    if let Some(&(_, last)) = runs.last() {
                        if last >= universe && universe > 0 {
                            fail(
                                &mut out,
                                &path,
                                format!("run id {last} outside universe {universe}"),
                            );
                        }
                    }
                }
            }
        });
        out
    }
}

impl Validate for PlanStats {
    fn validate(&self) -> Vec<Violation> {
        let mut out = Vec::new();
        if self.kernel_scanned_sum() != self.scanned {
            fail(
                &mut out,
                "plan_stats/scanned",
                format!(
                    "per-kernel scanned sums to {}, total says {}",
                    self.kernel_scanned_sum(),
                    self.scanned
                ),
            );
        }
        for (kernel, steps, scanned) in [
            ("merge", self.merge_steps, self.merge_scanned),
            ("simd_merge", self.simd_merge_steps, self.simd_merge_scanned),
            ("gallop", self.gallop_steps, self.gallop_scanned),
            (
                "bitmap_probe",
                self.bitmap_probe_steps,
                self.bitmap_probe_scanned,
            ),
            ("word_and", self.word_and_steps, self.word_and_scanned),
            (
                "run_intersect",
                self.run_intersect_steps,
                self.run_intersect_scanned,
            ),
        ] {
            if steps == 0 && scanned != 0 {
                fail(
                    &mut out,
                    &format!("plan_stats/{kernel}"),
                    format!("{scanned} elements scanned in zero steps"),
                );
            }
        }
        out
    }
}

impl Validate for CompressedPostings {
    fn validate(&self) -> Vec<Violation> {
        let mut out = Vec::new();
        let data = self.raw_bytes();
        let mut pos = 0usize;
        let mut prev: Option<u64> = None;
        for i in 0..self.len() {
            // Bounds-checked varint walk: the production decoder indexes
            // unchecked, so a validator must never reuse it on possibly
            // corrupt bytes.
            let mut v = 0u64;
            let mut shift = 0u32;
            loop {
                let Some(&byte) = data.get(pos) else {
                    fail(
                        &mut out,
                        "compressed/stream",
                        format!("stream truncated inside posting {i} of {}", self.len()),
                    );
                    return out;
                };
                pos += 1;
                if shift >= 64 {
                    fail(
                        &mut out,
                        "compressed/stream",
                        format!("varint of posting {i} exceeds 64 bits"),
                    );
                    return out;
                }
                v |= ((byte & 0x7f) as u64) << shift;
                if byte & 0x80 == 0 {
                    break;
                }
                shift += 7;
            }
            let acc = match prev {
                None => v,
                Some(p) => {
                    if v == 0 {
                        fail(
                            &mut out,
                            "compressed/deltas",
                            format!("zero delta at posting {i}: ids not strictly ascending"),
                        );
                    }
                    p.saturating_add(v)
                }
            };
            if acc > u32::MAX as u64 {
                fail(
                    &mut out,
                    "compressed/deltas",
                    format!("posting {i} decodes to {acc}, beyond the u32 id space"),
                );
            }
            prev = Some(acc);
        }
        if pos != data.len() {
            fail(
                &mut out,
                "compressed/stream",
                format!("{} trailing bytes after the last posting", data.len() - pos),
            );
        }
        out
    }
}

impl Validate for BlockPostings {
    fn validate(&self) -> Vec<Violation> {
        let mut out = Vec::new();
        let blocks = self.num_blocks();
        let want_blocks = self.len().div_ceil(BLOCK_LEN);
        if blocks != want_blocks {
            fail(
                &mut out,
                "blocks/layout",
                format!(
                    "{} postings want {want_blocks} blocks, have {blocks}",
                    self.len()
                ),
            );
            return out;
        }
        let (ctrl, data) = self.raw_streams();
        let (mut ci, mut pos) = (0usize, 0usize);
        let mut prev_last: Option<u32> = None;
        for b in 0..blocks {
            let path = format!("blocks/block{b}");
            let count = BLOCK_LEN.min(self.len() - b * BLOCK_LEN);
            let (co, dofs) = self.block_offsets(b);
            if co != ci || dofs != pos {
                fail(
                    &mut out,
                    &path,
                    format!("offsets ({co}, {dofs}) do not resume the stream at ({ci}, {pos})"),
                );
                return out;
            }
            let first = self.block_first(b);
            if let Some(p) = prev_last {
                if first <= p {
                    fail(
                        &mut out,
                        &path,
                        format!("first id {first} not above previous block's last {p}"),
                    );
                }
            }
            // Bounds-checked stream-vbyte walk: the production decoder
            // indexes unchecked, so a validator must never reuse it on
            // possibly corrupt bytes.
            let mut acc = u64::from(first);
            let mut decoded = 0usize;
            while decoded < count - 1 {
                let Some(&c) = ctrl.get(ci) else {
                    fail(
                        &mut out,
                        &path,
                        format!("control stream truncated after {decoded} deltas"),
                    );
                    return out;
                };
                ci += 1;
                let mut lane = 0usize;
                while lane < 4 && decoded < count - 1 {
                    let nbytes = ((c >> (2 * lane)) & 3) as usize + 1;
                    let Some(bytes) = data.get(pos..pos + nbytes) else {
                        fail(
                            &mut out,
                            &path,
                            format!("data stream truncated after {decoded} deltas"),
                        );
                        return out;
                    };
                    let mut v = 0u64;
                    for (shift, &byte) in bytes.iter().enumerate() {
                        v |= u64::from(byte) << (8 * shift);
                    }
                    pos += nbytes;
                    if v == 0 {
                        fail(
                            &mut out,
                            &path,
                            format!("zero delta at value {decoded}: ids not strictly ascending"),
                        );
                    }
                    acc += v;
                    if acc > u64::from(u32::MAX) {
                        fail(
                            &mut out,
                            &path,
                            format!("value {decoded} decodes to {acc}, beyond the u32 id space"),
                        );
                        return out;
                    }
                    decoded += 1;
                    lane += 1;
                }
            }
            if acc != u64::from(self.block_last(b)) {
                fail(
                    &mut out,
                    &path,
                    format!(
                        "skip bound says last {}, stream decodes {acc}",
                        self.block_last(b)
                    ),
                );
            }
            prev_last = Some(self.block_last(b));
        }
        if ci != ctrl.len() {
            fail(
                &mut out,
                "blocks/stream",
                format!("{} trailing control bytes", ctrl.len() - ci),
            );
        }
        // A default-constructed (never encoded) empty list has no pad;
        // every encoded stream ends in exactly 16 zero pad bytes.
        if (blocks > 0 || !data.is_empty()) && data.len() != pos + 16 {
            fail(
                &mut out,
                "blocks/stream",
                format!(
                    "data stream is {} bytes, want {} consumed + 16 pad",
                    data.len(),
                    pos
                ),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_structures_validate() {
        let mut d = Dictionary::new();
        d.intern_description(["a", "b", "c"]);
        assert!(d.validate().is_empty());

        let mut inv = InvertedIndex::new();
        inv.insert(1, &[0, 1]);
        inv.insert(2, &[1]);
        assert!(inv.validate().is_empty());

        let ci = CompactInverted::build(&mut [(0, 1), (0, 2), (1, 2)]);
        assert!(ci.validate().is_empty());

        let ct = CompactTemporalInverted::build(&mut [(0, 1, 5, 9), (1, 2, 0, 3)]);
        assert!(ct.validate().is_empty());

        let cp = CompressedPostings::encode(&[1, 5, 1000]);
        assert!(cp.validate().is_empty());

        let ids: Vec<u32> = (0..300u32).map(|i| i * 3).collect();
        let bp = BlockPostings::encode(&ids);
        assert!(bp.validate().is_empty());
    }

    #[test]
    fn empty_structures_validate() {
        assert!(Dictionary::new().validate().is_empty());
        assert!(InvertedIndex::new().validate().is_empty());
        assert!(CompactInverted::new().validate().is_empty());
        assert!(CompactTemporalInverted::new().validate().is_empty());
        assert!(CompressedPostings::encode(&[]).validate().is_empty());
        assert!(BlockPostings::encode(&[]).validate().is_empty());
        assert!(BlockPostings::default().validate().is_empty());
    }
}
