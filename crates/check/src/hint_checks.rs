//! Validators for the interval-index substrate (`tir-hint`).

use std::collections::{BTreeMap, BTreeSet};

use crate::{fail, Validate, Violation};
use tir_hint::{DivisionKind, DivisionOrder, Grid1D, Hint, IntervalTree, TOMBSTONE};

#[inline]
fn hraw(id: u32) -> u32 {
    id & !TOMBSTONE
}

#[inline]
fn hlive(id: u32) -> bool {
    id & TOMBSTONE == 0
}

fn kind_name(kind: DivisionKind) -> &'static str {
    match kind {
        DivisionKind::OrigIn => "O_in",
        DivisionKind::OrigAft => "O_aft",
        DivisionKind::ReplIn => "R_in",
        DivisionKind::ReplAft => "R_aft",
    }
}

/// Mirrors the crate-private `kept_endpoints` of `tir-hint`: which of the
/// two endpoint arrays each subdivision stores under the storage
/// optimization.
fn kept(kind: DivisionKind, storage_opt: bool) -> (bool, bool) {
    if !storage_opt {
        return (true, true);
    }
    match kind {
        DivisionKind::OrigIn => (true, true),
        DivisionKind::OrigAft => (true, false),
        DivisionKind::ReplIn => (false, true),
        DivisionKind::ReplAft => (false, false),
    }
}

impl Validate for Hint {
    fn validate(&self) -> Vec<Violation> {
        let mut out = Vec::new();
        let domain = self.domain();
        if self.num_levels() != domain.m() as usize + 1 {
            fail(
                &mut out,
                "hint/levels",
                format!(
                    "{} levels for m = {} (want m + 1)",
                    self.num_levels(),
                    domain.m()
                ),
            );
        }
        for level in 0..self.num_levels() as u32 {
            let keys = self.level_keys(level);
            let path = format!("hint/level{level}/keys");
            if !keys.windows(2).all(|w| w[0] < w[1]) {
                fail(
                    &mut out,
                    &path,
                    "partition keys not strictly ascending".into(),
                );
            }
            let width = 1u64 << level;
            if let Some(&last) = keys.last() {
                if (last as u64) >= width {
                    fail(
                        &mut out,
                        &path,
                        format!("partition index {last} out of range for level {level}"),
                    );
                }
            }
        }

        // Live original occurrences per raw id across every O_in/O_aft
        // division, for the minimal-cover check; live replica ids for the
        // dangling-replica check.
        let mut orig_count: BTreeMap<u32, usize> = BTreeMap::new();
        let mut repl_ids: BTreeSet<u32> = BTreeSet::new();

        self.for_each_division(|div, dead| {
            let path = format!("hint/level{}/partition{}/{}", div.level, div.j, kind_name(div.kind));
            let n = div.ids.len();
            let actual_dead = div.ids.iter().filter(|&&id| !hlive(id)).count();
            if actual_dead != dead {
                fail(
                    &mut out,
                    &path,
                    format!("dead counter says {dead}, {actual_dead} tombstones stored"),
                );
            }
            let (keep_st, keep_end) = kept(div.kind, self.storage_opt());
            for (kept_flag, arr, name) in
                [(keep_st, div.sts, "sts"), (keep_end, div.ends, "ends")]
            {
                let want = if kept_flag { n } else { 0 };
                if arr.len() != want {
                    fail(
                        &mut out,
                        &path,
                        format!("{name} has {} entries, want {want} for {n} ids", arr.len()),
                    );
                }
            }
            // Bail before elementwise walks if the parallel arrays are
            // inconsistent — everything below indexes by ids position.
            if (keep_st && div.sts.len() != n) || (keep_end && div.ends.len() != n) {
                return;
            }

            match self.division_order() {
                DivisionOrder::Beneficial => match div.kind {
                    DivisionKind::OrigIn | DivisionKind::OrigAft => {
                        if !div.sts.windows(2).all(|w| w[0] <= w[1]) {
                            fail(&mut out, &path, "starts not ascending (Beneficial order)".into());
                        }
                    }
                    DivisionKind::ReplIn => {
                        if !div.ends.windows(2).all(|w| w[0] >= w[1]) {
                            fail(&mut out, &path, "ends not descending (Beneficial order)".into());
                        }
                    }
                    DivisionKind::ReplAft => {}
                },
                DivisionOrder::ById => {
                    if !div.ids.windows(2).all(|w| hraw(w[0]) < hraw(w[1])) {
                        fail(&mut out, &path, "ids not sorted".into());
                    }
                }
                DivisionOrder::Insertion => {}
            }

            let fc = domain.partition_first_cell(div.level, div.j);
            let lc = domain.partition_last_cell(div.level, div.j);
            let original =
                matches!(div.kind, DivisionKind::OrigIn | DivisionKind::OrigAft);
            for i in 0..n {
                let id = div.ids[i];
                if keep_st && keep_end && div.sts[i] > div.ends[i] {
                    fail(
                        &mut out,
                        &path,
                        format!(
                            "id {}: inverted interval [{}, {}]",
                            hraw(id),
                            div.sts[i],
                            div.ends[i]
                        ),
                    );
                }
                if keep_st {
                    let cs = domain.cell(div.sts[i]);
                    if original && !(fc..=lc).contains(&cs) {
                        fail(
                            &mut out,
                            &path,
                            format!(
                                "id {}: original with start cell {cs} outside partition [{fc}, {lc}]",
                                hraw(id)
                            ),
                        );
                    }
                    if !original && cs >= fc {
                        fail(
                            &mut out,
                            &path,
                            format!(
                                "id {}: replica with start cell {cs} not before partition [{fc}, {lc}]",
                                hraw(id)
                            ),
                        );
                    }
                }
                if keep_end {
                    let ce = domain.cell(div.ends[i]);
                    let inside = matches!(div.kind, DivisionKind::OrigIn | DivisionKind::ReplIn);
                    if inside && ce > lc {
                        fail(
                            &mut out,
                            &path,
                            format!(
                                "id {}: *_in entry with end cell {ce} after partition [{fc}, {lc}]",
                                hraw(id)
                            ),
                        );
                    }
                    if div.kind == DivisionKind::ReplIn && ce < fc {
                        fail(
                            &mut out,
                            &path,
                            format!(
                                "id {}: R_in entry with end cell {ce} before partition [{fc}, {lc}]",
                                hraw(id)
                            ),
                        );
                    }
                    if !inside && ce <= lc {
                        fail(
                            &mut out,
                            &path,
                            format!(
                                "id {}: *_aft entry with end cell {ce} inside partition [{fc}, {lc}]",
                                hraw(id)
                            ),
                        );
                    }
                }
                if hlive(id) {
                    if original {
                        *orig_count.entry(id).or_insert(0) += 1;
                    } else {
                        repl_ids.insert(id);
                    }
                }
            }
        });

        for (&id, &count) in &orig_count {
            if count != 1 {
                fail(
                    &mut out,
                    "hint/cover",
                    format!("id {id} stored as original {count} times (minimal cover wants 1)"),
                );
            }
        }
        if orig_count.len() != self.len() {
            fail(
                &mut out,
                "hint/conservation",
                format!(
                    "{} live originals across divisions, index reports {} live intervals",
                    orig_count.len(),
                    self.len()
                ),
            );
        }
        for &id in repl_ids.difference(&orig_count.keys().copied().collect()) {
            fail(
                &mut out,
                "hint/replicas",
                format!("live replica of id {id} has no live original"),
            );
        }
        out
    }
}

impl Validate for Grid1D {
    fn validate(&self) -> Vec<Violation> {
        let mut out = Vec::new();
        // Copies per distinct record: each interval must be replicated
        // into exactly the cells it overlaps, so its copy count is a
        // multiple of its cell span.
        let mut copies: BTreeMap<(u32, u64, u64), usize> = BTreeMap::new();
        for c in 0..self.num_cells() {
            let path = format!("grid/cell{c}");
            for r in self.cell_contents(c) {
                if r.st > r.end {
                    fail(
                        &mut out,
                        &path,
                        format!("id {}: inverted interval [{}, {}]", r.id, r.st, r.end),
                    );
                    continue;
                }
                let lo = self.cell_of(r.st);
                let hi = self.cell_of(r.end);
                if !(lo..=hi).contains(&c) {
                    fail(
                        &mut out,
                        &path,
                        format!("id {}: copy outside its overlap range [{lo}, {hi}]", r.id),
                    );
                }
                *copies.entry((r.id, r.st, r.end)).or_insert(0) += 1;
            }
        }
        let mut live = 0usize;
        for (&(id, st, end), &count) in &copies {
            let span = (self.cell_of(end) - self.cell_of(st)) as usize + 1;
            if count % span != 0 {
                fail(
                    &mut out,
                    "grid/replication",
                    format!("id {id}: {count} copies for an interval spanning {span} cells"),
                );
            } else {
                live += count / span;
            }
        }
        if live != self.len() {
            fail(
                &mut out,
                "grid/conservation",
                format!(
                    "{live} intervals reconstructed from cells, grid reports {}",
                    self.len()
                ),
            );
        }
        out
    }
}

impl Validate for IntervalTree {
    fn validate(&self) -> Vec<Violation> {
        let mut out = Vec::new();
        let mut total = 0usize;
        let mut node = 0usize;
        self.visit_nodes(|center, by_st, by_end, lo, hi| {
            let path = format!("interval_tree/node{node}");
            node += 1;
            total += by_st.len();
            if by_st.len() != by_end.len() {
                fail(
                    &mut out,
                    &path,
                    format!(
                        "{} start-sorted vs {} end-sorted records",
                        by_st.len(),
                        by_end.len()
                    ),
                );
            } else {
                let a: BTreeSet<u32> = by_st.iter().map(|r| r.id).collect();
                let b: BTreeSet<u32> = by_end.iter().map(|r| r.id).collect();
                if a != b {
                    fail(
                        &mut out,
                        &path,
                        "start- and end-sorted lists hold different ids".into(),
                    );
                }
            }
            if !by_st.windows(2).all(|w| w[0].st <= w[1].st) {
                fail(&mut out, &path, "by_st not ascending by start".into());
            }
            if !by_end.windows(2).all(|w| w[0].end >= w[1].end) {
                fail(&mut out, &path, "by_end not descending by end".into());
            }
            for r in by_st {
                if !(r.st <= center && center <= r.end) {
                    fail(
                        &mut out,
                        &path,
                        format!(
                            "id {}: interval [{}, {}] does not stab center {center}",
                            r.id, r.st, r.end
                        ),
                    );
                }
                if let Some(lo) = lo {
                    if r.st <= lo {
                        fail(
                            &mut out,
                            &path,
                            format!("id {}: start {} violates subtree bound > {lo}", r.id, r.st),
                        );
                    }
                }
                if let Some(hi) = hi {
                    if r.end >= hi {
                        fail(
                            &mut out,
                            &path,
                            format!("id {}: end {} violates subtree bound < {hi}", r.id, r.end),
                        );
                    }
                }
            }
        });
        if total != self.len() {
            fail(
                &mut out,
                "interval_tree/conservation",
                format!("{total} records across nodes, tree reports {}", self.len()),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tir_hint::{HintConfig, IntervalRecord};

    fn records() -> Vec<IntervalRecord> {
        vec![
            IntervalRecord::new(1, 3, 19),
            IntervalRecord::new(2, 0, 4),
            IntervalRecord::new(3, 12, 12),
            IntervalRecord::new(4, 7, 30),
            IntervalRecord::new(5, 22, 29),
            IntervalRecord::new(6, 1, 31),
        ]
    }

    #[test]
    fn clean_hint_validates_under_every_config() {
        let recs = records();
        for storage_opt in [false, true] {
            for order in [
                DivisionOrder::Beneficial,
                DivisionOrder::ById,
                DivisionOrder::Insertion,
            ] {
                let cfg = HintConfig {
                    m: Some(4),
                    storage_opt,
                    order,
                };
                let h = Hint::build(&recs, cfg);
                let v = h.validate();
                assert!(v.is_empty(), "{storage_opt} {order:?}: {v:?}");
            }
        }
    }

    #[test]
    fn hint_validates_after_deletes() {
        let recs = records();
        let cfg = HintConfig {
            m: Some(4),
            ..Default::default()
        };
        let mut h = Hint::build(&recs, cfg);
        assert!(h.delete(&recs[0]));
        assert!(h.delete(&recs[3]));
        let v = h.validate();
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn clean_grid_and_tree_validate() {
        let recs = records();
        let g = Grid1D::build(&recs, 7);
        assert!(g.validate().is_empty());
        let t = IntervalTree::build(&recs);
        assert!(t.validate().is_empty());
    }

    #[test]
    fn empty_structures_validate() {
        let h = Hint::build(
            &[],
            HintConfig {
                m: Some(3),
                ..Default::default()
            },
        );
        assert!(h.validate().is_empty());
        assert!(Grid1D::build(&[], 4).validate().is_empty());
        assert!(IntervalTree::build(&[]).validate().is_empty());
    }
}
