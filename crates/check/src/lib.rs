//! # tir-check
//!
//! Deep structural invariant validation for every index structure in the
//! workspace: the [`Validate`] trait walks a structure's internals through
//! the introspection accessors each crate exposes and reports every broken
//! invariant as a path-addressed [`Violation`]
//! (`hint/level3/partition7/O_in: ids not sorted`).
//!
//! The checks cover, per structure family:
//!
//! * **record-count conservation** — live entries across divisions /
//!   slices / shards must agree with the tracked frequency or live
//!   counters;
//! * **minimal-cover and replica placement** — every HINT record appears
//!   in exactly one original division, its replicas reference a live
//!   original, and kept endpoints fall inside the partition's cell range;
//! * **sorted, duplicate-free postings** — id-sorted lists are strictly
//!   ascending by raw id, beneficial orders are verified per subdivision;
//! * **tombstone hygiene** — cached `dead` counters equal the number of
//!   tombstone bits actually set;
//! * **offset monotonicity** — flat postings directories have exact,
//!   monotone offset arrays and bounds-checked compressed streams;
//! * **cross-structure agreement** — decoupled dual structures (the
//!   size-variant irHINT) must describe the same object sets;
//! * **on-disk snapshots** — [`validate_snapshot`] fscks a `tir-persist`
//!   snapshot file: section CRCs, monotone directories, catalog/postings
//!   cross-agreement, and META counters.
//!
//! Validation never panics on corrupted input: every walk is
//! bounds-checked, so a validator can safely run over a structure that a
//! direct query would crash on.
//!
//! ```
//! use tir_check::Validate;
//! use tir_core::prelude::*;
//!
//! let coll = Collection::running_example();
//! let index = IrHintPerf::build(&coll);
//! assert!(index.validate().is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod core_checks;
mod hint_checks;
mod invidx_checks;
mod oracle_checks;
mod snapshot_checks;

pub use oracle_checks::{diff_against_oracle, oracle_query_grid};
pub use snapshot_checks::{validate_snapshot, validate_snapshot_file};

use std::fmt;

/// One broken invariant, addressed by a `/`-separated path into the
/// structure (`hint/level3/partition7/O_in`) plus a human-readable
/// message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Where in the structure the invariant broke.
    pub path: String,
    /// What broke.
    pub message: String,
}

impl Violation {
    /// Creates a violation.
    pub fn new(path: impl Into<String>, message: impl Into<String>) -> Self {
        Violation {
            path: path.into(),
            message: message.into(),
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.path, self.message)
    }
}

/// Structural self-validation: walk the structure's internals and report
/// every broken invariant. An empty result means the structure is sound.
pub trait Validate {
    /// Returns all detected violations (empty when the structure is
    /// internally consistent).
    fn validate(&self) -> Vec<Violation>;
}

/// Re-prefixes nested violations under `prefix` and appends them to `out`.
pub(crate) fn nest(prefix: &str, nested: Vec<Violation>, out: &mut Vec<Violation>) {
    for v in nested {
        out.push(Violation::new(format!("{prefix}/{}", v.path), v.message));
    }
}

/// Pushes a violation built from format-ready parts.
pub(crate) fn fail(out: &mut Vec<Violation>, path: &str, message: String) {
    out.push(Violation::new(path, message));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn violation_display_is_path_colon_message() {
        let v = Violation::new("hint/level3/partition7/O_in", "ids not sorted");
        assert_eq!(v.to_string(), "hint/level3/partition7/O_in: ids not sorted");
    }

    #[test]
    fn nest_prefixes_paths() {
        let mut out = Vec::new();
        nest("outer", vec![Violation::new("inner", "boom")], &mut out);
        assert_eq!(out[0].path, "outer/inner");
        assert_eq!(out[0].message, "boom");
    }
}
