//! Validators for the temporal-IR indexes (`tir-core`).

use std::collections::{BTreeMap, BTreeSet};

use crate::{fail, nest, Validate, Violation};
use tir_core::{IrHintPerf, IrHintSize, Tif, TifHint, TifSharding, TifSlicing, IMPACT_STRIDE};
use tir_hint::DivisionKind;
use tir_invidx::{live, raw};

fn kind_name(kind: DivisionKind) -> &'static str {
    match kind {
        DivisionKind::OrigIn => "O_in",
        DivisionKind::OrigAft => "O_aft",
        DivisionKind::ReplIn => "R_in",
        DivisionKind::ReplAft => "R_aft",
    }
}

fn kind_code_name(code: u8) -> &'static str {
    match code {
        0 => "O_in",
        1 => "O_aft",
        2 => "R_in",
        3 => "R_aft",
        _ => "unknown_kind",
    }
}

/// Validates one time-aware postings list (parallel arrays sorted by raw
/// object id, proper intervals). Returns the live-entry count.
fn check_temporal_list(
    path: &str,
    ids: &[u32],
    sts: &[u64],
    ends: &[u64],
    out: &mut Vec<Violation>,
) -> usize {
    if sts.len() != ids.len() || ends.len() != ids.len() {
        fail(
            out,
            path,
            format!(
                "parallel columns disagree: {} ids, {} starts, {} ends",
                ids.len(),
                sts.len(),
                ends.len()
            ),
        );
        return 0;
    }
    if !ids.windows(2).all(|w| raw(w[0]) < raw(w[1])) {
        fail(
            out,
            path,
            "postings not strictly ascending by raw id".into(),
        );
    }
    for i in 0..ids.len() {
        if sts[i] > ends[i] {
            fail(
                out,
                path,
                format!(
                    "id {}: inverted interval [{}, {}]",
                    raw(ids[i]),
                    sts[i],
                    ends[i]
                ),
            );
        }
    }
    ids.iter().filter(|&&id| live(id)).count()
}

impl Validate for Tif {
    fn validate(&self) -> Vec<Violation> {
        let mut out = Vec::new();
        self.for_each_list(|e, list| {
            let path = format!("tif/elem{e}");
            let live_count = check_temporal_list(&path, &list.ids, &list.sts, &list.ends, &mut out);
            if live_count != self.freq(e) as usize {
                fail(
                    &mut out,
                    &path,
                    format!(
                        "{live_count} live postings, planner tracks freq {}",
                        self.freq(e)
                    ),
                );
            }
            // The hybrid container mirror must agree list-for-list with
            // the temporal lists the planner intersects against.
            match self.containers().get(e) {
                None if live_count > 0 => fail(
                    &mut out,
                    &path,
                    format!("{live_count} live postings but no hybrid container"),
                ),
                Some(c) if c.cardinality() as usize != live_count => fail(
                    &mut out,
                    &path,
                    format!(
                        "hybrid container holds {} live ids, temporal list {live_count}",
                        c.cardinality()
                    ),
                ),
                _ => {}
            }
        });
        out.extend(self.containers().validate());
        out
    }
}

impl Validate for TifSlicing {
    fn validate(&self) -> Vec<Violation> {
        let mut out = Vec::new();
        let mut live_ids: BTreeMap<u32, BTreeSet<u32>> = BTreeMap::new();
        self.for_each_sublist(|e, s, sub| {
            let path = format!("tif_slicing/elem{e}/slice{s}");
            if s >= self.num_slices() {
                fail(
                    &mut out,
                    &path,
                    format!(
                        "slice index beyond the {} configured slices",
                        self.num_slices()
                    ),
                );
            }
            let clean_before = out.len();
            check_temporal_list(&path, &sub.ids, &sub.sts, &sub.ends, &mut out);
            if out.len() != clean_before {
                return;
            }
            for i in 0..sub.ids.len() {
                // A posting is replicated into every slice its interval
                // overlaps, so each copy must sit inside its own span.
                let (lo, hi) = (self.slice_of(sub.sts[i]), self.slice_of(sub.ends[i]));
                if !(lo..=hi).contains(&s) {
                    fail(
                        &mut out,
                        &path,
                        format!(
                            "id {}: copy outside its slice span [{lo}, {hi}]",
                            raw(sub.ids[i])
                        ),
                    );
                }
                if live(sub.ids[i]) {
                    live_ids.entry(e).or_default().insert(raw(sub.ids[i]));
                }
            }
        });
        for (&e, ids) in &live_ids {
            if ids.len() != self.freq(e) as usize {
                fail(
                    &mut out,
                    &format!("tif_slicing/elem{e}"),
                    format!(
                        "{} distinct live objects across slices, planner tracks freq {}",
                        ids.len(),
                        self.freq(e)
                    ),
                );
            }
        }
        out
    }
}

impl Validate for TifSharding {
    fn validate(&self) -> Vec<Violation> {
        let mut out = Vec::new();
        let mut shard_no: BTreeMap<u32, usize> = BTreeMap::new();
        let mut live_count: BTreeMap<u32, usize> = BTreeMap::new();
        self.for_each_shard(|e, shard| {
            let i = shard_no.entry(e).or_insert(0);
            let path = format!("tif_sharding/elem{e}/shard{i}");
            *i += 1;
            let n = shard.ids.len();
            if shard.sts.len() != n || shard.ends.len() != n {
                fail(
                    &mut out,
                    &path,
                    format!(
                        "parallel columns disagree: {n} ids, {} starts, {} ends",
                        shard.sts.len(),
                        shard.ends.len()
                    ),
                );
                return;
            }
            if !shard.sts.windows(2).all(|w| w[0] <= w[1]) {
                fail(&mut out, &path, "starts not ascending".into());
            }
            for k in 0..n {
                if shard.sts[k] > shard.ends[k] {
                    fail(
                        &mut out,
                        &path,
                        format!(
                            "id {}: inverted interval [{}, {}]",
                            raw(shard.ids[k]),
                            shard.sts[k],
                            shard.ends[k]
                        ),
                    );
                }
            }
            if shard.staircase {
                if !shard.ends.windows(2).all(|w| w[0] <= w[1]) {
                    fail(
                        &mut out,
                        &path,
                        "staircase shard with ends not ascending".into(),
                    );
                }
                if !shard.impact.is_empty() {
                    fail(
                        &mut out,
                        &path,
                        "staircase shard carries an impact list".into(),
                    );
                }
            } else {
                let want_blocks = n.div_ceil(IMPACT_STRIDE);
                if shard.impact.len() != want_blocks {
                    fail(
                        &mut out,
                        &path,
                        format!(
                            "impact list has {} blocks for {n} entries (want {want_blocks})",
                            shard.impact.len()
                        ),
                    );
                } else {
                    for (b, chunk) in shard.ends.chunks(IMPACT_STRIDE).enumerate() {
                        let max = chunk.iter().copied().max().unwrap_or(0);
                        if shard.impact[b] != max {
                            fail(
                                &mut out,
                                &path,
                                format!(
                                    "impact block {b} caches {}, block maximum end is {max}",
                                    shard.impact[b]
                                ),
                            );
                        }
                    }
                }
            }
            *live_count.entry(e).or_insert(0) += shard.ids.iter().filter(|&&id| live(id)).count();
        });
        for (&e, &count) in &live_count {
            if count != self.freq(e) as usize {
                fail(
                    &mut out,
                    &format!("tif_sharding/elem{e}"),
                    format!(
                        "{count} live postings across shards, planner tracks freq {}",
                        self.freq(e)
                    ),
                );
            }
        }
        out
    }
}

impl Validate for TifHint {
    fn validate(&self) -> Vec<Violation> {
        let mut out = Vec::new();
        self.for_each_hint(|e, h| {
            let prefix = format!("tif_hint/elem{e}");
            nest(&prefix, h.validate(), &mut out);
            if h.len() != self.freq(e) as usize {
                fail(
                    &mut out,
                    &prefix,
                    format!(
                        "per-element HINT holds {} live intervals, planner tracks freq {}",
                        h.len(),
                        self.freq(e)
                    ),
                );
            }
        });
        out
    }
}

impl Validate for IrHintPerf {
    fn validate(&self) -> Vec<Violation> {
        let mut out = Vec::new();
        let domain = self.domain();
        let mut orig_live: BTreeMap<u32, usize> = BTreeMap::new();
        self.for_each_division(|level, j, kind, div| {
            let prefix = format!("irhint_perf/level{level}/partition{j}/{}", kind_name(kind));
            let nested = div.validate();
            let clean = nested.is_empty();
            nest(&prefix, nested, &mut out);
            if !clean {
                // The flat directory is unreliable; skip elementwise walks.
                return;
            }
            let fc = domain.partition_first_cell(level, j);
            let lc = domain.partition_last_cell(level, j);
            let original = matches!(kind, DivisionKind::OrigIn | DivisionKind::OrigAft);
            let inside = matches!(kind, DivisionKind::OrigIn | DivisionKind::ReplIn);
            let offsets = div.offsets();
            for (ei, &e) in div.elements().iter().enumerate() {
                let (from, to) = (offsets[ei] as usize, offsets[ei + 1] as usize);
                for p in from..to {
                    let id = div.all_ids()[p];
                    let cs = domain.cell(div.all_sts()[p]);
                    let ce = domain.cell(div.all_ends()[p]);
                    if original && !(fc..=lc).contains(&cs) {
                        fail(
                            &mut out,
                            &prefix,
                            format!(
                                "elem {e} id {}: original with start cell {cs} outside partition [{fc}, {lc}]",
                                raw(id)
                            ),
                        );
                    }
                    if !original && cs >= fc {
                        fail(
                            &mut out,
                            &prefix,
                            format!(
                                "elem {e} id {}: replica with start cell {cs} not before partition [{fc}, {lc}]",
                                raw(id)
                            ),
                        );
                    }
                    if inside && ce > lc {
                        fail(
                            &mut out,
                            &prefix,
                            format!(
                                "elem {e} id {}: *_in entry with end cell {ce} after partition [{fc}, {lc}]",
                                raw(id)
                            ),
                        );
                    }
                    if !inside && ce <= lc {
                        fail(
                            &mut out,
                            &prefix,
                            format!(
                                "elem {e} id {}: *_aft entry with end cell {ce} inside partition [{fc}, {lc}]",
                                raw(id)
                            ),
                        );
                    }
                    if original && live(id) {
                        *orig_live.entry(e).or_insert(0) += 1;
                    }
                }
            }
        });
        for (&e, &count) in &orig_live {
            if count != self.freq(e) as usize {
                fail(
                    &mut out,
                    &format!("irhint_perf/elem{e}"),
                    format!(
                        "{count} live original postings across divisions, planner tracks freq {}",
                        self.freq(e)
                    ),
                );
            }
        }
        out
    }
}

impl Validate for IrHintSize {
    fn validate(&self) -> Vec<Violation> {
        let mut out = Vec::new();
        nest("irhint_size/hint", self.hint().validate(), &mut out);

        // Live object ids stored in each interval-store division; every
        // live posting of the decoupled inverted side must reference one
        // of them (cross-structure agreement).
        let mut div_live: BTreeMap<(u32, u32, u8), BTreeSet<u32>> = BTreeMap::new();
        self.hint().for_each_division(|div, _dead| {
            let code = match div.kind {
                DivisionKind::OrigIn => 0u8,
                DivisionKind::OrigAft => 1,
                DivisionKind::ReplIn => 2,
                DivisionKind::ReplAft => 3,
            };
            let set = div_live.entry((div.level, div.j, code)).or_default();
            for &id in div.ids {
                if live(id) {
                    set.insert(raw(id));
                }
            }
        });

        let mut orig_live: BTreeMap<u32, usize> = BTreeMap::new();
        self.for_each_division_index(|level, j, code, inv| {
            let prefix = format!("irhint_size/level{level}/partition{j}/{}", kind_code_name(code));
            let nested = inv.validate();
            let clean = nested.is_empty();
            nest(&prefix, nested, &mut out);
            if !clean {
                return;
            }
            let stored = div_live.get(&(level, j, code));
            let offsets = inv.offsets();
            for (ei, &e) in inv.elements().iter().enumerate() {
                let (from, to) = (offsets[ei] as usize, offsets[ei + 1] as usize);
                for p in from..to {
                    let id = inv.all_ids()[p];
                    if !live(id) {
                        continue;
                    }
                    if !stored.is_some_and(|s| s.contains(&raw(id))) {
                        fail(
                            &mut out,
                            &prefix,
                            format!(
                                "elem {e}: live posting {} absent from the interval store's division",
                                raw(id)
                            ),
                        );
                    }
                    if code <= 1 {
                        *orig_live.entry(e).or_insert(0) += 1;
                    }
                }
            }
        });
        for (&e, &count) in &orig_live {
            if count != self.freq(e) as usize {
                fail(
                    &mut out,
                    &format!("irhint_size/elem{e}"),
                    format!(
                        "{count} live original postings across divisions, planner tracks freq {}",
                        self.freq(e)
                    ),
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tir_core::prelude::*;
    use tir_core::TifHintConfig;

    #[test]
    fn clean_indexes_validate() {
        let coll = Collection::running_example();
        assert!(Tif::build(&coll).validate().is_empty());
        assert!(TifSlicing::build(&coll).validate().is_empty());
        assert!(TifSharding::build(&coll).validate().is_empty());
        assert!(TifHint::build(&coll, TifHintConfig::binary_search())
            .validate()
            .is_empty());
        assert!(IrHintPerf::build(&coll).validate().is_empty());
        assert!(IrHintSize::build(&coll).validate().is_empty());
    }

    #[test]
    fn indexes_validate_after_updates() {
        let coll = Collection::running_example();
        let victim = coll.objects()[0].clone();
        let extra = Object {
            id: 900,
            interval: Interval { st: 2, end: 11 },
            desc: victim.desc.clone(),
        };

        let mut tif = Tif::build(&coll);
        tif.insert(&extra);
        assert!(tif.delete(&victim));
        let v = tif.validate();
        assert!(v.is_empty(), "{v:?}");

        let mut perf = IrHintPerf::build(&coll);
        perf.insert(&extra);
        assert!(perf.delete(&victim));
        let v = perf.validate();
        assert!(v.is_empty(), "{v:?}");

        let mut size = IrHintSize::build(&coll);
        size.insert(&extra);
        assert!(size.delete(&victim));
        let v = size.validate();
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn empty_collection_validates() {
        let coll = Collection::new(Vec::new());
        assert!(Tif::build(&coll).validate().is_empty());
        assert!(IrHintPerf::build(&coll).validate().is_empty());
        assert!(IrHintSize::build(&coll).validate().is_empty());
    }
}
