//! Ground-truth agreement checks: compare any index against the
//! [`BruteForce`] oracle over a deterministic query grid derived from a
//! catalog of live objects.
//!
//! This is the verification core shared by `tir recover --verify` and
//! the `tir chaos` harness: after a crash, a fault, or a recovery, the
//! surviving index must answer **exactly** like a linear scan of the
//! catalog it claims to hold — every qualifying id, exactly once.

use tir_core::{BruteForce, Object, TemporalIrIndex, TimeTravelQuery};

use crate::Violation;

/// Splitmix64 — deterministic, seedable, dependency-free.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Builds a deterministic grid of `queries` time-travel queries spanning
/// the catalog's domain and element universe: window extents sweep from
/// stabbing-like to the full domain, and each query draws 1–3 elements
/// actually used by live objects (so answers are rarely trivially
/// empty). The same `(catalog, queries, seed)` always yields the same
/// grid — replayable across a crash.
pub fn oracle_query_grid(catalog: &[Object], queries: usize, seed: u64) -> Vec<TimeTravelQuery> {
    let mut lo = u64::MAX;
    let mut hi = 0u64;
    let mut elems: Vec<u32> = Vec::new();
    for o in catalog {
        lo = lo.min(o.interval.st);
        hi = hi.max(o.interval.end);
        elems.extend_from_slice(&o.desc);
    }
    elems.sort_unstable();
    elems.dedup();
    if lo > hi {
        (lo, hi) = (0, 1);
    }
    if elems.is_empty() {
        elems.push(0);
    }
    let span = (hi - lo).max(1);
    let mut grid = Vec::with_capacity(queries);
    for k in 0..queries as u64 {
        let r = mix(seed ^ mix(k));
        let len = match k % 4 {
            0 => 0,
            1 => span / 100,
            2 => span / 10,
            _ => span,
        };
        let st = lo + r % span.saturating_sub(len).max(1);
        let n = 1 + (r >> 32) as usize % 3;
        let mut d = Vec::with_capacity(n);
        for j in 0..n {
            d.push(elems[mix(r ^ j as u64) as usize % elems.len()]);
        }
        grid.push(TimeTravelQuery::new(st, (st + len).min(hi), d));
    }
    grid
}

/// Runs every grid query through `index` and through a [`BruteForce`]
/// oracle built from `catalog`, reporting one [`Violation`] per
/// diverging query (missing ids, extra ids, or duplicates). An empty
/// result means exact agreement.
pub fn diff_against_oracle<I: TemporalIrIndex + ?Sized>(
    index: &I,
    catalog: &[Object],
    grid: &[TimeTravelQuery],
) -> Vec<Violation> {
    let oracle = BruteForce::build(catalog);
    let mut out = Vec::new();
    for (i, q) in grid.iter().enumerate() {
        let mut got = index.query(q);
        got.sort_unstable();
        let n = got.len();
        got.dedup();
        if got.len() != n {
            out.push(Violation::new(
                format!("oracle/query{i}"),
                format!("duplicate ids in the answer to {q:?}"),
            ));
        }
        let want = oracle.answer(q);
        if got != want {
            let missing: Vec<u32> = want
                .iter()
                .filter(|id| !got.contains(id))
                .copied()
                .collect();
            let extra: Vec<u32> = got
                .iter()
                .filter(|id| !want.contains(id))
                .copied()
                .collect();
            out.push(Violation::new(
                format!("oracle/query{i}"),
                format!("divergence on {q:?}: missing {missing:?}, extra {extra:?}"),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tir_core::prelude::*;

    #[test]
    fn grid_is_deterministic_and_in_domain() {
        let coll = Collection::running_example();
        let a = oracle_query_grid(coll.objects(), 16, 42);
        let b = oracle_query_grid(coll.objects(), 16, 42);
        assert_eq!(a.len(), 16);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x, y);
        }
        let c = oracle_query_grid(coll.objects(), 16, 43);
        assert!(a.iter().zip(&c).any(|(x, y)| x != y));
    }

    #[test]
    fn honest_index_agrees_and_tampered_index_diverges() {
        let coll = Collection::running_example();
        let grid = oracle_query_grid(coll.objects(), 24, 7);
        let index = Tif::build(&coll);
        assert!(diff_against_oracle(&index, coll.objects(), &grid).is_empty());

        // Drop one object from the catalog the oracle sees: the index
        // now answers "extra" ids and the diff must say so.
        let partial: Vec<Object> = coll.objects()[1..].to_vec();
        let wide = oracle_query_grid(&partial, 8, 7);
        let mut all = grid;
        all.extend(wide);
        // The full-domain queries are guaranteed to see the dropped id.
        assert!(!diff_against_oracle(&index, &partial, &all).is_empty());
    }
}
