//! Snapshot fsck: deep validation of an on-disk `tir-persist` snapshot,
//! beyond the CRC/bounds checks `SnapshotFile::open` already enforces.
//!
//! Open-time validation proves the bytes are the bytes that were
//! written; this module proves the *content* is a well-formed index
//! image: monotone offset directories, sorted postings, catalog/postings
//! cross-agreement, and META counters that match the columns. Every
//! finding is a path-addressed [`Violation`]
//! (`snapshot/postings/elem[3]: ids not strictly ascending`), the same
//! currency the in-memory validators use — `tir check --file` prints
//! them verbatim.

use std::path::Path;

use tir_persist::snapshot::section;
use tir_persist::{LoadMode, SnapshotError, SnapshotFile};

use crate::{fail, Violation};

/// Opens and deep-validates the snapshot at `path`. Open failures
/// (bad magic, CRC mismatch, truncation, …) become the single violation
/// the open reported; a readable file gets the full content walk.
pub fn validate_snapshot(path: &Path) -> Vec<Violation> {
    match SnapshotFile::open(path, LoadMode::Heap) {
        Ok(snap) => validate_snapshot_file(&snap),
        Err(SnapshotError::Corrupt { at, msg }) => vec![Violation::new(at, msg)],
        Err(SnapshotError::Io(e)) => vec![Violation::new("snapshot/file", e.to_string())],
    }
}

/// Deep-validates an already-open snapshot (the serve/recover load path
/// calls this before trusting a file it did not just write).
pub fn validate_snapshot_file(snap: &SnapshotFile) -> Vec<Violation> {
    let mut out = Vec::new();
    let meta = snap.meta();

    if meta.domain_min > meta.domain_max {
        fail(
            &mut out,
            "snapshot/meta",
            format!(
                "domain inverted: [{}, {}]",
                meta.domain_min, meta.domain_max
            ),
        );
    }
    if meta.live != meta.catalog_len {
        fail(
            &mut out,
            "snapshot/meta",
            format!(
                "live count {} disagrees with catalog length {}",
                meta.live, meta.catalog_len
            ),
        );
    }

    // Dictionary: length agreement and intact terms (UTF-8 and offset
    // monotonicity are enforced by the accessor itself).
    match snap.dictionary() {
        Ok(dict) => {
            if dict.len() as u64 != meta.dict_len {
                fail(
                    &mut out,
                    "snapshot/dict",
                    format!("META says {} terms, decoded {}", meta.dict_len, dict.len()),
                );
            }
        }
        Err(e) => out.push(violation_of(e)),
    }

    // Catalog: sorted unique ids, ordered intervals inside the domain.
    let catalog = match snap.catalog_objects() {
        Ok(catalog) => {
            for (i, o) in catalog.iter().enumerate() {
                if i > 0 && catalog[i - 1].id >= o.id {
                    fail(
                        &mut out,
                        &format!("snapshot/catalog/ids[{i}]"),
                        format!(
                            "ids not strictly ascending ({} then {})",
                            catalog[i - 1].id,
                            o.id
                        ),
                    );
                }
                if o.interval.st > o.interval.end {
                    fail(
                        &mut out,
                        &format!("snapshot/catalog/object[{}]", o.id),
                        format!("interval inverted: [{}, {}]", o.interval.st, o.interval.end),
                    );
                }
                if o.interval.st < meta.domain_min || o.interval.end > meta.domain_max {
                    fail(
                        &mut out,
                        &format!("snapshot/catalog/object[{}]", o.id),
                        format!(
                            "interval [{}, {}] outside the domain [{}, {}]",
                            o.interval.st, o.interval.end, meta.domain_min, meta.domain_max
                        ),
                    );
                }
                for &e in &o.desc {
                    if u64::from(e) >= meta.dict_len {
                        fail(
                            &mut out,
                            &format!("snapshot/catalog/object[{}]", o.id),
                            format!("element {e} outside the {}-term dictionary", meta.dict_len),
                        );
                    }
                }
            }
            catalog
        }
        Err(e) => {
            out.push(violation_of(e));
            Vec::new()
        }
    };

    // Postings: ascending element directory, exact offsets, per-element
    // id order, and (elem, id) rows that the catalog corroborates.
    match snap.postings() {
        Ok(view) => {
            let rows = view.ids.len();
            if !view.offs.is_empty() && view.offs.get(view.offs.len() - 1) as usize != rows {
                fail(
                    &mut out,
                    "snapshot/postings/offs",
                    format!(
                        "final offset {} does not cover the {rows} rows",
                        view.offs.get(view.offs.len() - 1)
                    ),
                );
            }
            let by_id: std::collections::HashMap<u32, &tir_core::Object> =
                catalog.iter().map(|o| (o.id, o)).collect();
            let mut covered = 0u64;
            for ei in 0..view.elems.len() {
                let e = view.elems.get(ei);
                if ei > 0 && view.elems.get(ei - 1) >= e {
                    fail(
                        &mut out,
                        &format!("snapshot/postings/elems[{ei}]"),
                        "element directory not strictly ascending".to_string(),
                    );
                }
                let lo = view.offs.get(ei) as usize;
                let hi = view.offs.get(ei + 1) as usize;
                if lo > hi || hi > rows {
                    fail(
                        &mut out,
                        &format!("snapshot/postings/offs[{ei}]"),
                        format!("row range {lo}..{hi} invalid over {rows} rows"),
                    );
                    continue;
                }
                covered += (hi - lo) as u64;
                for row in lo..hi {
                    let id = view.ids.get(row);
                    if row > lo && view.ids.get(row - 1) >= id {
                        fail(
                            &mut out,
                            &format!("snapshot/postings/elem[{e}]"),
                            format!("ids not strictly ascending at row {row}"),
                        );
                    }
                    let (st, end) = (view.sts.get(row), view.ends.get(row));
                    if st > end {
                        fail(
                            &mut out,
                            &format!("snapshot/postings/elem[{e}]/row[{row}]"),
                            format!("interval inverted: [{st}, {end}]"),
                        );
                    }
                    match by_id.get(&id) {
                        None => fail(
                            &mut out,
                            &format!("snapshot/postings/elem[{e}]/row[{row}]"),
                            format!("posting references id {id} absent from the catalog"),
                        ),
                        Some(o) => {
                            if o.interval.st != st || o.interval.end != end {
                                fail(
                                    &mut out,
                                    &format!("snapshot/postings/elem[{e}]/row[{row}]"),
                                    format!(
                                        "posting interval [{st}, {end}] disagrees with catalog [{}, {}] for id {id}",
                                        o.interval.st, o.interval.end
                                    ),
                                );
                            }
                            if !o.desc.contains(&e) {
                                fail(
                                    &mut out,
                                    &format!("snapshot/postings/elem[{e}]/row[{row}]"),
                                    format!("catalog object {id} does not carry element {e}"),
                                );
                            }
                        }
                    }
                }
            }
            if covered != meta.postings {
                fail(
                    &mut out,
                    "snapshot/postings",
                    format!(
                        "element directory covers {covered} rows, META says {}",
                        meta.postings
                    ),
                );
            }
            // Conservation: a compacted snapshot has exactly one posting
            // per (object, element) pair in the catalog.
            let expected: u64 = catalog.iter().map(|o| o.desc.len() as u64).sum();
            if covered == meta.postings && expected != meta.postings {
                fail(
                    &mut out,
                    "snapshot/postings",
                    format!(
                        "catalog descriptions imply {expected} postings, columns hold {}",
                        meta.postings
                    ),
                );
            }
        }
        Err(e) => out.push(violation_of(e)),
    }

    // HINT partition directory, when present: parallel columns plus a
    // strictly ascending element order.
    if let Some(bytes) = snap.section_bytes(section::HINT_ELEMS) {
        let n = bytes.len() / 4;
        let elems = snap.u32_col(section::HINT_ELEMS);
        let offs = snap.u32_col(section::HINT_DIV_OFFS);
        match (elems, offs) {
            (Ok(elems), Ok(offs)) => {
                if offs.len() != n + 1 {
                    fail(
                        &mut out,
                        "snapshot/hint/offs",
                        format!("{n} elements need {} offsets, found {}", n + 1, offs.len()),
                    );
                }
                for i in 1..elems.len() {
                    if elems.get(i - 1) >= elems.get(i) {
                        fail(
                            &mut out,
                            &format!("snapshot/hint/elems[{i}]"),
                            "element directory not strictly ascending".to_string(),
                        );
                    }
                }
                let total = if offs.is_empty() {
                    0
                } else {
                    offs.get(offs.len() - 1) as usize
                };
                for (name, id) in [
                    ("levels", section::HINT_DIV_LEVELS),
                    ("keys", section::HINT_DIV_KEYS),
                    ("lens", section::HINT_DIV_LENS),
                ] {
                    match snap.u32_col(id) {
                        Ok(col) if col.len() != total => fail(
                            &mut out,
                            &format!("snapshot/hint/{name}"),
                            format!("{} entries for {total} divisions", col.len()),
                        ),
                        Ok(_) => {}
                        Err(e) => out.push(violation_of(e)),
                    }
                }
            }
            (elems, offs) => {
                if let Err(e) = elems {
                    out.push(violation_of(e));
                }
                if let Err(e) = offs {
                    out.push(violation_of(e));
                }
            }
        }
    }

    out
}

fn violation_of(e: SnapshotError) -> Violation {
    match e {
        SnapshotError::Corrupt { at, msg } => Violation::new(at, msg),
        SnapshotError::Io(e) => Violation::new("snapshot/file", e.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path as StdPath;
    use std::path::PathBuf;
    use tir_core::{Collection, Tif};
    use tir_invidx::Dictionary;
    use tir_persist::write_snapshot;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tir-fsck-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("scratch dir");
        dir.join(name)
    }

    fn write_example(path: &StdPath) {
        let coll = Collection::running_example();
        let mut dict = Dictionary::new();
        for t in ["a", "b", "c"] {
            dict.intern(t);
        }
        let index = Tif::build(&coll);
        write_snapshot(path, 3, &dict, coll.objects(), &index).expect("write");
    }

    #[test]
    fn clean_snapshot_passes_fsck() {
        let path = scratch("clean.tir");
        write_example(&path);
        let violations = validate_snapshot(&path);
        assert!(violations.is_empty(), "{violations:?}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_one_violation() {
        let violations = validate_snapshot(Path::new("/nonexistent/nope.tir"));
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].path, "snapshot/file");
    }

    #[test]
    fn corrupted_bytes_are_reported_not_panicked() {
        let path = scratch("corrupt.tir");
        write_example(&path);
        let mut bytes = std::fs::read(&path).expect("read");
        // Flip the epoch field: inside the header, covered by its CRC.
        bytes[16] ^= 0xFF;
        std::fs::write(&path, &bytes).expect("write");
        let violations = validate_snapshot(&path);
        assert!(!violations.is_empty(), "header flip undetected");
        let _ = std::fs::remove_file(&path);
    }
}
