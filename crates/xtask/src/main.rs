//! `cargo xtask` — the repo-wide static-analysis gate.
//!
//! ```text
//! cargo xtask build    cargo build --release -p tir-cli (the `tir` binary;
//!                      the workspace root build does not produce it)
//! cargo xtask lint     run every check below (the CI gate)
//! cargo xtask attrs    library crates carry forbid(unsafe_code) + warn(missing_docs)
//! cargo xtask analyze  tir-analyze: token rules (lock-order, atomic-ordering,
//!                      raw-lock, panic-path, unguarded-cast, unbounded-channel,
//!                      blocking-under-lock) + call-graph rules (hot-path-alloc,
//!                      panic-reachability); --json <path> writes the machine-
//!                      readable report (diffed against ANALYZE_baseline.json in CI)
//! cargo xtask srclint  alias of analyze (the old substring scanner it replaced)
//! cargo xtask fmt      cargo fmt --all -- --check
//! cargo xtask clippy   cargo clippy --workspace --all-targets -- -D warnings
//! cargo xtask fsck     build indexes from generated data, validate with tir-check
//! ```
//!
//! Every check either passes silently (one summary line) or prints the
//! offending `path:line:col` and exits nonzero. Rule semantics and the
//! `// analyze:allow(rule)` suppression syntax live in the `tir-analyze`
//! crate docs and DESIGN.md §"Static analysis & concurrency auditing".

use std::path::{Path, PathBuf};
use std::process::Command;

use tir_check::Validate;
use tir_core::prelude::*;
use tir_core::TifHintConfig;
use tir_hint::{Grid1D, Hint, HintConfig, IntervalRecord, IntervalTree};

/// Library crates the attribute and source rules apply to. Binaries
/// (`cli`, `bench`, this crate) and the dependency shims are exempt.
const LIB_CRATES: &[&str] = &[
    "analyze", "check", "core", "datagen", "hint", "invidx", "persist", "serve",
];

/// Crates where a silently truncating cast corrupts query answers;
/// the `unguarded-cast` rule is scoped to these.
const HOT_PATH_CRATES: &[&str] = &["hint", "invidx", "core"];

const REQUIRED_ATTRS: &[&str] = &["#![forbid(unsafe_code)]", "#![warn(missing_docs)]"];

const USAGE: &str =
    "usage: cargo xtask <build|lint|attrs|analyze [--json <path>]|srclint|fmt|clippy|fsck>";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("lint");
    let result = match cmd {
        "build" => build(),
        "lint" => lint(),
        "attrs" => attrs(),
        // `srclint` is the PR 1 name for the source lint; tir-analyze
        // superseded the substring scanner, the alias keeps CI and
        // muscle memory working.
        "analyze" | "srclint" => match parse_json_flag(&args[1..]) {
            Ok(json) => analyze(json.as_deref()),
            Err(msg) => Err(msg),
        },
        "fmt" => fmt(),
        "clippy" => clippy(),
        "fsck" => fsck(),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown subcommand {other}\n{USAGE}")),
    };
    if let Err(msg) = result {
        eprintln!("xtask: {msg}");
        std::process::exit(1);
    }
}

fn lint() -> Result<(), String> {
    attrs()?;
    analyze(None)?;
    fmt()?;
    clippy()?;
    fsck()
}

/// Builds the release `tir` binary. The workspace root package does not
/// depend on `tir-cli`, so a bare `cargo build --release` never produces
/// it — this is the one blessed way to get a benchable binary (stamped
/// with the current git revision by the cli crate's build script).
fn build() -> Result<(), String> {
    cargo_tool(&["build", "--release", "-p", "tir-cli"], "build")?;
    let bin = repo_root().join("target/release/tir");
    println!("build: release binary at {}", bin.display());
    Ok(())
}

/// Parses `[--json <path>]` from an analyze invocation's trailing args.
fn parse_json_flag(rest: &[String]) -> Result<Option<String>, String> {
    match rest {
        [] => Ok(None),
        [flag, path] if flag == "--json" => Ok(Some(path.clone())),
        _ => Err(format!("unexpected arguments {rest:?}\n{USAGE}")),
    }
}

fn repo_root() -> PathBuf {
    // xtask lives at <root>/crates/xtask.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/xtask has a grandparent")
        .to_path_buf()
}

/// Every library crate root must opt into the workspace safety posture.
/// `persist` is the one audited exception: its mmap wrapper needs
/// `unsafe`, so the crate carries `deny(unsafe_code)` (overridden only
/// inside that module) and the `unsafe-code` analyze rule enforces the
/// containment per token.
fn attrs() -> Result<(), String> {
    let root = repo_root();
    let mut missing = Vec::new();
    for krate in LIB_CRATES {
        let path = root.join("crates").join(krate).join("src/lib.rs");
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        for attr in REQUIRED_ATTRS {
            let attr = if *krate == "persist" && *attr == "#![forbid(unsafe_code)]" {
                "#![deny(unsafe_code)]"
            } else {
                attr
            };
            if !text.contains(attr) {
                missing.push(format!("{} lacks {attr}", path.display()));
            }
        }
    }
    if missing.is_empty() {
        println!(
            "attrs: {} library crates carry {:?}",
            LIB_CRATES.len(),
            REQUIRED_ATTRS
        );
        Ok(())
    } else {
        Err(format!("missing attributes:\n  {}", missing.join("\n  ")))
    }
}

fn rust_sources(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    for entry in std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))? {
        let entry = entry.map_err(|e| e.to_string())?;
        let path = entry.path();
        if path.is_dir() {
            rust_sources(&path, out)?;
        } else if path.extension().is_some_and(|x| x == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Runs the tir-analyze engine over every library crate's `src/` tree:
/// the per-file token rules plus the workspace call-graph passes
/// (`hot-path-alloc`, `panic-reachability`). The lexer makes matches
/// token-exact (no hits inside strings or comments); `#[cfg(test)]`
/// items and per-site `analyze:allow` suppressions are honoured by the
/// engine. With `json`, the machine-readable report (sorted
/// diagnostics + per-rule allow counts) is written there before the
/// pass/fail verdict — CI diffs it against `ANALYZE_baseline.json`.
fn analyze(json: Option<&str>) -> Result<(), String> {
    let root = repo_root();
    let config = tir_analyze::Config {
        cast_crates: Some(HOT_PATH_CRATES.iter().map(|c| c.to_string()).collect()),
        ..tir_analyze::Config::default()
    };
    let mut analysis = tir_analyze::Analysis::new(config);
    for krate in LIB_CRATES {
        let mut files = Vec::new();
        rust_sources(&root.join("crates").join(krate).join("src"), &mut files)?;
        files.sort();
        for path in files {
            let text =
                std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
            let rel = path.strip_prefix(&root).unwrap_or(&path);
            analysis.add_file(krate, &rel.display().to_string(), &text);
        }
    }
    let report = analysis.finish_report();
    if let Some(path) = json {
        std::fs::write(path, report_json(&report)).map_err(|e| format!("writing {path}: {e}"))?;
        println!("analyze: report written to {path}");
    }
    if report.diagnostics.is_empty() {
        println!(
            "analyze: {} library sources clean under {} rules {:?}",
            report.files,
            tir_analyze::rules::RULE_NAMES.len(),
            tir_analyze::rules::RULE_NAMES
        );
        Ok(())
    } else {
        let lines: Vec<String> = report.diagnostics.iter().map(|d| d.to_string()).collect();
        Err(format!(
            "{} diagnostic(s):\n  {}",
            lines.len(),
            lines.join("\n  ")
        ))
    }
}

/// Renders the analyze report as deterministic JSON: rules in catalog
/// order, allow counts keyed by rule name (sorted), diagnostics in the
/// engine's path/line/col order. No dependencies, no HashMap iteration.
fn report_json(report: &tir_analyze::Report) -> String {
    let mut s = String::from("{\n  \"tool\": \"cargo xtask analyze\",\n");
    s.push_str(&format!("  \"files\": {},\n", report.files));
    let rules: Vec<String> = tir_analyze::rules::RULE_NAMES
        .iter()
        .map(|r| json_str(r))
        .collect();
    s.push_str(&format!("  \"rules\": [{}],\n", rules.join(", ")));
    s.push_str("  \"allows\": {\n");
    let allows: Vec<String> = report
        .allows
        .iter()
        .map(|(rule, n)| format!("    {}: {n}", json_str(rule)))
        .collect();
    s.push_str(&allows.join(",\n"));
    s.push_str("\n  },\n  \"diagnostics\": [");
    let diags: Vec<String> = report
        .diagnostics
        .iter()
        .map(|d| {
            format!(
                "\n    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"col\": {}, \"message\": {}}}",
                json_str(d.rule),
                json_str(&d.path),
                d.line,
                d.col,
                json_str(&d.message)
            )
        })
        .collect();
    s.push_str(&diags.join(","));
    if !diags.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("]\n}\n");
    s
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_str(raw: &str) -> String {
    let mut s = String::with_capacity(raw.len() + 2);
    s.push('"');
    for c in raw.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\t' => s.push_str("\\t"),
            '\r' => s.push_str("\\r"),
            c if (c as u32) < 0x20 => s.push_str(&format!("\\u{:04x}", c as u32)),
            c => s.push(c),
        }
    }
    s.push('"');
    s
}

/// Runs a cargo subtool, treating any failure as a lint failure.
fn cargo_tool(args: &[&str], what: &str) -> Result<(), String> {
    let status = Command::new(env!("CARGO"))
        .args(args)
        .current_dir(repo_root())
        .status()
        .map_err(|e| format!("could not spawn cargo: {e}"))?;
    if status.success() {
        println!("{what}: clean");
        Ok(())
    } else {
        Err(format!("{what} failed (cargo {})", args.join(" ")))
    }
}

fn fmt() -> Result<(), String> {
    cargo_tool(&["fmt", "--all", "--", "--check"], "fmt")
}

fn clippy() -> Result<(), String> {
    cargo_tool(
        &[
            "clippy",
            "--workspace",
            "--all-targets",
            "--",
            "-D",
            "warnings",
        ],
        "clippy",
    )
}

/// Builds every index over a generated corpus and the paper's running
/// example, then runs the deep structural validators of `tir-check`.
fn fsck() -> Result<(), String> {
    let mut violations = Vec::new();
    let mut checked = 0usize;
    let mut check = |name: &str, v: Vec<tir_check::Violation>| {
        checked += 1;
        for viol in v {
            violations.push(format!("{name}: {viol}"));
        }
    };

    let synthetic = tir_datagen::generate(&tir_datagen::SyntheticConfig::default().scaled(0.002));
    for (tag, coll) in [
        ("example", Collection::running_example()),
        ("synthetic", synthetic),
    ] {
        check(tag, Tif::build(&coll).validate());
        check(tag, TifSlicing::build(&coll).validate());
        check(tag, TifSharding::build(&coll).validate());
        check(
            tag,
            TifHint::build(&coll, TifHintConfig::binary_search()).validate(),
        );
        check(tag, IrHintPerf::build(&coll).validate());
        check(tag, IrHintSize::build(&coll).validate());

        let records: Vec<IntervalRecord> = coll
            .objects()
            .iter()
            .map(|o| IntervalRecord::new(o.id, o.interval.st, o.interval.end))
            .collect();
        check(tag, Hint::build(&records, HintConfig::default()).validate());
        check(tag, Grid1D::build(&records, 64).validate());
        check(tag, IntervalTree::build(&records).validate());
    }

    if violations.is_empty() {
        println!("fsck: {checked} index builds validate clean");
        Ok(())
    } else {
        Err(format!(
            "structural violations:\n  {}",
            violations.join("\n  ")
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attrs_pass_on_this_repo() {
        attrs().expect("library crates must carry the required attributes");
    }

    #[test]
    fn analyze_passes_on_this_repo() {
        // The workspace gate: every rule silent (with its audited
        // annotations) across all library crates.
        analyze(None).expect("tir-analyze must report a clean workspace");
    }

    #[test]
    fn analyze_sees_all_library_crates() {
        let root = repo_root();
        for krate in LIB_CRATES {
            assert!(
                root.join("crates").join(krate).join("src/lib.rs").exists(),
                "LIB_CRATES entry {krate} has no src/lib.rs"
            );
        }
    }

    #[test]
    fn fsck_passes_on_generated_data() {
        fsck().expect("generated indexes must validate clean");
    }
}
