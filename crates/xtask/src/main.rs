//! `cargo xtask` — the repo-wide static-analysis gate.
//!
//! ```text
//! cargo xtask lint     run every check below (the CI gate)
//! cargo xtask attrs    library crates carry forbid(unsafe_code) + warn(missing_docs)
//! cargo xtask srclint  no unwrap()/todo!/unimplemented!/dbg! in library code
//! cargo xtask fmt      cargo fmt --all -- --check
//! cargo xtask clippy   cargo clippy --workspace --all-targets -- -D warnings
//! cargo xtask fsck     build indexes from generated data, validate with tir-check
//! ```
//!
//! Every check either passes silently (one summary line) or prints the
//! offending file/line and exits nonzero.

use std::path::{Path, PathBuf};
use std::process::Command;

use tir_check::Validate;
use tir_core::prelude::*;
use tir_core::TifHintConfig;
use tir_hint::{Grid1D, Hint, HintConfig, IntervalRecord, IntervalTree};

/// Library crates the attribute and source lints apply to. Binaries
/// (`cli`, `bench`, this crate) and the dependency shims are exempt.
const LIB_CRATES: &[&str] = &["hint", "invidx", "core", "datagen", "check", "serve"];

const REQUIRED_ATTRS: &[&str] = &["#![forbid(unsafe_code)]", "#![warn(missing_docs)]"];

const USAGE: &str = "usage: cargo xtask <lint|attrs|srclint|fmt|clippy|fsck>";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("lint");
    let result = match cmd {
        "lint" => lint(),
        "attrs" => attrs(),
        "srclint" => srclint(),
        "fmt" => fmt(),
        "clippy" => clippy(),
        "fsck" => fsck(),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown subcommand {other}\n{USAGE}")),
    };
    if let Err(msg) = result {
        eprintln!("xtask: {msg}");
        std::process::exit(1);
    }
}

fn lint() -> Result<(), String> {
    attrs()?;
    srclint()?;
    fmt()?;
    clippy()?;
    fsck()
}

fn repo_root() -> PathBuf {
    // xtask lives at <root>/crates/xtask.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/xtask has a grandparent")
        .to_path_buf()
}

/// Every library crate root must opt into the workspace safety posture.
fn attrs() -> Result<(), String> {
    let root = repo_root();
    let mut missing = Vec::new();
    for krate in LIB_CRATES {
        let path = root.join("crates").join(krate).join("src/lib.rs");
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        for attr in REQUIRED_ATTRS {
            if !text.contains(attr) {
                missing.push(format!("{} lacks {attr}", path.display()));
            }
        }
    }
    if missing.is_empty() {
        println!(
            "attrs: {} library crates carry {:?}",
            LIB_CRATES.len(),
            REQUIRED_ATTRS
        );
        Ok(())
    } else {
        Err(format!("missing attributes:\n  {}", missing.join("\n  ")))
    }
}

/// Rules the source lint denies in library (non-test) code. `.expect()`
/// with a justification message is deliberately permitted.
const DENIED: &[(&str, &str)] = &[
    (
        ".unwrap()",
        "unwrap() panics without context; use expect(\"why\") or handle the None/Err",
    ),
    ("todo!", "todo! must not ship in library code"),
    (
        "unimplemented!",
        "unimplemented! must not ship in library code",
    ),
    ("dbg!", "dbg! is debug cruft"),
];

/// Scans one source file, returning `(line number, needle, why)` hits.
/// Comment/doc lines are skipped, and everything from a top-level
/// `#[cfg(test)]` on is test code (the repo convention keeps test modules
/// at the end of each file).
fn scan_source(text: &str) -> Vec<(usize, &'static str, &'static str)> {
    let mut hits = Vec::new();
    for (no, line) in text.lines().enumerate() {
        let t = line.trim_start();
        if t == "#[cfg(test)]" {
            break;
        }
        if t.starts_with("//") {
            continue;
        }
        for &(needle, why) in DENIED {
            if line.contains(needle) {
                hits.push((no + 1, needle, why));
            }
        }
    }
    hits
}

fn rust_sources(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    for entry in std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))? {
        let entry = entry.map_err(|e| e.to_string())?;
        let path = entry.path();
        if path.is_dir() {
            rust_sources(&path, out)?;
        } else if path.extension().is_some_and(|x| x == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn srclint() -> Result<(), String> {
    let root = repo_root();
    let mut files = Vec::new();
    for krate in LIB_CRATES {
        rust_sources(&root.join("crates").join(krate).join("src"), &mut files)?;
    }
    files.sort();
    let mut report = Vec::new();
    for path in &files {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        for (line, needle, why) in scan_source(&text) {
            let rel = path.strip_prefix(&root).unwrap_or(path);
            report.push(format!("{}:{line}: {needle} — {why}", rel.display()));
        }
    }
    if report.is_empty() {
        println!(
            "srclint: {} library sources free of {:?}",
            files.len(),
            ["unwrap()", "todo!", "unimplemented!", "dbg!"]
        );
        Ok(())
    } else {
        Err(format!(
            "denied constructs in library code:\n  {}",
            report.join("\n  ")
        ))
    }
}

/// Runs a cargo subtool, treating "not installed" as a skip, any other
/// failure as a lint failure.
fn cargo_tool(args: &[&str], what: &str) -> Result<(), String> {
    let status = Command::new(env!("CARGO"))
        .args(args)
        .current_dir(repo_root())
        .status()
        .map_err(|e| format!("could not spawn cargo: {e}"))?;
    if status.success() {
        println!("{what}: clean");
        Ok(())
    } else {
        Err(format!("{what} failed (cargo {})", args.join(" ")))
    }
}

fn fmt() -> Result<(), String> {
    cargo_tool(&["fmt", "--all", "--", "--check"], "fmt")
}

fn clippy() -> Result<(), String> {
    cargo_tool(
        &[
            "clippy",
            "--workspace",
            "--all-targets",
            "--",
            "-D",
            "warnings",
        ],
        "clippy",
    )
}

/// Builds every index over a generated corpus and the paper's running
/// example, then runs the deep structural validators of `tir-check`.
fn fsck() -> Result<(), String> {
    let mut violations = Vec::new();
    let mut checked = 0usize;
    let mut check = |name: &str, v: Vec<tir_check::Violation>| {
        checked += 1;
        for viol in v {
            violations.push(format!("{name}: {viol}"));
        }
    };

    let synthetic = tir_datagen::generate(&tir_datagen::SyntheticConfig::default().scaled(0.002));
    for (tag, coll) in [
        ("example", Collection::running_example()),
        ("synthetic", synthetic),
    ] {
        check(tag, Tif::build(&coll).validate());
        check(tag, TifSlicing::build(&coll).validate());
        check(tag, TifSharding::build(&coll).validate());
        check(
            tag,
            TifHint::build(&coll, TifHintConfig::binary_search()).validate(),
        );
        check(tag, IrHintPerf::build(&coll).validate());
        check(tag, IrHintSize::build(&coll).validate());

        let records: Vec<IntervalRecord> = coll
            .objects()
            .iter()
            .map(|o| IntervalRecord::new(o.id, o.interval.st, o.interval.end))
            .collect();
        check(tag, Hint::build(&records, HintConfig::default()).validate());
        check(tag, Grid1D::build(&records, 64).validate());
        check(tag, IntervalTree::build(&records).validate());
    }

    if violations.is_empty() {
        println!("fsck: {checked} index builds validate clean");
        Ok(())
    } else {
        Err(format!(
            "structural violations:\n  {}",
            violations.join("\n  ")
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_flags_denied_constructs() {
        let src = "fn f() {\n    let x = opt.unwrap();\n    dbg!(x);\n}\n";
        let hits = scan_source(src);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].0, 2);
        assert_eq!(hits[0].1, ".unwrap()");
        assert_eq!(hits[1].1, "dbg!");
    }

    #[test]
    fn scan_stops_at_test_module() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g() { x.unwrap(); todo!() }\n}\n";
        assert!(scan_source(src).is_empty());
    }

    #[test]
    fn scan_skips_comments_and_docs() {
        let src = "/// call .unwrap() at your peril\n//! dbg! example\n// todo! later\nfn f() {}\n";
        assert!(scan_source(src).is_empty());
    }

    #[test]
    fn scan_flags_expectless_macros() {
        let src = "fn f() {\n    unimplemented!()\n}\n";
        let hits = scan_source(src);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].1, "unimplemented!");
    }

    #[test]
    fn attrs_and_srclint_pass_on_this_repo() {
        attrs().expect("library crates must carry the required attributes");
        srclint().expect("library sources must be free of denied constructs");
    }

    #[test]
    fn fsck_passes_on_generated_data() {
        fsck().expect("generated indexes must validate clean");
    }
}
