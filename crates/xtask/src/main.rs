//! `cargo xtask` — the repo-wide static-analysis gate.
//!
//! ```text
//! cargo xtask build    cargo build --release -p tir-cli (the `tir` binary;
//!                      the workspace root build does not produce it)
//! cargo xtask lint     run every check below (the CI gate)
//! cargo xtask attrs    library crates carry forbid(unsafe_code) + warn(missing_docs)
//! cargo xtask analyze  tir-analyze: token rules (lock-order, atomic-ordering,
//!                      raw-lock, panic-path, unguarded-cast, unbounded-channel,
//!                      blocking-under-lock) + call-graph rules (hot-path-alloc,
//!                      panic-reachability) + dataflow rules (untrusted-length,
//!                      durability-ordering, error-swallow).
//!                        --rule <name>      run exactly one rule (debugging aid;
//!                                           --json respects the filter)
//!                        --json <path>      write the machine-readable report,
//!                                           git_rev-stamped like BENCH_*.json
//!                        --baseline <path>  compare against a committed report;
//!                                           on drift, print the per-rule
//!                                           allow-census delta and the exact
//!                                           regen command (the CI gate)
//! cargo xtask srclint  alias of analyze (the old substring scanner it replaced)
//! cargo xtask fmt      cargo fmt --all -- --check
//! cargo xtask clippy   cargo clippy --workspace --all-targets -- -D warnings
//! cargo xtask fsck     build indexes from generated data, validate with tir-check
//! ```
//!
//! Every check either passes silently (one summary line) or prints the
//! offending `path:line:col` and exits nonzero. Rule semantics and the
//! `// analyze:allow(rule)` suppression syntax live in the `tir-analyze`
//! crate docs and DESIGN.md §"Static analysis & concurrency auditing".

use std::path::{Path, PathBuf};
use std::process::Command;

use tir_check::Validate;
use tir_core::prelude::*;
use tir_core::TifHintConfig;
use tir_hint::{Grid1D, Hint, HintConfig, IntervalRecord, IntervalTree};

/// Library crates the attribute and source rules apply to. Binaries
/// (`cli`, `bench`, this crate) and the dependency shims are exempt.
const LIB_CRATES: &[&str] = &[
    "analyze", "check", "core", "datagen", "fault", "hint", "invidx", "persist", "serve",
];

/// Crates where a silently truncating cast corrupts query answers;
/// the `unguarded-cast` rule is scoped to these.
const HOT_PATH_CRATES: &[&str] = &["hint", "invidx", "core"];

/// Crates whose byte parsers decode attacker-controllable lengths; the
/// `untrusted-length` dataflow audit is scoped to these.
const TAINT_CRATES: &[&str] = &["persist"];

const REQUIRED_ATTRS: &[&str] = &["#![forbid(unsafe_code)]", "#![warn(missing_docs)]"];

const USAGE: &str = "usage: cargo xtask <build|lint|attrs|analyze [--rule <name>] \
     [--json <path>] [--baseline <path>]|srclint|fmt|clippy|fsck>";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("lint");
    let result = match cmd {
        "build" => build(),
        "lint" => lint(),
        "attrs" => attrs(),
        // `srclint` is the PR 1 name for the source lint; tir-analyze
        // superseded the substring scanner, the alias keeps CI and
        // muscle memory working.
        "analyze" | "srclint" => match AnalyzeArgs::parse(&args[1..]) {
            Ok(parsed) => analyze(&parsed),
            Err(msg) => Err(msg),
        },
        "fmt" => fmt(),
        "clippy" => clippy(),
        "fsck" => fsck(),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown subcommand {other}\n{USAGE}")),
    };
    if let Err(msg) = result {
        eprintln!("xtask: {msg}");
        std::process::exit(1);
    }
}

fn lint() -> Result<(), String> {
    attrs()?;
    analyze(&AnalyzeArgs::default())?;
    fmt()?;
    clippy()?;
    fsck()
}

/// Builds the release `tir` binary. The workspace root package does not
/// depend on `tir-cli`, so a bare `cargo build --release` never produces
/// it — this is the one blessed way to get a benchable binary (stamped
/// with the current git revision by the cli crate's build script).
fn build() -> Result<(), String> {
    cargo_tool(&["build", "--release", "-p", "tir-cli"], "build")?;
    let bin = repo_root().join("target/release/tir");
    println!("build: release binary at {}", bin.display());
    Ok(())
}

/// Trailing arguments of an `analyze` invocation.
#[derive(Debug, Default)]
struct AnalyzeArgs {
    /// `--rule <name>`: run exactly this rule.
    rule: Option<String>,
    /// `--json <path>`: write the machine-readable report there.
    json: Option<String>,
    /// `--baseline <path>`: compare the report against a committed one.
    baseline: Option<String>,
}

impl AnalyzeArgs {
    fn parse(rest: &[String]) -> Result<AnalyzeArgs, String> {
        let mut parsed = AnalyzeArgs::default();
        let mut it = rest.iter();
        while let Some(flag) = it.next() {
            let slot = match flag.as_str() {
                "--rule" => &mut parsed.rule,
                "--json" => &mut parsed.json,
                "--baseline" => &mut parsed.baseline,
                other => return Err(format!("unexpected argument {other}\n{USAGE}")),
            };
            let Some(value) = it.next() else {
                return Err(format!("{flag} needs a value\n{USAGE}"));
            };
            if slot.replace(value.clone()).is_some() {
                return Err(format!("{flag} given twice\n{USAGE}"));
            }
        }
        if let Some(rule) = &parsed.rule {
            if !tir_analyze::rules::RULE_NAMES.contains(&rule.as_str()) {
                return Err(format!(
                    "unknown rule {rule}; shipped rules: {}",
                    tir_analyze::rules::RULE_NAMES.join(", ")
                ));
            }
            if parsed.baseline.is_some() {
                return Err(
                    "--rule cannot be combined with --baseline: a single-rule report \
                     never matches the full committed baseline"
                        .to_string(),
                );
            }
        }
        Ok(parsed)
    }
}

fn repo_root() -> PathBuf {
    // xtask lives at <root>/crates/xtask.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/xtask has a grandparent")
        .to_path_buf()
}

/// Every library crate root must opt into the workspace safety posture.
/// `persist` and `invidx` are the audited exceptions: the mmap wrapper
/// and the SIMD kernel module need `unsafe`, so those crates carry
/// `deny(unsafe_code)` (overridden only inside the audited module) and
/// the `unsafe-code` analyze rule enforces the containment per token.
const UNSAFE_AUDITED_CRATES: &[&str] = &["persist", "invidx"];

fn attrs() -> Result<(), String> {
    let root = repo_root();
    let mut missing = Vec::new();
    for krate in LIB_CRATES {
        let path = root.join("crates").join(krate).join("src/lib.rs");
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        for attr in REQUIRED_ATTRS {
            let attr =
                if UNSAFE_AUDITED_CRATES.contains(krate) && *attr == "#![forbid(unsafe_code)]" {
                    "#![deny(unsafe_code)]"
                } else {
                    attr
                };
            if !text.contains(attr) {
                missing.push(format!("{} lacks {attr}", path.display()));
            }
        }
    }
    if missing.is_empty() {
        println!(
            "attrs: {} library crates carry {:?}",
            LIB_CRATES.len(),
            REQUIRED_ATTRS
        );
        Ok(())
    } else {
        Err(format!("missing attributes:\n  {}", missing.join("\n  ")))
    }
}

fn rust_sources(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    for entry in std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))? {
        let entry = entry.map_err(|e| e.to_string())?;
        let path = entry.path();
        if path.is_dir() {
            rust_sources(&path, out)?;
        } else if path.extension().is_some_and(|x| x == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Runs the tir-analyze engine over every library crate's `src/` tree:
/// the per-file token rules, the workspace call-graph passes
/// (`hot-path-alloc`, `panic-reachability`), and the dataflow tier
/// (`untrusted-length` scoped to `persist`, `durability-ordering`,
/// `error-swallow`). The lexer makes matches token-exact (no hits
/// inside strings or comments); `#[cfg(test)]` items and per-site
/// `analyze:allow` suppressions are honoured by the engine. With
/// `--rule`, exactly one rule runs and the report covers only it; with
/// `--json`, the machine-readable report (sorted diagnostics + per-rule
/// allow counts, git_rev-stamped) is written out; with `--baseline`,
/// the report is compared against the committed one and any drift
/// fails with the per-rule delta and the regen command.
fn analyze(args: &AnalyzeArgs) -> Result<(), String> {
    let root = repo_root();
    let config = tir_analyze::Config {
        cast_crates: Some(HOT_PATH_CRATES.iter().map(|c| c.to_string()).collect()),
        taint_crates: Some(TAINT_CRATES.iter().map(|c| c.to_string()).collect()),
        rule_filter: args.rule.as_ref().map(|r| vec![r.clone()]),
        ..tir_analyze::Config::default()
    };
    let mut analysis = tir_analyze::Analysis::new(config);
    for krate in LIB_CRATES {
        let mut files = Vec::new();
        rust_sources(&root.join("crates").join(krate).join("src"), &mut files)?;
        files.sort();
        for path in files {
            let text =
                std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
            let rel = path.strip_prefix(&root).unwrap_or(&path);
            analysis.add_file(krate, &rel.display().to_string(), &text);
        }
    }
    let mut report = analysis.finish_report();
    let active_rules: Vec<&str> = match &args.rule {
        Some(rule) => vec![rule.as_str()],
        None => tir_analyze::rules::RULE_NAMES.to_vec(),
    };
    if args.rule.is_some() {
        // A filtered run reports the allow census for the selected rule
        // only, so `--rule x --json` output is self-consistent.
        report
            .allows
            .retain(|r, _| active_rules.contains(&r.as_str()));
    }
    let rendered = report_json(&report, &active_rules);
    if let Some(path) = &args.json {
        std::fs::write(path, &rendered).map_err(|e| format!("writing {path}: {e}"))?;
        println!("analyze: report written to {path}");
    }
    if let Some(path) = &args.baseline {
        diff_baseline(path, &rendered)?;
        println!("analyze: report matches baseline {path}");
    }
    if report.diagnostics.is_empty() {
        println!(
            "analyze: {} library sources clean under {} rule(s) {:?}",
            report.files,
            active_rules.len(),
            active_rules
        );
        Ok(())
    } else {
        let lines: Vec<String> = report.diagnostics.iter().map(|d| d.to_string()).collect();
        Err(format!(
            "{} diagnostic(s):\n  {}",
            lines.len(),
            lines.join("\n  ")
        ))
    }
}

/// Compares the freshly rendered report against the committed baseline,
/// ignoring the `git_rev` stamp (provenance, not content). On drift the
/// error spells out exactly what a reviewer needs: the per-rule
/// allow-census delta, the diagnostic/file-count movement, and the
/// one-line regen command.
fn diff_baseline(path: &str, rendered: &str) -> Result<(), String> {
    let baseline =
        std::fs::read_to_string(path).map_err(|e| format!("reading baseline {path}: {e}"))?;
    let strip = |text: &str| -> String {
        text.lines()
            .filter(|l| !l.trim_start().starts_with("\"git_rev\""))
            .collect::<Vec<_>>()
            .join("\n")
    };
    if strip(&baseline) == strip(rendered) {
        return Ok(());
    }
    let old_allows = allow_census(&baseline);
    let new_allows = allow_census(rendered);
    let mut deltas = Vec::new();
    let mut rules: Vec<&String> = old_allows.keys().chain(new_allows.keys()).collect();
    rules.sort();
    rules.dedup();
    for rule in rules {
        let old = old_allows.get(rule).copied().unwrap_or(0);
        let new = new_allows.get(rule).copied().unwrap_or(0);
        if old != new {
            deltas.push(format!("    {rule}: {old} -> {new}"));
        }
    }
    if deltas.is_empty() {
        deltas.push("    (allow census unchanged)".to_string());
    }
    let count = |text: &str, needle: &str| text.matches(needle).count();
    Err(format!(
        "analyze report drifted from {path}:\n  \
         per-rule allow-census delta (baseline -> current):\n{}\n  \
         diagnostics: {} -> {}; files scanned: {} -> {}\n  \
         every new diagnostic must be fixed or carry a justified \
         `// analyze:allow(rule): why`, then regenerate the baseline in this PR:\n    \
         cargo xtask analyze --json {path}",
        deltas.join("\n"),
        count(&baseline, "{\"rule\":"),
        count(rendered, "{\"rule\":"),
        field_usize(&baseline, "files").unwrap_or(0),
        field_usize(rendered, "files").unwrap_or(0),
    ))
}

/// The per-rule counts out of a report's `"allows"` object — parsed by
/// line shape (`    "rule-name": N,`), which the deterministic renderer
/// guarantees.
fn allow_census(text: &str) -> std::collections::BTreeMap<String, usize> {
    let mut out = std::collections::BTreeMap::new();
    let mut in_allows = false;
    for line in text.lines() {
        let trimmed = line.trim();
        if trimmed.starts_with("\"allows\"") {
            in_allows = true;
            continue;
        }
        if in_allows {
            if trimmed.starts_with('}') {
                break;
            }
            if let Some((name, count)) = trimmed.trim_end_matches(',').split_once("\": ") {
                if let Ok(n) = count.trim().parse::<usize>() {
                    out.insert(name.trim_start_matches('"').to_string(), n);
                }
            }
        }
    }
    out
}

/// The integer value of a top-level `"name": N,` line.
fn field_usize(text: &str, name: &str) -> Option<usize> {
    let key = format!("\"{name}\": ");
    for line in text.lines() {
        if let Some(rest) = line.trim().strip_prefix(&key) {
            return rest.trim_end_matches(',').trim().parse().ok();
        }
    }
    None
}

/// Renders the analyze report as deterministic JSON: rules in catalog
/// order, allow counts keyed by rule name (sorted), diagnostics in the
/// engine's path/line/col order. The `git_rev` stamp (same convention
/// as the BENCH_*.json files: short rev, `-dirty` on modified tracked
/// sources) makes the baseline's provenance attributable; the baseline
/// comparison ignores it. No dependencies, no HashMap iteration.
fn report_json(report: &tir_analyze::Report, active_rules: &[&str]) -> String {
    let mut s = String::from("{\n  \"tool\": \"cargo xtask analyze\",\n");
    s.push_str(&format!("  \"git_rev\": {},\n", json_str(&git_rev())));
    s.push_str(&format!("  \"files\": {},\n", report.files));
    let rules: Vec<String> = active_rules.iter().map(|r| json_str(r)).collect();
    s.push_str(&format!("  \"rules\": [{}],\n", rules.join(", ")));
    s.push_str("  \"allows\": {\n");
    let allows: Vec<String> = report
        .allows
        .iter()
        .map(|(rule, n)| format!("    {}: {n}", json_str(rule)))
        .collect();
    s.push_str(&allows.join(",\n"));
    s.push_str("\n  },\n  \"diagnostics\": [");
    let diags: Vec<String> = report
        .diagnostics
        .iter()
        .map(|d| {
            format!(
                "\n    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"col\": {}, \"message\": {}}}",
                json_str(d.rule),
                json_str(&d.path),
                d.line,
                d.col,
                json_str(&d.message)
            )
        })
        .collect();
    s.push_str(&diags.join(","));
    if !diags.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("]\n}\n");
    s
}

/// Short git revision of the checkout that produced this report, with a
/// `-dirty` suffix when tracked sources are modified — the same
/// convention `tir bench`/`tir loadgen` stamp into BENCH_*.json, so
/// ANALYZE_baseline.json is equally attributable. `"unknown"` outside a
/// git checkout.
fn git_rev() -> String {
    let git = |args: &[&str]| -> Option<String> {
        let out = Command::new("git")
            .args(args)
            .current_dir(repo_root())
            .output()
            .ok()?;
        out.status
            .success()
            .then(|| String::from_utf8_lossy(&out.stdout).trim().to_string())
    };
    let Some(rev) = git(&["rev-parse", "--short", "HEAD"]) else {
        return "unknown".to_string();
    };
    match git(&["status", "--porcelain", "-uno"]) {
        Some(st) if st.is_empty() => rev,
        _ => format!("{rev}-dirty"),
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_str(raw: &str) -> String {
    let mut s = String::with_capacity(raw.len() + 2);
    s.push('"');
    for c in raw.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\t' => s.push_str("\\t"),
            '\r' => s.push_str("\\r"),
            c if (c as u32) < 0x20 => s.push_str(&format!("\\u{:04x}", c as u32)),
            c => s.push(c),
        }
    }
    s.push('"');
    s
}

/// Runs a cargo subtool, treating any failure as a lint failure.
fn cargo_tool(args: &[&str], what: &str) -> Result<(), String> {
    let status = Command::new(env!("CARGO"))
        .args(args)
        .current_dir(repo_root())
        .status()
        .map_err(|e| format!("could not spawn cargo: {e}"))?;
    if status.success() {
        println!("{what}: clean");
        Ok(())
    } else {
        Err(format!("{what} failed (cargo {})", args.join(" ")))
    }
}

fn fmt() -> Result<(), String> {
    cargo_tool(&["fmt", "--all", "--", "--check"], "fmt")
}

fn clippy() -> Result<(), String> {
    cargo_tool(
        &[
            "clippy",
            "--workspace",
            "--all-targets",
            "--",
            "-D",
            "warnings",
        ],
        "clippy",
    )
}

/// Builds every index over a generated corpus and the paper's running
/// example, then runs the deep structural validators of `tir-check`.
fn fsck() -> Result<(), String> {
    let mut violations = Vec::new();
    let mut checked = 0usize;
    let mut check = |name: &str, v: Vec<tir_check::Violation>| {
        checked += 1;
        for viol in v {
            violations.push(format!("{name}: {viol}"));
        }
    };

    let synthetic = tir_datagen::generate(&tir_datagen::SyntheticConfig::default().scaled(0.002));
    for (tag, coll) in [
        ("example", Collection::running_example()),
        ("synthetic", synthetic),
    ] {
        check(tag, Tif::build(&coll).validate());
        check(tag, TifSlicing::build(&coll).validate());
        check(tag, TifSharding::build(&coll).validate());
        check(
            tag,
            TifHint::build(&coll, TifHintConfig::binary_search()).validate(),
        );
        check(tag, IrHintPerf::build(&coll).validate());
        check(tag, IrHintSize::build(&coll).validate());

        let records: Vec<IntervalRecord> = coll
            .objects()
            .iter()
            .map(|o| IntervalRecord::new(o.id, o.interval.st, o.interval.end))
            .collect();
        check(tag, Hint::build(&records, HintConfig::default()).validate());
        check(tag, Grid1D::build(&records, 64).validate());
        check(tag, IntervalTree::build(&records).validate());
    }

    if violations.is_empty() {
        println!("fsck: {checked} index builds validate clean");
        Ok(())
    } else {
        Err(format!(
            "structural violations:\n  {}",
            violations.join("\n  ")
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attrs_pass_on_this_repo() {
        attrs().expect("library crates must carry the required attributes");
    }

    #[test]
    fn analyze_passes_on_this_repo() {
        // The workspace gate: every rule silent (with its audited
        // annotations) across all library crates.
        analyze(&AnalyzeArgs::default()).expect("tir-analyze must report a clean workspace");
    }

    #[test]
    fn analyze_single_rule_filter_passes_and_rejects_unknown() {
        let single = AnalyzeArgs::parse(&["--rule".into(), "error-swallow".into()])
            .expect("shipped rule accepted");
        analyze(&single).expect("single-rule run must be clean too");
        let err = AnalyzeArgs::parse(&["--rule".into(), "no-such-rule".into()])
            .expect_err("unknown rule rejected");
        assert!(err.contains("error-swallow"), "lists shipped rules: {err}");
        AnalyzeArgs::parse(&[
            "--rule".into(),
            "error-swallow".into(),
            "--baseline".into(),
            "x.json".into(),
        ])
        .expect_err("--rule + --baseline rejected");
    }

    #[test]
    fn baseline_drift_message_is_actionable() {
        let old = "{\n  \"git_rev\": \"aaa\",\n  \"files\": 3,\n  \"allows\": {\n    \
                   \"error-swallow\": 1,\n    \"raw-lock\": 2\n  },\n  \"diagnostics\": []\n}\n";
        let same_but_rev = old.replace("aaa", "bbb-dirty");
        let tmp = std::env::temp_dir().join("xtask-baseline-test.json");
        std::fs::write(&tmp, old).expect("write temp baseline");
        let path = tmp.display().to_string();
        diff_baseline(&path, &same_but_rev).expect("git_rev alone is not drift");
        let drifted = "{\n  \"git_rev\": \"ccc\",\n  \"files\": 4,\n  \"allows\": {\n    \
                       \"error-swallow\": 5\n  },\n  \"diagnostics\": [\n    \
                       {\"rule\": \"error-swallow\"}\n  ]\n}\n";
        let err = diff_baseline(&path, drifted).expect_err("content drift fails");
        assert!(err.contains("error-swallow: 1 -> 5"), "{err}");
        assert!(err.contains("raw-lock: 2 -> 0"), "{err}");
        assert!(err.contains("diagnostics: 0 -> 1"), "{err}");
        assert!(err.contains("files scanned: 3 -> 4"), "{err}");
        assert!(
            err.contains(&format!("cargo xtask analyze --json {path}")),
            "{err}"
        );
        let _ = std::fs::remove_file(&tmp);
    }

    #[test]
    fn analyze_sees_all_library_crates() {
        let root = repo_root();
        for krate in LIB_CRATES {
            assert!(
                root.join("crates").join(krate).join("src/lib.rs").exists(),
                "LIB_CRATES entry {krate} has no src/lib.rs"
            );
        }
    }

    #[test]
    fn fsck_passes_on_generated_data() {
        fsck().expect("generated indexes must validate clean");
    }
}
