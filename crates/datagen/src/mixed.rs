//! Mixed read/write workload streams for the serving layer.
//!
//! The paper's update experiments (§6) insert and delete whole batches
//! offline; a serving system instead sees reads and writes *interleaved*.
//! [`mixed_stream`] produces such an interleaving: a deterministic
//! sequence of [`Op`]s over a base collection where
//!
//! * queries follow a [`WorkloadSpec`] (seeded from live objects, so a
//!   correct index never returns an empty answer for them);
//! * inserts mint fresh objects with ids above everything allocated so
//!   far, shaped like the base collection (descriptions sampled from its
//!   element-frequency table, intervals sampled inside its domain);
//! * deletes only target ids that are still alive at that point of the
//!   stream (base objects or earlier inserts), so replaying the stream
//!   against any [`TemporalIrIndex`] is always well-formed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use tir_core::{Collection, ElemId, Object, ObjectId, TimeTravelQuery};

use crate::queries::{workload, WorkloadSpec};

/// One operation of a mixed read/write stream.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Answer a time-travel query.
    Query(TimeTravelQuery),
    /// Insert a freshly minted object.
    Insert(Object),
    /// Logically delete a live object by id.
    Delete(ObjectId),
}

/// Shape of a mixed stream.
#[derive(Debug, Clone, Copy)]
pub struct MixedSpec {
    /// Fraction of operations that are writes (insert or delete);
    /// the paper's workloads are read-heavy, default 0.05.
    pub write_fraction: f64,
    /// Fraction of writes that are inserts (the rest are deletes),
    /// default 0.7 so the collection slowly grows.
    pub insert_fraction: f64,
    /// Query shape for the read operations.
    pub query: WorkloadSpec,
}

impl Default for MixedSpec {
    fn default() -> Self {
        MixedSpec {
            write_fraction: 0.05,
            insert_fraction: 0.7,
            query: WorkloadSpec::default(),
        }
    }
}

/// Generates `n` interleaved operations over `coll`.
///
/// Deterministic per `(spec, n, seed)`. Inserted ids start at
/// `coll.len()` and increase; a delete always refers to an id that is
/// alive at that point in the stream. Queries are pre-generated from the
/// *base* collection (they stay valid because deletes never make them
/// ill-formed, only change their answers).
pub fn mixed_stream(coll: &Collection, spec: &MixedSpec, n: usize, seed: u64) -> Vec<Op> {
    assert!((0.0..=1.0).contains(&spec.write_fraction));
    assert!((0.0..=1.0).contains(&spec.insert_fraction));
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5E57_1A17);
    let reads = ((n as f64) * (1.0 - spec.write_fraction)).round() as usize;
    let mut queries = workload(coll, &spec.query, reads, seed);
    queries.reverse(); // pop() consumes them in generation order

    let domain = coll.domain();
    let span = domain.end - domain.st;
    // Sample descriptions from the base frequency table: an element's
    // draw weight is its document frequency, matching the corpus shape.
    let weighted: Vec<(ElemId, u64)> = coll
        .freqs()
        .iter()
        .enumerate()
        .filter(|(_, &f)| f > 0)
        .map(|(e, &f)| (e as ElemId, f as u64))
        .collect();
    let total_weight: u64 = weighted.iter().map(|(_, w)| w).sum();
    let desc_len = if coll.is_empty() {
        3
    } else {
        (coll.objects().iter().map(|o| o.desc.len()).sum::<usize>() / coll.len()).max(1)
    };

    let mut next_id = coll.len() as ObjectId;
    // Ids currently alive: all base ids plus not-yet-deleted inserts.
    let mut alive: Vec<ObjectId> = (0..coll.len() as ObjectId).collect();

    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let want_write = rng.gen_bool(spec.write_fraction) || queries.is_empty();
        if !want_write {
            if let Some(q) = queries.pop() {
                out.push(Op::Query(q));
                continue;
            }
        }
        let want_insert =
            rng.gen_bool(spec.insert_fraction) || alive.is_empty() || total_weight == 0;
        if want_insert && total_weight > 0 {
            let st = domain.st + rng.gen_range(0..=span);
            let max_len = (span / 64).max(1);
            let end = (st + rng.gen_range(0..=max_len)).min(domain.end).max(st);
            let mut desc = Vec::with_capacity(desc_len);
            for _ in 0..desc_len {
                let mut pick = rng.gen_range(0..total_weight);
                for &(e, w) in &weighted {
                    if pick < w {
                        desc.push(e);
                        break;
                    }
                    pick -= w;
                }
            }
            if desc.is_empty() {
                continue;
            }
            let o = Object::new(next_id, st, end, desc);
            alive.push(next_id);
            next_id += 1;
            out.push(Op::Insert(o));
        } else if !alive.is_empty() {
            let victim = alive.swap_remove(rng.gen_range(0..alive.len()));
            out.push(Op::Delete(victim));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use tir_core::{BruteForce, TemporalIrIndex};

    fn coll() -> Collection {
        let mut objects = Vec::new();
        for i in 0..300u32 {
            let st = (i as u64 * 17) % 1000;
            objects.push(Object::new(i, st, st + 40, vec![i % 11, 11 + i % 5]));
        }
        Collection::new(objects)
    }

    #[test]
    fn stream_is_deterministic() {
        let c = coll();
        let spec = MixedSpec::default();
        assert_eq!(
            mixed_stream(&c, &spec, 200, 9),
            mixed_stream(&c, &spec, 200, 9)
        );
        assert_ne!(
            mixed_stream(&c, &spec, 200, 9),
            mixed_stream(&c, &spec, 200, 10)
        );
    }

    #[test]
    fn stream_replays_cleanly_against_oracle() {
        let c = coll();
        let spec = MixedSpec {
            write_fraction: 0.3,
            insert_fraction: 0.6,
            query: WorkloadSpec {
                num_elems: 2,
                ..Default::default()
            },
        };
        let ops = mixed_stream(&c, &spec, 500, 3);
        assert_eq!(ops.len(), 500);
        let mut oracle = BruteForce::build(c.objects());
        let mut catalog: Vec<Object> = c.objects().to_vec();
        let mut seen_ids: HashSet<ObjectId> = (0..c.len() as u32).collect();
        let mut writes = 0usize;
        for op in &ops {
            match op {
                Op::Query(q) => {
                    let _ = oracle.answer(q);
                }
                Op::Insert(o) => {
                    writes += 1;
                    assert!(seen_ids.insert(o.id), "id {} minted twice", o.id);
                    assert!(!o.desc.is_empty());
                    oracle.insert(o);
                    catalog.push(o.clone());
                }
                Op::Delete(id) => {
                    writes += 1;
                    let o = catalog
                        .iter()
                        .find(|o| o.id == *id)
                        .expect("delete of unknown id");
                    assert!(oracle.delete(&o.clone()), "delete of dead id {id}");
                }
            }
        }
        // Write fraction is approximately honoured.
        let frac = writes as f64 / ops.len() as f64;
        assert!((0.15..=0.45).contains(&frac), "write fraction {frac}");
    }

    #[test]
    fn fresh_ids_start_after_base_collection() {
        let c = coll();
        let ops = mixed_stream(&c, &MixedSpec::default(), 300, 5);
        for op in &ops {
            if let Op::Insert(o) = op {
                assert!(o.id >= c.len() as u32);
            }
        }
    }

    #[test]
    fn all_writes_when_fraction_is_one() {
        let c = coll();
        let spec = MixedSpec {
            write_fraction: 1.0,
            insert_fraction: 0.5,
            ..Default::default()
        };
        let ops = mixed_stream(&c, &spec, 100, 1);
        assert!(ops.iter().all(|op| !matches!(op, Op::Query(_))));
    }
}
