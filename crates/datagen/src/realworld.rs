//! Shape-matched stand-ins for the paper's real datasets (Table 3).
//!
//! The originals — ECLOG (e-commerce session logs) and a WIKIPEDIA
//! revision crawl — are not redistributable here, so we synthesize
//! collections reproducing the shape statistics the evaluation depends
//! on: cardinality, domain span, average interval duration as a fraction
//! of the domain, dictionary size, average description size, and the
//! skew of the element-frequency distribution (Figure 7 shows both are
//! heavy-tailed). A `scale` factor shrinks cardinality/dictionary while
//! keeping those ratios, so laptop-scale runs preserve the comparative
//! behaviour of the indexes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dist::Zipf;
use tir_core::{Collection, Object};

/// Shape parameters of a Table 3 dataset.
#[derive(Debug, Clone, Copy)]
pub struct RealShape {
    /// Dataset display name.
    pub name: &'static str,
    /// Objects at scale 1.0.
    pub cardinality: usize,
    /// Raw time-domain span in seconds at scale 1.0.
    pub domain: u64,
    /// Average interval duration as a fraction of the domain.
    pub avg_duration_frac: f64,
    /// Dictionary size at scale 1.0.
    pub dict_size: u32,
    /// Average description size.
    pub avg_desc: usize,
    /// Zipf exponent of the element-frequency distribution.
    pub zeta: f64,
}

/// ECLOG: 300,311 sessions over ~15.8M seconds, avg duration 8.4% of the
/// domain, 178,478 elements, avg |d| = 72.
pub const ECLOG: RealShape = RealShape {
    name: "ECLOG",
    cardinality: 300_311,
    domain: 15_807_599,
    avg_duration_frac: 0.084,
    dict_size: 178_478,
    avg_desc: 72,
    zeta: 1.4,
};

/// WIKIPEDIA: 1,672,662 revisions over ~126.2M seconds, avg duration 5.2%
/// of the domain, 927,283 terms, avg |d| = 367.
pub const WIKIPEDIA: RealShape = RealShape {
    name: "WIKIPEDIA",
    cardinality: 1_672_662,
    domain: 126_230_391,
    avg_duration_frac: 0.052,
    dict_size: 927_283,
    avg_desc: 367,
    zeta: 1.5,
};

/// Generates a collection with the given shape at `scale`
/// (`0 < scale <= 1`); description size is also scaled (floored at 4) to
/// keep build sizes proportional.
pub fn generate_shape(shape: &RealShape, scale: f64, seed: u64) -> Collection {
    assert!(scale > 0.0 && scale <= 1.0);
    let n = ((shape.cardinality as f64 * scale).round() as usize).max(10);
    let domain = ((shape.domain as f64 * scale).round() as u64).max(1000);
    let dict = ((shape.dict_size as f64 * scale).round() as u32).max(16);
    let desc_size =
        ((shape.avg_desc as f64 * scale.sqrt()).round() as usize).clamp(4, shape.avg_desc);

    let mut rng = StdRng::seed_from_u64(seed ^ shape.cardinality as u64);
    let element = Zipf::new(dict as u64, shape.zeta);
    // Durations: exponential-ish mixture matching the heavy tail of
    // Figure 7 — mostly short sessions with a long tail — tuned so the
    // mean lands near avg_duration_frac * domain.
    let mean_dur = (shape.avg_duration_frac * domain as f64).max(1.0);

    let mut objects = Vec::with_capacity(n);
    for id in 0..n {
        // Start uniform over the domain (sessions/revisions arrive all
        // the time), duration exponential with the target mean, capped.
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        let dur = ((-u.ln()) * mean_dur).round() as u64;
        let dur = dur.clamp(1, domain - 1);
        let st = rng.gen_range(0..domain - dur.min(domain - 1));
        let end = (st + dur - 1).min(domain - 1);

        let mut seen = std::collections::HashSet::with_capacity(desc_size * 2);
        let mut desc = Vec::with_capacity(desc_size);
        let mut tries = 0;
        while desc.len() < desc_size && tries < desc_size * 20 {
            let e = (element.sample(&mut rng) - 1) as u32;
            if seen.insert(e) {
                desc.push(e);
            }
            tries += 1;
        }
        while desc.len() < desc_size {
            let e = rng.gen_range(0..dict);
            if seen.insert(e) {
                desc.push(e);
            }
        }
        objects.push(Object::new(id as u32, st, end, desc));
    }
    Collection::new(objects)
}

/// ECLOG-shaped collection at `scale`.
pub fn eclog_like(scale: f64, seed: u64) -> Collection {
    generate_shape(&ECLOG, scale, seed)
}

/// WIKIPEDIA-shaped collection at `scale`.
pub fn wikipedia_like(scale: f64, seed: u64) -> Collection {
    generate_shape(&WIKIPEDIA, scale, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eclog_shape_matches_table3_ratios() {
        let coll = eclog_like(0.02, 1);
        let s = coll.stats();
        assert!(s.cardinality >= 5000, "cardinality {}", s.cardinality);
        // Avg duration % within a factor ~2 of the 8.4% target.
        assert!(
            s.avg_duration_pct > 4.0 && s.avg_duration_pct < 17.0,
            "avg duration {}%",
            s.avg_duration_pct
        );
        assert!(s.avg_desc >= 4.0);
    }

    #[test]
    fn wikipedia_longer_dictionary_than_eclog() {
        let w = wikipedia_like(0.01, 1);
        let e = eclog_like(0.01, 1);
        assert!(w.stats().dictionary_size > e.stats().dictionary_size);
        assert!(w.len() > e.len());
    }

    #[test]
    fn frequencies_are_skewed() {
        let coll = eclog_like(0.01, 1);
        let mut freqs: Vec<u32> = coll.freqs().to_vec();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        let top: u64 = freqs.iter().take(10).map(|&f| f as u64).sum();
        let total: u64 = freqs.iter().map(|&f| f as u64).sum();
        assert!(
            top as f64 / total as f64 > 0.05,
            "top-10 elements carry {}% of postings",
            100.0 * top as f64 / total as f64
        );
    }

    #[test]
    fn deterministic() {
        let a = eclog_like(0.005, 9);
        let b = eclog_like(0.005, 9);
        assert_eq!(a.objects()[..20], b.objects()[..20]);
    }
}
