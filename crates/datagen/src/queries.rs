//! Query workload generation following Section 5.1 of the paper.
//!
//! Four experimental knobs are covered: query interval extent (including
//! stabbing and the 100% IR-containment extreme), number of query
//! elements |q.d|, element frequency bins, and result selectivity bins.
//! Except for the deliberately-empty bin, workloads guarantee non-empty
//! results by seeding each query from a random object that matches it.

use rand::rngs::StdRng;
use rand::{seq::SliceRandom, Rng, SeedableRng};

use tir_core::{Collection, ElemId, TemporalIrIndex, TimeTravelQuery};

/// Query interval extent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Extent {
    /// A single timestamp (`q.tst == q.tend`), the stabbing query of
    /// Berberich et al.
    Stabbing,
    /// Fraction of the domain span (1.0 = the entire domain, i.e. a pure
    /// IR containment query).
    Fraction(f64),
}

/// Where the query elements come from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ElemSource {
    /// Random subset of the seed object's description (the default
    /// workload: element frequencies follow the collection distribution).
    SeedObject,
    /// Elements whose document frequency (in % of the cardinality) lies
    /// in `(lo_pct, hi_pct]`; seeded from objects containing enough such
    /// elements so results stay non-empty.
    FreqBin {
        /// Lower bound, exclusive, in percent (use 0.0 for `*`).
        lo_pct: f64,
        /// Upper bound, inclusive, in percent (use 100.0 for `*`).
        hi_pct: f64,
    },
}

/// A workload specification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadSpec {
    /// Query interval extent (paper default: 0.1% of the domain).
    pub extent: Extent,
    /// Number of query elements (paper default: 3).
    pub num_elems: usize,
    /// Element source.
    pub source: ElemSource,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            extent: Extent::Fraction(0.001),
            num_elems: 3,
            source: ElemSource::SeedObject,
        }
    }
}

/// Generates `n` queries for `spec`, each guaranteed to have at least one
/// result (the seed object). Returns fewer than `n` only if the
/// collection cannot support the spec at all (e.g. no object has enough
/// in-bin elements).
pub fn workload(
    coll: &Collection,
    spec: &WorkloadSpec,
    n: usize,
    seed: u64,
) -> Vec<TimeTravelQuery> {
    assert!(spec.num_elems >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let domain = coll.domain();
    let span = domain.end - domain.st;

    // Candidate seed objects and, per object, the element pool to draw from.
    let bin_filter: Option<(f64, f64)> = match spec.source {
        ElemSource::SeedObject => None,
        ElemSource::FreqBin { lo_pct, hi_pct } => Some((lo_pct, hi_pct)),
    };
    let in_bin = |e: ElemId| -> bool {
        match bin_filter {
            None => true,
            Some((lo, hi)) => {
                let pct = 100.0 * coll.freq(e) as f64 / coll.len().max(1) as f64;
                pct > lo && pct <= hi
            }
        }
    };
    let candidates: Vec<u32> = coll
        .objects()
        .iter()
        .filter(|o| o.desc.iter().filter(|&&e| in_bin(e)).count() >= spec.num_elems)
        .map(|o| o.id)
        .collect();
    if candidates.is_empty() {
        return Vec::new();
    }

    let extent_len = match spec.extent {
        Extent::Stabbing => 0u64,
        Extent::Fraction(f) => ((span as f64) * f).round() as u64,
    };

    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let oid = candidates[rng.gen_range(0..candidates.len())];
        let o = coll.get(oid);
        // Anchor inside the object's lifespan, window around it.
        let anchor = rng.gen_range(o.interval.st..=o.interval.end);
        let lo_off = if extent_len == 0 {
            0
        } else {
            rng.gen_range(0..=extent_len)
        };
        let q_st = anchor.saturating_sub(lo_off).max(domain.st);
        let q_end = (q_st + extent_len).min(domain.end);
        let q_st = q_st.min(q_end);

        let mut pool: Vec<ElemId> = o.desc.iter().copied().filter(|&e| in_bin(e)).collect();
        pool.shuffle(&mut rng);
        pool.truncate(spec.num_elems);
        out.push(TimeTravelQuery::new(q_st, q_end, pool));
    }
    out
}

/// The selectivity bins of Section 5.1, as `(lo_pct, hi_pct]` over the
/// result size in % of the cardinality; the first bin is exactly-zero.
pub const SELECTIVITY_BINS: [(f64, f64); 6] = [
    (-1.0, 0.0),
    (0.0, 0.001),
    (0.001, 0.01),
    (0.01, 0.1),
    (0.1, 1.0),
    (1.0, 10.0),
];

/// Human-readable labels for [`SELECTIVITY_BINS`].
pub const SELECTIVITY_LABELS: [&str; 6] = [
    "0",
    "(0,1e-3]",
    "(1e-3,1e-2]",
    "(1e-2,1e-1]",
    "(1e-1,1]",
    "(1,10]",
];

/// Generates a mixed pool of queries (varying extent, |q.d| and element
/// rarity) and buckets them by measured selectivity using `index` as the
/// measuring device. Returns one vector per [`SELECTIVITY_BINS`] entry,
/// each with at most `per_bin` queries.
pub fn selectivity_binned(
    coll: &Collection,
    index: &dyn TemporalIrIndex,
    per_bin: usize,
    seed: u64,
) -> Vec<Vec<TimeTravelQuery>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut bins: Vec<Vec<TimeTravelQuery>> = vec![Vec::new(); SELECTIVITY_BINS.len()];
    let n = coll.len().max(1) as f64;
    let extents = [0.0001, 0.001, 0.01, 0.05, 0.1, 0.5];
    let mut attempts = 0usize;
    let budget = per_bin * SELECTIVITY_BINS.len() * 60;
    while bins.iter().any(|b| b.len() < per_bin) && attempts < budget {
        attempts += 1;
        let spec = WorkloadSpec {
            extent: Extent::Fraction(extents[rng.gen_range(0..extents.len())]),
            num_elems: rng.gen_range(1..=5),
            source: ElemSource::SeedObject,
        };
        let make_empty = rng.gen_bool(0.2);
        let q = if make_empty {
            // Random elements + random window: usually empty.
            let domain = coll.domain();
            let span = domain.end - domain.st;
            let len = ((span as f64) * 0.0001) as u64;
            let st = domain.st + rng.gen_range(0..=span.saturating_sub(len));
            let elems: Vec<ElemId> = (0..spec.num_elems)
                .map(|_| rng.gen_range(0..coll.dict_size() as u32))
                .collect();
            TimeTravelQuery::new(st, st + len, elems)
        } else {
            match workload(coll, &spec, 1, rng.gen()).pop() {
                Some(q) => q,
                None => continue,
            }
        };
        let sel_pct = 100.0 * index.query(&q).len() as f64 / n;
        for (b, &(lo, hi)) in SELECTIVITY_BINS.iter().enumerate() {
            if sel_pct > lo && sel_pct <= hi && bins[b].len() < per_bin {
                bins[b].push(q);
                break;
            }
        }
    }
    bins
}

#[cfg(test)]
mod tests {
    use super::*;
    use tir_core::{BruteForce, Object};

    fn coll() -> Collection {
        let mut objects = Vec::new();
        for i in 0..200u32 {
            let st = (i as u64 * 13) % 900;
            let desc = vec![i % 7, 7 + i % 5, 12 + i % 3];
            objects.push(Object::new(i, st, st + 30, desc));
        }
        Collection::new(objects)
    }

    #[test]
    fn seeded_queries_are_nonempty() {
        let c = coll();
        let bf = BruteForce::build(c.objects());
        for num_elems in 1..=3 {
            for extent in [
                Extent::Stabbing,
                Extent::Fraction(0.001),
                Extent::Fraction(0.1),
            ] {
                let spec = WorkloadSpec {
                    extent,
                    num_elems,
                    source: ElemSource::SeedObject,
                };
                let qs = workload(&c, &spec, 40, 11);
                assert_eq!(qs.len(), 40);
                for q in &qs {
                    assert!(!bf.answer(q).is_empty(), "empty result for {q:?}");
                    assert_eq!(q.elems.len(), num_elems);
                }
            }
        }
    }

    #[test]
    fn extent_controls_window_length() {
        let c = coll();
        let spec = WorkloadSpec {
            extent: Extent::Fraction(0.5),
            ..Default::default()
        };
        let span = c.domain().end - c.domain().st;
        for q in workload(&c, &spec, 20, 3) {
            assert!(q.interval.duration() <= span / 2 + 2);
        }
        let stab = WorkloadSpec {
            extent: Extent::Stabbing,
            ..Default::default()
        };
        for q in workload(&c, &stab, 20, 3) {
            assert_eq!(q.interval.st, q.interval.end);
        }
    }

    #[test]
    fn freq_bins_restrict_elements() {
        let c = coll();
        // Elements 0..7 appear in ~200/7 ≈ 28 objects each → ~14%;
        // a (10, 100] bin must exclude nothing there but a (0, 10] bin
        // must exclude them.
        let spec = WorkloadSpec {
            extent: Extent::Fraction(0.1),
            num_elems: 1,
            source: ElemSource::FreqBin {
                lo_pct: 10.0,
                hi_pct: 100.0,
            },
        };
        for q in workload(&c, &spec, 30, 5) {
            for &e in &q.elems {
                let pct = 100.0 * c.freq(e) as f64 / c.len() as f64;
                assert!(pct > 10.0, "element {e} has freq {pct}%");
            }
        }
    }

    #[test]
    fn impossible_bin_returns_empty() {
        let c = coll();
        let spec = WorkloadSpec {
            extent: Extent::Fraction(0.1),
            num_elems: 2,
            source: ElemSource::FreqBin {
                lo_pct: 99.0,
                hi_pct: 100.0,
            },
        };
        assert!(workload(&c, &spec, 10, 1).is_empty());
    }

    #[test]
    fn selectivity_bins_contain_correct_selectivities() {
        let c = coll();
        let bf = BruteForce::build(c.objects());
        let bins = selectivity_binned(&c, &bf, 5, 17);
        for (b, qs) in bins.iter().enumerate() {
            let (lo, hi) = SELECTIVITY_BINS[b];
            for q in qs {
                let pct = 100.0 * bf.answer(q).len() as f64 / c.len() as f64;
                assert!(pct > lo && pct <= hi, "bin {b}: {pct}% outside ({lo},{hi}]");
            }
        }
        // The zero bin must be fillable on this tiny dictionary.
        assert!(!bins[0].is_empty());
    }

    #[test]
    fn deterministic_per_seed() {
        let c = coll();
        let spec = WorkloadSpec::default();
        assert_eq!(workload(&c, &spec, 10, 42), workload(&c, &spec, 10, 42));
        assert_ne!(workload(&c, &spec, 10, 42), workload(&c, &spec, 10, 43));
    }
}
