//! Synthetic collection generator following Table 4 of the paper.
//!
//! * interval **duration** is zipfian with exponent `alpha` — small
//!   `alpha` makes most intervals long, large `alpha` makes most of them
//!   length 1;
//! * the interval **middle point** is normal around the domain center
//!   with deviation `sigma`;
//! * **element frequencies** are zipfian with exponent `zeta` over the
//!   dictionary (element id = rank − 1);
//! * every description has exactly `desc_size` distinct elements.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dist::{Normal, Zipf};
use tir_core::{Collection, Object};

/// Parameters of the synthetic generator (Table 4). Defaults are the
/// paper's bold values scaled to the defaults used by our harness.
#[derive(Debug, Clone, Copy)]
pub struct SyntheticConfig {
    /// Number of objects.
    pub cardinality: usize,
    /// Time domain size (timestamps are `0..domain`).
    pub domain: u64,
    /// Zipf exponent of the interval duration (paper: 1.01–1.8, def 1.2).
    pub alpha: f64,
    /// Std-dev of the interval middle position (paper: 10K–10M, def 1M
    /// for the 128M domain — i.e. about 1/128 of the domain).
    pub sigma: u64,
    /// Dictionary size (paper: 10K–1M, default 100K).
    pub dict_size: u32,
    /// Description size |d| (paper: 5–500, default 10).
    pub desc_size: usize,
    /// Zipf exponent of element frequencies (paper: 1.0–2.0, def 1.5).
    pub zeta: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig {
            cardinality: 1_000_000,
            domain: 128_000_000,
            alpha: 1.2,
            sigma: 1_000_000,
            dict_size: 100_000,
            desc_size: 10,
            zeta: 1.5,
            seed: 0xC0FFEE,
        }
    }
}

impl SyntheticConfig {
    /// Scales cardinality, domain, sigma and dictionary by `s` (keeping
    /// shape parameters), for laptop-scale runs of the paper's sweeps.
    pub fn scaled(mut self, s: f64) -> Self {
        assert!(s > 0.0);
        self.cardinality = ((self.cardinality as f64 * s).round() as usize).max(1);
        self.domain = ((self.domain as f64 * s).round() as u64).max(16);
        self.sigma = ((self.sigma as f64 * s).round() as u64).max(1);
        self.dict_size = ((self.dict_size as f64 * s).round() as u32).max(4);
        self
    }
}

/// Generates a collection per the configuration.
pub fn generate(config: &SyntheticConfig) -> Collection {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let duration = Zipf::new(config.domain.max(1), config.alpha);
    let position = Normal::new(config.domain as f64 / 2.0, config.sigma as f64);
    let element = Zipf::new(config.dict_size as u64, config.zeta);

    let mut objects = Vec::with_capacity(config.cardinality);
    for id in 0..config.cardinality {
        let dur = duration.sample(&mut rng).min(config.domain);
        let mid = position.sample(&mut rng).round();
        let mid = mid.clamp(0.0, (config.domain - 1) as f64) as u64;
        let half = dur / 2;
        let st = mid.saturating_sub(half);
        let end = (st + dur - 1).min(config.domain - 1);
        let st = st.min(end);

        let desc = sample_description(&element, config.desc_size, config.dict_size, &mut rng);
        objects.push(Object::new(id as u32, st, end, desc));
    }
    Collection::new(objects)
}

/// Draws `k` *distinct* elements from the zipfian element distribution;
/// falls back to uniform fill if the skew makes distinct draws too rare.
fn sample_description<R: Rng + ?Sized>(
    element: &Zipf,
    k: usize,
    dict_size: u32,
    rng: &mut R,
) -> Vec<u32> {
    let k = k.min(dict_size as usize);
    let mut seen = std::collections::HashSet::with_capacity(k * 2);
    let mut desc: Vec<u32> = Vec::with_capacity(k);
    let mut tries = 0usize;
    while desc.len() < k && tries < k * 20 {
        let e = (element.sample(rng) - 1) as u32;
        if seen.insert(e) {
            desc.push(e);
        }
        tries += 1;
    }
    // Fill any shortfall with uniform draws.
    while desc.len() < k {
        let e = rng.gen_range(0..dict_size);
        if seen.insert(e) {
            desc.push(e);
        }
    }
    desc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SyntheticConfig {
        SyntheticConfig {
            cardinality: 2000,
            domain: 100_000,
            alpha: 1.2,
            sigma: 10_000,
            dict_size: 500,
            desc_size: 6,
            zeta: 1.4,
            seed: 7,
        }
    }

    #[test]
    fn respects_cardinality_and_bounds() {
        let coll = generate(&small());
        assert_eq!(coll.len(), 2000);
        for o in coll.objects() {
            assert!(o.interval.end < 100_000);
            assert_eq!(o.desc.len(), 6);
            assert!(o.desc.iter().all(|&e| e < 500));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(&small());
        let b = generate(&small());
        assert_eq!(a.objects()[..50], b.objects()[..50]);
        let c = generate(&SyntheticConfig { seed: 8, ..small() });
        assert_ne!(a.objects()[..50], c.objects()[..50]);
    }

    #[test]
    fn alpha_controls_duration() {
        let long = generate(&SyntheticConfig {
            alpha: 1.01,
            ..small()
        });
        let short = generate(&SyntheticConfig {
            alpha: 1.8,
            ..small()
        });
        assert!(long.stats().avg_duration > short.stats().avg_duration);
    }

    #[test]
    fn zeta_controls_skew() {
        let flat = generate(&SyntheticConfig {
            zeta: 1.0,
            ..small()
        });
        let skewed = generate(&SyntheticConfig {
            zeta: 2.0,
            ..small()
        });
        // Max frequency rises with skew.
        let max_flat = flat.freqs().iter().max().copied().unwrap();
        let max_skew = skewed.freqs().iter().max().copied().unwrap();
        assert!(max_skew > max_flat, "{max_skew} vs {max_flat}");
    }

    #[test]
    fn sigma_controls_spread() {
        let narrow = generate(&SyntheticConfig {
            sigma: 100,
            ..small()
        });
        let wide = generate(&SyntheticConfig {
            sigma: 30_000,
            ..small()
        });
        let spread = |c: &Collection| {
            let mids: Vec<f64> = c
                .objects()
                .iter()
                .map(|o| (o.interval.st + o.interval.end) as f64 / 2.0)
                .collect();
            let m = mids.iter().sum::<f64>() / mids.len() as f64;
            mids.iter().map(|x| (x - m).powi(2)).sum::<f64>() / mids.len() as f64
        };
        assert!(spread(&wide) > spread(&narrow));
    }

    #[test]
    fn scaled_shrinks() {
        let cfg = SyntheticConfig::default().scaled(0.001);
        assert_eq!(cfg.cardinality, 1000);
        assert_eq!(cfg.domain, 128_000);
    }
}
