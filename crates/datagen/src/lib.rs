//! # tir-datagen
//!
//! Workload generation for the temporal-IR evaluation:
//!
//! * [`synthetic`] — the Table 4 generator (zipfian durations and element
//!   frequencies, normal interval positions);
//! * [`realworld`] — shape-matched stand-ins for the ECLOG and WIKIPEDIA
//!   datasets of Table 3;
//! * [`queries`] — time-travel query workloads over the four experimental
//!   knobs (extent, |q.d|, element frequency bins, selectivity bins) with
//!   guaranteed non-empty results;
//! * [`mixed`] — interleaved read/write operation streams for the
//!   serving layer (`tir-serve`) and its stress tests;
//! * [`dist`] — the in-house zipf and normal samplers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dist;
pub mod mixed;
pub mod queries;
pub mod realworld;
pub mod synthetic;

pub use mixed::{mixed_stream, MixedSpec, Op};
pub use queries::{
    selectivity_binned, workload, ElemSource, Extent, WorkloadSpec, SELECTIVITY_BINS,
    SELECTIVITY_LABELS,
};
pub use realworld::{eclog_like, generate_shape, wikipedia_like, RealShape, ECLOG, WIKIPEDIA};
pub use synthetic::{generate, SyntheticConfig};
