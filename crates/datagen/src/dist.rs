//! Distribution samplers used by the synthetic generator (Table 4 of the
//! paper): zipfian interval durations and element frequencies, normal
//! interval positions.
//!
//! Implemented in-house to keep the dependency set minimal: the zipfian
//! sampler uses the continuous inverse-CDF approximation of a bounded
//! power law (exact enough for workload shaping), the normal sampler uses
//! Box–Muller.

use rand::Rng;

/// Bounded zipf-like sampler over ranks `1..=n` with exponent `alpha`:
/// `P(k) ∝ k^{-alpha}`.
///
/// Uses the continuous inverse CDF of the power-law density, which for
/// `alpha = 1` degenerates to `x = n^u`. Sampled ranks are clamped to
/// `[1, n]`.
#[derive(Debug, Clone, Copy)]
pub struct Zipf {
    n: u64,
    alpha: f64,
}

impl Zipf {
    /// Creates a sampler over `1..=n` (requires `n >= 1`, `alpha >= 0`).
    pub fn new(n: u64, alpha: f64) -> Self {
        assert!(n >= 1);
        assert!(alpha >= 0.0);
        Zipf { n, alpha }
    }

    /// Draws one rank in `1..=n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.n == 1 {
            return 1;
        }
        let u: f64 = rng.gen_range(0.0..1.0);
        let w = self.n as f64;
        let x = if (self.alpha - 1.0).abs() < 1e-9 {
            // CDF(x) = ln(x)/ln(w)  =>  x = w^u
            w.powf(u)
        } else {
            let e = 1.0 - self.alpha;
            // CDF(x) = (x^e - 1)/(w^e - 1)
            (1.0 + u * (w.powf(e) - 1.0)).powf(1.0 / e)
        };
        (x.round() as u64).clamp(1, self.n)
    }
}

/// Normal sampler via Box–Muller.
#[derive(Debug, Clone, Copy)]
pub struct Normal {
    mean: f64,
    sigma: f64,
}

impl Normal {
    /// Creates a sampler with the given mean and standard deviation.
    pub fn new(mean: f64, sigma: f64) -> Self {
        assert!(sigma >= 0.0);
        Normal { mean, sigma }
    }

    /// Draws one value.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        self.mean + self.sigma * z
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zipf_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for alpha in [0.5, 1.0, 1.5, 2.0] {
            let z = Zipf::new(1000, alpha);
            for _ in 0..2000 {
                let k = z.sample(&mut rng);
                assert!((1..=1000).contains(&k));
            }
        }
    }

    #[test]
    fn larger_alpha_concentrates_on_small_ranks() {
        let mean = |alpha: f64, seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let z = Zipf::new(10_000, alpha);
            (0..5000).map(|_| z.sample(&mut rng) as f64).sum::<f64>() / 5000.0
        };
        let low = mean(1.01, 2);
        let high = mean(1.8, 2);
        assert!(
            high < low,
            "alpha=1.8 mean {high} should be below alpha=1.01 mean {low}"
        );
    }

    #[test]
    fn zipf_rank_one_dominates_when_skewed() {
        let mut rng = StdRng::seed_from_u64(3);
        let z = Zipf::new(100, 2.0);
        let ones = (0..4000).filter(|_| z.sample(&mut rng) == 1).count();
        assert!(ones > 1200, "rank 1 drawn {ones}/4000 times");
    }

    #[test]
    fn zipf_unit_domain() {
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(Zipf::new(1, 1.5).sample(&mut rng), 1);
    }

    #[test]
    fn normal_mean_and_spread() {
        let mut rng = StdRng::seed_from_u64(5);
        let nrm = Normal::new(100.0, 10.0);
        let xs: Vec<f64> = (0..8000).map(|_| nrm.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((mean - 100.0).abs() < 1.0, "mean {mean}");
        assert!((var.sqrt() - 10.0).abs() < 1.0, "sd {}", var.sqrt());
    }

    #[test]
    fn normal_zero_sigma_is_constant() {
        let mut rng = StdRng::seed_from_u64(6);
        let nrm = Normal::new(42.0, 0.0);
        assert_eq!(nrm.sample(&mut rng), 42.0);
    }
}
