//! Property tests: generator outputs must satisfy the documented
//! invariants for arbitrary configurations, and workloads must honor
//! their specifications.

use proptest::prelude::*;
use tir_core::BruteForce;
use tir_datagen::{generate, workload, ElemSource, Extent, SyntheticConfig, WorkloadSpec};

fn arb_config() -> impl Strategy<Value = SyntheticConfig> {
    (
        10usize..400,
        1_000u64..1_000_000,
        1.01f64..2.0,
        1u64..50_000,
        8u32..2_000,
        1usize..12,
        1.0f64..2.0,
        any::<u64>(),
    )
        .prop_map(
            |(cardinality, domain, alpha, sigma, dict_size, desc_size, zeta, seed)| {
                SyntheticConfig {
                    cardinality,
                    domain,
                    alpha,
                    sigma,
                    dict_size,
                    desc_size,
                    zeta,
                    seed,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn generated_collections_satisfy_invariants(cfg in arb_config()) {
        let coll = generate(&cfg);
        prop_assert_eq!(coll.len(), cfg.cardinality);
        for (i, o) in coll.objects().iter().enumerate() {
            prop_assert_eq!(o.id as usize, i);
            prop_assert!(o.interval.st <= o.interval.end);
            prop_assert!(o.interval.end < cfg.domain);
            prop_assert_eq!(o.desc.len(), cfg.desc_size.min(cfg.dict_size as usize));
            prop_assert!(o.desc.windows(2).all(|w| w[0] < w[1]), "sorted unique");
            prop_assert!(o.desc.iter().all(|&e| e < cfg.dict_size));
        }
    }

    #[test]
    fn workloads_respect_spec_and_are_nonempty(
        cfg in arb_config(),
        num_elems in 1usize..4,
        extent_pick in 0usize..4,
        seed in any::<u64>(),
    ) {
        let coll = generate(&cfg);
        let extent = [Extent::Stabbing, Extent::Fraction(0.001), Extent::Fraction(0.1), Extent::Fraction(1.0)][extent_pick];
        let spec = WorkloadSpec { extent, num_elems, source: ElemSource::SeedObject };
        let qs = workload(&coll, &spec, 8, seed);
        if cfg.desc_size.min(cfg.dict_size as usize) >= num_elems {
            prop_assert_eq!(qs.len(), 8, "every object is a valid seed");
        }
        let oracle = BruteForce::build(coll.objects());
        let domain = coll.domain();
        for q in &qs {
            prop_assert_eq!(q.elems.len(), num_elems);
            prop_assert!(q.interval.st >= domain.st);
            prop_assert!(q.interval.end <= domain.end);
            prop_assert!(!oracle.answer(q).is_empty(), "seeded queries are non-empty");
        }
    }
}
