//! The mmap-serving acceptance test: a mapped snapshot answers
//! time-travel queries (a) in exact agreement with the `BruteForce`
//! oracle and (b) **without a single heap allocation** once the scratch
//! and output buffers are warmed — postings are read in place from the
//! mapped columns, never deserialized.
//!
//! The proof is a counting global allocator: the query loop runs with
//! allocation counting on, and the count must not move.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use tir_core::prelude::*;
use tir_datagen::SyntheticConfig;
use tir_invidx::{Dictionary, QueryScratch};
use tir_persist::{write_snapshot, LoadMode, SnapshotFile};

/// Counts allocations while armed. SeqCst: test-only bookkeeping.
struct CountingAlloc;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates allocation verbatim to `System`; the wrapper only
// bumps a counter and never touches the returned memory.
// analyze:allow(unsafe-code): test-only counting allocator delegating to System
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::SeqCst) {
            ALLOCS.fetch_add(1, Ordering::SeqCst);
        }
        // SAFETY: same contract as the caller's; forwarded unchanged.
        // analyze:allow(unsafe-code): verbatim delegation to the System allocator
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: ptr/layout come from the paired alloc above.
        // analyze:allow(unsafe-code): verbatim delegation to the System allocator
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn mapped_queries_allocate_nothing_and_match_oracle() {
    let mut cfg = SyntheticConfig::default().scaled(0.002);
    cfg.desc_size = 4;
    cfg.seed = 101;
    let coll = tir_datagen::generate(&cfg);
    let index = Tif::build(&coll);
    let oracle = BruteForce::build(coll.objects());

    let path = std::env::temp_dir().join(format!("tir-mapped-alloc-{}.tir", std::process::id()));
    let dict = Dictionary::new();
    write_snapshot(&path, 1, &dict, coll.objects(), &index).expect("write snapshot");

    let snap = SnapshotFile::open(&path, LoadMode::Mmap).expect("open mapped");
    assert!(snap.is_mapped(), "snapshot must serve from the mapping");
    let view = snap.postings().expect("postings view");

    // The query mix: varied extents and element counts.
    let d = coll.domain();
    let span = d.end - d.st;
    let mut queries = Vec::new();
    for k in 0..32u64 {
        let st = d.st + (span * k) / 40;
        let end = (st + span / (2 + k % 9)).min(d.end);
        let elems: Vec<u32> = (0..(1 + k % 4) as u32)
            .map(|j| (k as u32 * 3 + j) % 50)
            .collect();
        queries.push(TimeTravelQuery::new(st, end, elems));
    }

    let mut scratch = QueryScratch::default();
    let mut out = Vec::new();

    // Warm-up: grow the scratch plan/cands and the output to their
    // high-water marks (growth sinks are caller-owned and reused).
    for q in &queries {
        out.clear();
        view.query_into(q, &mut scratch, &mut out);
    }

    // Armed pass: identical queries, zero allocations allowed.
    ALLOCS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    for q in &queries {
        out.clear();
        view.query_into(q, &mut scratch, &mut out);
    }
    ARMED.store(false, Ordering::SeqCst);
    let allocs = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(
        allocs, 0,
        "mapped query path allocated {allocs} times — postings must be read in place"
    );

    // Correctness of the same path against the oracle.
    for q in &queries {
        out.clear();
        view.query_into(q, &mut scratch, &mut out);
        out.sort_unstable();
        assert_eq!(out, oracle.answer(q), "mapped view diverged on {q:?}");
    }

    drop(snap);
    let _ = std::fs::remove_file(&path);
}
