//! Crash-recovery property test: replay a `mixed_stream` write workload
//! through the durability engine with a kill point armed at every step
//! boundary, then recover and demand **exact** `BruteForce`-oracle
//! agreement at the recovered epoch.
//!
//! Each proptest case sweeps all seven kill points plus a no-kill
//! control over the same generated workload, so every (workload ×
//! crash-site) combination recovers or the test names the point that
//! broke. Recovery semantics checked:
//!
//! * the recovered epoch is **at least** the last acknowledged one and
//!   at most the last attempted one (a batch that was fsynced but died
//!   before the acknowledgment may legitimately complete);
//! * the recovered index answers a query grid exactly like the oracle
//!   fed the first `recovered_epoch` batches;
//! * the recovered directory accepts new batches and survives a second
//!   recovery (no lingering torn state).
//!
//! NOTE: the kill-point registry is process-global, so this binary holds
//! exactly one `#[test]` (the proptest macro expands to one fn); adding
//! another test that drives the engine here would race the armed state.

use std::collections::HashMap;
use std::fs;
use std::path::PathBuf;

use proptest::prelude::*;
use tir_core::prelude::*;
use tir_datagen::{mixed_stream, MixedSpec, Op, SyntheticConfig, WorkloadSpec};
use tir_invidx::Dictionary;
use tir_persist::kill::{self, ALL_KILL_POINTS};
use tir_persist::wal::WalOp;
use tir_persist::{Durability, DurabilityOptions, Persist, Recovered};

fn corpus(seed: u64) -> Collection {
    let mut cfg = SyntheticConfig::default().scaled(0.001);
    cfg.desc_size = 3;
    cfg.seed = seed;
    tir_datagen::generate(&cfg)
}

/// Groups a write-only mixed stream into WAL batches, resolving delete
/// ids against a running catalog mirror (deletes carry the object).
fn batches_for(coll: &Collection, seed: u64, batch: usize) -> Vec<Vec<WalOp>> {
    let spec = MixedSpec {
        write_fraction: 1.0,
        insert_fraction: 0.6,
        query: WorkloadSpec::default(),
    };
    let stream = mixed_stream(coll, &spec, 48, seed);
    let mut catalog: HashMap<u32, Object> =
        coll.objects().iter().map(|o| (o.id, o.clone())).collect();
    let mut batches = Vec::new();
    let mut cur = Vec::new();
    for op in stream {
        match op {
            Op::Insert(o) => {
                catalog.insert(o.id, o.clone());
                cur.push(WalOp::Insert(o));
            }
            Op::Delete(id) => {
                let o = catalog.remove(&id).expect("stream deletes only live ids");
                cur.push(WalOp::Delete(o));
            }
            Op::Query(_) => unreachable!("write_fraction = 1.0"),
        }
        if cur.len() == batch {
            batches.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        batches.push(cur);
    }
    batches
}

fn query_grid(coll: &Collection) -> Vec<TimeTravelQuery> {
    let d = coll.domain();
    let span = (d.end - d.st).max(1);
    let mut qs = Vec::new();
    for k in 0..8u64 {
        let st = d.st + span * k / 9;
        let end = (st + span / (1 + k % 5)).min(d.end);
        let elems: Vec<u32> = (0..(1 + k % 3) as u32)
            .map(|j| (k as u32 * 5 + j) % 40)
            .collect();
        qs.push(TimeTravelQuery::new(st, end, elems));
    }
    qs.push(TimeTravelQuery::new(d.st, d.end, vec![0]));
    qs
}

/// The oracle after the first `epochs` batches.
fn oracle_at(coll: &Collection, batches: &[Vec<WalOp>], epochs: u64) -> BruteForce {
    let mut bf = BruteForce::build(coll.objects());
    for b in &batches[..epochs as usize] {
        for op in b {
            match op {
                WalOp::Insert(o) => bf.insert(o),
                WalOp::Delete(o) => {
                    bf.delete(o);
                }
            }
        }
    }
    bf
}

fn assert_matches_oracle<I: TemporalIrIndex>(
    index: &I,
    oracle: &BruteForce,
    grid: &[TimeTravelQuery],
    ctx: &str,
) {
    for q in grid {
        let mut got = index.query(q);
        got.sort_unstable();
        assert_eq!(got, oracle.answer(q), "{ctx}: divergence on {q:?}");
    }
}

/// One full cycle: create → apply-until-crash → recover → verify →
/// append → recover again. `kill` is `None` for the control run.
fn run_case<I, F>(
    tag: &str,
    coll: &Collection,
    build: F,
    kill_at: Option<(kill::KillPoint, u64)>,
    seed: u64,
    batch: usize,
) where
    I: Persist + TemporalIrIndex,
    F: Fn(&Collection) -> I,
{
    let dir: PathBuf = std::env::temp_dir().join(format!(
        "tir-crash-{}-{tag}-{seed}-{batch}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);

    let mut index = build(coll);
    let dict = Dictionary::new();
    let opts = DurabilityOptions {
        segment_bytes: 512, // rotate every couple of batches
        snapshot_every: 3,  // exercise the snapshot path mid-run
    };
    let mut d =
        Durability::create(&dir, &index, &dict, coll.objects(), opts).expect("create data dir");

    let batches = batches_for(coll, seed, batch);
    kill::disarm();
    if let Some((point, countdown)) = kill_at {
        kill::arm(point, countdown);
    }

    let mut acked = 0u64;
    let mut attempted = 0u64;
    let mut crashed = false;
    for ops in &batches {
        attempted += 1;
        match d.apply_batch(&mut index, ops) {
            Ok(out) => acked = out.epoch,
            Err(e) => {
                assert!(kill::is_simulated_crash(&e), "real I/O error: {e}");
                crashed = true;
                break;
            }
        }
        // Flush-barrier behavior: periodic snapshots (a kill can also
        // land inside this path; the batch itself was already acked).
        if let Err(e) = d.maybe_snapshot(&index, &dict) {
            assert!(kill::is_simulated_crash(&e), "real I/O error: {e}");
            crashed = true;
            break;
        }
    }
    kill::disarm();
    assert!(
        crashed || kill_at.is_none() || acked == batches.len() as u64,
        "{tag}: armed point never fired and the run still fell short"
    );
    drop(d); // the "crash": all in-memory state is gone

    let r: Recovered<I> = Durability::recover(&dir, opts).expect("recover");
    assert!(
        r.epoch >= acked,
        "{tag}: recovered epoch {} lost acknowledged epoch {acked}",
        r.epoch
    );
    assert!(
        r.epoch <= attempted,
        "{tag}: recovered epoch {} past the last attempted {attempted}",
        r.epoch
    );
    let grid = query_grid(coll);
    let oracle = oracle_at(coll, &batches, r.epoch);
    assert_matches_oracle(&r.index, &oracle, &grid, tag);

    // The directory stays writable after recovery…
    let mut d2 = r.durability;
    let mut index2 = r.index;
    let extra = Object::new(4_000_000, 1, 5, vec![0, 1]);
    let out = d2
        .apply_batch(&mut index2, &[WalOp::Insert(extra.clone())])
        .expect("post-recovery append");
    assert_eq!(out.epoch, r.epoch + 1);
    drop(d2);

    // …and a second recovery sees the appended batch too.
    let r2: Recovered<I> = Durability::recover(&dir, opts).expect("second recover");
    assert_eq!(
        r2.epoch,
        r.epoch + 1,
        "{tag}: second recovery lost the appended batch"
    );
    let hits = r2.index.query(&TimeTravelQuery::new(1, 5, vec![0, 1]));
    assert!(
        hits.contains(&extra.id),
        "{tag}: appended object missing after second recovery"
    );

    let _ = fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn recovery_is_oracle_exact_at_every_kill_point(
        seed in 0..1_000_000u64,
        countdown in 0..12u64,
        batch in 1..4usize,
        hint_case in 0..4u32,
    ) {
        let coll = corpus(seed % 17 + 1);
        // Control: no kill, the full workload lands.
        run_case("control", &coll, Tif::build, None, seed, batch);
        for (i, point) in ALL_KILL_POINTS.iter().enumerate() {
            run_case(
                &format!("kill{}", i + 1),
                &coll,
                Tif::build,
                Some((*point, countdown)),
                seed,
                batch,
            );
        }
        // Periodically run the HINT-backed index through the same sweep.
        if hint_case == 0 {
            for (i, point) in ALL_KILL_POINTS.iter().enumerate() {
                run_case(
                    &format!("hint-kill{}", i + 1),
                    &coll,
                    |c| TifHint::build(c, TifHintConfig::binary_search()),
                    Some((*point, countdown)),
                    seed,
                    batch,
                );
            }
        }
    }
}
