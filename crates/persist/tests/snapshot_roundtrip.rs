//! Snapshot format roundtrips: every `Persist` index writes a snapshot,
//! restores from it (heap and mmap), and answers an oracle-checked query
//! grid identically before and after. Corruption anywhere in the file
//! must be detected at open time.

use std::fs;
use std::path::PathBuf;

use tir_core::prelude::*;
use tir_datagen::SyntheticConfig;
use tir_invidx::{CompactTemporalInverted, Dictionary};
use tir_persist::{write_snapshot, IndexKind, LoadMode, Persist, SnapshotError, SnapshotFile};

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tir-snap-rt-{}", std::process::id()));
    fs::create_dir_all(&dir).expect("scratch dir");
    dir.join(name)
}

fn corpus() -> Collection {
    let mut cfg = SyntheticConfig::default().scaled(0.002);
    cfg.desc_size = 4;
    cfg.seed = 77;
    tir_datagen::generate(&cfg)
}

fn dict_for(coll: &Collection) -> Dictionary {
    // A synthetic dictionary covering every element id in the corpus.
    let max_elem = coll
        .objects()
        .iter()
        .flat_map(|o| o.desc.iter().copied())
        .max()
        .unwrap_or(0);
    let mut d = Dictionary::new();
    for e in 0..=max_elem {
        assert_eq!(d.intern(&format!("term-{e}")), e);
    }
    for o in coll.objects() {
        for &e in &o.desc {
            d.bump_freq(e);
        }
    }
    d
}

fn query_grid(coll: &Collection) -> Vec<TimeTravelQuery> {
    let d = coll.domain();
    let span = d.end - d.st;
    let mut qs = Vec::new();
    for (i, frac) in [(1u64, 100u64), (3, 50), (7, 10), (11, 4)]
        .iter()
        .enumerate()
    {
        let st = d.st + span * frac.0 / 13;
        let end = (st + span / frac.1.max(1)).min(d.end);
        qs.push(TimeTravelQuery::new(
            st,
            end,
            vec![i as u32, (i + 1) as u32],
        ));
        qs.push(TimeTravelQuery::new(st, end, vec![(i * 2) as u32]));
    }
    qs.push(TimeTravelQuery::new(d.st, d.end, vec![0, 1, 2]));
    qs
}

/// Writes, restores (both modes), and oracle-checks one index type.
fn roundtrip<I, F>(name: &str, build: F, kind: IndexKind)
where
    I: Persist + TemporalIrIndex,
    F: Fn(&Collection) -> I,
{
    let coll = corpus();
    let index = build(&coll);
    let dict = dict_for(&coll);
    let oracle = BruteForce::build(coll.objects());
    let path = scratch(&format!("{name}.tir"));
    write_snapshot(&path, 42, &dict, coll.objects(), &index).expect("write snapshot");

    for mode in [LoadMode::Heap, LoadMode::Mmap] {
        let snap = SnapshotFile::open(&path, mode).expect("open snapshot");
        assert_eq!(snap.meta().kind, kind);
        assert_eq!(snap.meta().epoch, 42);
        assert_eq!(snap.meta().live, coll.len() as u64);
        assert_eq!(snap.is_mapped(), mode == LoadMode::Mmap && cfg!(unix));

        // Dictionary and catalog columns roundtrip exactly.
        let rdict = snap.dictionary().expect("dictionary");
        assert_eq!(rdict.len(), dict.len());
        assert_eq!(rdict.lookup("term-1"), Some(1));
        let rcat = snap.catalog_objects().expect("catalog");
        assert_eq!(rcat.len(), coll.len());

        // The restored native index answers the grid like the oracle.
        let restored = I::restore(&snap).expect("restore");
        for q in query_grid(&coll) {
            let mut got = restored.query(&q);
            got.sort_unstable();
            assert_eq!(got, oracle.answer(&q), "{name}/{mode:?} diverged on {q:?}");
        }
    }
    let _ = fs::remove_file(&path);
}

#[test]
fn tif_roundtrips() {
    roundtrip("tif", Tif::build, IndexKind::Tif);
}

#[test]
fn tif_hint_bs_roundtrips() {
    roundtrip(
        "tif-hint-bs",
        |c| TifHint::build(c, TifHintConfig::binary_search()),
        IndexKind::TifHintBs,
    );
}

#[test]
fn tif_hint_ms_roundtrips() {
    roundtrip(
        "tif-hint-ms",
        |c| TifHint::build(c, TifHintConfig::merge_sort()),
        IndexKind::TifHintMs,
    );
}

#[test]
fn brute_force_roundtrips() {
    roundtrip(
        "brute-force",
        |c| BruteForce::build(c.objects()),
        IndexKind::BruteForce,
    );
}

#[test]
fn compact_roundtrips() {
    let coll = corpus();
    let mut tuples: Vec<(u32, u32, u64, u64)> = coll
        .objects()
        .iter()
        .flat_map(|o| {
            o.desc
                .iter()
                .map(move |&e| (e, o.id, o.interval.st, o.interval.end))
        })
        .collect();
    let index = CompactTemporalInverted::build(&mut tuples);
    let dict = dict_for(&coll);
    let path = scratch("compact.tir");
    write_snapshot(&path, 7, &dict, coll.objects(), &index).expect("write");
    let snap = SnapshotFile::open(&path, LoadMode::Mmap).expect("open");
    assert_eq!(snap.meta().kind, IndexKind::CompactTemporal);
    let restored = CompactTemporalInverted::restore(&snap).expect("restore");
    assert_eq!(restored.elements(), index.elements());
    assert_eq!(restored.all_ids(), index.all_ids());
    assert_eq!(restored.all_sts(), index.all_sts());
    let _ = fs::remove_file(&path);
}

#[test]
fn snapshot_compacts_tombstones_away() {
    // Deleted postings must not survive a snapshot: write → restore must
    // agree with the post-delete oracle, and the canonical postings
    // count shrinks.
    let coll = corpus();
    let mut index = Tif::build(&coll);
    let mut oracle = BruteForce::build(coll.objects());
    let mut live: Vec<Object> = coll.objects().to_vec();
    for k in 0..coll.len() / 3 {
        let o = live.remove((k * 7) % live.len());
        assert!(index.delete(&o));
        assert!(oracle.delete(&o));
    }
    let path = scratch("tombstones.tir");
    write_snapshot(&path, 1, &dict_for(&coll), &live, &index).expect("write");
    let snap = SnapshotFile::open(&path, LoadMode::Heap).expect("open");
    assert_eq!(snap.meta().live, live.len() as u64);
    let restored = Tif::restore(&snap).expect("restore");
    assert!(
        restored.num_postings() < index.num_postings(),
        "snapshot kept tombstoned postings"
    );
    for q in query_grid(&coll) {
        let mut got = restored.query(&q);
        got.sort_unstable();
        assert_eq!(got, oracle.answer(&q));
    }
    let _ = fs::remove_file(&path);
}

#[test]
fn every_corrupted_byte_region_is_detected() {
    let coll = corpus();
    let index = Tif::build(&coll);
    let path = scratch("corrupt.tir");
    write_snapshot(&path, 1, &dict_for(&coll), coll.objects(), &index).expect("write");
    let clean = fs::read(&path).expect("read");
    // Flip one byte in every CRC-covered region: the header, each
    // section-table entry, and the head/middle/tail of every section
    // payload. (Alignment padding between sections is deliberately not
    // covered — nothing reads it.)
    let mut positions: Vec<usize> = vec![0, 9, 13, 20, 33, 40];
    let n_sections = u32::from_le_bytes(clean[32..36].try_into().unwrap()) as usize;
    for i in 0..n_sections {
        let base = 64 + i * 32;
        positions.extend([base, base + 8, base + 16, base + 24]);
        let off = u64::from_le_bytes(clean[base + 8..base + 16].try_into().unwrap()) as usize;
        let len = u64::from_le_bytes(clean[base + 16..base + 24].try_into().unwrap()) as usize;
        if len > 0 {
            positions.extend([off, off + len / 2, off + len - 1]);
        }
    }
    for pos in positions {
        let mut bad = clean.clone();
        bad[pos] ^= 0x40;
        fs::write(&path, &bad).expect("write corrupted");
        match SnapshotFile::open(&path, LoadMode::Heap) {
            Err(SnapshotError::Corrupt { .. }) => {}
            Err(other) => panic!("byte {pos}: wrong error kind {other}"),
            Ok(_) => panic!("byte {pos}: corruption not detected"),
        }
    }
    // Truncation too.
    fs::write(&path, &clean[..clean.len() / 2]).expect("truncate");
    assert!(matches!(
        SnapshotFile::open(&path, LoadMode::Heap),
        Err(SnapshotError::Corrupt { .. })
    ));
    let _ = fs::remove_file(&path);
}

#[test]
fn unknown_version_and_kind_are_rejected() {
    let coll = corpus();
    let index = Tif::build(&coll);
    let path = scratch("skew.tir");
    write_snapshot(&path, 1, &dict_for(&coll), coll.objects(), &index).expect("write");
    let clean = fs::read(&path).expect("read");

    // Version bump: rejected even with a recomputed CRC? The CRC guards
    // the header, so a bare flip is caught; a "future" file with a valid
    // CRC must still be refused — patch version AND fix the CRC.
    let mut future = clean.clone();
    future[8] = 99;
    let crc = {
        let mut c = tir_persist::Crc32::new();
        c.update(&future[0..44]);
        c.update(&[0, 0, 0, 0]);
        c.update(&future[48..832]);
        c.finish()
    };
    future[44..48].copy_from_slice(&crc.to_le_bytes());
    fs::write(&path, &future).expect("write future");
    let err = SnapshotFile::open(&path, LoadMode::Heap).expect_err("future version");
    assert!(err.to_string().contains("version"), "{err}");

    // Wrong-kind restore: a Tif snapshot refuses to restore as TifHint.
    fs::write(&path, &clean).expect("restore clean");
    let snap = SnapshotFile::open(&path, LoadMode::Heap).expect("open");
    assert!(TifHint::restore(&snap).is_err());
    let _ = fs::remove_file(&path);
}
