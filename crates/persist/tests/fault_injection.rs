//! Injected-I/O-fault tests for the durability engine: each `tir-fault`
//! site on the durable write path must surface as a clean `io::Error`
//! (nothing applied, epoch unchanged) and the directory must recover to
//! exactly the acknowledged state once the fault clears.
//!
//! NOTE: the fault registry is process-global, so this binary holds
//! exactly one `#[test]`; the scenarios run sequentially inside it.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use tir_core::prelude::*;
use tir_fault::{FaultAction, FaultPlan, FaultSite};
use tir_invidx::Dictionary;
use tir_persist::wal::WalOp;
use tir_persist::{Durability, DurabilityOptions, Recovered};

/// Fires `action` at exactly one `(site, visit)`; everything else passes.
struct OneShot {
    site: FaultSite,
    visit: u64,
    action: FaultAction,
}

impl FaultPlan for OneShot {
    fn action(&self, site: FaultSite, visit: u64) -> FaultAction {
        if site == self.site && visit == self.visit {
            self.action
        } else {
            FaultAction::None
        }
    }
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tir-faultinj-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn setup(dir: &Path, coll: &Collection) -> (Tif, Durability, Dictionary, DurabilityOptions) {
    let index = Tif::build(coll);
    let dict = Dictionary::new();
    let opts = DurabilityOptions {
        segment_bytes: 1 << 20,
        snapshot_every: 0,
    };
    let d = Durability::create(dir, &index, &dict, coll.objects(), opts).expect("create");
    (index, d, dict, opts)
}

fn ids(d: &Durability) -> Vec<u32> {
    d.catalog_sorted().iter().map(|o| o.id).collect()
}

#[test]
fn injected_io_faults_fail_cleanly_and_recover() {
    let coll = Collection::running_example();

    // --- Torn WAL append: a short write lands a record prefix. ---
    {
        let dir = scratch("short-write");
        let (mut index, mut d, _dict, opts) = setup(&dir, &coll);
        d.apply_batch(
            &mut index,
            &[WalOp::Insert(Object::new(900, 1, 5, vec![1, 2]))],
        )
        .expect("clean batch");
        tir_fault::install(Arc::new(OneShot {
            site: FaultSite::WalAppend,
            visit: 0,
            action: FaultAction::ShortWrite,
        }));
        let err = d
            .apply_batch(
                &mut index,
                &[WalOp::Insert(Object::new(901, 2, 6, vec![2]))],
            )
            .expect_err("short write must fail the batch");
        assert!(tir_fault::is_injected(&err), "{err}");
        assert_eq!(d.epoch(), 1, "failed batch must not advance the epoch");
        tir_fault::clear();
        drop(d);
        // Recovery chops the torn prefix and lands on the acked epoch.
        let r: Recovered<Tif> = Durability::recover(&dir, opts).expect("recover");
        assert_eq!(r.epoch, 1);
        assert!(r.truncated_tail, "the torn prefix must be truncated away");
        assert!(ids(&r.durability).contains(&900));
        assert!(!ids(&r.durability).contains(&901));
        // And the directory accepts appends again.
        let (mut index, mut d) = (r.index, r.durability);
        d.apply_batch(
            &mut index,
            &[WalOp::Insert(Object::new(902, 3, 7, vec![1]))],
        )
        .expect("append after recovery");
        assert_eq!(d.epoch(), 2);
        let _ = fs::remove_dir_all(&dir);
    }

    // --- Fsync failure at the durability barrier. ---
    {
        let dir = scratch("sync-err");
        let (mut index, mut d, _dict, opts) = setup(&dir, &coll);
        tir_fault::install(Arc::new(OneShot {
            site: FaultSite::WalSync,
            visit: 0,
            action: FaultAction::Error,
        }));
        let err = d
            .apply_batch(
                &mut index,
                &[WalOp::Insert(Object::new(910, 1, 4, vec![3]))],
            )
            .expect_err("fsync failure must fail the batch");
        assert!(tir_fault::is_injected(&err), "{err}");
        assert_eq!(d.epoch(), 0);
        tir_fault::clear();
        drop(d);
        let r: Recovered<Tif> = Durability::recover(&dir, opts).expect("recover");
        // The record was fully written before the failed fsync, so
        // recovery may legitimately surface it (same contract as a crash
        // between append and ack) — but never anything beyond it.
        assert!(r.epoch <= 1);
        let _ = fs::remove_dir_all(&dir);
    }

    // --- Torn snapshot publish: temp written, rename injected away. ---
    {
        let dir = scratch("torn-rename");
        let (mut index, mut d, dict, opts) = setup(&dir, &coll);
        for (i, id) in [920u32, 921, 922].iter().enumerate() {
            d.apply_batch(
                &mut index,
                &[WalOp::Insert(Object::new(
                    *id,
                    i as u64,
                    i as u64 + 3,
                    vec![1],
                ))],
            )
            .expect("clean batch");
        }
        tir_fault::install(Arc::new(OneShot {
            site: FaultSite::SnapshotRename,
            visit: 0,
            action: FaultAction::Error,
        }));
        let err = d.write_snapshot(&index, &dict).expect_err("rename fault");
        assert!(tir_fault::is_injected(&err), "{err}");
        assert_eq!(d.snapshot_epoch(), 0, "old snapshot stays current");
        assert!(
            dir.join("snapshot.tir.tmp").is_file(),
            "stale tmp left behind"
        );
        tir_fault::clear();
        drop(d);
        // Recovery ignores the stale tmp: old snapshot + full WAL replay.
        let r: Recovered<Tif> = Durability::recover(&dir, opts).expect("recover");
        assert_eq!(r.epoch, 3);
        for id in [920u32, 921, 922] {
            assert!(ids(&r.durability).contains(&id));
        }
        let _ = fs::remove_dir_all(&dir);
    }
}
