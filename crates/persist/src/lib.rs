//! # tir-persist
//!
//! The durability layer of the workspace: everything an index needs to
//! survive the death of its process.
//!
//! Two cooperating halves:
//!
//! * **Snapshots** — a versioned, checksummed, little-endian on-disk
//!   format ([`snapshot`]) storing the dictionary, the object catalog,
//!   the canonical SoA postings columns, and (for HINT-backed indexes) a
//!   partition directory, each in its own 64-byte-aligned section with a
//!   CRC32. A snapshot is written via the [`Persist`] trait and loaded
//!   either *fully* (rebuilding the native in-memory index) or
//!   *zero-copy* through the safe mmap wrapper in [`mmap`] — the
//!   [`snapshot::MappedPostings`] view answers time-travel queries
//!   straight out of the mapped columns without deserializing a single
//!   posting onto the heap.
//! * **The write-ahead log** ([`wal`]) — appended and fsynced *before* a
//!   batch is applied, one CRC32-guarded record per epoch, with
//!   size-based segment rotation and truncate-on-torn-tail replay.
//!   [`Durability`] sequences the two halves: WAL append → fsync → apply
//!   → (periodically) snapshot-rename → WAL prune, so a restart recovers
//!   to last-snapshot + WAL replay, reaching at least the last
//!   acknowledged epoch — and exactly the epochs whose records are
//!   durable.
//!
//! The only `unsafe` in the crate (and the workspace) lives in the
//! audited [`mmap`] wrapper module; everything else is `#![deny]`-ed and
//! the `unsafe-code` rule of `tir-analyze` enforces the containment
//! statically.
//!
//! Crash discipline is testable: with the `testing` feature, [`kill`]
//! exposes deterministic kill points that abort the durable apply path
//! at every step boundary, and the crash-recovery proptests replay
//! `mixed_stream` ops demanding exact `BruteForce`-oracle agreement
//! after recovery at every point.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod cols;
pub mod crc;
pub mod engine;
pub mod kill;
pub mod mmap;
pub mod snapshot;
pub mod termlog;
pub mod wal;

pub use cols::{U32Col, U64Col};
pub use crc::{crc32, Crc32};
pub use engine::{
    ApplyOutcome, Durability, DurabilityOptions, PersistStats, Recovered, SNAPSHOT_NAME,
};
pub use kill::KillPoint;
pub use mmap::{Bytes, LoadMode};
pub use snapshot::{
    write_snapshot, IndexKind, MappedPostings, Persist, SnapshotError, SnapshotFile, SnapshotMeta,
    SnapshotWriter, FORMAT_VERSION,
};
pub use termlog::TermLog;
pub use wal::{WalOp, WalStats};
